#!/usr/bin/env bash
# Regenerate every paper figure and the ablation studies into results/.
set -euo pipefail
cd "$(dirname "$0")"

mkdir -p results results/fig9
BINS=(fig5_write_scaling fig6_time_breakdown fig7_read_scaling \
      fig8_lod_reads fig9_lod_quality fig11_adaptive ablation_studies)

cargo build --release -p spio-bench >/dev/null

for bin in "${BINS[@]}"; do
    echo "== $bin =="
    if [ "$bin" = fig9_lod_quality ]; then
        FIG9_PPM_DIR=results/fig9 cargo run -q --release -p spio-bench --bin "$bin" \
            | tee "results/$bin.txt"
    else
        cargo run -q --release -p spio-bench --bin "$bin" | tee "results/$bin.txt"
    fi
    echo
done

echo "All figure outputs written to results/ (PPM panels in results/fig9/)."
