//! Cross-crate integration tests: full write-then-read cycles on a real
//! filesystem, through the umbrella crate's public API.

use spatial_particle_io::prelude::*;
use spio_core::{DatasetReader, WriteMode};
use spio_types::Particle;
use spio_workloads::{cluster_patch_particles, ClusterSpec};

fn write_uniform(
    dir: &std::path::Path,
    dims: (usize, usize, usize),
    factor: (usize, usize, usize),
    per_rank: usize,
    adaptive: bool,
) -> FsStorage {
    let storage = FsStorage::new(dir);
    let decomp = DomainDecomposition::uniform(
        Aabb3::new([0.0; 3], [1.0; 3]),
        GridDims::new(dims.0, dims.1, dims.2),
    );
    let s = storage.clone();
    let d = decomp.clone();
    run_threaded(decomp.nprocs(), move |comm| {
        let ps = uniform_patch_particles(&d, comm.rank(), per_rank, 2024);
        SpatialWriter::new(
            d.clone(),
            WriterConfig::new(PartitionFactor::new(factor.0, factor.1, factor.2))
                .adaptive(adaptive),
        )
        .write(&comm, &ps, &s)
        .unwrap();
    })
    .unwrap();
    storage
}

#[test]
fn fs_roundtrip_recovers_everything() {
    let dir = spio_util::tempdir().unwrap();
    let storage = write_uniform(dir.path(), (4, 2, 2), (2, 2, 1), 500, false);
    let reader = DatasetReader::open(&storage).unwrap();
    assert_eq!(reader.meta.total_particles, 16 * 500);
    // (4,2,2) patches at factor (2,2,1): (4/2)·(2/2)·(2/1) = 4 files.
    assert_eq!(reader.meta.entries.len(), 4);
    let (all, stats) = reader.read_all(&storage).unwrap();
    assert_eq!(all.len(), 8000);
    assert_eq!(stats.files_opened, 4);
    // Real files exist on disk with the derived names.
    assert!(dir.path().join("spatial_meta.spm").exists());
    for e in &reader.meta.entries {
        assert!(dir.path().join(e.file_name()).exists());
    }
}

#[test]
fn several_factors_produce_identical_datasets() {
    // The same simulation written with different partition factors must
    // contain identical particle sets — layout is the only difference.
    let mut reference: Option<Vec<u64>> = None;
    for factor in [(1, 1, 1), (2, 1, 1), (2, 2, 1), (2, 2, 2), (4, 2, 2)] {
        let dir = spio_util::tempdir().unwrap();
        let storage = write_uniform(dir.path(), (4, 2, 2), factor, 200, false);
        let reader = DatasetReader::open(&storage).unwrap();
        let (all, _) = reader.read_all(&storage).unwrap();
        let mut ids: Vec<u64> = all.iter().map(|p| p.id).collect();
        ids.sort_unstable();
        match &reference {
            None => reference = Some(ids),
            Some(r) => assert_eq!(&ids, r, "factor {factor:?} changed the data"),
        }
    }
}

#[test]
fn parallel_readers_cover_dataset_disjointly() {
    let dir = spio_util::tempdir().unwrap();
    let storage = write_uniform(dir.path(), (4, 4, 1), (2, 2, 1), 300, false);
    for nreaders in [1usize, 2, 4, 8] {
        let s = storage.clone();
        let per_rank = spio_comm::run_threaded_collect(nreaders, move |comm| {
            let (ps, _) = spio_core::BoxQueryReader::read(&comm, &s, true).unwrap();
            ps.iter().map(|p| p.id).collect::<Vec<u64>>()
        })
        .unwrap();
        let mut all: Vec<u64> = per_rank.into_iter().flatten().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 16 * 300, "readers={nreaders}");
    }
}

#[test]
fn lod_read_over_fs_is_progressive_and_complete() {
    let dir = spio_util::tempdir().unwrap();
    let storage = write_uniform(dir.path(), (2, 2, 2), (2, 2, 2), 1000, false);
    let mut reader = LodReader::open(&storage, 1, 0).unwrap();
    let levels = reader.cursor.num_levels();
    assert!(levels > 3);
    let mut sizes = Vec::new();
    let mut all: Vec<Particle> = Vec::new();
    for _ in 0..levels {
        let (ps, _) = reader.cursor.read_next_level(&storage).unwrap();
        sizes.push(ps.len());
        all.extend(ps);
    }
    assert_eq!(all.len(), 8000);
    // Geometric growth between interior levels (S = 2).
    for w in sizes.windows(2).take(sizes.len().saturating_sub(2)) {
        assert!(
            w[1] as f64 >= w[0] as f64 * 1.6,
            "levels should roughly double: {sizes:?}"
        );
    }
}

#[test]
fn adaptive_cluster_workload_roundtrip() {
    let dir = spio_util::tempdir().unwrap();
    let storage = FsStorage::new(dir.path());
    let decomp =
        DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(4, 2, 2));
    let spec = ClusterSpec {
        clusters: 3,
        sigma_frac: 0.06,
        background: 0.0,
        total_particles: 20_000,
    };
    let s = storage.clone();
    let d = decomp.clone();
    let spec2 = spec.clone();
    let totals = spio_comm::run_threaded_collect(decomp.nprocs(), move |comm| {
        let ps = cluster_patch_particles(&d, comm.rank(), &spec2, 77);
        let n = ps.len();
        SpatialWriter::new(
            d.clone(),
            WriterConfig::new(PartitionFactor::new(2, 2, 2)).adaptive(true),
        )
        .write(&comm, &ps, &s)
        .unwrap();
        n
    })
    .unwrap();
    let written: usize = totals.iter().sum();
    let reader = DatasetReader::open(&storage).unwrap();
    assert_eq!(reader.meta.total_particles as usize, written);
    reader.meta.validate_disjoint().unwrap();
    let (all, _) = reader.read_all(&storage).unwrap();
    assert_eq!(all.len(), written);
}

#[test]
fn general_mode_with_migrated_particles_on_fs() {
    // Simulate a timestep where particles moved out of their owners'
    // patches (no rebalancing yet) — the General path must still produce a
    // valid spatial layout.
    let dir = spio_util::tempdir().unwrap();
    let storage = FsStorage::new(dir.path());
    let decomp =
        DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(2, 2, 1));
    let s = storage.clone();
    let d = decomp.clone();
    run_threaded(4, move |comm| {
        use spio_comm::Comm;
        // Start in-patch, then drift +0.3 in x with wraparound.
        let ps: Vec<Particle> = uniform_patch_particles(&d, comm.rank(), 250, 5)
            .into_iter()
            .map(|mut p| {
                p.position[0] = (p.position[0] + 0.3) % 1.0;
                p
            })
            .collect();
        SpatialWriter::new(
            d.clone(),
            WriterConfig::new(PartitionFactor::new(1, 2, 1)).with_mode(WriteMode::General),
        )
        .write(&comm, &ps, &s)
        .unwrap();
    })
    .unwrap();
    let reader = DatasetReader::open(&storage).unwrap();
    reader.meta.validate_disjoint().unwrap();
    assert_eq!(reader.meta.total_particles, 1000);
    // Every particle in every file is inside the file's box.
    for e in &reader.meta.entries {
        let bytes = storage.read_file(&e.file_name()).unwrap();
        let (_, ps) = spio_format::data_file::decode_data_file(&bytes).unwrap();
        assert!(ps.iter().all(|p| e.bounds.contains(p.position)));
    }
}

#[test]
fn density_range_query_prunes_files_and_matches_scan() {
    // §3.5 extension: per-file scalar ranges prune attribute queries.
    let dir = spio_util::tempdir().unwrap();
    let storage = FsStorage::new(dir.path());
    let decomp =
        DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(4, 1, 1));
    let s = storage.clone();
    let d = decomp.clone();
    run_threaded(4, move |comm| {
        use spio_comm::Comm;
        // Rank r's particles all have density 1000 + r: each file ends up
        // with a narrow, distinct density range.
        let ps: Vec<Particle> = uniform_patch_particles(&d, comm.rank(), 200, 11)
            .into_iter()
            .map(|mut p| {
                p.density = 1000.0 + comm.rank() as f64;
                p
            })
            .collect();
        SpatialWriter::new(d.clone(), WriterConfig::new(PartitionFactor::new(1, 1, 1)))
            .write(&comm, &ps, &s)
            .unwrap();
    })
    .unwrap();

    let reader = DatasetReader::open(&storage).unwrap();
    assert!(reader.meta.attr_ranges.is_some(), "writer records ranges");
    // Density in [1001, 1002] lives in exactly two files.
    let (hits, stats) = reader
        .read_box_density(&storage, &reader.meta.domain.clone(), 1001.0, 1002.0)
        .unwrap();
    assert_eq!(
        stats.files_opened, 2,
        "range pruning must skip 2 of 4 files"
    );
    assert_eq!(hits.len(), 400);
    assert!(hits.iter().all(|p| (1001.0..=1002.0).contains(&p.density)));
    // Same answer as a full scan + filter.
    let (all, _) = reader.read_all(&storage).unwrap();
    let expected = all
        .iter()
        .filter(|p| (1001.0..=1002.0).contains(&p.density))
        .count();
    assert_eq!(hits.len(), expected);
    // An impossible range opens nothing.
    let (none, stats) = reader
        .read_box_density(&storage, &reader.meta.domain.clone(), 5.0, 6.0)
        .unwrap();
    assert!(none.is_empty());
    assert_eq!(stats.files_opened, 0);
}
