//! Failure injection: storage faults and corrupted datasets must surface
//! as errors (never panics or silent corruption) through the full stack.

use spatial_particle_io::prelude::*;
use spio_core::{DatasetReader, MemStorage};
use spio_types::SpioError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;

/// A storage wrapper that fails operations once a budget is exhausted.
#[derive(Clone)]
struct FaultyStorage {
    inner: MemStorage,
    /// Writes allowed before failures start (u64::MAX = never fail).
    write_budget: Arc<AtomicU64>,
    /// Reads allowed before failures start.
    read_budget: Arc<AtomicU64>,
    log: Arc<Mutex<Vec<String>>>,
}

impl FaultyStorage {
    fn new(inner: MemStorage, write_budget: u64, read_budget: u64) -> Self {
        FaultyStorage {
            inner,
            write_budget: Arc::new(AtomicU64::new(write_budget)),
            read_budget: Arc::new(AtomicU64::new(read_budget)),
            log: Arc::new(Mutex::new(Vec::new())),
        }
    }

    fn take(budget: &AtomicU64) -> bool {
        loop {
            let cur = budget.load(Ordering::SeqCst);
            if cur == 0 {
                return false;
            }
            if budget
                .compare_exchange(cur, cur - 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return true;
            }
        }
    }
}

impl Storage for FaultyStorage {
    fn write_file(&self, name: &str, data: &[u8]) -> Result<(), SpioError> {
        if !Self::take(&self.write_budget) {
            self.log
                .lock()
                .unwrap()
                .push(format!("failed write {name}"));
            return Err(SpioError::Io(std::io::Error::other("injected write fault")));
        }
        self.inner.write_file(name, data)
    }

    fn read_file(&self, name: &str) -> Result<Vec<u8>, SpioError> {
        if !Self::take(&self.read_budget) {
            return Err(SpioError::Io(std::io::Error::other("injected read fault")));
        }
        self.inner.read_file(name)
    }

    fn read_range(&self, name: &str, start: u64, end: u64) -> Result<Vec<u8>, SpioError> {
        if !Self::take(&self.read_budget) {
            return Err(SpioError::Io(std::io::Error::other("injected read fault")));
        }
        self.inner.read_range(name, start, end)
    }

    fn file_size(&self, name: &str) -> Result<u64, SpioError> {
        self.inner.file_size(name)
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.exists(name)
    }

    fn write_range(&self, name: &str, offset: u64, data: &[u8]) -> Result<(), SpioError> {
        if !Self::take(&self.write_budget) {
            return Err(SpioError::Io(std::io::Error::other("injected write fault")));
        }
        self.inner.write_range(name, offset, data)
    }
}

fn decomp() -> DomainDecomposition {
    DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(2, 2, 1))
}

fn good_dataset() -> MemStorage {
    let storage = MemStorage::new();
    let s = storage.clone();
    spio_comm::run_threaded_collect(4, move |comm| {
        use spio_comm::Comm;
        let ps = uniform_patch_particles(&decomp(), comm.rank(), 300, 1);
        SpatialWriter::new(decomp(), WriterConfig::new(PartitionFactor::new(2, 1, 1)))
            .write(&comm, &ps, &s)
            .unwrap();
    })
    .unwrap();
    storage
}

#[test]
fn write_faults_on_every_rank_error_cleanly() {
    // All data-file writes fail: every rank must get an error, no panic,
    // no deadlock (the metadata gather still runs collectively, so all
    // ranks reach the same failure point).
    let faulty = FaultyStorage::new(MemStorage::new(), 0, u64::MAX);
    let f2 = faulty.clone();
    let results = spio_comm::run_threaded_collect(4, move |comm| {
        use spio_comm::Comm;
        let ps = uniform_patch_particles(&decomp(), comm.rank(), 100, 1);
        SpatialWriter::new(decomp(), WriterConfig::new(PartitionFactor::new(1, 1, 1)))
            .write(&comm, &ps, &f2)
            .map(|_| ())
    })
    .unwrap();
    // Every rank aggregates its own file under (1,1,1), so every rank hits
    // the fault.
    assert!(results.iter().all(Result::is_err));
    assert_eq!(faulty.log.lock().unwrap().len(), 4);
}

#[test]
fn read_faults_surface_as_errors() {
    let storage = good_dataset();
    // Allow the metadata read, fail the first data-file read.
    let faulty = FaultyStorage::new(storage, u64::MAX, 1);
    let reader = DatasetReader::open(&faulty).unwrap();
    let err = reader.read_all(&faulty).unwrap_err();
    assert!(err.to_string().contains("injected read fault"), "{err}");
}

#[test]
fn missing_data_file_is_reported_not_panicked() {
    let storage = good_dataset();
    let reader = DatasetReader::open(&storage).unwrap();
    // Delete one data file by overwriting the namespace with a fresh map —
    // simplest: copy all but one file into a new store.
    let crippled = MemStorage::new();
    let victim = reader.meta.entries[0].file_name();
    for name in storage.file_names() {
        if name != victim {
            crippled
                .write_file(&name, &storage.read_file(&name).unwrap())
                .unwrap();
        }
    }
    let reader = DatasetReader::open(&crippled).unwrap();
    let err = reader.read_all(&crippled).unwrap_err();
    assert!(matches!(err, SpioError::NotFound(_)), "{err}");
    // A query that avoids the missing file still succeeds.
    let q = reader.meta.entries[1].bounds;
    let (ps, _) = reader.read_box(&crippled, &q).unwrap();
    assert!(!ps.is_empty());
}

#[test]
fn swapped_data_files_caught_by_validation() {
    // Swap the two data files' contents: every header/bounds check fires.
    let storage = good_dataset();
    let reader = DatasetReader::open(&storage).unwrap();
    let a = reader.meta.entries[0].file_name();
    let b = reader.meta.entries[1].file_name();
    let ab = storage.read_file(&a).unwrap();
    let bb = storage.read_file(&b).unwrap();
    storage.write_file(&a, &bb).unwrap();
    storage.write_file(&b, &ab).unwrap();
    let report = spio_tools::validate(&storage).unwrap();
    assert!(!report.is_ok());
    assert!(
        report.problems.iter().any(|p| p.contains("bounds")),
        "{:?}",
        report.problems
    );
}

#[test]
fn truncated_metadata_blocks_open_gracefully() {
    let storage = good_dataset();
    let meta = storage.read_file("spatial_meta.spm").unwrap();
    storage
        .write_file("spatial_meta.spm", &meta[..meta.len() / 2])
        .unwrap();
    assert!(matches!(
        DatasetReader::open(&storage),
        Err(SpioError::Format(_))
    ));
}
