//! Failure injection: storage faults and corrupted datasets must surface
//! as errors (never panics or silent corruption) through the full stack,
//! and the resilience layer (retries, checksums, partial reads) must
//! degrade gracefully where the paper's read paths would otherwise abort.
//!
//! All chaos schedules are seeded and deterministic — `ci.sh` runs this
//! suite as its dedicated fault-path step.

use spatial_particle_io::prelude::*;
use spio_core::{ChaosConfig, ChaosStorage, DatasetReader, MemStorage, RetryPolicy, RetryStorage};
use spio_format::data_file::{decode_data_file, DataFileHeader, HEADER_BYTES};
use spio_trace::{JobReport, Trace};
use spio_types::SpioError;

fn decomp() -> DomainDecomposition {
    DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(2, 2, 1))
}

/// A 4-rank dataset with `per_rank` particles each, aggregated into 2 data
/// files.
fn dataset(per_rank: usize) -> MemStorage {
    let storage = MemStorage::new();
    let s = storage.clone();
    spio_comm::run_threaded_collect(4, move |comm| {
        use spio_comm::Comm;
        let ps = uniform_patch_particles(&decomp(), comm.rank(), per_rank, 1);
        SpatialWriter::new(decomp(), WriterConfig::new(PartitionFactor::new(2, 1, 1)))
            .write(&comm, &ps, &s)
            .unwrap();
    })
    .unwrap();
    storage
}

fn good_dataset() -> MemStorage {
    dataset(300)
}

#[test]
fn write_faults_on_every_rank_error_cleanly() {
    // All data-file writes fail: every rank must get an error, no panic,
    // no deadlock (the metadata gather still runs collectively, so all
    // ranks reach the same failure point).
    let chaos = ChaosStorage::new(MemStorage::new(), ChaosConfig::budgets(0, u64::MAX));
    let c2 = chaos.clone();
    let results = spio_comm::run_threaded_collect(4, move |comm| {
        use spio_comm::Comm;
        let ps = uniform_patch_particles(&decomp(), comm.rank(), 100, 1);
        SpatialWriter::new(decomp(), WriterConfig::new(PartitionFactor::new(1, 1, 1)))
            .write(&comm, &ps, &c2)
            .map(|_| ())
    })
    .unwrap();
    // Every rank aggregates its own file under (1,1,1), so every rank hits
    // the fault.
    assert!(results.iter().all(Result::is_err));
    assert_eq!(chaos.stats().budget_faults, 4);
}

#[test]
fn read_faults_surface_as_errors() {
    let storage = good_dataset();
    // Allow the metadata read, fail the first data-file read.
    let chaos = ChaosStorage::new(storage, ChaosConfig::budgets(u64::MAX, 1));
    let reader = DatasetReader::open(&chaos).unwrap();
    let err = reader.read_all(&chaos).unwrap_err();
    assert!(err.to_string().contains("injected budget fault"), "{err}");
}

#[test]
fn missing_data_file_is_reported_not_panicked() {
    let storage = good_dataset();
    let reader = DatasetReader::open(&storage).unwrap();
    // Delete one data file by overwriting the namespace with a fresh map —
    // simplest: copy all but one file into a new store.
    let crippled = MemStorage::new();
    let victim = reader.meta.entries[0].file_name();
    for name in storage.file_names() {
        if name != victim {
            crippled
                .write_file(&name, &storage.read_file(&name).unwrap())
                .unwrap();
        }
    }
    let reader = DatasetReader::open(&crippled).unwrap();
    let err = reader.read_all(&crippled).unwrap_err();
    assert!(matches!(err, SpioError::NotFound(_)), "{err}");
    // A query that avoids the missing file still succeeds.
    let q = reader.meta.entries[1].bounds;
    let (ps, _) = reader.read_box(&crippled, &q).unwrap();
    assert!(!ps.is_empty());
}

#[test]
fn swapped_data_files_caught_by_validation() {
    // Swap the two data files' contents: every header/bounds check fires.
    let storage = good_dataset();
    let reader = DatasetReader::open(&storage).unwrap();
    let a = reader.meta.entries[0].file_name();
    let b = reader.meta.entries[1].file_name();
    let ab = storage.read_file(&a).unwrap();
    let bb = storage.read_file(&b).unwrap();
    storage.write_file(&a, &bb).unwrap();
    storage.write_file(&b, &ab).unwrap();
    let report = spio_tools::validate(&storage).unwrap();
    assert!(!report.is_ok());
    assert!(
        report.problems.iter().any(|p| p.contains("bounds")),
        "{:?}",
        report.problems
    );
}

#[test]
fn truncated_metadata_blocks_open_gracefully() {
    let storage = good_dataset();
    let meta = storage.read_file("spatial_meta.spm").unwrap();
    storage
        .write_file("spatial_meta.spm", &meta[..meta.len() / 2])
        .unwrap();
    assert!(matches!(
        DatasetReader::open(&storage),
        Err(SpioError::Format(_))
    ));
}

#[test]
fn every_single_bit_flip_in_a_data_file_is_caught() {
    // The acceptance bar for format v2: flip any one bit anywhere in a
    // data file — header, payload, or checksum footer — and decoding
    // fails with SpioError::Format rather than returning wrong particles.
    // A small dataset keeps the quadratic CRC work fast in debug builds.
    let storage = dataset(50);
    let reader = DatasetReader::open(&storage).unwrap();
    let name = reader.meta.entries[0].file_name();
    let good = storage.read_file(&name).unwrap();
    decode_data_file(&good).expect("pristine file decodes");
    for i in 0..good.len() {
        let mut bad = good.clone();
        bad[i] ^= 1 << (i % 8);
        match decode_data_file(&bad) {
            Err(SpioError::Format(_)) => {}
            other => panic!("flip at byte {i}: expected Format error, got {other:?}"),
        }
    }
}

#[test]
fn bit_flip_injected_by_chaos_is_caught_end_to_end() {
    // Same property through the whole read path: ChaosStorage silently
    // corrupts one bit of every read, and the reader reports corruption
    // instead of returning a wrong answer.
    let storage = good_dataset();
    let chaos = ChaosStorage::new(
        storage,
        ChaosConfig {
            seed: 77,
            bit_flip_rate: 1.0,
            ..ChaosConfig::default()
        },
    );
    // Open through the clean backend (the metadata file carries no
    // checksum of its own), then read data files through the flipping
    // wrapper: the checksums must turn every silent flip into an error.
    let reader = DatasetReader::open(chaos.inner()).unwrap();
    match reader.read_all(&chaos) {
        Err(SpioError::Format(m)) => assert!(m.contains("checksum"), "{m}"),
        other => panic!("expected checksum Format error, got {other:?}"),
    }
    assert!(chaos.stats().bit_flips > 0);
}

#[test]
fn transient_faults_absorbed_by_retry_with_trace_evidence() {
    let storage = good_dataset();
    // Deterministic schedule: faultable ops 1, 3, 5, … fail once.
    let chaos = ChaosStorage::new(
        storage,
        ChaosConfig {
            transient_every: Some(2),
            ..ChaosConfig::default()
        },
    );
    // Without retries the very first data read aborts the query.
    let reader = DatasetReader::open(chaos.inner()).unwrap();
    assert!(
        matches!(reader.read_all(&chaos), Err(SpioError::Io(_))),
        "bare storage must fail under this schedule"
    );

    // The same schedule through RetryStorage completes, and the retries
    // are visible in the job report.
    let trace = Trace::collecting();
    let retry = RetryStorage::new(chaos.clone(), RetryPolicy::immediate(3), trace.clone(), 0);
    let (ps, _) = reader.read_all(&retry).unwrap();
    assert_eq!(ps.len(), 1200);
    assert!(retry.retries() > 0);
    let report = JobReport::from_snapshot(1, &trace.snapshot());
    assert_eq!(report.retry_count() as u64, retry.retries());
    assert!(report.render().contains("retry"));
    assert!(chaos.stats().transient_faults > 0);
}

#[test]
fn read_box_partial_survives_one_missing_file() {
    let storage = good_dataset();
    let reader = DatasetReader::open(&storage).unwrap();
    let victim = reader.meta.entries[0].file_name();
    let survivor_count = reader.meta.entries[1].particle_count;
    let crippled = MemStorage::new();
    for name in storage.file_names() {
        if name != victim {
            crippled
                .write_file(&name, &storage.read_file(&name).unwrap())
                .unwrap();
        }
    }
    // The strict read aborts; the partial read returns the surviving file's
    // particles plus a per-file account of what failed.
    let domain = reader.meta.domain;
    assert!(reader.read_box(&crippled, &domain).is_err());
    let partial = reader.read_box_partial(&crippled, &domain);
    assert!(!partial.is_complete());
    assert_eq!(partial.particles.len() as u64, survivor_count);
    assert_eq!(partial.outcomes.len(), 2);
    let failures = partial.failures();
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].file, victim);
    assert!(matches!(failures[0].error, Some(SpioError::NotFound(_))));
}

#[test]
fn read_box_partial_survives_a_poisoned_file() {
    // Same degradation under injected persistent I/O faults rather than a
    // missing file.
    let storage = good_dataset();
    let chaos = ChaosStorage::new(storage, ChaosConfig::default());
    let reader = DatasetReader::open(&chaos).unwrap();
    let victim = reader.meta.entries[1].file_name();
    chaos.poison(&victim);
    let partial = reader.read_box_partial(&chaos, &reader.meta.domain);
    assert!(!partial.is_complete());
    assert_eq!(
        partial.particles.len() as u64,
        reader.meta.entries[0].particle_count
    );
    let failures = partial.failures();
    assert_eq!(failures.len(), 1);
    assert!(matches!(failures[0].error, Some(SpioError::Io(_))));
    // On a pristine dataset the partial read matches read_box exactly.
    let clean = good_dataset();
    let reader = DatasetReader::open(&clean).unwrap();
    let partial = reader.read_box_partial(&clean, &reader.meta.domain);
    assert!(partial.is_complete());
    assert_eq!(partial.particles.len(), 1200);
}

#[test]
fn tampered_metadata_count_does_not_underflow_scan_reads() {
    // Regression: read_box_without_metadata used to compute
    // `entry.particle_count - kept` from the metadata count, which
    // underflows (panics in debug, wraps in release) when the metadata
    // disagrees with the payload. Discards must come from decoded counts.
    let storage = good_dataset();
    let reader = DatasetReader::open(&storage).unwrap();
    let mut meta = reader.meta.clone();
    meta.entries[0].particle_count = 1; // far below the real payload count
    storage
        .write_file("spatial_meta.spm", &meta.encode())
        .unwrap();

    let reader = DatasetReader::open(&storage).unwrap();
    let (ps, stats) = reader
        .read_box_without_metadata(&storage, &reader.meta.domain)
        .unwrap();
    assert_eq!(ps.len(), 1200, "scan keeps every decoded particle");
    assert_eq!(stats.particles_discarded, 0);
}

#[test]
fn v1_datasets_still_read_back_identically() {
    // Rewrite a freshly written dataset's files as format v1 (no
    // checksums) — standing in for a dataset written before this PR — and
    // check it reads back the same particles through every path.
    let storage = good_dataset();
    let reader = DatasetReader::open(&storage).unwrap();
    let v2_ids = {
        let (mut ps, _) = reader.read_all(&storage).unwrap();
        ps.sort_by_key(|p| p.id);
        ps
    };
    let v1_store = MemStorage::new();
    v1_store
        .write_file(
            "spatial_meta.spm",
            &storage.read_file("spatial_meta.spm").unwrap(),
        )
        .unwrap();
    for entry in &reader.meta.entries {
        let name = entry.file_name();
        let (header, particles) = decode_data_file(&storage.read_file(&name).unwrap()).unwrap();
        let mut v1_header =
            DataFileHeader::new_v1(header.particle_count, header.bounds, header.shuffle_seed);
        v1_header.flags = header.flags & !spio_format::data_file::header_flags::CHECKSUMS;
        let bytes = spio_format::data_file::encode_data_file(&v1_header, &particles);
        // v1 layout: header + payload only, reserved tail zeroed.
        assert_eq!(
            bytes.len(),
            HEADER_BYTES + particles.len() * spio_types::PARTICLE_BYTES
        );
        v1_store.write_file(&name, &bytes).unwrap();
    }
    let reader = DatasetReader::open(&v1_store).unwrap();
    let (mut ps, _) = reader.read_all(&v1_store).unwrap();
    ps.sort_by_key(|p| p.id);
    assert_eq!(ps, v2_ids, "v1 readback is particle-identical");
    // LOD prefix reads work on v1 files too (no footer to fetch).
    let mut cursor = reader.lod_box_cursor(&reader.meta.domain, 1);
    let mut n = 0;
    for _ in 0..cursor.num_levels() {
        let (level, _) = cursor.read_next_level(&v1_store).unwrap();
        n += level.len();
    }
    assert_eq!(n, 1200);
    // And validation passes, reporting zero checksummed files.
    let report = spio_tools::validate(&v1_store).unwrap();
    assert!(report.is_ok(), "{:?}", report.problems);
    assert_eq!(report.checksummed_files, 0);
}

#[test]
fn lod_reads_verify_checksums_incrementally() {
    // Corrupt one payload byte of a v2 file; a progressive LOD read must
    // detect it at the chunk boundary without reading the whole file.
    let storage = good_dataset();
    let reader = DatasetReader::open(&storage).unwrap();
    let name = reader.meta.entries[0].file_name();
    let mut bytes = storage.read_file(&name).unwrap();
    let last = bytes.len() - 8; // inside the final payload chunk
    bytes[last] ^= 0x10;
    storage.write_file(&name, &bytes).unwrap();
    let mut cursor = reader.lod_box_cursor(&reader.meta.domain, 1);
    let mut saw_error = false;
    for _ in 0..cursor.num_levels() {
        match cursor.read_next_level(&storage) {
            Ok(_) => {}
            Err(SpioError::Format(m)) => {
                assert!(m.contains("checksum"), "{m}");
                saw_error = true;
                break;
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert!(
        saw_error,
        "corruption must surface before the cursor drains"
    );
}

#[test]
fn torn_metadata_write_leaves_no_readable_garbage() {
    // A torn write persists a prefix under the final name (ChaosStorage
    // models the tear above the backend). The reader must reject the
    // stump with a clean error rather than parse garbage.
    let storage = good_dataset();
    let meta = storage.read_file("spatial_meta.spm").unwrap();
    let chaos = ChaosStorage::new(
        storage.clone(),
        ChaosConfig {
            seed: 3,
            torn_write_rate: 1.0,
            ..ChaosConfig::default()
        },
    );
    assert!(chaos.write_file("spatial_meta.spm", &meta).is_err());
    assert_eq!(chaos.stats().torn_writes, 1);
    match DatasetReader::open(&storage) {
        // Either the tear left a parseable-length-zero stump (Format) or
        // an empty file; both must error, never panic or succeed with
        // truncated entries.
        Err(SpioError::Format(_)) | Err(SpioError::NotFound(_)) => {}
        Ok(r) => {
            // A zero-byte tear may leave the original file untouched only
            // if the tear point was the whole file — not possible with a
            // strict-prefix tear, so an Ok here means the stump happened
            // to still parse; reject that.
            panic!(
                "torn metadata must not open cleanly ({} entries)",
                r.meta.entries.len()
            );
        }
        Err(e) => panic!("unexpected error {e}"),
    }
}

#[test]
fn inverted_ranges_error_at_the_storage_layer() {
    let storage = good_dataset();
    let name = DatasetReader::open(&storage).unwrap().meta.entries[0].file_name();
    assert!(matches!(
        storage.read_range(&name, 100, 10),
        Err(SpioError::Format(_))
    ));
}
