//! The LOD machinery must work for non-default (P, S), not just the
//! paper's P = 32, S = 2 — including S = 1 (uniform level sizes) and
//! larger scale factors.

use spatial_particle_io::prelude::*;
use spio_core::{DatasetReader, LodCursor, MemStorage};

fn write_with_lod(p: u64, s: u64, per_rank: usize) -> MemStorage {
    let storage = MemStorage::new();
    let st = storage.clone();
    let d = DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(2, 2, 1));
    spio_comm::run_threaded_collect(4, move |comm| {
        use spio_comm::Comm;
        let ps = uniform_patch_particles(&d, comm.rank(), per_rank, 31);
        SpatialWriter::new(
            d.clone(),
            WriterConfig::new(PartitionFactor::new(2, 1, 1))
                .with_lod(LodParams::new(p, s).unwrap()),
        )
        .write(&comm, &ps, &st)
        .unwrap();
    })
    .unwrap();
    storage
}

#[test]
fn lod_parameter_sweep_roundtrips() {
    for (p, s) in [(8u64, 2u64), (16, 3), (100, 1), (1, 4), (32, 2)] {
        let storage = write_with_lod(p, s, 600);
        let reader = DatasetReader::open(&storage).unwrap();
        assert_eq!(reader.meta.lod, LodParams::new(p, s).unwrap());
        let total = reader.meta.total_particles;
        assert_eq!(total, 2400);
        // Read everything level by level; sizes must follow the formula.
        let indices: Vec<usize> = (0..reader.meta.entries.len()).collect();
        let mut cursor = LodCursor::new(&reader.meta, &indices, 1);
        let levels = cursor.num_levels();
        let mut seen = 0u64;
        for l in 0..levels {
            let (ps, _) = cursor.read_next_level(&storage).unwrap();
            seen += ps.len() as u64;
            // Cumulative reads track prefix_len within per-file rounding
            // (one extra particle per file at most).
            let expect = reader.meta.lod.prefix_len(1, l, total);
            let slack = reader.meta.entries.len() as u64;
            assert!(
                seen >= expect && seen <= expect + slack,
                "P={p} S={s} level {l}: read {seen}, formula {expect}"
            );
        }
        assert_eq!(seen, total, "P={p} S={s}: all particles exactly once");
    }
}

#[test]
fn different_reader_counts_see_consistent_level_structure() {
    let storage = write_with_lod(32, 2, 512);
    let reader = DatasetReader::open(&storage).unwrap();
    let total = reader.meta.total_particles;
    for n in [1usize, 2, 4, 8] {
        // Levels shrink as reader count grows (each level is n·P·S^l).
        let levels = reader.meta.lod.num_levels(n as u64, total);
        assert!(levels >= 1);
        // Union across the reader group covers the dataset exactly.
        let st = storage.clone();
        let counts = spio_comm::run_threaded_collect(n, move |comm| {
            use spio_comm::Comm;
            let mut lr = LodReader::open(&st, comm.size(), comm.rank()).unwrap();
            let levels = lr.cursor.num_levels();
            let (ps, _) = lr.cursor.read_through_level(&st, levels - 1).unwrap();
            ps.len()
        })
        .unwrap();
        assert_eq!(counts.iter().sum::<usize>() as u64, total, "n={n}");
    }
}
