//! Determinism: the same simulation state written twice with the same
//! configuration must produce byte-identical datasets, regardless of
//! thread scheduling — checkpoints are reproducible artifacts.

use spatial_particle_io::prelude::*;
use spio_core::{LodOrder, MemStorage, WriteMode};

fn write_once(
    factor: (usize, usize, usize),
    mode: WriteMode,
    adaptive: bool,
    order: LodOrder,
) -> MemStorage {
    let storage = MemStorage::new();
    let s = storage.clone();
    let d = DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(4, 2, 1));
    spio_comm::run_threaded_collect(8, move |comm| {
        use spio_comm::Comm;
        // Uneven loads to exercise the adaptive path.
        let count = if comm.rank() < 4 { 400 } else { 100 };
        let ps = uniform_patch_particles(&d, comm.rank(), count, 7);
        SpatialWriter::new(
            d.clone(),
            WriterConfig::new(PartitionFactor::new(factor.0, factor.1, factor.2))
                .with_seed(99)
                .with_mode(mode)
                .with_lod_order(order)
                .adaptive(adaptive),
        )
        .write(&comm, &ps, &s)
        .unwrap();
    })
    .unwrap();
    storage
}

fn assert_identical(a: &MemStorage, b: &MemStorage, label: &str) {
    assert_eq!(a.file_names(), b.file_names(), "{label}: file sets differ");
    for name in a.file_names() {
        assert_eq!(
            a.read_file(&name).unwrap(),
            b.read_file(&name).unwrap(),
            "{label}: bytes of {name} differ"
        );
    }
}

#[test]
fn repeated_writes_are_byte_identical() {
    for (factor, mode, adaptive, order, label) in [
        (
            (2, 2, 1),
            WriteMode::Aligned,
            false,
            LodOrder::Random,
            "aligned",
        ),
        (
            (2, 1, 1),
            WriteMode::Aligned,
            true,
            LodOrder::Random,
            "adaptive",
        ),
        (
            (1, 2, 1),
            WriteMode::General,
            false,
            LodOrder::Random,
            "general",
        ),
        (
            (2, 2, 1),
            WriteMode::Aligned,
            false,
            LodOrder::Stratified,
            "stratified",
        ),
    ] {
        // Run several times: thread interleavings must never leak into the
        // output bytes.
        let reference = write_once(factor, mode, adaptive, order);
        for round in 0..3 {
            let again = write_once(factor, mode, adaptive, order);
            assert_identical(&reference, &again, &format!("{label} round {round}"));
        }
    }
}

#[test]
fn different_seeds_produce_different_layouts_same_content() {
    use spio_core::DatasetReader;
    let d = DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(4, 2, 1));
    let write_with_seed = |seed: u64| {
        let storage = MemStorage::new();
        let s = storage.clone();
        let dd = d.clone();
        spio_comm::run_threaded_collect(8, move |comm| {
            use spio_comm::Comm;
            let ps = uniform_patch_particles(&dd, comm.rank(), 200, 7);
            SpatialWriter::new(
                dd.clone(),
                WriterConfig::new(PartitionFactor::new(2, 2, 1)).with_seed(seed),
            )
            .write(&comm, &ps, &s)
            .unwrap();
        })
        .unwrap();
        storage
    };
    let a = write_with_seed(1);
    let b = write_with_seed(2);
    // Same logical dataset…
    let ra = DatasetReader::open(&a).unwrap();
    let rb = DatasetReader::open(&b).unwrap();
    let mut ids_a: Vec<u64> = ra.read_all(&a).unwrap().0.iter().map(|p| p.id).collect();
    let mut ids_b: Vec<u64> = rb.read_all(&b).unwrap().0.iter().map(|p| p.id).collect();
    ids_a.sort_unstable();
    ids_b.sort_unstable();
    assert_eq!(ids_a, ids_b);
    // …different physical layout (the shuffle seed changed).
    let name = ra.meta.entries[0].file_name();
    assert_ne!(a.read_file(&name).unwrap(), b.read_file(&name).unwrap());
}
