//! The simulator's plans must describe exactly what the real system does:
//! these tests write and read real datasets on the thread runtime and
//! compare byte-for-byte against the planner's predictions — the link that
//! justifies trusting the at-scale simulated figures.

use spatial_particle_io::prelude::*;
use spio_core::grid::AggregationGrid;
use spio_core::plan::{plan_box_read, plan_lod_read, plan_write_on_grid, DatasetShape};
use spio_core::{DatasetReader, LodCursor, MemStorage, ReadStats};

const DIMS: (usize, usize, usize) = (4, 4, 1);
const PER_RANK: usize = 128;

fn decomp() -> DomainDecomposition {
    DomainDecomposition::uniform(
        Aabb3::new([0.0; 3], [1.0; 3]),
        GridDims::new(DIMS.0, DIMS.1, DIMS.2),
    )
}

fn build() -> (MemStorage, DatasetShape) {
    let storage = MemStorage::new();
    let s = storage.clone();
    let d = decomp();
    spio_comm::run_threaded_collect(d.nprocs(), move |comm| {
        use spio_comm::Comm;
        let ps = uniform_patch_particles(&d, comm.rank(), PER_RANK, 55);
        SpatialWriter::new(d.clone(), WriterConfig::new(PartitionFactor::new(2, 2, 1)))
            .write(&comm, &ps, &s)
            .unwrap();
    })
    .unwrap();
    let grid = AggregationGrid::aligned(&decomp(), PartitionFactor::new(2, 2, 1)).unwrap();
    let counts = vec![PER_RANK as u64; decomp().nprocs()];
    let plan = plan_write_on_grid(&grid, &counts, false).unwrap();
    let shape = DatasetShape::from_write(&grid, &plan);
    (storage, shape)
}

#[test]
fn box_read_plan_matches_real_reader_exactly() {
    let (storage, shape) = build();
    for nreaders in [1usize, 2, 4] {
        let plan = plan_box_read(&shape, nreaders, true);
        let s = storage.clone();
        let real: Vec<ReadStats> = spio_comm::run_threaded_collect(nreaders, move |comm| {
            let (_, stats) = spio_core::BoxQueryReader::read(&comm, &s, true).unwrap();
            stats
        })
        .unwrap();
        for (rank, stats) in real.iter().enumerate() {
            assert_eq!(
                plan.per_reader[rank].opens, stats.files_opened,
                "opens, nreaders={nreaders} rank={rank}"
            );
            assert_eq!(
                plan.per_reader[rank].bytes, stats.bytes_read,
                "bytes, nreaders={nreaders} rank={rank}"
            );
        }
    }
}

#[test]
fn no_metadata_plan_matches_real_scan() {
    let (storage, shape) = build();
    let plan = plan_box_read(&shape, 2, false);
    let s = storage.clone();
    let real: Vec<ReadStats> = spio_comm::run_threaded_collect(2, move |comm| {
        let (_, stats) = spio_core::BoxQueryReader::read(&comm, &s, false).unwrap();
        stats
    })
    .unwrap();
    for (rank, stats) in real.iter().enumerate() {
        assert_eq!(plan.per_reader[rank].opens, stats.files_opened);
        assert_eq!(plan.per_reader[rank].bytes, stats.bytes_read);
    }
}

#[test]
fn lod_plan_bytes_match_real_cursor() {
    let (storage, shape) = build();
    let reader = DatasetReader::open(&storage).unwrap();
    let nreaders = 1usize;
    let indices: Vec<usize> = (0..reader.meta.entries.len()).collect();
    let mut cursor = LodCursor::new(&reader.meta, &indices, nreaders);
    // Read through each level with the real cursor and compare cumulative
    // payload bytes against the single-pass plan for that level.
    let mut cumulative = 0u64;
    for level in 0..cursor.num_levels() {
        let (_, stats) = cursor.read_next_level(&storage).unwrap();
        cumulative += stats.bytes_read;
        let plan = plan_lod_read(&shape, nreaders, level);
        assert_eq!(
            plan.total_bytes(),
            cumulative,
            "cumulative LOD bytes at level {level}"
        );
    }
}
