//! The same simulation written with the spatially-aware writer and every
//! baseline must contain identical particle sets; the layouts differ in
//! exactly the ways the paper describes.

use spatial_particle_io::prelude::*;
use spio_baselines::{FppWriter, SharedFileWriter, SubfileWriter};
use spio_core::{DatasetReader, MemStorage};
use spio_types::Particle;

const DIMS: (usize, usize, usize) = (4, 2, 2);
const PER_RANK: usize = 400;

fn decomp() -> DomainDecomposition {
    DomainDecomposition::uniform(
        Aabb3::new([0.0; 3], [1.0; 3]),
        GridDims::new(DIMS.0, DIMS.1, DIMS.2),
    )
}

fn rank_particles(rank: usize) -> Vec<Particle> {
    uniform_patch_particles(&decomp(), rank, PER_RANK, 99)
}

fn sorted_ids(ps: &[Particle]) -> Vec<u64> {
    let mut ids: Vec<u64> = ps.iter().map(|p| p.id).collect();
    ids.sort_unstable();
    ids
}

fn reference_ids() -> Vec<u64> {
    let mut ids: Vec<u64> = (0..decomp().nprocs())
        .flat_map(|r| rank_particles(r).into_iter().map(|p| p.id))
        .collect();
    ids.sort_unstable();
    ids
}

#[test]
fn all_strategies_store_the_same_particles() {
    let n = decomp().nprocs();

    // Spatially-aware.
    let spio = MemStorage::new();
    let s = spio.clone();
    spio_comm::run_threaded_collect(n, move |comm| {
        let d = decomp();
        SpatialWriter::new(d.clone(), WriterConfig::new(PartitionFactor::new(2, 2, 1)))
            .write(&comm, &rank_particles(comm.rank()), &s)
            .unwrap();
    })
    .unwrap();
    let reader = DatasetReader::open(&spio).unwrap();
    let (spio_all, _) = reader.read_all(&spio).unwrap();

    // File per process.
    let fpp = MemStorage::new();
    let s = fpp.clone();
    spio_comm::run_threaded_collect(n, move |comm| {
        FppWriter::new()
            .write(&comm, &rank_particles(comm.rank()), &s)
            .unwrap();
    })
    .unwrap();
    let fpp_all: Vec<Particle> = (0..n)
        .flat_map(|r| FppWriter::read_file(&fpp, r).unwrap())
        .collect();

    // Shared file collective.
    let shared = MemStorage::new();
    let s = shared.clone();
    spio_comm::run_threaded_collect(n, move |comm| {
        SharedFileWriter::new(4)
            .write(&comm, &rank_particles(comm.rank()), &s)
            .unwrap();
    })
    .unwrap();
    let shared_all = SharedFileWriter::read_all(&shared).unwrap();

    // HDF5-style subfiling.
    let sub = MemStorage::new();
    let s = sub.clone();
    spio_comm::run_threaded_collect(n, move |comm| {
        SubfileWriter::new(4)
            .write(&comm, &rank_particles(comm.rank()), &s)
            .unwrap();
    })
    .unwrap();
    let sub_all: Vec<Particle> = (0..n / 4)
        .flat_map(|g| SubfileWriter::read_group(&sub, g, 4).unwrap())
        .collect();

    let expected = reference_ids();
    assert_eq!(sorted_ids(&spio_all), expected);
    assert_eq!(sorted_ids(&fpp_all), expected);
    assert_eq!(sorted_ids(&shared_all), expected);
    assert_eq!(sorted_ids(&sub_all), expected);
}

#[test]
fn box_query_cost_ordering_matches_paper() {
    // For a small region query: the spatial layout opens few files and
    // discards little; FPP and shared-file must scan everything.
    let n = decomp().nprocs();
    let spio = MemStorage::new();
    let s = spio.clone();
    spio_comm::run_threaded_collect(n, move |comm| {
        SpatialWriter::new(decomp(), WriterConfig::new(PartitionFactor::new(2, 2, 1)))
            .write(&comm, &rank_particles(comm.rank()), &s)
            .unwrap();
    })
    .unwrap();
    let fpp = MemStorage::new();
    let s = fpp.clone();
    spio_comm::run_threaded_collect(n, move |comm| {
        FppWriter::new()
            .write(&comm, &rank_particles(comm.rank()), &s)
            .unwrap();
    })
    .unwrap();
    let shared = MemStorage::new();
    let s = shared.clone();
    spio_comm::run_threaded_collect(n, move |comm| {
        SharedFileWriter::new(4)
            .write(&comm, &rank_particles(comm.rank()), &s)
            .unwrap();
    })
    .unwrap();

    // Query one patch-sized corner.
    let q = Aabb3::new([0.0; 3], [0.24, 0.49, 0.49]);
    let reader = DatasetReader::open(&spio).unwrap();
    let (spio_hits, spio_stats) = reader.read_box(&spio, &q).unwrap();
    let (fpp_hits, fpp_stats) = FppWriter::read_box(&fpp, n, &q).unwrap();
    let (shared_hits, shared_stats) = SharedFileWriter::read_box(&shared, &q).unwrap();

    // Same answer everywhere…
    assert_eq!(sorted_ids(&spio_hits), sorted_ids(&fpp_hits));
    assert_eq!(sorted_ids(&spio_hits), sorted_ids(&shared_hits));
    assert!(!spio_hits.is_empty());

    // …but very different costs.
    assert_eq!(spio_stats.files_opened, 1, "spatial layout: one file");
    assert_eq!(fpp_stats.files_opened, n as u64, "FPP scans all rank files");
    assert!(spio_stats.bytes_read < fpp_stats.bytes_read / 3);
    assert!(spio_stats.bytes_read < shared_stats.bytes_read / 3);
    assert!(spio_stats.particles_discarded < fpp_stats.particles_discarded);
}

#[test]
fn subfiling_requires_matching_reader_layout() {
    // §2.1: with HDF5-style subfiling "the number of reader processes and
    // sub-filing factor must match the write configuration" — our
    // spatially-aware format has no such restriction.
    let n = decomp().nprocs();
    let sub = MemStorage::new();
    let s = sub.clone();
    spio_comm::run_threaded_collect(n, move |comm| {
        SubfileWriter::new(8)
            .write(&comm, &rank_particles(comm.rank()), &s)
            .unwrap();
    })
    .unwrap();
    assert!(SubfileWriter::read_group(&sub, 0, 8).is_ok());
    assert!(SubfileWriter::read_group(&sub, 0, 4).is_err());

    // The spatial dataset reads fine with any reader count.
    let spio = MemStorage::new();
    let s = spio.clone();
    spio_comm::run_threaded_collect(n, move |comm| {
        SpatialWriter::new(decomp(), WriterConfig::new(PartitionFactor::new(2, 2, 2)))
            .write(&comm, &rank_particles(comm.rank()), &s)
            .unwrap();
    })
    .unwrap();
    for readers in [1usize, 3, 5, 7] {
        let s = spio.clone();
        let got: usize = spio_comm::run_threaded_collect(readers, move |comm| {
            let (ps, _) = spio_core::BoxQueryReader::read(&comm, &s, true).unwrap();
            ps.len()
        })
        .unwrap()
        .into_iter()
        .sum();
        assert_eq!(got, n * PER_RANK, "readers={readers}");
    }
}
