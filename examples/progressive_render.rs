//! Progressive refinement (the paper's Fig. 9 use case): load a
//! coal-injection-style jet dataset level by level and "render" an ASCII
//! density projection after each refinement step. Even the coarsest levels
//! show the plume's structure — the point of the LOD layout.
//!
//! Run with: `cargo run --release --example progressive_render`

use spatial_particle_io::prelude::*;
use spio_core::DatasetReader;
use spio_types::Particle;
use spio_workloads::{jet_patch_particles, JetSpec};

const RANKS: usize = 16;
const COLS: usize = 64;
const ROWS: usize = 20;

/// Project particles onto the x-y plane and draw an ASCII density map.
fn render(particles: &[Particle], domain: &Aabb3) -> String {
    let mut hist = vec![0u32; COLS * ROWS];
    let e = domain.extent();
    for p in particles {
        let cx = (((p.position[0] - domain.lo[0]) / e[0]) * COLS as f64) as usize;
        let cy = (((p.position[1] - domain.lo[1]) / e[1]) * ROWS as f64) as usize;
        hist[cx.min(COLS - 1) + COLS * cy.min(ROWS - 1)] += 1;
    }
    let max = *hist.iter().max().unwrap_or(&1) as f64;
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let mut out = String::with_capacity((COLS + 1) * ROWS);
    for row in 0..ROWS {
        for col in 0..COLS {
            let v = hist[col + COLS * row] as f64 / max;
            let idx = ((v.powf(0.4)) * (shades.len() - 1) as f64).round() as usize;
            out.push(shades[idx]);
        }
        out.push('\n');
    }
    out
}

fn main() -> Result<(), SpioError> {
    let dir = std::env::temp_dir().join("spio-progressive-render");
    let _ = std::fs::remove_dir_all(&dir);
    let storage = FsStorage::new(&dir);

    // Write a 300k-particle jet with adaptive aggregation.
    let decomp =
        DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(4, 2, 2));
    let spec = JetSpec {
        total_particles: 300_000,
        ..JetSpec::default()
    };
    let d = decomp.clone();
    let s = storage.clone();
    run_threaded(RANKS, move |comm| {
        let particles = jet_patch_particles(&d, comm.rank(), &spec, 5);
        SpatialWriter::new(
            d.clone(),
            WriterConfig::new(PartitionFactor::new(2, 2, 2)).adaptive(true),
        )
        .write(&comm, &particles, &s)
        .unwrap();
    })?;

    // Progressive refinement: one reader appends level after level.
    let reader = DatasetReader::open(&storage)?;
    let mut lod = LodReader::open(&storage, 1, 0)?;
    let mut loaded: Vec<Particle> = Vec::new();
    let levels = lod.cursor.num_levels();
    for level in 0..levels {
        let (more, stats) = lod.cursor.read_next_level(&storage)?;
        loaded.extend(more);
        // Draw only a few snapshots to keep the output short.
        let frac = loaded.len() as f64 / reader.meta.total_particles as f64;
        if [4, 8, levels - 1].contains(&(level + 1)) || level + 1 == levels {
            println!(
                "after level {level}: {} particles loaded ({:.1}%), +{} bytes",
                loaded.len(),
                frac * 100.0,
                stats.bytes_read
            );
            println!("{}", render(&loaded, &reader.meta.domain));
        }
    }
    println!(
        "The plume silhouette is already visible at a few percent of the data; \
         each refinement only appends sequential bytes to what was read before."
    );
    Ok(())
}
