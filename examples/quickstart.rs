//! Quickstart: write a spatially-aware particle dataset with 8 simulated
//! ranks, then query it back by region and by level of detail.
//!
//! Run with: `cargo run --release --example quickstart`

use spatial_particle_io::prelude::*;
use spio_core::DatasetReader;

fn main() -> Result<(), SpioError> {
    // A dataset directory (FsStorage creates it).
    let dir = std::env::temp_dir().join("spio-quickstart");
    let storage = FsStorage::new(&dir);

    // The simulation: 8 processes in a 2×2×2 decomposition of the unit
    // cube, 10,000 particles each.
    let decomp =
        DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(2, 2, 2));
    // Aggregate 2×2×1 patches per file ⇒ 2 data files.
    let config = WriterConfig::new(PartitionFactor::new(2, 2, 1));

    let d = decomp.clone();
    let s = storage.clone();
    run_threaded(8, move |comm| {
        let particles = uniform_patch_particles(&d, comm.rank(), 10_000, 42);
        let writer = SpatialWriter::new(d.clone(), config.clone());
        let stats = writer.write(&comm, &particles, &s).unwrap();
        if comm.rank() == 0 {
            println!(
                "rank 0: sent {} particles, aggregated {}, wrote {} bytes",
                stats.particles_sent, stats.particles_aggregated, stats.bytes_written
            );
        }
    })?;

    // Read side: open the dataset via its spatial metadata.
    let reader = DatasetReader::open(&storage)?;
    println!(
        "dataset: {} particles in {} files over {:?}",
        reader.meta.total_particles,
        reader.meta.entries.len(),
        reader.meta.domain
    );

    // Box query: only the files intersecting the region are opened.
    let query = Aabb3::new([0.0, 0.0, 0.0], [0.4, 0.4, 0.4]);
    let (particles, stats) = reader.read_box(&storage, &query)?;
    println!(
        "box query {:?}: {} particles from {} of {} files ({} bytes read)",
        query,
        particles.len(),
        stats.files_opened,
        reader.meta.entries.len(),
        stats.bytes_read
    );

    // Level-of-detail read: a file prefix is a uniform subsample.
    let mut lod = LodReader::open(&storage, 1, 0)?;
    let (coarse, _) = lod.cursor.read_next_level(&storage)?;
    println!(
        "LOD level 0: {} representative particles (of {})",
        coarse.len(),
        reader.meta.total_particles
    );
    let (next, _) = lod.cursor.read_next_level(&storage)?;
    println!("LOD level 1 appends {} more", next.len());

    println!("dataset files live in {}", dir.display());
    Ok(())
}
