//! Distributed visualization reads (the paper's §5.3 workload): a dataset
//! written by many ranks is read back by a few "rendering" processes, each
//! responsible for one subdomain. Contrasts metadata-guided reads with the
//! spatially unaware full scan.
//!
//! Run with: `cargo run --release --example visualization_reads`

use spatial_particle_io::prelude::*;
use spio_core::{BoxQueryReader, ReadStats};

const WRITERS: usize = 64;
const READERS: usize = 4;
const PARTICLES_PER_WRITER: usize = 8_000;

fn main() -> Result<(), SpioError> {
    let dir = std::env::temp_dir().join("spio-visualization-reads");
    let storage = FsStorage::new(&dir);

    // Write with 64 ranks, aggregating 2x2x2 patches per file ⇒ 8 files.
    let decomp =
        DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(4, 4, 4));
    let d = decomp.clone();
    let s = storage.clone();
    run_threaded(WRITERS, move |comm| {
        let particles = uniform_patch_particles(&d, comm.rank(), PARTICLES_PER_WRITER, 7);
        SpatialWriter::new(d.clone(), WriterConfig::new(PartitionFactor::new(2, 2, 2)))
            .write(&comm, &particles, &s)
            .unwrap();
    })?;
    println!(
        "wrote {} particles from {WRITERS} ranks into 8 spatially-disjoint files\n",
        WRITERS * PARTICLES_PER_WRITER
    );

    // Read with 4 ranks — far fewer than wrote it, as in post-processing.
    for use_metadata in [true, false] {
        let s = storage.clone();
        let per_rank = spio_comm::run_threaded_collect(READERS, move |comm| {
            let (particles, stats) = BoxQueryReader::read(&comm, &s, use_metadata).unwrap();
            (comm.rank(), particles.len(), stats)
        })?;
        let label = if use_metadata {
            "with spatial metadata"
        } else {
            "without spatial metadata (full scan)"
        };
        println!("== {READERS} readers, {label} ==");
        let mut all_stats = Vec::new();
        for (rank, count, stats) in per_rank {
            println!(
                "  reader {rank}: {count} particles, {} files opened, {} bytes, {} decoded-and-discarded",
                stats.files_opened, stats.bytes_read, stats.particles_discarded
            );
            all_stats.push(stats);
        }
        let total = ReadStats::merge(&all_stats);
        println!(
            "  total: {} file opens, {} MB read, {} particles discarded\n",
            total.files_opened,
            total.bytes_read / (1 << 20),
            total.particles_discarded
        );
    }

    println!(
        "The metadata-guided read opens only the files each reader's subdomain \
         intersects; the scan reads every file {READERS} times over and throws \
         most of it away — the Fig. 7 effect at desk scale."
    );
    Ok(())
}
