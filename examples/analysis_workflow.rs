//! An end-to-end analysis session on a spatially-aware dataset: nearest
//! neighbours, radius queries, a density-field stencil, and a progressive
//! statistics estimate from LOD prefixes — the post-processing tasks the
//! paper's layout is designed to accelerate (§3, §4).
//!
//! Run with: `cargo run --release --example analysis_workflow`

use spatial_particle_io::prelude::*;
use spio_analysis::{k_nearest, radius_query, DensityField, ProgressiveEstimator};
use spio_core::{DatasetReader, LodCursor};
use spio_workloads::{cluster_patch_particles, ClusterSpec};

const RANKS: usize = 32;

fn main() -> Result<(), SpioError> {
    let dir = std::env::temp_dir().join("spio-analysis-workflow");
    let _ = std::fs::remove_dir_all(&dir);
    let storage = FsStorage::new(&dir);

    // A clustered (cosmology-like) dataset with adaptive aggregation.
    let decomp =
        DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(4, 4, 2));
    let spec = ClusterSpec {
        clusters: 5,
        sigma_frac: 0.07,
        background: 0.02,
        total_particles: 200_000,
    };
    let d = decomp.clone();
    let s = storage.clone();
    let spec2 = spec.clone();
    run_threaded(RANKS, move |comm| {
        let ps = cluster_patch_particles(&d, comm.rank(), &spec2, 321);
        SpatialWriter::new(
            d.clone(),
            WriterConfig::new(PartitionFactor::new(2, 2, 2)).adaptive(true),
        )
        .write(&comm, &ps, &s)
        .unwrap();
    })?;

    let reader = DatasetReader::open(&storage)?;
    println!(
        "dataset: {} particles in {} files\n",
        reader.meta.total_particles,
        reader.meta.entries.len()
    );

    // 1. Nearest neighbours around a probe point.
    let probe = [0.5, 0.5, 0.5];
    let (knn, stats) = k_nearest(&reader, &storage, probe, 8)?;
    println!(
        "8 nearest neighbours of {probe:?} (opened {} files):",
        stats.files_opened
    );
    for p in &knn {
        println!("  id {:>12}  at {:?}", p.id, p.position);
    }

    // 2. Radius query.
    let (ball, stats) = radius_query(&reader, &storage, probe, 0.08)?;
    println!(
        "\nradius 0.08 around {probe:?}: {} particles, {} of {} files opened",
        ball.len(),
        stats.files_opened,
        reader.meta.entries.len()
    );

    // 3. Density field + Laplacian stencil (edge detector for clusters).
    let field = DensityField::from_dataset(&reader, &storage, [16, 16, 16])?;
    let lap = field.laplacian();
    let peak = field.cells.iter().cloned().fold(0.0f64, f64::max);
    let strongest_edge = lap.cells.iter().cloned().fold(f64::MIN, f64::max);
    println!(
        "\ndensity field 16^3: total {} particles, peak cell {}, strongest Laplacian response {:.1}",
        field.total(),
        peak,
        strongest_edge
    );

    // 4. Progressive mean-density estimation from LOD prefixes.
    let indices: Vec<usize> = (0..reader.meta.entries.len()).collect();
    let cursor = LodCursor::new(&reader.meta, &indices, 1);
    let mut est = ProgressiveEstimator::new(cursor, reader.meta.total_particles);
    println!("\nprogressive mean-density estimate:");
    while let Some(e) = est.refine(&storage)? {
        if e.levels_read <= 3 || e.fraction > 0.99 {
            println!(
                "  after level {:>2} ({:>6.2}% of data): {:.4} ± {:.4}",
                e.levels_read - 1,
                e.fraction * 100.0,
                e.mean_density,
                e.std_error
            );
        }
    }
    println!(
        "\nEvery step above opened only the files (or file prefixes) it needed — \
         the point of the spatially-aware layout."
    );
    Ok(())
}
