//! Checkpointing a moving simulation: write several timesteps of a
//! drifting particle cloud into one series, then track a feature through
//! time with box queries — each timestep is a full spatially-aware dataset
//! under a shared directory.
//!
//! Run with: `cargo run --release --example timeseries_checkpoints`

use spatial_particle_io::prelude::*;
use spio_core::{open_timestep, SeriesManifest, SeriesWriter, WriteMode};
use spio_types::Particle;

const RANKS: usize = 8;
const STEPS: u64 = 5;

fn main() -> Result<(), SpioError> {
    let dir = std::env::temp_dir().join("spio-timeseries");
    let _ = std::fs::remove_dir_all(&dir);
    let storage = FsStorage::new(&dir);

    let decomp =
        DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(2, 2, 2));

    // A blob of particles drifting along +x over time. Particles migrate
    // across patch boundaries between checkpoints, so the writer uses the
    // General (binning) mode.
    for step in 0..STEPS {
        let d = decomp.clone();
        let s = storage.clone();
        run_threaded(RANKS, move |comm| {
            let base = uniform_patch_particles(&d, comm.rank(), 2_000, 77);
            let drift = 0.12 * step as f64;
            let moved: Vec<Particle> = base
                .into_iter()
                .map(|mut p| {
                    // Only the blob near x<0.3 moves; wrap at the far wall.
                    if p.position[0] < 0.3 {
                        p.position[0] = (p.position[0] + drift).min(0.999);
                    }
                    p
                })
                .collect();
            let writer = SeriesWriter::new(SpatialWriter::new(
                d.clone(),
                WriterConfig::new(PartitionFactor::new(2, 2, 1))
                    .with_mode(WriteMode::General)
                    .with_seed(1000 + step),
            ));
            writer.write_timestep(&comm, step, &moved, &s).unwrap();
        })?;
    }

    let manifest = SeriesManifest::load(&storage)?;
    println!("series holds timesteps {:?}\n", manifest.steps);

    // Track the blob: query the band x in [0.3, 0.6) at every step.
    let band = Aabb3::new([0.3, 0.0, 0.0], [0.6, 1.0, 1.0]);
    println!("particles inside x∈[0.3, 0.6) over time:");
    for &step in &manifest.steps {
        let (reader, view) = open_timestep(&storage, step)?;
        let (hits, stats) = reader.read_box(&view, &band)?;
        println!(
            "  t{step}: {:>6} particles ({} of {} files opened)",
            hits.len(),
            stats.files_opened,
            reader.meta.entries.len()
        );
    }
    println!(
        "\nThe blob enters the band and leaves it again — each probe opened only \
         the files intersecting the band at that timestep."
    );
    Ok(())
}
