//! Project an I/O configuration to leadership scale with the `hpcsim`
//! machine models: how would this aggregation factor behave at 262,144
//! ranks on Mira or Theta? (This is how the repository regenerates the
//! paper's Fig. 5/6 without a supercomputer.)
//!
//! Run with: `cargo run --release --example scale_projection [procs]`

use hpcsim::{simulate_fpp_write, simulate_spio_write};
use spio_core::plan::plan_write;
use spio_types::{Aabb3, DomainDecomposition, PartitionFactor, PARTICLE_BYTES};

fn main() {
    let procs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(65_536);
    let per_core: u64 = 32 * 1024;
    let decomp = DomainDecomposition::for_procs(Aabb3::new([0.0; 3], [1.0; 3]), procs);
    let counts = vec![per_core; procs];

    println!(
        "projecting a {procs}-rank job, {per_core} particles/core \
         ({} GB per timestep)\n",
        procs as u64 * per_core * PARTICLE_BYTES as u64 / (1 << 30)
    );

    for machine in [hpcsim::mira(), hpcsim::theta()] {
        println!("== {} ==", machine.name);
        println!(
            "{:>10} {:>8} {:>10} {:>10} {:>10} {:>10} {:>12}",
            "config", "files", "setup(s)", "agg(s)", "shuffle(s)", "io(s)", "GB/s"
        );
        for factor in [
            PartitionFactor::new(1, 1, 1),
            PartitionFactor::new(1, 2, 2),
            PartitionFactor::new(2, 2, 2),
            PartitionFactor::new(2, 4, 4),
        ] {
            let plan = plan_write(&decomp, factor, &counts, false).unwrap();
            let b = simulate_spio_write(&plan, &machine);
            println!(
                "{:>10} {:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>12.2}",
                factor.to_string(),
                plan.partition_count,
                b.setup,
                b.aggregation,
                b.shuffle,
                b.create + b.data_io,
                b.throughput() / 1e9
            );
        }
        let fpp = simulate_fpp_write(procs, per_core * PARTICLE_BYTES as u64, &machine);
        println!(
            "{:>10} {:>8} {:>10} {:>10} {:>10} {:>10.3} {:>12.2}\n",
            "IOR-FPP",
            procs,
            "-",
            "-",
            "-",
            fpp.create + fpp.data_io,
            fpp.throughput() / 1e9
        );
    }
    println!(
        "Pick the factor with the best projected throughput for your machine — \
         the paper's conclusion is that this knob is machine- and workload-\
         dependent, which is why it is exposed to users."
    );
}
