//! Adaptive aggregation (§6) on a non-uniform workload: particles occupy
//! only a quarter of the domain. The static grid wastes aggregators (and
//! files) on empty space; the adaptive grid covers just the occupied
//! region.
//!
//! Run with: `cargo run --release --example adaptive_io`

use spatial_particle_io::prelude::*;
use spio_core::DatasetReader;
use spio_workloads::{coverage_patch_particles, CoverageSpec};

const RANKS: usize = 64;

fn main() -> Result<(), SpioError> {
    let decomp =
        DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(4, 4, 4));
    // Particles live only in the x < 0.25 slab, 200k total.
    let spec = CoverageSpec::new(0.25, 200_000);

    for adaptive in [false, true] {
        let dir = std::env::temp_dir().join(format!("spio-adaptive-{adaptive}"));
        let _ = std::fs::remove_dir_all(&dir);
        let storage = FsStorage::new(&dir);
        let d = decomp.clone();
        let s = storage.clone();
        let spec2 = spec.clone();
        run_threaded(RANKS, move |comm| {
            let particles = coverage_patch_particles(&d, comm.rank(), &spec2, 99);
            let writer = SpatialWriter::new(
                d.clone(),
                WriterConfig::new(PartitionFactor::new(2, 2, 2)).adaptive(adaptive),
            );
            writer.write(&comm, &particles, &s).unwrap();
        })?;

        let reader = DatasetReader::open(&storage)?;
        let empty = reader
            .meta
            .entries
            .iter()
            .filter(|e| e.particle_count == 0)
            .count();
        let label = if adaptive { "adaptive" } else { "static" };
        println!(
            "{label:>8} grid: {} data files ({} empty), {} particles total",
            reader.meta.entries.len(),
            empty,
            reader.meta.total_particles
        );
        for e in reader.meta.entries.iter().take(4) {
            println!(
                "          {} — {} particles, box {:?}..{:?}",
                e.file_name(),
                e.particle_count,
                e.bounds.lo,
                e.bounds.hi
            );
        }

        // Both layouts answer the same query, but the adaptive layout
        // wrote no useless files.
        let query = Aabb3::new([0.0, 0.0, 0.0], [0.2, 0.5, 0.5]);
        let (particles, stats) = reader.read_box(&storage, &query)?;
        println!(
            "          query -> {} particles from {} files\n",
            particles.len(),
            stats.files_opened
        );
    }

    println!(
        "The static grid imposed 8 partitions over the whole cube (Fig. 10e); \
         the adaptive grid covered only the occupied band (Fig. 10f), writing \
         fewer, denser files with aggregators still drawn from all ranks."
    );
    Ok(())
}
