//! # spatial-particle-io
//!
//! Umbrella crate for the reproduction of *Spatially-aware Parallel I/O for
//! Particle Data* (Kumar, Petruzza, Usher, Pascucci — ICPP 2019).
//!
//! This crate re-exports the workspace members under stable module names and
//! hosts the runnable examples (`examples/`) and cross-crate integration
//! tests (`tests/`). See `DESIGN.md` at the repository root for the system
//! inventory and `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! ## Quick start
//!
//! ```no_run
//! use spatial_particle_io::prelude::*;
//!
//! // Run a 8-rank simulated job that writes a spatially-aware dataset.
//! let dir = std::env::temp_dir().join("spio-quickstart");
//! let decomp = DomainDecomposition::uniform(
//!     Aabb3::new([0.0; 3], [1.0; 3]),
//!     GridDims::new(2, 2, 2),
//! );
//! let config = WriterConfig::new(PartitionFactor::new(2, 2, 2));
//! spio_comm::run_threaded(8, move |comm| {
//!     let particles = uniform_patch_particles(&decomp, comm.rank(), 1000, 42);
//!     let writer = SpatialWriter::new(decomp.clone(), config.clone());
//!     writer
//!         .write(&comm, &particles, &FsStorage::new(&dir))
//!         .unwrap();
//! })
//! .unwrap();
//! ```

pub use hpcsim;
pub use spio_analysis as analysis;
pub use spio_baselines as baselines;
pub use spio_comm as comm;
pub use spio_core as core;
pub use spio_format as format;
pub use spio_tools as tools;
pub use spio_types as types;
pub use spio_workloads as workloads;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use spio_comm::{run_threaded, Comm, ThreadComm};
    pub use spio_core::{
        AdaptiveGrid, AggregationGrid, BoxQueryReader, ChaosConfig, ChaosStorage, FsStorage,
        LodReader, RetryPolicy, RetryStorage, SpatialWriter, Storage, WriterConfig,
    };
    pub use spio_format::{LodParams, SpatialMetadata};
    pub use spio_types::{
        Aabb3, DomainDecomposition, GridDims, Particle, PartitionFactor, Rank, SpioError,
    };
    pub use spio_workloads::uniform_patch_particles;
}
