#!/usr/bin/env bash
# Full local CI gate: build, tests, formatting, lints.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --workspace --release
cargo test -q --workspace
cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: all checks passed"
