#!/usr/bin/env bash
# Full local CI gate: build, tests, formatting, lints.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --workspace --release
cargo test -q --workspace
# The resilience suite is the gate for storage-fault behaviour; run it
# explicitly so a filtered or partial test invocation cannot skip it.
cargo test -q --test failure_injection
cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: all checks passed"
