#!/usr/bin/env bash
# Full local CI gate: build, tests, formatting, lints.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --workspace --release
cargo test -q --workspace
# The resilience suite is the gate for storage-fault behaviour; run it
# explicitly so a filtered or partial test invocation cannot skip it.
cargo test -q --test failure_injection
cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings

# Observability pipeline: run the traced fig6 workload, render its report,
# export + schema-check the Chrome trace, and gate against the committed
# perf baseline (see docs/OBSERVABILITY.md). Small workload — this is a
# smoke test of the artifact pipeline, not a perf measurement, so only the
# baseline comparison (on identical settings) is load-bearing.
OBS_DIR=$(mktemp -d)
trap 'rm -rf "$OBS_DIR"' EXIT
SPIO=target/release/spio
"$SPIO" bench --procs 8 --per-rank 2000 --runs 2 \
  --write "$OBS_DIR/bench.json" \
  --trace-out "$OBS_DIR/trace.json" \
  --report-out "$OBS_DIR/report.json" \
  --metrics-out "$OBS_DIR/metrics.jsonl"
"$SPIO" report "$OBS_DIR/report.json" > /dev/null
"$SPIO" trace "$OBS_DIR/trace.json" > /dev/null
"$SPIO" trace "$OBS_DIR/trace.json" --chrome "$OBS_DIR/chrome.json"
"$SPIO" check-trace "$OBS_DIR/chrome.json"
"$SPIO" bench --procs 8 --per-rank 2000 --runs 2 --baseline "$OBS_DIR/bench.json"
echo "ci: observability pipeline OK"

# Read-serving pipeline (see docs/SERVING.md): generate an on-disk dataset,
# smoke the LOD-answering query path and the serve-bench replay, check the
# serving metrics surface in the rendered report, then run the read bench
# and gate cold/warm latency with the same >20% + 20ms rule as the write
# gate. Like above, the baseline comparison runs on identical settings
# within this invocation, so it checks the gate machinery, not the machine.
"$SPIO" gen "$OBS_DIR/ds" 8 2000 > /dev/null
"$SPIO" query "$OBS_DIR/ds" 0 0 0 0.5 0.5 0.5 --lod 1 > /dev/null
"$SPIO" serve-bench "$OBS_DIR/ds" --clients 2 --queries 8 \
  --report-out "$OBS_DIR/serve_report.json" > /dev/null
"$SPIO" report "$OBS_DIR/serve_report.json" | grep -q "serve.query"
"$SPIO" report "$OBS_DIR/serve_report.json" | grep -q "serve.cache.hits"
"$SPIO" bench --read --per-rank 2000 --clients 2 --queries 8 --runs 2 \
  --write "$OBS_DIR/read.json" \
  --report-out "$OBS_DIR/read_report.json" \
  --metrics-out "$OBS_DIR/read_metrics.jsonl"
"$SPIO" report "$OBS_DIR/read_report.json" > /dev/null
"$SPIO" bench --read --per-rank 2000 --clients 2 --queries 8 --runs 2 \
  --baseline "$OBS_DIR/read.json"
echo "ci: read-serving pipeline OK"

# Verification gates (see docs/VERIFICATION.md):
# 1. `spio lint` — source-tree rule scan against the committed lint.ratchet
#    baseline; counts may only decrease (exit 1 on any increase).
# 2. The schedule-explorer suite — every collective schedule-invariant
#    across seeded interleavings, every known-bad comm fixture diagnosed.
# 3. `spio verify-comm` — the same checks through the CLI surface, wider
#    seed sweep.
"$SPIO" lint
cargo test -q -p spio-verify --test schedule_explorer
"$SPIO" verify-comm --procs 4 --seeds 16 > /dev/null
echo "ci: verification gates OK"

# Optional ThreadSanitizer pass over the comm runtime. TSan needs a nightly
# toolchain with -Zsanitizer support; skip gracefully when absent so the
# gate stays runnable on stable.
if rustc --version | grep -q nightly && \
   rustc -Zhelp 2>/dev/null | grep -q "sanitizer"; then
  RUSTFLAGS="-Zsanitizer=thread" \
    cargo test -q -p spio-comm --target "$(rustc -vV | sed -n 's/host: //p')" \
    || { echo "ci: tsan FAILED"; exit 1; }
  echo "ci: tsan OK"
else
  echo "ci: tsan skipped (stable toolchain, -Zsanitizer unavailable)"
fi

echo "ci: all checks passed"
