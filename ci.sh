#!/usr/bin/env bash
# Full local CI gate: build, tests, formatting, lints.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --workspace --release
cargo test -q --workspace
# The resilience suite is the gate for storage-fault behaviour; run it
# explicitly so a filtered or partial test invocation cannot skip it.
cargo test -q --test failure_injection
cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings

# Observability pipeline: run the traced fig6 workload, render its report,
# export + schema-check the Chrome trace, and gate against the committed
# perf baseline (see docs/OBSERVABILITY.md). Small workload — this is a
# smoke test of the artifact pipeline, not a perf measurement, so only the
# baseline comparison (on identical settings) is load-bearing.
OBS_DIR=$(mktemp -d)
trap 'rm -rf "$OBS_DIR"' EXIT
SPIO=target/release/spio
"$SPIO" bench --procs 8 --per-rank 2000 --runs 2 \
  --write "$OBS_DIR/bench.json" \
  --trace-out "$OBS_DIR/trace.json" \
  --report-out "$OBS_DIR/report.json" \
  --metrics-out "$OBS_DIR/metrics.jsonl"
"$SPIO" report "$OBS_DIR/report.json" > /dev/null
"$SPIO" trace "$OBS_DIR/trace.json" > /dev/null
"$SPIO" trace "$OBS_DIR/trace.json" --chrome "$OBS_DIR/chrome.json"
"$SPIO" check-trace "$OBS_DIR/chrome.json"
"$SPIO" bench --procs 8 --per-rank 2000 --runs 2 --baseline "$OBS_DIR/bench.json"
echo "ci: observability pipeline OK"

echo "ci: all checks passed"
