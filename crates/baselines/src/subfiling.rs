//! HDF5-subfiling-style baseline (§2.1, Byna et al.).
//!
//! Contiguous rank groups of size `subfile_factor` each write one subfile
//! via rank-order two-phase aggregation (the group's first rank
//! aggregates). Subfiles hold rank-order segments, not spatial regions, and
//! — mirroring the restriction the paper quotes — a reader must use the
//! same subfile factor as the writer: the manifest records the factor and
//! [`SubfileWriter::read_group`] refuses a mismatched layout.

use spio_comm::{Comm, Tag};
use spio_core::{Storage, WriteStats};
use spio_types::particle::{decode_particles, encode_particles};
use spio_types::{Particle, SpioError, PARTICLE_BYTES};
use std::time::Instant;

const TAG_COUNT: Tag = 21;
const TAG_DATA: Tag = 22;
const MANIFEST: &str = "subfiles.manifest";
const MAGIC: [u8; 8] = *b"SPIOSUB1";

/// Name of subfile `g`.
pub fn subfile_name(group: usize) -> String {
    format!("subfile_{group}.dat")
}

/// The subfiling writer.
#[derive(Debug, Clone)]
pub struct SubfileWriter {
    /// Ranks per subfile.
    pub subfile_factor: usize,
}

impl SubfileWriter {
    pub fn new(subfile_factor: usize) -> Self {
        assert!(subfile_factor > 0);
        SubfileWriter { subfile_factor }
    }

    /// Collective write: one subfile per contiguous rank group, plus a
    /// manifest (rank 0) recording the factor and per-rank counts.
    pub fn write<C: Comm, S: Storage>(
        &self,
        comm: &C,
        particles: &[Particle],
        storage: &S,
    ) -> Result<WriteStats, SpioError> {
        let mut stats = WriteStats {
            particles_sent: particles.len() as u64,
            ..Default::default()
        };
        let n = comm.size();
        let me = comm.rank();
        let f = self.subfile_factor.min(n);
        let group_first = (me / f) * f;

        let t0 = Instant::now();
        let mut sends = Vec::new();
        sends.push(comm.isend(
            group_first,
            TAG_COUNT,
            (particles.len() as u64).to_le_bytes().to_vec(),
        ));
        if !particles.is_empty() {
            sends.push(comm.isend(group_first, TAG_DATA, encode_particles(particles)));
        }
        let mut my_counts: Vec<u64> = Vec::new();
        let mut gathered = Vec::new();
        if me == group_first {
            let members: Vec<usize> = (me..(me + f).min(n)).collect();
            for &m in &members {
                let b = comm.recv(m, TAG_COUNT)?;
                my_counts.push(u64::from_le_bytes(
                    b.as_slice()
                        .try_into()
                        .map_err(|_| SpioError::Comm("bad count message".into()))?,
                ));
            }
            for (i, &m) in members.iter().enumerate() {
                if my_counts[i] > 0 {
                    gathered.extend(comm.recv(m, TAG_DATA)?);
                }
            }
            stats.particles_aggregated = (gathered.len() / PARTICLE_BYTES) as u64;
        }
        for s in sends {
            s.wait();
        }
        stats.aggregation_time = t0.elapsed();

        // Manifest: rank 0 gathers every rank's count plus the factor.
        let all_counts = comm.allgather(&(particles.len() as u64).to_le_bytes());
        if me == 0 {
            let mut bytes = Vec::with_capacity(24 + 8 * n);
            bytes.extend_from_slice(&MAGIC);
            bytes.extend_from_slice(&(f as u64).to_le_bytes());
            bytes.extend_from_slice(&(n as u64).to_le_bytes());
            for b in &all_counts {
                bytes.extend_from_slice(b);
            }
            storage.write_file(MANIFEST, &bytes)?;
        }

        let t0 = Instant::now();
        if me == group_first {
            storage.write_file(&subfile_name(me / f), &gathered)?;
            stats.bytes_written = gathered.len() as u64;
            stats.files_written = 1;
        }
        stats.file_io_time = t0.elapsed();
        Ok(stats)
    }

    /// Parse the manifest: `(subfile_factor, per-rank counts)`.
    pub fn read_manifest<S: Storage>(storage: &S) -> Result<(usize, Vec<u64>), SpioError> {
        let bytes = storage.read_file(MANIFEST)?;
        if bytes.len() < 24 || bytes[..8] != MAGIC {
            return Err(SpioError::Format("bad subfile manifest".into()));
        }
        let f = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        let n = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
        if bytes.len() != 24 + 8 * n {
            return Err(SpioError::Format("manifest length mismatch".into()));
        }
        let counts = (0..n)
            .map(|i| u64::from_le_bytes(bytes[24 + i * 8..32 + i * 8].try_into().unwrap()))
            .collect();
        Ok((f, counts))
    }

    /// Read subfile `group` assuming the reader uses `expected_factor`
    /// ranks per subfile. Errors if the writer used a different factor —
    /// the §2.1 restriction ("the number of reader processes and sub-filing
    /// factor must match the write configuration").
    pub fn read_group<S: Storage>(
        storage: &S,
        group: usize,
        expected_factor: usize,
    ) -> Result<Vec<Particle>, SpioError> {
        let (f, counts) = Self::read_manifest(storage)?;
        if f != expected_factor {
            return Err(SpioError::Config(format!(
                "subfile factor mismatch: dataset was written with {f} ranks per subfile, \
                 reader assumes {expected_factor}"
            )));
        }
        let bytes = storage.read_file(&subfile_name(group))?;
        let expected: u64 =
            counts.iter().skip(group * f).take(f).sum::<u64>() * PARTICLE_BYTES as u64;
        if bytes.len() as u64 != expected {
            return Err(SpioError::Format("subfile length mismatch".into()));
        }
        Ok(decode_particles(&bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spio_comm::run_threaded_collect;
    use spio_core::MemStorage;

    fn particles_for(rank: usize, n: usize) -> Vec<Particle> {
        (0..n)
            .map(|i| {
                Particle::synthetic(
                    [(rank as f64 + 0.5) / 8.0, 0.5, 0.5],
                    ((rank as u64) << 32) | i as u64,
                )
            })
            .collect()
    }

    fn write(nprocs: usize, factor: usize, per_rank: usize) -> MemStorage {
        let storage = MemStorage::new();
        let s2 = storage.clone();
        run_threaded_collect(nprocs, move |comm| {
            SubfileWriter::new(factor)
                .write(&comm, &particles_for(comm.rank(), per_rank), &s2)
                .unwrap();
        })
        .unwrap();
        storage
    }

    #[test]
    fn subfile_count_follows_factor() {
        let storage = write(8, 4, 10);
        let names = storage.file_names();
        assert!(names.contains(&"subfile_0.dat".to_string()));
        assert!(names.contains(&"subfile_1.dat".to_string()));
        assert_eq!(names.len(), 3, "2 subfiles + manifest");
    }

    #[test]
    fn groups_hold_rank_order_segments() {
        let storage = write(8, 4, 10);
        let g1 = SubfileWriter::read_group(&storage, 1, 4).unwrap();
        assert_eq!(g1.len(), 40);
        let ranks: Vec<u64> = g1.iter().map(|p| p.id >> 32).collect();
        assert!(ranks.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(ranks[0], 4);
        assert_eq!(*ranks.last().unwrap(), 7);
    }

    #[test]
    fn mismatched_reader_factor_is_refused() {
        let storage = write(8, 4, 10);
        let err = SubfileWriter::read_group(&storage, 0, 2).unwrap_err();
        assert!(err.to_string().contains("factor mismatch"), "{err}");
    }

    #[test]
    fn manifest_roundtrip() {
        let storage = write(8, 2, 3);
        let (f, counts) = SubfileWriter::read_manifest(&storage).unwrap();
        assert_eq!(f, 2);
        assert_eq!(counts, vec![3; 8]);
    }
}
