//! File-per-process baseline (IOR-FPP style).
//!
//! Every rank writes its particles, unordered and without any spatial
//! metadata, to `fpp_<rank>.dat`. This is the fastest write pattern on
//! filesystems that tolerate many files (Theta's Lustre at moderate scale)
//! and the worst read pattern: a box query must open *every* file and scan
//! all particles.

use spio_comm::Comm;
use spio_core::{ReadStats, Storage, WriteStats};
use spio_types::particle::{decode_particles, encode_particles};
use spio_types::{Aabb3, Particle, SpioError};
use std::time::Instant;

/// Name of rank `r`'s file.
pub fn fpp_file_name(rank: usize) -> String {
    format!("fpp_{rank}.dat")
}

/// The file-per-process writer. A thin header (count) precedes the raw
/// particle records.
#[derive(Debug, Clone, Default)]
pub struct FppWriter;

const FPP_MAGIC: [u8; 8] = *b"SPIOFPP1";

impl FppWriter {
    pub fn new() -> Self {
        FppWriter
    }

    /// Collective write; each rank writes exactly one file.
    pub fn write<C: Comm, S: Storage>(
        &self,
        comm: &C,
        particles: &[Particle],
        storage: &S,
    ) -> Result<WriteStats, SpioError> {
        let t0 = Instant::now();
        let mut bytes = Vec::with_capacity(16 + particles.len() * spio_types::PARTICLE_BYTES);
        bytes.extend_from_slice(&FPP_MAGIC);
        bytes.extend_from_slice(&(particles.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&encode_particles(particles));
        storage.write_file(&fpp_file_name(comm.rank()), &bytes)?;
        Ok(WriteStats {
            particles_sent: particles.len() as u64,
            particles_aggregated: particles.len() as u64,
            bytes_written: bytes.len() as u64,
            files_written: 1,
            file_io_time: t0.elapsed(),
            ..Default::default()
        })
    }

    /// Read one rank file back.
    pub fn read_file<S: Storage>(storage: &S, rank: usize) -> Result<Vec<Particle>, SpioError> {
        let bytes = storage.read_file(&fpp_file_name(rank))?;
        if bytes.len() < 16 || bytes[..8] != FPP_MAGIC {
            return Err(SpioError::Format("bad fpp file".into()));
        }
        let count = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let payload = &bytes[16..];
        let expected = count.checked_mul(spio_types::PARTICLE_BYTES as u64);
        if expected != Some(payload.len() as u64) {
            return Err(SpioError::Format("fpp payload length mismatch".into()));
        }
        Ok(decode_particles(payload))
    }

    /// Box query against an FPP dataset written by `nwriters` ranks: with
    /// no spatial metadata, every file must be opened and scanned.
    pub fn read_box<S: Storage>(
        storage: &S,
        nwriters: usize,
        query: &Aabb3,
    ) -> Result<(Vec<Particle>, ReadStats), SpioError> {
        let t0 = Instant::now();
        let mut stats = ReadStats::default();
        let mut out = Vec::new();
        for rank in 0..nwriters {
            let particles = Self::read_file(storage, rank)?;
            stats.files_opened += 1;
            stats.bytes_read += 16 + (particles.len() * spio_types::PARTICLE_BYTES) as u64;
            let decoded = particles.len();
            let before = out.len();
            out.extend(particles.into_iter().filter(|p| query.contains(p.position)));
            stats.particles_discarded += (decoded - (out.len() - before)) as u64;
        }
        stats.particles_read = out.len() as u64;
        stats.time = t0.elapsed();
        Ok((out, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spio_comm::run_threaded_collect;
    use spio_core::MemStorage;

    fn particles_for(rank: usize, n: usize) -> Vec<Particle> {
        (0..n)
            .map(|i| {
                Particle::synthetic(
                    [(rank as f64 + (i as f64 + 0.5) / n as f64) / 4.0, 0.5, 0.5],
                    ((rank as u64) << 32) | i as u64,
                )
            })
            .collect()
    }

    #[test]
    fn writes_one_file_per_rank() {
        let storage = MemStorage::new();
        let s2 = storage.clone();
        run_threaded_collect(4, move |comm| {
            FppWriter::new()
                .write(&comm, &particles_for(comm.rank(), 10), &s2)
                .unwrap();
        })
        .unwrap();
        assert_eq!(storage.file_names().len(), 4);
        for r in 0..4 {
            let ps = FppWriter::read_file(&storage, r).unwrap();
            assert_eq!(ps, particles_for(r, 10));
        }
    }

    #[test]
    fn box_query_scans_every_file() {
        let storage = MemStorage::new();
        let s2 = storage.clone();
        run_threaded_collect(4, move |comm| {
            FppWriter::new()
                .write(&comm, &particles_for(comm.rank(), 25), &s2)
                .unwrap();
        })
        .unwrap();
        // Query covering only rank 1's x-range.
        let q = Aabb3::new([0.25, 0.0, 0.0], [0.5, 1.0, 1.0]);
        let (ps, stats) = FppWriter::read_box(&storage, 4, &q).unwrap();
        assert_eq!(ps.len(), 25);
        assert!(ps.iter().all(|p| q.contains(p.position)));
        assert_eq!(stats.files_opened, 4, "no metadata ⇒ scan everything");
    }

    #[test]
    fn corrupt_file_is_rejected() {
        let storage = MemStorage::new();
        storage.write_file("fpp_0.dat", &[0u8; 10]).unwrap();
        assert!(FppWriter::read_file(&storage, 0).is_err());
        storage
            .write_file("fpp_1.dat", b"SPIOFPP1........")
            .unwrap();
        assert!(FppWriter::read_file(&storage, 1).is_err());
    }
}
