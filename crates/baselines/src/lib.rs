//! # spio-baselines
//!
//! Runnable implementations of the baseline I/O strategies the paper
//! compares against (§2, §5.2):
//!
//! * [`fpp`] — file-per-process: every rank writes its particles to its own
//!   file, IOR-FPP style. Maximum write concurrency, but reads must open
//!   one file per writer rank and there is no spatial organization.
//! * [`shared`] — single-shared-file collective I/O: rank-order two-phase
//!   aggregation (spatially *unaware* — aggregation groups are contiguous in
//!   rank space, not in the domain) writing disjoint segments of one file,
//!   IOR-collective / plain PHDF5 style.
//! * [`subfiling`] — HDF5-subfiling style: contiguous rank groups share a
//!   subfile, in rank (not spatial) order. Mirrors the restriction Byna et
//!   al. report: the reader layout must match the writer's subfile factor.
//!
//! All three share the same [`spio_comm::Comm`]/[`spio_core::Storage`]
//! substrate as the spatially-aware writer, so integration tests can
//! compare layouts, byte counts and read behaviour directly.

pub mod fpp;
pub mod shared;
pub mod subfiling;

pub use fpp::FppWriter;
pub use shared::SharedFileWriter;
pub use subfiling::SubfileWriter;
