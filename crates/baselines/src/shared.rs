//! Single-shared-file collective baseline (IOR-collective / plain PHDF5
//! style).
//!
//! A classic ROMIO-like two-phase write: contiguous *rank-order* groups of
//! processes funnel their data to one aggregator each, and every aggregator
//! writes its group's segment into one shared file at the group's byte
//! offset. The aggregation is spatially unaware — Fig. 1's "grouped by
//! color" middle panel — so the file interleaves distant regions of the
//! domain and reads for a spatial region must scan broadly.

use spio_comm::{Comm, Tag};
use spio_core::{ReadStats, Storage, WriteStats};
use spio_types::particle::{decode_particles, encode_particles};
use spio_types::{Aabb3, Particle, SpioError, PARTICLE_BYTES};
use std::time::Instant;

/// Name of the shared data file.
pub const SHARED_FILE_NAME: &str = "shared.dat";

const TAG_COUNT: Tag = 11;
const TAG_DATA: Tag = 12;

/// The shared-file collective writer.
#[derive(Debug, Clone)]
pub struct SharedFileWriter {
    /// Number of aggregator ranks (ROMIO's `cb_nodes`).
    pub naggs: usize,
}

impl SharedFileWriter {
    pub fn new(naggs: usize) -> Self {
        assert!(naggs > 0, "need at least one aggregator");
        SharedFileWriter { naggs }
    }

    /// Collective write of all ranks' particles into one shared file.
    ///
    /// Layout: a 16-byte header (magic + total count), then every rank's
    /// particles concatenated in rank order. Offsets are computed from an
    /// all-gather of per-rank counts — the collective "file view" setup.
    pub fn write<C: Comm, S: Storage>(
        &self,
        comm: &C,
        particles: &[Particle],
        storage: &S,
    ) -> Result<WriteStats, SpioError> {
        let mut stats = WriteStats {
            particles_sent: particles.len() as u64,
            ..Default::default()
        };
        let n = comm.size();
        let me = comm.rank();
        let naggs = self.naggs.min(n);
        let group = n.div_ceil(naggs);

        // Offset setup: everyone learns everyone's count.
        let t0 = Instant::now();
        let counts_bytes = comm.allgather(&(particles.len() as u64).to_le_bytes());
        let counts: Vec<u64> = counts_bytes
            .iter()
            .map(|b| {
                b.as_slice()
                    .try_into()
                    .map(u64::from_le_bytes)
                    .map_err(|_| SpioError::Comm("bad count".into()))
            })
            .collect::<Result<_, _>>()?;
        let offsets: Vec<u64> = counts
            .iter()
            .scan(0u64, |acc, &c| {
                let o = *acc;
                *acc += c;
                Some(o)
            })
            .collect();
        let total: u64 = counts.iter().sum();
        stats.setup_time = t0.elapsed();

        // Two-phase exchange: send my buffer to my rank-order aggregator.
        let t0 = Instant::now();
        let my_agg = (me / group) * group;
        let mut sends = Vec::new();
        sends.push(comm.isend(
            my_agg,
            TAG_COUNT,
            (particles.len() as u64).to_le_bytes().to_vec(),
        ));
        if !particles.is_empty() {
            sends.push(comm.isend(my_agg, TAG_DATA, encode_particles(particles)));
        }

        let i_am_agg = me.is_multiple_of(group);
        let mut gathered: Vec<u8> = Vec::new();
        if i_am_agg {
            let members: Vec<usize> = (me..(me + group).min(n)).collect();
            let mut member_counts = Vec::with_capacity(members.len());
            for &m in &members {
                let b = comm.recv(m, TAG_COUNT)?;
                let c = u64::from_le_bytes(
                    b.as_slice()
                        .try_into()
                        .map_err(|_| SpioError::Comm("bad count message".into()))?,
                );
                member_counts.push((m, c));
            }
            for &(m, c) in &member_counts {
                if c > 0 {
                    gathered.extend(comm.recv(m, TAG_DATA)?);
                }
            }
            stats.particles_aggregated = (gathered.len() / PARTICLE_BYTES) as u64;
        }
        for s in sends {
            s.wait();
        }
        stats.aggregation_time = t0.elapsed();

        // File I/O: rank 0 writes the header; every aggregator writes its
        // group's segment at the group offset.
        let t0 = Instant::now();
        if me == 0 {
            let mut header = Vec::with_capacity(16);
            header.extend_from_slice(b"SPIOSHR1");
            header.extend_from_slice(&total.to_le_bytes());
            storage.write_range(SHARED_FILE_NAME, 0, &header)?;
            stats.files_written = 1;
        }
        if i_am_agg && !gathered.is_empty() {
            let offset = 16 + offsets[me] * PARTICLE_BYTES as u64;
            storage.write_range(SHARED_FILE_NAME, offset, &gathered)?;
            stats.bytes_written = gathered.len() as u64;
        }
        stats.file_io_time = t0.elapsed();
        Ok(stats)
    }

    /// Read the entire shared file back (rank-order particles).
    pub fn read_all<S: Storage>(storage: &S) -> Result<Vec<Particle>, SpioError> {
        let bytes = storage.read_file(SHARED_FILE_NAME)?;
        if bytes.len() < 16 || bytes[..8] != *b"SPIOSHR1" {
            return Err(SpioError::Format("bad shared file".into()));
        }
        let total = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let payload = &bytes[16..];
        if total.checked_mul(PARTICLE_BYTES as u64) != Some(payload.len() as u64) {
            return Err(SpioError::Format("shared payload length mismatch".into()));
        }
        Ok(decode_particles(payload))
    }

    /// Box query: the shared file has no spatial index, so the whole file
    /// is read and filtered.
    pub fn read_box<S: Storage>(
        storage: &S,
        query: &Aabb3,
    ) -> Result<(Vec<Particle>, ReadStats), SpioError> {
        let t0 = Instant::now();
        let mut stats = ReadStats {
            files_opened: 1,
            ..Default::default()
        };
        stats.bytes_read = storage.file_size(SHARED_FILE_NAME)?;
        let all = Self::read_all(storage)?;
        let decoded = all.len();
        let out: Vec<Particle> = all
            .into_iter()
            .filter(|p| query.contains(p.position))
            .collect();
        stats.particles_read = out.len() as u64;
        stats.particles_discarded = (decoded - out.len()) as u64;
        stats.time = t0.elapsed();
        Ok((out, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spio_comm::run_threaded_collect;
    use spio_core::MemStorage;

    fn particles_for(rank: usize, n: usize) -> Vec<Particle> {
        (0..n)
            .map(|i| {
                Particle::synthetic(
                    [(rank as f64 + 0.5) / 8.0, (i as f64 + 0.5) / n as f64, 0.5],
                    ((rank as u64) << 32) | i as u64,
                )
            })
            .collect()
    }

    fn write_shared(nprocs: usize, naggs: usize, per_rank: usize) -> MemStorage {
        let storage = MemStorage::new();
        let s2 = storage.clone();
        run_threaded_collect(nprocs, move |comm| {
            SharedFileWriter::new(naggs)
                .write(&comm, &particles_for(comm.rank(), per_rank), &s2)
                .unwrap();
        })
        .unwrap();
        storage
    }

    #[test]
    fn single_file_in_rank_order() {
        let storage = write_shared(8, 2, 10);
        assert_eq!(storage.file_names(), vec![SHARED_FILE_NAME.to_string()]);
        let ps = SharedFileWriter::read_all(&storage).unwrap();
        assert_eq!(ps.len(), 80);
        // Rank order: ids are (rank << 32 | i), so the sequence is sorted.
        let ids: Vec<u64> = ps.iter().map(|p| p.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn aggregator_counts_divide_work() {
        for naggs in [1, 2, 4, 8] {
            let storage = write_shared(8, naggs, 5);
            assert_eq!(SharedFileWriter::read_all(&storage).unwrap().len(), 40);
        }
    }

    #[test]
    fn uneven_counts_still_pack_densely() {
        let storage = MemStorage::new();
        let s2 = storage.clone();
        run_threaded_collect(4, move |comm| {
            // Rank r holds r particles (rank 0 holds none).
            SharedFileWriter::new(2)
                .write(&comm, &particles_for(comm.rank(), comm.rank()), &s2)
                .unwrap();
        })
        .unwrap();
        let ps = SharedFileWriter::read_all(&storage).unwrap();
        assert_eq!(ps.len(), 6); // ranks contribute 0 + 1 + 2 + 3 particles
    }

    #[test]
    fn box_query_reads_whole_file() {
        let storage = write_shared(8, 4, 20);
        // Query covering only rank 3's x-slab.
        let q = Aabb3::new([3.0 / 8.0, 0.0, 0.0], [4.0 / 8.0, 1.0, 1.0]);
        let (ps, stats) = SharedFileWriter::read_box(&storage, &q).unwrap();
        assert_eq!(ps.len(), 20);
        assert_eq!(stats.particles_discarded, 140, "7/8 of the data wasted");
        assert_eq!(
            stats.bytes_read,
            storage.file_size(SHARED_FILE_NAME).unwrap()
        );
    }
}
