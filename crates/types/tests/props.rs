//! Property tests for the foundation types.

use proptest::prelude::*;
use spio_types::particle::{decode_particles, encode_particles};
use spio_types::{Aabb3, DomainDecomposition, GridDims, Particle, PartitionFactor};

fn arb_particle() -> impl Strategy<Value = Particle> {
    (
        prop::array::uniform3(-1e6f64..1e6),
        any::<u64>(),
        -1e3f64..1e3,
        0f64..1e3,
        0u32..16,
    )
        .prop_map(|(position, id, s, volume, t)| {
            let mut p = Particle::synthetic(position, id);
            p.stress[4] = s;
            p.volume = volume;
            p.ptype = t as f32;
            p
        })
}

fn arb_box() -> impl Strategy<Value = Aabb3> {
    (
        prop::array::uniform3(-100.0f64..100.0),
        prop::array::uniform3(0.1f64..50.0),
    )
        .prop_map(|(lo, ext)| {
            Aabb3::new(lo, [lo[0] + ext[0], lo[1] + ext[1], lo[2] + ext[2]])
        })
}

proptest! {
    #[test]
    fn particle_codec_roundtrip(ps in prop::collection::vec(arb_particle(), 0..64)) {
        let bytes = encode_particles(&ps);
        prop_assert_eq!(bytes.len(), ps.len() * spio_types::PARTICLE_BYTES);
        prop_assert_eq!(decode_particles(&bytes), ps);
    }

    #[test]
    fn grid_linearize_bijective(nx in 1usize..12, ny in 1usize..12, nz in 1usize..12) {
        let g = GridDims::new(nx, ny, nz);
        let mut seen = vec![false; g.count()];
        for idx in g.iter() {
            let lin = g.linearize(idx);
            prop_assert!(!seen[lin], "duplicate linear index");
            seen[lin] = true;
            prop_assert_eq!(g.delinearize(lin), idx);
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn near_cubic_covers_exactly(n in 1usize..4096) {
        let g = GridDims::near_cubic(n);
        prop_assert_eq!(g.count(), n);
    }

    #[test]
    fn cells_are_disjoint_and_cover(
        b in arb_box(),
        dims in prop::array::uniform3(1usize..5),
        p in prop::array::uniform3(0.0f64..1.0),
    ) {
        // An interior point lies in exactly one cell, and that cell is the
        // one cell_of reports.
        let point = [
            b.lo[0] + p[0] * (b.hi[0] - b.lo[0]) * 0.999,
            b.lo[1] + p[1] * (b.hi[1] - b.lo[1]) * 0.999,
            b.lo[2] + p[2] * (b.hi[2] - b.lo[2]) * 0.999,
        ];
        let mut containing = 0;
        for i in 0..dims[0] {
            for j in 0..dims[1] {
                for k in 0..dims[2] {
                    if b.cell(dims, [i, j, k]).contains(point) {
                        containing += 1;
                        prop_assert_eq!(b.cell_of(dims, point), [i, j, k]);
                    }
                }
            }
        }
        prop_assert_eq!(containing, 1, "point must be in exactly one cell");
    }

    #[test]
    fn union_contains_both(a in arb_box(), b in arb_box()) {
        let u = a.union(&b);
        prop_assert!(u.contains([a.lo[0], a.lo[1], a.lo[2]]) || a.is_empty());
        for axis in 0..3 {
            prop_assert!(u.lo[axis] <= a.lo[axis] && u.lo[axis] <= b.lo[axis]);
            prop_assert!(u.hi[axis] >= a.hi[axis] && u.hi[axis] >= b.hi[axis]);
        }
    }

    #[test]
    fn intersection_symmetric_and_consistent(a in arb_box(), b in arb_box()) {
        let ab = a.intersection(&b);
        let ba = b.intersection(&a);
        prop_assert_eq!(ab, ba);
        prop_assert_eq!(ab.is_some(), a.intersects(&b));
        if let Some(i) = ab {
            prop_assert!(i.volume() <= a.volume() + 1e-9);
            prop_assert!(i.volume() <= b.volume() + 1e-9);
        }
    }

    #[test]
    fn decomposition_assigns_every_point_once(
        dims in prop::array::uniform3(1usize..5),
        p in prop::array::uniform3(0.0f64..0.999),
    ) {
        let d = DomainDecomposition::uniform(
            Aabb3::new([0.0; 3], [1.0; 3]),
            GridDims::new(dims[0], dims[1], dims[2]),
        );
        let rank = d.rank_containing(p);
        prop_assert!(d.patch_bounds(rank).contains(p));
        // No other patch claims it.
        for r in 0..d.nprocs() {
            if r != rank {
                prop_assert!(!d.patch_bounds(r).contains(p));
            }
        }
    }

    #[test]
    fn file_count_formula(
        nx in 1usize..16, ny in 1usize..16, nz in 1usize..16,
        px_raw in 1usize..16, py_raw in 1usize..16, pz_raw in 1usize..16,
    ) {
        // Clamp the factor into the grid rather than rejecting samples.
        let (px, py, pz) = (px_raw.min(nx), py_raw.min(ny), pz_raw.min(nz));
        let f = PartitionFactor::new(px, py, pz);
        let procs = GridDims::new(nx, ny, nz);
        let expected = nx.div_ceil(px) * ny.div_ceil(py) * nz.div_ceil(pz);
        prop_assert_eq!(f.file_count(procs), expected);
        prop_assert!(f.file_count(procs) <= procs.count());
    }
}
