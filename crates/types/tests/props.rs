//! Property tests for the foundation types.

use spio_types::particle::{decode_particles, encode_particles};
use spio_types::{Aabb3, DomainDecomposition, GridDims, Particle, PartitionFactor};
use spio_util::check::{cases, Gen};

fn arb_particle(g: &mut Gen) -> Particle {
    let position = [
        g.f64_in(-1e6, 1e6),
        g.f64_in(-1e6, 1e6),
        g.f64_in(-1e6, 1e6),
    ];
    let mut p = Particle::synthetic(position, g.u64());
    p.stress[4] = g.f64_in(-1e3, 1e3);
    p.volume = g.f64_in(0.0, 1e3);
    p.ptype = g.u32_in(0, 15) as f32;
    p
}

fn arb_box(g: &mut Gen) -> Aabb3 {
    let lo = [
        g.f64_in(-100.0, 100.0),
        g.f64_in(-100.0, 100.0),
        g.f64_in(-100.0, 100.0),
    ];
    let ext = [
        g.f64_in(0.1, 50.0),
        g.f64_in(0.1, 50.0),
        g.f64_in(0.1, 50.0),
    ];
    Aabb3::new(lo, [lo[0] + ext[0], lo[1] + ext[1], lo[2] + ext[2]])
}

#[test]
fn particle_codec_roundtrip() {
    cases(256, |g: &mut Gen| {
        let n = g.usize_in(0, 63);
        let ps: Vec<Particle> = (0..n).map(|_| arb_particle(g)).collect();
        let bytes = encode_particles(&ps);
        assert_eq!(bytes.len(), ps.len() * spio_types::PARTICLE_BYTES);
        assert_eq!(decode_particles(&bytes), ps);
    });
}

#[test]
fn grid_linearize_bijective() {
    cases(64, |g: &mut Gen| {
        let grid = GridDims::new(g.usize_in(1, 11), g.usize_in(1, 11), g.usize_in(1, 11));
        let mut seen = vec![false; grid.count()];
        for idx in grid.iter() {
            let lin = grid.linearize(idx);
            assert!(!seen[lin], "duplicate linear index");
            seen[lin] = true;
            assert_eq!(grid.delinearize(lin), idx);
        }
        assert!(seen.into_iter().all(|s| s));
    });
}

#[test]
fn near_cubic_covers_exactly() {
    cases(256, |g: &mut Gen| {
        let n = g.usize_in(1, 4095);
        let grid = GridDims::near_cubic(n);
        assert_eq!(grid.count(), n);
    });
}

#[test]
fn cells_are_disjoint_and_cover() {
    cases(256, |g: &mut Gen| {
        let b = arb_box(g);
        let dims = [g.usize_in(1, 4), g.usize_in(1, 4), g.usize_in(1, 4)];
        let p = [g.f64_in(0.0, 1.0), g.f64_in(0.0, 1.0), g.f64_in(0.0, 1.0)];
        // An interior point lies in exactly one cell, and that cell is the
        // one cell_of reports.
        let point = [
            b.lo[0] + p[0] * (b.hi[0] - b.lo[0]) * 0.999,
            b.lo[1] + p[1] * (b.hi[1] - b.lo[1]) * 0.999,
            b.lo[2] + p[2] * (b.hi[2] - b.lo[2]) * 0.999,
        ];
        let mut containing = 0;
        for i in 0..dims[0] {
            for j in 0..dims[1] {
                for k in 0..dims[2] {
                    if b.cell(dims, [i, j, k]).contains(point) {
                        containing += 1;
                        assert_eq!(b.cell_of(dims, point), [i, j, k]);
                    }
                }
            }
        }
        assert_eq!(containing, 1, "point must be in exactly one cell");
    });
}

#[test]
fn union_contains_both() {
    cases(256, |g: &mut Gen| {
        let a = arb_box(g);
        let b = arb_box(g);
        let u = a.union(&b);
        assert!(u.contains([a.lo[0], a.lo[1], a.lo[2]]) || a.is_empty());
        for axis in 0..3 {
            assert!(u.lo[axis] <= a.lo[axis] && u.lo[axis] <= b.lo[axis]);
            assert!(u.hi[axis] >= a.hi[axis] && u.hi[axis] >= b.hi[axis]);
        }
    });
}

#[test]
fn intersection_symmetric_and_consistent() {
    cases(256, |g: &mut Gen| {
        let a = arb_box(g);
        let b = arb_box(g);
        let ab = a.intersection(&b);
        let ba = b.intersection(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.is_some(), a.intersects(&b));
        if let Some(i) = ab {
            assert!(i.volume() <= a.volume() + 1e-9);
            assert!(i.volume() <= b.volume() + 1e-9);
        }
    });
}

#[test]
fn decomposition_assigns_every_point_once() {
    cases(128, |g: &mut Gen| {
        let dims = [g.usize_in(1, 4), g.usize_in(1, 4), g.usize_in(1, 4)];
        let p = [
            g.f64_in(0.0, 0.999),
            g.f64_in(0.0, 0.999),
            g.f64_in(0.0, 0.999),
        ];
        let d = DomainDecomposition::uniform(
            Aabb3::new([0.0; 3], [1.0; 3]),
            GridDims::new(dims[0], dims[1], dims[2]),
        );
        let rank = d.rank_containing(p);
        assert!(d.patch_bounds(rank).contains(p));
        // No other patch claims it.
        for r in 0..d.nprocs() {
            if r != rank {
                assert!(!d.patch_bounds(r).contains(p));
            }
        }
    });
}

#[test]
fn file_count_formula() {
    cases(256, |g: &mut Gen| {
        let (nx, ny, nz) = (g.usize_in(1, 15), g.usize_in(1, 15), g.usize_in(1, 15));
        // Clamp the factor into the grid rather than rejecting samples.
        let px = g.usize_in(1, 15).min(nx);
        let py = g.usize_in(1, 15).min(ny);
        let pz = g.usize_in(1, 15).min(nz);
        let f = PartitionFactor::new(px, py, pz);
        let procs = GridDims::new(nx, ny, nz);
        let expected = nx.div_ceil(px) * ny.div_ceil(py) * nz.div_ceil(pz);
        assert_eq!(f.file_count(procs), expected);
        assert!(f.file_count(procs) <= procs.count());
    });
}
