//! # spio-types
//!
//! Foundation types shared by every crate in the workspace: the particle
//! record used throughout the paper's evaluation (15 double-precision values
//! plus one single-precision value, 124 bytes per particle), axis-aligned
//! bounding boxes, the uniform domain decomposition a simulation imposes on
//! its domain, grid index math, and the aggregation partition factor
//! `(Px, Py, Pz)` from §3.1 of the paper.

pub mod aabb;
pub mod domain;
pub mod error;
pub mod grid;
pub mod particle;
pub mod zorder;

pub use aabb::Aabb3;
pub use domain::DomainDecomposition;
pub use error::SpioError;
pub use grid::{GridDims, PartitionFactor};
pub use particle::{Particle, PARTICLE_BYTES};

/// A process rank, mirroring an MPI rank.
pub type Rank = usize;
