//! Integer grid math: process grids and the aggregation partition factor.

use crate::error::SpioError;

/// Dimensions of a 3-D grid of patches/processes (`nx × ny × nz`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridDims {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
}

impl GridDims {
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "grid dims must be positive");
        GridDims { nx, ny, nz }
    }

    /// Total cell count.
    pub fn count(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    pub fn as_array(&self) -> [usize; 3] {
        [self.nx, self.ny, self.nz]
    }

    /// Row-major (x fastest) linear index of cell `(i, j, k)`.
    pub fn linearize(&self, idx: [usize; 3]) -> usize {
        debug_assert!(idx[0] < self.nx && idx[1] < self.ny && idx[2] < self.nz);
        idx[0] + self.nx * (idx[1] + self.ny * idx[2])
    }

    /// Inverse of [`GridDims::linearize`].
    pub fn delinearize(&self, lin: usize) -> [usize; 3] {
        debug_assert!(lin < self.count());
        let i = lin % self.nx;
        let j = (lin / self.nx) % self.ny;
        let k = lin / (self.nx * self.ny);
        [i, j, k]
    }

    /// Iterate all cell indices in linear order.
    pub fn iter(&self) -> impl Iterator<Item = [usize; 3]> + '_ {
        (0..self.count()).map(move |l| self.delinearize(l))
    }

    /// Factor `n` processes into a near-cubic `nx × ny × nz` grid
    /// (largest factors on z, like MPI_Dims_create with reversed output).
    pub fn near_cubic(n: usize) -> Self {
        assert!(n > 0);
        let mut best = GridDims::new(n, 1, 1);
        let mut best_score = usize::MAX;
        for a in 1..=n {
            if !n.is_multiple_of(a) {
                continue;
            }
            let rem = n / a;
            for b in 1..=rem {
                if !rem.is_multiple_of(b) {
                    continue;
                }
                let c = rem / b;
                let dims = [a, b, c];
                let score = dims.iter().max().unwrap() - dims.iter().min().unwrap();
                if score < best_score {
                    best_score = score;
                    best = GridDims::new(a, b, c);
                }
            }
        }
        best
    }
}

/// The aggregation partition factor `(Px, Py, Pz)` of §3.1: the ratio of an
/// aggregation partition's size to the simulation's per-process patch size
/// along each axis.
///
/// Larger factors mean more communication during aggregation and fewer,
/// larger output files; `(1,1,1)` degenerates to file-per-process and a
/// whole-domain partition degenerates to single-shared-file I/O (Fig. 3).
/// The best value is machine- and workload-dependent, so it is exposed as a
/// user tuning parameter throughout this workspace.
///
/// ```
/// use spio_types::{GridDims, PartitionFactor};
/// // §3.1's example: 4×4 processes at factor 2×2 produce 4 files.
/// let procs = GridDims::new(4, 4, 1);
/// assert_eq!(PartitionFactor::new(2, 2, 1).file_count(procs), 4);
/// // (1,1,1) degenerates to file-per-process.
/// assert_eq!(PartitionFactor::new(1, 1, 1).file_count(procs), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PartitionFactor {
    pub px: usize,
    pub py: usize,
    pub pz: usize,
}

impl PartitionFactor {
    pub fn new(px: usize, py: usize, pz: usize) -> Self {
        assert!(
            px > 0 && py > 0 && pz > 0,
            "partition factor must be positive"
        );
        PartitionFactor { px, py, pz }
    }

    /// Processes (patches) grouped into one aggregation partition.
    pub fn group_size(&self) -> usize {
        self.px * self.py * self.pz
    }

    pub fn as_array(&self) -> [usize; 3] {
        [self.px, self.py, self.pz]
    }

    /// Number of aggregation partitions — and therefore output files —
    /// produced for a `procs` process grid: `f = (nx/Px)·(ny/Py)·(nz/Pz)`
    /// (§3.1). Partial partitions at the domain edge are rounded up, which
    /// also covers process grids that are not exact multiples of the factor.
    pub fn file_count(&self, procs: GridDims) -> usize {
        self.partition_dims(procs).count()
    }

    /// Dimensions of the aggregation grid for a given process grid.
    pub fn partition_dims(&self, procs: GridDims) -> GridDims {
        GridDims::new(
            procs.nx.div_ceil(self.px),
            procs.ny.div_ceil(self.py),
            procs.nz.div_ceil(self.pz),
        )
    }

    /// Check the factor fits the process grid (no axis exceeds it).
    pub fn validate(&self, procs: GridDims) -> Result<(), SpioError> {
        if self.px > procs.nx || self.py > procs.ny || self.pz > procs.nz {
            return Err(SpioError::Config(format!(
                "partition factor {:?} exceeds process grid {:?}",
                self.as_array(),
                procs.as_array()
            )));
        }
        Ok(())
    }

    /// Parse from strings like `"2x2x4"` or `"2,2,4"`.
    pub fn parse(s: &str) -> Result<Self, SpioError> {
        let parts: Vec<&str> = s.split(['x', 'X', ',']).collect();
        if parts.len() != 3 {
            return Err(SpioError::Config(format!(
                "cannot parse partition factor from '{s}'"
            )));
        }
        let mut v = [0usize; 3];
        for (slot, part) in v.iter_mut().zip(&parts) {
            *slot = part
                .trim()
                .parse()
                .map_err(|_| SpioError::Config(format!("bad axis in '{s}'")))?;
        }
        if v.contains(&0) {
            return Err(SpioError::Config(format!("zero axis in '{s}'")));
        }
        Ok(PartitionFactor::new(v[0], v[1], v[2]))
    }
}

impl std::fmt::Display for PartitionFactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.px, self.py, self.pz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linearize_roundtrip() {
        let g = GridDims::new(4, 3, 2);
        for l in 0..g.count() {
            assert_eq!(g.linearize(g.delinearize(l)), l);
        }
    }

    #[test]
    fn near_cubic_factorizations() {
        assert_eq!(GridDims::near_cubic(8), GridDims::new(2, 2, 2));
        assert_eq!(GridDims::near_cubic(64), GridDims::new(4, 4, 4));
        let g = GridDims::near_cubic(512);
        assert_eq!(g.count(), 512);
        assert_eq!(g, GridDims::new(8, 8, 8));
        // 2^18 = 262144 — the paper's largest run.
        let g = GridDims::near_cubic(262_144);
        assert_eq!(g.count(), 262_144);
        let a = g.as_array();
        assert!(a.iter().max().unwrap() / a.iter().min().unwrap() <= 2);
    }

    #[test]
    fn file_count_formula_matches_paper_examples() {
        // §3.1 worked example: 4×4 = 16 processes, factor 2×2 ⇒ (4/2)(4/2) = 4
        // files (paper Fig. 3e). The 2-D paper examples use nz = 1 here.
        let procs = GridDims::new(4, 4, 1);
        assert_eq!(PartitionFactor::new(2, 2, 1).file_count(procs), 4);
        // Fig. 3 labels aggregation-grid *dimensions*; as factors:
        // 2×4 partitions ⇔ factor (2,1) ⇒ 8 files (Fig. 3b),
        assert_eq!(PartitionFactor::new(2, 1, 1).file_count(procs), 8);
        // 1×4 partitions ⇔ factor (4,1) ⇒ 4 files (Fig. 3c),
        assert_eq!(PartitionFactor::new(4, 1, 1).file_count(procs), 4);
        // 4×4 partitions ⇔ factor (1,1) ⇒ file-per-process, 16 files (Fig. 3d),
        assert_eq!(PartitionFactor::new(1, 1, 1).file_count(procs), 16);
        // whole-domain partition ⇔ factor (4,4) ⇒ single shared file (Fig. 3f).
        assert_eq!(PartitionFactor::new(4, 4, 1).file_count(procs), 1);
    }

    #[test]
    fn file_count_section4_example() {
        // §4: 64 Ki processes, (2,2,2) ⇒ 8 Ki files.
        let procs = GridDims::near_cubic(65_536);
        assert_eq!(PartitionFactor::new(2, 2, 2).file_count(procs), 65_536 / 8);
    }

    #[test]
    fn partial_partitions_round_up() {
        let procs = GridDims::new(5, 4, 1);
        // 5/2 ⇒ 3 partitions along x.
        assert_eq!(PartitionFactor::new(2, 2, 1).file_count(procs), 6);
    }

    #[test]
    fn validate_rejects_oversized_factor() {
        let procs = GridDims::new(2, 2, 2);
        assert!(PartitionFactor::new(4, 1, 1).validate(procs).is_err());
        assert!(PartitionFactor::new(2, 2, 2).validate(procs).is_ok());
    }

    #[test]
    fn parse_formats() {
        assert_eq!(
            PartitionFactor::parse("2x2x4").unwrap(),
            PartitionFactor::new(2, 2, 4)
        );
        assert_eq!(
            PartitionFactor::parse("1,2,2").unwrap(),
            PartitionFactor::new(1, 2, 2)
        );
        assert!(PartitionFactor::parse("2x2").is_err());
        assert!(PartitionFactor::parse("0x1x1").is_err());
        assert_eq!(PartitionFactor::new(2, 4, 4).to_string(), "2x4x4");
    }
}
