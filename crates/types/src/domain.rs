//! Simulation domain decomposition.
//!
//! The paper's write path assumes the simulation has partitioned its domain
//! into a uniform rectilinear grid of per-process patches (§3.1); the
//! aggregation-grid is then aligned with this decomposition so every process
//! sends all of its particles to exactly one aggregator. Non-aligned grids
//! are also supported (the writer falls back to binning particles per
//! partition), so this type only has to describe where each patch sits.

use crate::aabb::Aabb3;
use crate::grid::GridDims;
use crate::Rank;

/// A uniform decomposition of a box-shaped simulation domain into
/// `nx × ny × nz` equally sized patches, one per process, with ranks assigned
/// in row-major (x fastest) order.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainDecomposition {
    /// Bounds of the entire simulation domain.
    pub bounds: Aabb3,
    /// Patch grid dimensions; `dims.count()` equals the number of processes.
    pub dims: GridDims,
}

impl DomainDecomposition {
    pub fn uniform(bounds: Aabb3, dims: GridDims) -> Self {
        DomainDecomposition { bounds, dims }
    }

    /// Decomposition for `nprocs` processes over `bounds`, using a near-cubic
    /// process grid.
    pub fn for_procs(bounds: Aabb3, nprocs: usize) -> Self {
        DomainDecomposition {
            bounds,
            dims: GridDims::near_cubic(nprocs),
        }
    }

    /// Number of processes / patches.
    pub fn nprocs(&self) -> usize {
        self.dims.count()
    }

    /// 3-D patch coordinates of `rank`.
    pub fn patch_coords(&self, rank: Rank) -> [usize; 3] {
        self.dims.delinearize(rank)
    }

    /// Rank owning patch `(i, j, k)`.
    pub fn rank_of(&self, coords: [usize; 3]) -> Rank {
        self.dims.linearize(coords)
    }

    /// Spatial bounds of `rank`'s patch (half-open, tiles the domain).
    pub fn patch_bounds(&self, rank: Rank) -> Aabb3 {
        self.bounds
            .cell(self.dims.as_array(), self.patch_coords(rank))
    }

    /// Rank whose patch contains point `p` (clamped into the domain).
    pub fn rank_containing(&self, p: [f64; 3]) -> Rank {
        self.rank_of(self.bounds.cell_of(self.dims.as_array(), p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decomp() -> DomainDecomposition {
        DomainDecomposition::uniform(
            Aabb3::new([0.0; 3], [4.0, 2.0, 2.0]),
            GridDims::new(4, 2, 2),
        )
    }

    #[test]
    fn patches_tile_domain() {
        let d = decomp();
        let total: f64 = (0..d.nprocs()).map(|r| d.patch_bounds(r).volume()).sum();
        assert!((total - d.bounds.volume()).abs() < 1e-12);
    }

    #[test]
    fn every_patch_point_maps_back_to_its_rank() {
        let d = decomp();
        for r in 0..d.nprocs() {
            let b = d.patch_bounds(r);
            assert_eq!(d.rank_containing(b.center()), r);
            // lo corner is inclusive.
            assert_eq!(d.rank_containing(b.lo), r);
        }
    }

    #[test]
    fn rank_patch_coords_roundtrip() {
        let d = decomp();
        for r in 0..d.nprocs() {
            assert_eq!(d.rank_of(d.patch_coords(r)), r);
        }
    }

    #[test]
    fn for_procs_builds_full_grid() {
        let d = DomainDecomposition::for_procs(Aabb3::new([0.0; 3], [1.0; 3]), 64);
        assert_eq!(d.nprocs(), 64);
        assert_eq!(d.dims, GridDims::new(4, 4, 4));
    }

    #[test]
    fn out_of_domain_point_clamps() {
        let d = decomp();
        assert_eq!(d.rank_containing([-10.0, -10.0, -10.0]), 0);
        assert_eq!(d.rank_containing([100.0, 100.0, 100.0]), d.nprocs() - 1);
    }
}
