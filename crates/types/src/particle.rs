//! The particle record.
//!
//! The paper's evaluation (§5.1) uses datasets representative of the Uintah
//! simulation framework, where each particle carries 15 double-precision
//! values (a 3-component position, a 9-component stress tensor, density,
//! volume and an ID) plus one single-precision value (a material type), for a
//! total of 124 bytes per particle. We reproduce that record exactly so the
//! per-core data volumes match the paper (32 Ki particles ≈ 4 MB, 64 Ki ≈ 8 MB).

/// Serialized size of one [`Particle`] in bytes: 15 × f64 + 1 × f32.
pub const PARTICLE_BYTES: usize = 15 * 8 + 4;

/// A single simulation particle (Uintah material-point-method style record).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Particle {
    /// Spatial position (x, y, z).
    pub position: [f64; 3],
    /// Cauchy stress tensor, row-major 3×3.
    pub stress: [f64; 9],
    /// Mass density at the particle.
    pub density: f64,
    /// Volume represented by the particle.
    pub volume: f64,
    /// Globally unique particle identifier (stored as a double in the paper's
    /// record; we keep it integral and encode it as 8 bytes on disk).
    pub id: u64,
    /// Material type tag (the record's single-precision variable).
    pub ptype: f32,
}

impl Particle {
    /// A particle at `position` with the given `id` and all physical fields
    /// derived deterministically from the id (useful for tests that must
    /// detect payload corruption, not just position errors).
    pub fn synthetic(position: [f64; 3], id: u64) -> Self {
        let f = id as f64;
        let mut stress = [0.0; 9];
        for (i, s) in stress.iter_mut().enumerate() {
            *s = f * 0.25 + i as f64;
        }
        Particle {
            position,
            stress,
            density: 1.0 + (id % 97) as f64 * 0.01,
            volume: 1e-6 + (id % 13) as f64 * 1e-7,
            id,
            ptype: (id % 4) as f32,
        }
    }

    /// Encode into `out`, little-endian, in the fixed on-disk field order:
    /// position, stress, density, volume, id, type.
    pub fn encode(&self, out: &mut Vec<u8>) {
        for v in self.position {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in self.stress {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&self.density.to_le_bytes());
        out.extend_from_slice(&self.volume.to_le_bytes());
        out.extend_from_slice(&self.id.to_le_bytes());
        out.extend_from_slice(&self.ptype.to_le_bytes());
    }

    /// Decode one particle from exactly [`PARTICLE_BYTES`] bytes.
    ///
    /// # Panics
    /// Panics if `bytes.len() != PARTICLE_BYTES`.
    pub fn decode(bytes: &[u8]) -> Self {
        assert_eq!(bytes.len(), PARTICLE_BYTES, "bad particle record size");
        let f64_at = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[i * 8..i * 8 + 8]);
            f64::from_le_bytes(b)
        };
        let mut position = [0.0; 3];
        for (i, p) in position.iter_mut().enumerate() {
            *p = f64_at(i);
        }
        let mut stress = [0.0; 9];
        for (i, s) in stress.iter_mut().enumerate() {
            *s = f64_at(3 + i);
        }
        let density = f64_at(12);
        let volume = f64_at(13);
        let mut idb = [0u8; 8];
        idb.copy_from_slice(&bytes[112..120]);
        let id = u64::from_le_bytes(idb);
        let mut tb = [0u8; 4];
        tb.copy_from_slice(&bytes[120..124]);
        let ptype = f32::from_le_bytes(tb);
        Particle {
            position,
            stress,
            density,
            volume,
            id,
            ptype,
        }
    }
}

/// Encode a slice of particles into a contiguous byte buffer.
pub fn encode_particles(particles: &[Particle]) -> Vec<u8> {
    let mut out = Vec::with_capacity(particles.len() * PARTICLE_BYTES);
    for p in particles {
        p.encode(&mut out);
    }
    out
}

/// Decode a contiguous byte buffer into particles.
///
/// # Panics
/// Panics if `bytes.len()` is not a multiple of [`PARTICLE_BYTES`].
pub fn decode_particles(bytes: &[u8]) -> Vec<Particle> {
    assert_eq!(
        bytes.len() % PARTICLE_BYTES,
        0,
        "byte buffer is not a whole number of particle records"
    );
    bytes
        .chunks_exact(PARTICLE_BYTES)
        .map(Particle::decode)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn particle_bytes_matches_paper_record() {
        // 15 doubles + 1 float = 124 bytes; 32 Ki particles ≈ 4 MB per core.
        assert_eq!(PARTICLE_BYTES, 124);
        let per_core = 32 * 1024 * PARTICLE_BYTES;
        assert!(per_core > 3_900_000 && per_core < 4_200_000);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = Particle::synthetic([0.1, -2.5, 3.75], 123456789);
        let mut buf = Vec::new();
        p.encode(&mut buf);
        assert_eq!(buf.len(), PARTICLE_BYTES);
        assert_eq!(Particle::decode(&buf), p);
    }

    #[test]
    fn batch_roundtrip_preserves_order() {
        let ps: Vec<Particle> = (0..100)
            .map(|i| Particle::synthetic([i as f64, 0.0, -(i as f64)], i))
            .collect();
        let bytes = encode_particles(&ps);
        assert_eq!(bytes.len(), 100 * PARTICLE_BYTES);
        assert_eq!(decode_particles(&bytes), ps);
    }

    #[test]
    fn synthetic_fields_depend_on_id() {
        let a = Particle::synthetic([0.0; 3], 1);
        let b = Particle::synthetic([0.0; 3], 2);
        assert_ne!(a.density, b.density);
        assert_ne!(a.stress, b.stress);
    }

    #[test]
    #[should_panic(expected = "bad particle record size")]
    fn decode_rejects_short_buffer() {
        Particle::decode(&[0u8; 10]);
    }

    #[test]
    #[should_panic(expected = "whole number of particle records")]
    fn decode_particles_rejects_ragged_buffer() {
        decode_particles(&[0u8; PARTICLE_BYTES + 1]);
    }
}
