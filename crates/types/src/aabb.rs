//! Axis-aligned bounding boxes.
//!
//! Boxes use the half-open convention `[lo, hi)`: a particle sitting exactly
//! on a shared face belongs to exactly one box, which is what makes the
//! aggregation partitions of §3.1 disjoint and the spatial metadata file
//! (§3.5) unambiguous.

/// An axis-aligned box in 3-D, half-open: contains `p` iff `lo <= p < hi`
/// per axis.
///
/// ```
/// use spio_types::Aabb3;
/// let b = Aabb3::new([0.0; 3], [1.0; 3]);
/// assert!(b.contains([0.0, 0.5, 0.999]));
/// assert!(!b.contains([1.0, 0.5, 0.5])); // hi face is exclusive
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb3 {
    pub lo: [f64; 3],
    pub hi: [f64; 3],
}

impl Aabb3 {
    /// Construct from corners. `lo` must be componentwise `<= hi`.
    pub fn new(lo: [f64; 3], hi: [f64; 3]) -> Self {
        debug_assert!(
            lo.iter().zip(&hi).all(|(l, h)| l <= h),
            "inverted box: {lo:?}..{hi:?}"
        );
        Aabb3 { lo, hi }
    }

    /// The empty box (useful as a fold identity for [`Aabb3::union`]).
    pub fn empty() -> Self {
        Aabb3 {
            lo: [f64::INFINITY; 3],
            hi: [f64::NEG_INFINITY; 3],
        }
    }

    /// True if no point is contained (any `lo >= hi` axis).
    pub fn is_empty(&self) -> bool {
        self.lo.iter().zip(&self.hi).any(|(l, h)| l >= h)
    }

    /// Half-open containment test.
    pub fn contains(&self, p: [f64; 3]) -> bool {
        (0..3).all(|a| self.lo[a] <= p[a] && p[a] < self.hi[a])
    }

    /// True if the two boxes share interior volume (half-open overlap).
    pub fn intersects(&self, other: &Aabb3) -> bool {
        (0..3).all(|a| self.lo[a] < other.hi[a] && other.lo[a] < self.hi[a])
    }

    /// Smallest box containing both.
    pub fn union(&self, other: &Aabb3) -> Aabb3 {
        let mut lo = [0.0; 3];
        let mut hi = [0.0; 3];
        for a in 0..3 {
            lo[a] = self.lo[a].min(other.lo[a]);
            hi[a] = self.hi[a].max(other.hi[a]);
        }
        Aabb3 { lo, hi }
    }

    /// Grow to include a point (treats the point as an infinitesimal box, so
    /// the result's `hi` equals the point; callers padding for half-open
    /// queries should expand afterwards).
    pub fn expand_to(&mut self, p: [f64; 3]) {
        for (a, &coord) in p.iter().enumerate() {
            self.lo[a] = self.lo[a].min(coord);
            self.hi[a] = self.hi[a].max(coord);
        }
    }

    /// Intersection, or `None` if disjoint.
    pub fn intersection(&self, other: &Aabb3) -> Option<Aabb3> {
        let mut lo = [0.0; 3];
        let mut hi = [0.0; 3];
        for a in 0..3 {
            lo[a] = self.lo[a].max(other.lo[a]);
            hi[a] = self.hi[a].min(other.hi[a]);
            if lo[a] >= hi[a] {
                return None;
            }
        }
        Some(Aabb3 { lo, hi })
    }

    /// Edge lengths.
    pub fn extent(&self) -> [f64; 3] {
        [
            self.hi[0] - self.lo[0],
            self.hi[1] - self.lo[1],
            self.hi[2] - self.lo[2],
        ]
    }

    /// Volume (0 for empty boxes).
    pub fn volume(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let e = self.extent();
        e[0] * e[1] * e[2]
    }

    /// Geometric center.
    pub fn center(&self) -> [f64; 3] {
        [
            0.5 * (self.lo[0] + self.hi[0]),
            0.5 * (self.lo[1] + self.hi[1]),
            0.5 * (self.lo[2] + self.hi[2]),
        ]
    }

    /// The sub-box at integer cell `(i, j, k)` of a uniform `dims` split.
    ///
    /// Cell boundaries are computed as `lo + extent * (idx / n)` so that the
    /// last cell's `hi` is exactly this box's `hi` (no floating-point gap at
    /// the far edge).
    pub fn cell(&self, dims: [usize; 3], idx: [usize; 3]) -> Aabb3 {
        debug_assert!((0..3).all(|a| idx[a] < dims[a]));
        let e = self.extent();
        let mut lo = [0.0; 3];
        let mut hi = [0.0; 3];
        for a in 0..3 {
            lo[a] = self.lo[a] + e[a] * (idx[a] as f64 / dims[a] as f64);
            hi[a] = if idx[a] + 1 == dims[a] {
                self.hi[a]
            } else {
                self.lo[a] + e[a] * ((idx[a] + 1) as f64 / dims[a] as f64)
            };
        }
        Aabb3 { lo, hi }
    }

    /// Which cell of a uniform `dims` split of this box contains `p`, clamped
    /// into range (so points exactly on the far boundary land in the last
    /// cell rather than out of bounds).
    pub fn cell_of(&self, dims: [usize; 3], p: [f64; 3]) -> [usize; 3] {
        let e = self.extent();
        let mut idx = [0usize; 3];
        for a in 0..3 {
            let t = if e[a] > 0.0 {
                (p[a] - self.lo[a]) / e[a]
            } else {
                0.0
            };
            let i = (t * dims[a] as f64).floor();
            idx[a] = (i.max(0.0) as usize).min(dims[a] - 1);
        }
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Aabb3 {
        Aabb3::new([0.0; 3], [1.0; 3])
    }

    #[test]
    fn half_open_containment() {
        let b = unit();
        assert!(b.contains([0.0, 0.0, 0.0]));
        assert!(b.contains([0.999, 0.5, 0.5]));
        assert!(!b.contains([1.0, 0.5, 0.5]), "hi face is exclusive");
        assert!(!b.contains([-0.001, 0.5, 0.5]));
    }

    #[test]
    fn adjacent_boxes_do_not_intersect() {
        let a = Aabb3::new([0.0; 3], [1.0; 3]);
        let b = Aabb3::new([1.0, 0.0, 0.0], [2.0, 1.0, 1.0]);
        assert!(!a.intersects(&b), "face-sharing boxes are disjoint");
        let c = Aabb3::new([0.9, 0.0, 0.0], [2.0, 1.0, 1.0]);
        assert!(a.intersects(&c));
    }

    #[test]
    fn union_and_intersection() {
        let a = Aabb3::new([0.0; 3], [1.0; 3]);
        let b = Aabb3::new([0.5, 0.5, 0.5], [2.0, 2.0, 2.0]);
        let u = a.union(&b);
        assert_eq!(u, Aabb3::new([0.0; 3], [2.0; 3]));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, Aabb3::new([0.5; 3], [1.0; 3]));
        let far = Aabb3::new([5.0; 3], [6.0; 3]);
        assert!(a.intersection(&far).is_none());
    }

    #[test]
    fn empty_box_identity_for_union() {
        let e = Aabb3::empty();
        assert!(e.is_empty());
        assert_eq!(e.volume(), 0.0);
        let a = unit();
        assert_eq!(e.union(&a), a);
    }

    #[test]
    fn expand_to_builds_bounds() {
        let mut b = Aabb3::empty();
        b.expand_to([1.0, 2.0, 3.0]);
        b.expand_to([-1.0, 0.0, 5.0]);
        assert_eq!(b.lo, [-1.0, 0.0, 3.0]);
        assert_eq!(b.hi, [1.0, 2.0, 5.0]);
    }

    #[test]
    fn cells_tile_the_box_exactly() {
        let b = Aabb3::new([0.0, 0.0, 0.0], [3.0, 2.0, 1.0]);
        let dims = [3, 2, 4];
        let mut vol = 0.0;
        for i in 0..dims[0] {
            for j in 0..dims[1] {
                for k in 0..dims[2] {
                    vol += b.cell(dims, [i, j, k]).volume();
                }
            }
        }
        assert!((vol - b.volume()).abs() < 1e-12);
        // Far corner cell reaches hi exactly.
        let last = b.cell(dims, [2, 1, 3]);
        assert_eq!(last.hi, b.hi);
    }

    #[test]
    fn cell_of_is_consistent_with_cell() {
        let b = Aabb3::new([-1.0, 0.0, 2.0], [1.0, 4.0, 3.0]);
        let dims = [4, 2, 3];
        for i in 0..dims[0] {
            for j in 0..dims[1] {
                for k in 0..dims[2] {
                    let c = b.cell(dims, [i, j, k]);
                    let idx = b.cell_of(dims, c.center());
                    assert_eq!(idx, [i, j, k]);
                }
            }
        }
        // Point on the global hi face clamps into the last cell.
        assert_eq!(b.cell_of(dims, [1.0, 4.0, 3.0]), [3, 1, 2]);
    }

    #[test]
    fn volume_and_center() {
        let b = Aabb3::new([0.0, 0.0, 0.0], [2.0, 3.0, 4.0]);
        assert_eq!(b.volume(), 24.0);
        assert_eq!(b.center(), [1.0, 1.5, 2.0]);
    }
}
