//! Z-order (Morton) curves.
//!
//! §3 of the paper contrasts structured-grid formats, where "voxels can be
//! mapped to locations in the file using some ordering scheme, e.g.,
//! row-order, Z-order, or HZ-order", with unstructured particles. The
//! spatially-aware format does not need a per-particle curve, but Z-order
//! is still useful at *file* granularity: ordering partitions along the
//! curve keeps consecutive files spatially adjacent, which gives readers
//! contiguous, compact file assignments.

/// Interleave the low 21 bits of `x`, `y`, `z` into a 63-bit Morton code.
///
/// ```
/// use spio_types::zorder::{morton3, morton3_decode};
/// let code = morton3(3, 5, 1);
/// assert_eq!(morton3_decode(code), (3, 5, 1));
/// ```
pub fn morton3(x: u32, y: u32, z: u32) -> u64 {
    fn spread(v: u32) -> u64 {
        // Spread the low 21 bits out to every third bit position.
        let mut v = (v as u64) & 0x1F_FFFF;
        v = (v | (v << 32)) & 0x1F00000000FFFF;
        v = (v | (v << 16)) & 0x1F0000FF0000FF;
        v = (v | (v << 8)) & 0x100F00F00F00F00F;
        v = (v | (v << 4)) & 0x10C30C30C30C30C3;
        v = (v | (v << 2)) & 0x1249249249249249;
        v
    }
    spread(x) | (spread(y) << 1) | (spread(z) << 2)
}

/// Inverse of [`morton3`].
pub fn morton3_decode(code: u64) -> (u32, u32, u32) {
    fn compact(v: u64) -> u32 {
        let mut v = v & 0x1249249249249249;
        v = (v | (v >> 2)) & 0x10C30C30C30C30C3;
        v = (v | (v >> 4)) & 0x100F00F00F00F00F;
        v = (v | (v >> 8)) & 0x1F0000FF0000FF;
        v = (v | (v >> 16)) & 0x1F00000000FFFF;
        v = (v | (v >> 32)) & 0x1F_FFFF;
        v as u32
    }
    (compact(code), compact(code >> 1), compact(code >> 2))
}

/// Sort indices of 3-D integer coordinates into Z-order.
pub fn zorder_permutation(coords: &[[u32; 3]]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..coords.len()).collect();
    idx.sort_by_key(|&i| morton3(coords[i][0], coords[i][1], coords[i][2]));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_small_codes() {
        assert_eq!(morton3(0, 0, 0), 0);
        assert_eq!(morton3(1, 0, 0), 0b001);
        assert_eq!(morton3(0, 1, 0), 0b010);
        assert_eq!(morton3(0, 0, 1), 0b100);
        assert_eq!(morton3(1, 1, 1), 0b111);
        assert_eq!(morton3(2, 0, 0), 0b001_000);
        assert_eq!(morton3(3, 3, 3), 0b111_111);
    }

    #[test]
    fn roundtrip_up_to_21_bits() {
        for &(x, y, z) in &[
            (0u32, 0, 0),
            (1, 2, 3),
            (255, 13, 200),
            (0x1F_FFFF, 0, 0x1F_FFFF),
            (123_456, 654_321 & 0x1F_FFFF, 42),
        ] {
            assert_eq!(morton3_decode(morton3(x, y, z)), (x, y, z));
        }
    }

    #[test]
    fn zorder_is_monotone_in_octants() {
        // All points in the low octant precede all points in the high one.
        let lo = morton3(3, 3, 3);
        let hi = morton3(4, 0, 0);
        assert!(lo < hi, "octant boundary ordering");
    }

    #[test]
    fn permutation_is_a_permutation_and_locality_friendly() {
        // 4×4×1 grid of cells in row-major order.
        let coords: Vec<[u32; 3]> = (0..16).map(|i| [i % 4, i / 4, 0]).collect();
        let perm = zorder_permutation(&coords);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
        // The first four Z-order entries form the 2×2 corner block — the
        // locality property row-major lacks.
        let first: Vec<[u32; 3]> = perm[..4].iter().map(|&i| coords[i]).collect();
        for c in &first {
            assert!(c[0] < 2 && c[1] < 2, "corner block expected, got {c:?}");
        }
    }
}
