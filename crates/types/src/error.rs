//! Workspace-wide error type.

use std::fmt;

/// Errors produced by the spio crates.
#[derive(Debug)]
pub enum SpioError {
    /// Invalid configuration (partition factor, grid sizes, LOD params, …).
    Config(String),
    /// Underlying storage failure.
    Io(std::io::Error),
    /// Malformed on-disk data (bad magic, truncated file, version mismatch).
    Format(String),
    /// Communication-layer failure (peer exited, rank out of range, …).
    Comm(String),
    /// A requested entity (file, partition, level) does not exist.
    NotFound(String),
}

impl fmt::Display for SpioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpioError::Config(m) => write!(f, "configuration error: {m}"),
            SpioError::Io(e) => write!(f, "i/o error: {e}"),
            SpioError::Format(m) => write!(f, "format error: {m}"),
            SpioError::Comm(m) => write!(f, "communication error: {m}"),
            SpioError::NotFound(m) => write!(f, "not found: {m}"),
        }
    }
}

impl std::error::Error for SpioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpioError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SpioError {
    fn from(e: std::io::Error) -> Self {
        SpioError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_detail() {
        let e = SpioError::Config("bad factor".into());
        assert!(e.to_string().contains("bad factor"));
        let e = SpioError::Format("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
    }

    #[test]
    fn io_error_converts_and_chains() {
        use std::error::Error;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: SpioError = io.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }
}
