//! Injected-jet workload: a conical particle plume entering the domain from
//! one face, mimicking the coal-particle injection simulation rendered in
//! the paper's Fig. 9 (and the "particles injected over time" scenario of
//! §6). Density is highest near the inlet and spreads/decays downstream, so
//! much of the domain is empty — an adaptive-aggregation stress case.

use crate::{make_particle, rank_rng};
use spio_types::{DomainDecomposition, Particle, Rank};
use spio_util::Rng;

/// Parameters of the injection jet. The jet travels along +x from the
/// x = lo face, centered on the (y, z) midpoint of that face.
#[derive(Debug, Clone)]
pub struct JetSpec {
    /// How far into the domain (fraction of the x extent) the plume reaches.
    pub penetration: f64,
    /// Cone half-width at the inlet, as a fraction of the y/z extent.
    pub inlet_radius: f64,
    /// Cone half-width at full penetration, as a fraction of the y/z extent.
    pub outlet_radius: f64,
    /// Global particle budget.
    pub total_particles: u64,
}

impl Default for JetSpec {
    fn default() -> Self {
        JetSpec {
            penetration: 0.7,
            inlet_radius: 0.05,
            outlet_radius: 0.25,
            total_particles: 1 << 20,
        }
    }
}

impl JetSpec {
    /// Sample one plume position in normalized [0,1)³ coordinates.
    /// Axial density decays linearly toward the tip; radial profile is a
    /// truncated Gaussian widening with depth.
    fn sample_unit(&self, rng: &mut Rng) -> [f64; 3] {
        // Axial position: triangular density favouring the inlet.
        let t = 1.0 - (1.0 - rng.f64()).sqrt(); // pdf ∝ (1 - t)
        let x = t * self.penetration;
        let radius = self.inlet_radius + (self.outlet_radius - self.inlet_radius) * t;
        // Radial: Gaussian truncated at the cone wall (rejection).
        loop {
            let dy = (rng.f64() * 2.0 - 1.0) * radius;
            let dz = (rng.f64() * 2.0 - 1.0) * radius;
            let r2 = dy * dy + dz * dz;
            if r2 > radius * radius {
                continue;
            }
            let keep = (-(r2 / (radius * radius)) * 2.0).exp();
            if rng.f64() <= keep {
                let y = (0.5 + dy).clamp(0.0, 1.0 - 1e-12);
                let z = (0.5 + dz).clamp(0.0, 1.0 - 1e-12);
                return [x.min(1.0 - 1e-12), y, z];
            }
        }
    }
}

/// Generate `rank`'s particles for the jet workload.
///
/// Every rank deterministically replays the same global plume stream and
/// keeps the particles that land in its own patch, so the union over ranks
/// is exactly `spec.total_particles` particles with globally consistent ids
/// — without any communication. The replay cost is O(total) per rank, which
/// is fine at the scales the thread runtime targets (the scale experiments
/// run through `hpcsim`, which only needs per-rank counts).
pub fn jet_patch_particles(
    decomp: &DomainDecomposition,
    rank: Rank,
    spec: &JetSpec,
    seed: u64,
) -> Vec<Particle> {
    // One shared stream: rank_rng of a fixed pseudo-rank so all ranks agree.
    let mut rng = rank_rng(seed, usize::MAX >> 1);
    let e = decomp.bounds.extent();
    let lo = decomp.bounds.lo;
    let mut out = Vec::new();
    for i in 0..spec.total_particles {
        let u = spec.sample_unit(&mut rng);
        let p = [
            lo[0] + u[0] * e[0],
            lo[1] + u[1] * e[1],
            lo[2] + u[2] * e[2],
        ];
        if decomp.rank_containing(p) == rank {
            // Ids come from the shared stream index so they are globally
            // unique and stable regardless of which rank keeps the particle.
            out.push(make_particle(p, 0, i));
        }
    }
    out
}

/// Per-rank particle counts for the jet workload without materializing
/// particles (used by the simulator at large scale).
pub fn jet_counts(decomp: &DomainDecomposition, spec: &JetSpec, seed: u64) -> Vec<u64> {
    let mut rng = rank_rng(seed, usize::MAX >> 1);
    let e = decomp.bounds.extent();
    let lo = decomp.bounds.lo;
    let mut counts = vec![0u64; decomp.nprocs()];
    for _ in 0..spec.total_particles {
        let u = spec.sample_unit(&mut rng);
        let p = [
            lo[0] + u[0] * e[0],
            lo[1] + u[1] * e[1],
            lo[2] + u[2] * e[2],
        ];
        counts[decomp.rank_containing(p)] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use spio_types::{Aabb3, GridDims};

    fn decomp() -> DomainDecomposition {
        DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(2, 2, 2))
    }

    fn small_spec() -> JetSpec {
        JetSpec {
            total_particles: 5000,
            ..JetSpec::default()
        }
    }

    #[test]
    fn union_over_ranks_is_exactly_total() {
        let d = decomp();
        let spec = small_spec();
        let total: usize = (0..d.nprocs())
            .map(|r| jet_patch_particles(&d, r, &spec, 3).len())
            .sum();
        assert_eq!(total, spec.total_particles as usize);
    }

    #[test]
    fn counts_match_materialized_particles() {
        let d = decomp();
        let spec = small_spec();
        let counts = jet_counts(&d, &spec, 3);
        for (r, &c) in counts.iter().enumerate() {
            assert_eq!(c as usize, jet_patch_particles(&d, r, &spec, 3).len());
        }
    }

    #[test]
    fn plume_hugs_the_inlet() {
        let d = decomp();
        let spec = small_spec();
        let counts = jet_counts(&d, &spec, 7);
        // Patches at x < 0.5 (ranks with coord x = 0) must hold the large
        // majority of particles for a penetration-0.7 triangular profile.
        let near: u64 = (0..d.nprocs())
            .filter(|&r| d.patch_coords(r)[0] == 0)
            .map(|r| counts[r])
            .sum();
        let total: u64 = counts.iter().sum();
        assert!(
            near as f64 > 0.7 * total as f64,
            "inlet half holds {near}/{total}"
        );
    }

    #[test]
    fn ids_unique_across_union() {
        let d = decomp();
        let spec = small_spec();
        let mut ids: Vec<u64> = (0..d.nprocs())
            .flat_map(|r| jet_patch_particles(&d, r, &spec, 1))
            .map(|p| p.id)
            .collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn particles_inside_domain_and_patch() {
        let d = decomp();
        let ps = jet_patch_particles(&d, 0, &small_spec(), 2);
        let b = d.patch_bounds(0);
        assert!(!ps.is_empty());
        assert!(ps.iter().all(|p| b.contains(p.position)));
    }
}
