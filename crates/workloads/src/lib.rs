//! # spio-workloads
//!
//! Synthetic particle workload generators standing in for the simulation
//! datasets of the paper's evaluation (§5.1, §6):
//!
//! * [`uniform`] — Uintah-style uniform-resolution runs: every process patch
//!   holds the same number of uniformly distributed particles (the 32 Ki /
//!   64 Ki particles-per-core weak-scaling workloads of Fig. 5/6).
//! * [`clusters`] — Gaussian cluster mixtures, the cosmology-halo-like
//!   non-uniform density of Fig. 10a.
//! * [`jet`] — an injected particle plume, mimicking the coal-injection
//!   dataset rendered in Fig. 9.
//! * [`coverage`] — distributions occupying a shrinking fraction of the
//!   domain (100 % → 12.5 %) with the *total* particle count held constant,
//!   the Fig. 10d / Fig. 11 adaptive-aggregation stress test.
//!
//! All generators are deterministic given a seed and generate each rank's
//! particles independently (seeded per rank), so a 262 144-rank workload can
//! be described without materializing it.

pub mod clusters;
pub mod coverage;
pub mod jet;
pub mod uniform;

pub use clusters::{cluster_patch_particles, ClusterSpec};
pub use coverage::{coverage_counts_density, coverage_patch_particles, CoverageSpec};
pub use jet::{jet_patch_particles, JetSpec};
pub use uniform::uniform_patch_particles;

use spio_types::{Aabb3, Particle, Rank};
use spio_util::Rng;

/// Deterministic per-rank RNG: independent streams for the same global seed.
pub(crate) fn rank_rng(seed: u64, rank: Rank) -> Rng {
    // Mix the rank into the stream with splitmix-style avalanche so
    // neighbouring ranks do not get correlated streams.
    let mut z = seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    Rng::seed_from_u64(z ^ (z >> 31))
}

/// Globally unique particle id: rank in the high bits, local index below.
/// Supports up to 2^24 ranks × 2^40 particles per rank.
pub(crate) fn particle_id(rank: Rank, local: u64) -> u64 {
    ((rank as u64) << 40) | local
}

/// Sample a point uniformly inside `bounds` (half-open).
pub(crate) fn sample_in(rng: &mut Rng, bounds: &Aabb3) -> [f64; 3] {
    let mut p = [0.0; 3];
    for (a, coord) in p.iter_mut().enumerate() {
        // f64() is in [0, 1); scaling keeps the point inside the
        // half-open box.
        *coord = bounds.lo[a] + rng.f64() * (bounds.hi[a] - bounds.lo[a]);
    }
    p
}

/// Build a particle at `pos` with deterministic payload fields.
pub(crate) fn make_particle(pos: [f64; 3], rank: Rank, local: u64) -> Particle {
    Particle::synthetic(pos, particle_id(rank, local))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_streams_are_independent_and_deterministic() {
        let a1: Vec<u8> = {
            let mut r = rank_rng(42, 0);
            (0..8).map(|_| r.u8()).collect()
        };
        let a2: Vec<u8> = {
            let mut r = rank_rng(42, 0);
            (0..8).map(|_| r.u8()).collect()
        };
        let b: Vec<u8> = {
            let mut r = rank_rng(42, 1);
            (0..8).map(|_| r.u8()).collect()
        };
        assert_eq!(a1, a2, "same (seed, rank) ⇒ same stream");
        assert_ne!(a1, b, "different rank ⇒ different stream");
    }

    #[test]
    fn particle_ids_unique_across_ranks() {
        let a = particle_id(0, 5);
        let b = particle_id(1, 5);
        let c = particle_id(1, 6);
        assert_ne!(a, b);
        assert_ne!(b, c);
    }

    #[test]
    fn sample_in_respects_bounds() {
        let b = Aabb3::new([-1.0, 2.0, 3.0], [1.0, 4.0, 3.5]);
        let mut rng = rank_rng(7, 3);
        for _ in 0..1000 {
            let p = sample_in(&mut rng, &b);
            assert!(b.contains(p), "{p:?} escaped {b:?}");
        }
    }
}
