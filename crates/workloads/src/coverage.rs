//! Shrinking-coverage workload (§6.1, Fig. 10d and Fig. 11).
//!
//! The paper's adaptive-aggregation study divides the domain into equal
//! regions and generates particles "distributed over progressively smaller
//! portions of the domain, ranging from covering the entire domain, to 50 %,
//! 25 %, down to only 12.5 %" — with the *total* particle count constant, so
//! occupied patches get denser as coverage shrinks and the rest hold no
//! particles at all.

use crate::{make_particle, rank_rng, sample_in};
use spio_types::{Aabb3, DomainDecomposition, Particle, Rank};

/// Coverage-fraction workload parameters.
#[derive(Debug, Clone)]
pub struct CoverageSpec {
    /// Fraction of the domain (by x-extent) that contains particles, in
    /// (0, 1]. 1.0 reproduces the uniform workload.
    pub fraction: f64,
    /// Total particles across the whole job (constant across fractions).
    pub total_particles: u64,
}

impl CoverageSpec {
    pub fn new(fraction: f64, total_particles: u64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "coverage fraction must be in (0, 1], got {fraction}"
        );
        CoverageSpec {
            fraction,
            total_particles,
        }
    }

    /// The occupied subregion: the leading `fraction` of the domain along x
    /// (Fig. 10d shades a contiguous band of the domain).
    pub fn occupied_region(&self, domain: &Aabb3) -> Aabb3 {
        let e = domain.extent();
        Aabb3::new(
            domain.lo,
            [
                domain.lo[0] + e[0] * self.fraction,
                domain.hi[1],
                domain.hi[2],
            ],
        )
    }
}

/// Is `rank`'s patch (partially) inside the occupied region?
pub fn patch_occupied(decomp: &DomainDecomposition, rank: Rank, spec: &CoverageSpec) -> bool {
    decomp
        .patch_bounds(rank)
        .intersects(&spec.occupied_region(&decomp.bounds))
}

/// Generate `rank`'s particles. The global budget is split evenly over the
/// occupied *volume*; a rank whose patch lies outside the region returns an
/// empty vector (and, per §6, will not participate in aggregation at all).
pub fn coverage_patch_particles(
    decomp: &DomainDecomposition,
    rank: Rank,
    spec: &CoverageSpec,
    seed: u64,
) -> Vec<Particle> {
    let region = spec.occupied_region(&decomp.bounds);
    let patch = decomp.patch_bounds(rank);
    let Some(overlap) = patch.intersection(&region) else {
        return Vec::new();
    };
    let share = overlap.volume() / region.volume();
    let count = (spec.total_particles as f64 * share).round() as usize;
    let mut rng = rank_rng(seed, rank);
    (0..count)
        .map(|i| make_particle(sample_in(&mut rng, &overlap), rank, i as u64))
        .collect()
}

/// Per-rank counts for the *constant-density* variant: every occupied
/// patch holds `per_rank` particles and patches outside the region hold
/// none, so the job's total shrinks with coverage. This models simulations
/// where particles are injected over time or represent physical materials
/// occupying part of the domain (§6), and is the workload the Fig. 11 write
/// study uses.
pub fn coverage_counts_density(
    decomp: &DomainDecomposition,
    fraction: f64,
    per_rank: u64,
) -> Vec<u64> {
    let spec = CoverageSpec::new(fraction, 0);
    let region = spec.occupied_region(&decomp.bounds);
    (0..decomp.nprocs())
        .map(|r| {
            if decomp.patch_bounds(r).intersects(&region) {
                per_rank
            } else {
                0
            }
        })
        .collect()
}

/// Per-rank counts without materializing particles (for the simulator).
pub fn coverage_counts(decomp: &DomainDecomposition, spec: &CoverageSpec) -> Vec<u64> {
    let region = spec.occupied_region(&decomp.bounds);
    (0..decomp.nprocs())
        .map(|r| {
            decomp.patch_bounds(r).intersection(&region).map_or(0, |o| {
                (spec.total_particles as f64 * o.volume() / region.volume()).round() as u64
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spio_types::GridDims;

    fn decomp() -> DomainDecomposition {
        DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(4, 2, 2))
    }

    #[test]
    fn full_coverage_occupies_every_patch() {
        let d = decomp();
        let spec = CoverageSpec::new(1.0, 16_000);
        assert!((0..d.nprocs()).all(|r| patch_occupied(&d, r, &spec)));
        let total: usize = (0..d.nprocs())
            .map(|r| coverage_patch_particles(&d, r, &spec, 1).len())
            .sum();
        assert!((15_500..=16_500).contains(&total));
    }

    #[test]
    fn half_coverage_empties_far_patches_but_keeps_total() {
        let d = decomp();
        let spec = CoverageSpec::new(0.5, 16_000);
        // Patches with x-coordinate ≥ 2 (x ≥ 0.5) are empty.
        for r in 0..d.nprocs() {
            let ps = coverage_patch_particles(&d, r, &spec, 1);
            if d.patch_coords(r)[0] >= 2 {
                assert!(ps.is_empty(), "far patch {r} should be empty");
            } else {
                assert!(!ps.is_empty(), "near patch {r} should be occupied");
            }
        }
        let total: usize = (0..d.nprocs())
            .map(|r| coverage_patch_particles(&d, r, &spec, 1).len())
            .sum();
        assert!(
            (15_500..=16_500).contains(&total),
            "total must stay ~constant, got {total}"
        );
    }

    #[test]
    fn occupied_patches_get_denser_as_coverage_shrinks() {
        let d = decomp();
        let full = coverage_patch_particles(&d, 0, &CoverageSpec::new(1.0, 16_000), 1).len();
        let quarter = coverage_patch_particles(&d, 0, &CoverageSpec::new(0.25, 16_000), 1).len();
        assert!(
            quarter > 3 * full,
            "25% coverage should ~4× the density: {full} vs {quarter}"
        );
    }

    #[test]
    fn counts_match_materialization() {
        let d = decomp();
        let spec = CoverageSpec::new(0.25, 10_000);
        let counts = coverage_counts(&d, &spec);
        for (r, &c) in counts.iter().enumerate() {
            assert_eq!(c as usize, coverage_patch_particles(&d, r, &spec, 9).len());
        }
    }

    #[test]
    fn particles_inside_occupied_region() {
        let d = decomp();
        let spec = CoverageSpec::new(0.125, 8_000);
        let region = spec.occupied_region(&d.bounds);
        for r in 0..d.nprocs() {
            for p in coverage_patch_particles(&d, r, &spec, 3) {
                assert!(region.contains(p.position));
            }
        }
    }

    #[test]
    #[should_panic(expected = "coverage fraction")]
    fn rejects_zero_fraction() {
        CoverageSpec::new(0.0, 100);
    }

    #[test]
    fn density_variant_keeps_per_patch_count_and_shrinks_total() {
        let d = decomp();
        let full = coverage_counts_density(&d, 1.0, 100);
        let half = coverage_counts_density(&d, 0.5, 100);
        assert!(full.iter().all(|&c| c == 100));
        assert_eq!(full.iter().sum::<u64>(), 1600);
        assert_eq!(half.iter().sum::<u64>(), 800, "total shrinks with coverage");
        for (r, &got) in half.iter().enumerate() {
            let expect = if d.patch_coords(r)[0] < 2 { 100 } else { 0 };
            assert_eq!(got, expect);
        }
    }
}
