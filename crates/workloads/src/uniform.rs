//! Uniform-resolution workload: the paper's weak-scaling configuration
//! (§5.1) — every process patch holds the same number of uniformly
//! distributed particles.

use crate::{make_particle, rank_rng, sample_in};
use spio_types::{DomainDecomposition, Particle, Rank};

/// Generate `count` particles uniformly distributed inside `rank`'s patch.
///
/// Deterministic in `(seed, rank)`; different ranks draw from independent
/// streams. Particle ids are globally unique.
pub fn uniform_patch_particles(
    decomp: &DomainDecomposition,
    rank: Rank,
    count: usize,
    seed: u64,
) -> Vec<Particle> {
    let bounds = decomp.patch_bounds(rank);
    let mut rng = rank_rng(seed, rank);
    (0..count)
        .map(|i| make_particle(sample_in(&mut rng, &bounds), rank, i as u64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spio_types::{Aabb3, GridDims};

    fn decomp() -> DomainDecomposition {
        DomainDecomposition::uniform(Aabb3::new([0.0; 3], [2.0; 3]), GridDims::new(2, 2, 2))
    }

    #[test]
    fn particles_stay_in_their_patch() {
        let d = decomp();
        for rank in 0..d.nprocs() {
            let ps = uniform_patch_particles(&d, rank, 500, 11);
            let b = d.patch_bounds(rank);
            assert_eq!(ps.len(), 500);
            assert!(ps.iter().all(|p| b.contains(p.position)));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let d = decomp();
        let a = uniform_patch_particles(&d, 3, 100, 5);
        let b = uniform_patch_particles(&d, 3, 100, 5);
        let c = uniform_patch_particles(&d, 3, 100, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ids_unique_across_two_ranks() {
        let d = decomp();
        let mut ids: Vec<u64> = uniform_patch_particles(&d, 0, 50, 1)
            .into_iter()
            .chain(uniform_patch_particles(&d, 1, 50, 1))
            .map(|p| p.id)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 100);
    }

    #[test]
    fn zero_count_is_fine() {
        assert!(uniform_patch_particles(&decomp(), 0, 0, 1).is_empty());
    }
}
