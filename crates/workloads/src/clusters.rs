//! Gaussian-cluster workload: non-uniform density in the style of
//! cosmology halos (paper Fig. 10a — "some spatial region of the simulation
//! domain has a lower particle density compared to others").
//!
//! A fixed set of isotropic Gaussian clusters (deterministically placed from
//! the seed) defines a density field over the domain; each rank samples its
//! patch's share of the global particle budget by rejection against the
//! local density. The per-rank particle counts therefore vary with space —
//! exactly the imbalance the adaptive aggregation of §6 targets — while the
//! global budget stays (approximately) fixed.

use crate::{make_particle, rank_rng, sample_in};
use spio_types::{Aabb3, DomainDecomposition, Particle, Rank};
use spio_util::Rng;

/// Parameters of a Gaussian-cluster mixture.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Number of clusters.
    pub clusters: usize,
    /// Cluster standard deviation as a fraction of the domain diagonal.
    pub sigma_frac: f64,
    /// Uniform background density floor in [0, 1] relative to the cluster
    /// peaks (0 = particles only near clusters).
    pub background: f64,
    /// Global particle budget (approximate; realized per-rank by density
    /// integration).
    pub total_particles: u64,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec {
            clusters: 8,
            sigma_frac: 0.05,
            background: 0.02,
            total_particles: 1 << 20,
        }
    }
}

/// A realized mixture: cluster centers plus the spec.
#[derive(Debug, Clone)]
pub struct ClusterField {
    spec: ClusterSpec,
    centers: Vec<[f64; 3]>,
    sigma: f64,
}

impl ClusterField {
    /// Place cluster centers deterministically inside `domain`.
    pub fn new(spec: ClusterSpec, domain: &Aabb3, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed ^ 0xC1A5_7E25);
        let centers = (0..spec.clusters)
            .map(|_| sample_in(&mut rng, domain))
            .collect();
        let e = domain.extent();
        let diag = (e[0] * e[0] + e[1] * e[1] + e[2] * e[2]).sqrt();
        ClusterField {
            sigma: spec.sigma_frac * diag,
            spec,
            centers,
        }
    }

    /// Unnormalized density at `p` in [background, ~clusters].
    pub fn density(&self, p: [f64; 3]) -> f64 {
        let inv_2s2 = 1.0 / (2.0 * self.sigma * self.sigma);
        let mut d = self.spec.background;
        for c in &self.centers {
            let dx = p[0] - c[0];
            let dy = p[1] - c[1];
            let dz = p[2] - c[2];
            d += (-(dx * dx + dy * dy + dz * dz) * inv_2s2).exp();
        }
        d
    }

    /// Monte-Carlo estimate of the mean density over `bounds` (used to
    /// apportion the global budget to patches). Deterministic in `seed`.
    pub fn mean_density(&self, bounds: &Aabb3, seed: u64, samples: usize) -> f64 {
        let mut rng = Rng::seed_from_u64(seed ^ 0x0DD5);
        let sum: f64 = (0..samples)
            .map(|_| self.density(sample_in(&mut rng, bounds)))
            .sum();
        sum / samples as f64
    }
}

/// Generate `rank`'s particles for a cluster workload.
///
/// The patch's share of `spec.total_particles` is proportional to its mean
/// density estimate; positions are drawn by rejection sampling against the
/// density restricted to the patch.
pub fn cluster_patch_particles(
    decomp: &DomainDecomposition,
    rank: Rank,
    spec: &ClusterSpec,
    seed: u64,
) -> Vec<Particle> {
    let field = ClusterField::new(spec.clone(), &decomp.bounds, seed);
    let bounds = decomp.patch_bounds(rank);
    // Apportion budget: mean density of this patch over the sum across all
    // patches. Every rank computes the same totals deterministically, so no
    // communication is needed.
    let mine = field.mean_density(&bounds, seed.wrapping_add(rank as u64), 256);
    let all: f64 = (0..decomp.nprocs())
        .map(|r| field.mean_density(&decomp.patch_bounds(r), seed.wrapping_add(r as u64), 256))
        .sum();
    let count = if all > 0.0 {
        ((spec.total_particles as f64) * mine / all).round() as usize
    } else {
        0
    };

    // Rejection-sample positions against the local density. The local
    // maximum is estimated from the patch samples; a 1.5× safety margin
    // keeps acceptance correct-enough while bounding the loop.
    let mut rng = rank_rng(seed, rank);
    let mut local_max: f64 = f64::MIN;
    for _ in 0..128 {
        local_max = local_max.max(field.density(sample_in(&mut rng, &bounds)));
    }
    let ceiling = (local_max * 1.5).max(spec.background);
    let mut out = Vec::with_capacity(count);
    let mut local: u64 = 0;
    while out.len() < count {
        let p = sample_in(&mut rng, &bounds);
        if rng.f64() * ceiling <= field.density(p) {
            out.push(make_particle(p, rank, local));
            local += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spio_types::GridDims;

    fn decomp() -> DomainDecomposition {
        DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(2, 2, 2))
    }

    fn small_spec() -> ClusterSpec {
        ClusterSpec {
            clusters: 2,
            sigma_frac: 0.08,
            background: 0.01,
            total_particles: 4000,
        }
    }

    #[test]
    fn density_peaks_at_centers() {
        let d = decomp();
        let f = ClusterField::new(small_spec(), &d.bounds, 3);
        let c = f.centers[0];
        let far = [
            (c[0] + 0.5).rem_euclid(1.0),
            (c[1] + 0.5).rem_euclid(1.0),
            (c[2] + 0.5).rem_euclid(1.0),
        ];
        assert!(f.density(c) > f.density(far));
    }

    #[test]
    fn counts_vary_and_total_is_close_to_budget() {
        let d = decomp();
        let spec = small_spec();
        let counts: Vec<usize> = (0..d.nprocs())
            .map(|r| cluster_patch_particles(&d, r, &spec, 9).len())
            .collect();
        let total: usize = counts.iter().sum();
        let budget = spec.total_particles as usize;
        assert!(
            total as f64 > budget as f64 * 0.9 && (total as f64) < budget as f64 * 1.1,
            "total {total} too far from budget {budget}"
        );
        assert!(
            counts.iter().max() > counts.iter().min(),
            "cluster workload should be imbalanced: {counts:?}"
        );
    }

    #[test]
    fn particles_stay_in_patch() {
        let d = decomp();
        let ps = cluster_patch_particles(&d, 5, &small_spec(), 1);
        let b = d.patch_bounds(5);
        assert!(ps.iter().all(|p| b.contains(p.position)));
    }

    #[test]
    fn deterministic() {
        let d = decomp();
        let a = cluster_patch_particles(&d, 2, &small_spec(), 4);
        let b = cluster_patch_particles(&d, 2, &small_spec(), 4);
        assert_eq!(a, b);
    }
}
