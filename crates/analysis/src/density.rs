//! Density fields: particles splatted onto a uniform grid — the substrate
//! for stencil operations and the fidelity metric of the Fig. 9
//! reproduction.

use spio_core::{DatasetReader, Storage};
use spio_types::{Aabb3, Particle, SpioError};

/// A scalar field on a uniform `nx × ny × nz` grid over some bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct DensityField {
    pub bounds: Aabb3,
    pub dims: [usize; 3],
    /// Cell values, x-fastest.
    pub cells: Vec<f64>,
}

impl DensityField {
    /// Zero-initialized field.
    pub fn new(bounds: Aabb3, dims: [usize; 3]) -> Self {
        assert!(dims.iter().all(|&d| d > 0), "field dims must be positive");
        DensityField {
            bounds,
            dims,
            cells: vec![0.0; dims[0] * dims[1] * dims[2]],
        }
    }

    fn idx(&self, c: [usize; 3]) -> usize {
        c[0] + self.dims[0] * (c[1] + self.dims[1] * c[2])
    }

    /// Count-splat particles into the field (nearest cell).
    pub fn splat(&mut self, particles: &[Particle]) {
        for p in particles {
            if !self.bounds.contains(p.position) {
                continue;
            }
            let c = self.bounds.cell_of(self.dims, p.position);
            let i = self.idx(c);
            self.cells[i] += 1.0;
        }
    }

    /// Build from an entire dataset.
    pub fn from_dataset<S: Storage>(
        reader: &DatasetReader,
        storage: &S,
        dims: [usize; 3],
    ) -> Result<Self, SpioError> {
        let mut field = DensityField::new(reader.meta.domain, dims);
        // Per-file accumulation avoids holding the whole dataset at once.
        for entry in reader.meta.entries.clone() {
            let q = entry.bounds;
            let (ps, _) = reader.read_box(storage, &q)?;
            field.splat(&ps);
        }
        Ok(field)
    }

    /// Total splatted weight.
    pub fn total(&self) -> f64 {
        self.cells.iter().sum()
    }

    /// Value at cell coordinates.
    pub fn at(&self, c: [usize; 3]) -> f64 {
        self.cells[self.idx(c)]
    }

    /// A 6-point Laplacian stencil of the field (zero at boundary cells) —
    /// the "stencil operations" workload of §3.
    pub fn laplacian(&self) -> DensityField {
        let mut out = DensityField::new(self.bounds, self.dims);
        let [nx, ny, nz] = self.dims;
        for z in 1..nz.saturating_sub(1) {
            for y in 1..ny.saturating_sub(1) {
                for x in 1..nx.saturating_sub(1) {
                    let c = self.at([x, y, z]);
                    let sum = self.at([x - 1, y, z])
                        + self.at([x + 1, y, z])
                        + self.at([x, y - 1, z])
                        + self.at([x, y + 1, z])
                        + self.at([x, y, z - 1])
                        + self.at([x, y, z + 1]);
                    let i = out.idx([x, y, z]);
                    out.cells[i] = sum - 6.0 * c;
                }
            }
        }
        out
    }

    /// Root-mean-square difference against another field of the same
    /// shape, with `other` scaled by `scale` first (for comparing LOD
    /// prefixes against full data).
    pub fn rms_diff(&self, other: &DensityField, scale: f64) -> f64 {
        assert_eq!(self.dims, other.dims, "field shapes must match");
        let se: f64 = self
            .cells
            .iter()
            .zip(&other.cells)
            .map(|(a, b)| {
                let d = a - b * scale;
                d * d
            })
            .sum();
        (se / self.cells.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Aabb3 {
        Aabb3::new([0.0; 3], [1.0; 3])
    }

    fn particle_at(p: [f64; 3]) -> Particle {
        Particle::synthetic(p, 0)
    }

    #[test]
    fn splat_counts_and_ignores_outside() {
        let mut f = DensityField::new(unit(), [2, 2, 2]);
        f.splat(&[
            particle_at([0.1, 0.1, 0.1]),
            particle_at([0.6, 0.1, 0.1]),
            particle_at([0.6, 0.1, 0.1]),
            particle_at([5.0, 5.0, 5.0]), // outside
        ]);
        assert_eq!(f.total(), 3.0);
        assert_eq!(f.at([0, 0, 0]), 1.0);
        assert_eq!(f.at([1, 0, 0]), 2.0);
    }

    #[test]
    fn laplacian_of_uniform_interior_is_zero() {
        let mut f = DensityField::new(unit(), [5, 5, 5]);
        f.cells.iter_mut().for_each(|c| *c = 3.0);
        let l = f.laplacian();
        assert_eq!(l.at([2, 2, 2]), 0.0);
        // A point spike produces the classic -6/+1 pattern.
        let mut f = DensityField::new(unit(), [5, 5, 5]);
        let mid = f.idx([2, 2, 2]);
        f.cells[mid] = 1.0;
        let l = f.laplacian();
        assert_eq!(l.at([2, 2, 2]), -6.0);
        assert_eq!(l.at([1, 2, 2]), 1.0);
        assert_eq!(l.at([2, 3, 2]), 1.0);
    }

    #[test]
    fn rms_diff_with_scaling() {
        let mut a = DensityField::new(unit(), [2, 1, 1]);
        let mut b = DensityField::new(unit(), [2, 1, 1]);
        a.cells = vec![4.0, 8.0];
        b.cells = vec![2.0, 4.0];
        assert!(a.rms_diff(&b, 2.0) < 1e-12, "scaled halves match");
        assert!(a.rms_diff(&b, 1.0) > 1.0);
    }

    #[test]
    #[should_panic(expected = "field shapes must match")]
    fn rms_diff_shape_mismatch_panics() {
        let a = DensityField::new(unit(), [2, 1, 1]);
        let b = DensityField::new(unit(), [1, 2, 1]);
        a.rms_diff(&b, 1.0);
    }
}
