//! # spio-analysis
//!
//! Post-processing analysis built on the spatially-aware format — the
//! tasks the paper motivates the layout with ("a range of standard
//! analysis and visualization tasks are dependent on region-based queries,
//! e.g.: nearest neighbour search, vector field integration, stencil
//! operations", §3):
//!
//! * [`neighbors`] — radius queries and k-nearest-neighbour search that
//!   open only the files their search region touches;
//! * [`density`] — density fields sampled onto uniform grids;
//! * [`estimate`] — progressive statistics from LOD prefixes: estimate a
//!   quantity from a cheap low-resolution read, with refinement as more
//!   levels stream in;
//! * [`histogram`] — attribute histograms, exact or LOD-estimated, with
//!   bin bounds from the §3.5 attribute-range metadata.

pub mod density;
pub mod estimate;
pub mod histogram;
pub mod neighbors;

pub use density::DensityField;
pub use estimate::ProgressiveEstimator;
pub use histogram::{density_histogram, density_histogram_lod, Histogram};
pub use neighbors::{k_nearest, radius_query};
