//! Neighbourhood queries: the paper's "nearest neighbour search" analysis
//! task, made file-selective by the spatial metadata.

use spio_core::{DatasetReader, ReadStats, Storage};
use spio_types::{Aabb3, Particle, SpioError};

fn dist2(a: [f64; 3], b: [f64; 3]) -> f64 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    let dz = a[2] - b[2];
    dx * dx + dy * dy + dz * dz
}

/// All particles within `radius` of `center`. Internally a box query over
/// the bounding cube of the sphere (so only intersecting files are
/// opened), filtered to the exact ball.
pub fn radius_query<S: Storage>(
    reader: &DatasetReader,
    storage: &S,
    center: [f64; 3],
    radius: f64,
) -> Result<(Vec<Particle>, ReadStats), SpioError> {
    if radius < 0.0 {
        return Err(SpioError::Config("radius must be non-negative".into()));
    }
    let b = Aabb3::new(
        [center[0] - radius, center[1] - radius, center[2] - radius],
        [
            center[0] + radius,
            center[1] + radius,
            // Half-open boxes: nudge the hi face so points exactly at
            // center+radius are still inside the candidate box.
            center[2] + radius,
        ],
    );
    let (candidates, mut stats) = reader.read_box(storage, &grow(&b))?;
    let r2 = radius * radius;
    let before = candidates.len();
    let hits: Vec<Particle> = candidates
        .into_iter()
        .filter(|p| dist2(p.position, center) <= r2)
        .collect();
    stats.particles_discarded += (before - hits.len()) as u64;
    stats.particles_read = hits.len() as u64;
    Ok((hits, stats))
}

/// The `k` particles nearest to `center`, found by expanding-box search:
/// start from a radius that would hold `k` particles at the dataset's mean
/// density, and double until `k` are inside the ball (or the domain is
/// exhausted). Returns particles sorted by distance, closest first.
pub fn k_nearest<S: Storage>(
    reader: &DatasetReader,
    storage: &S,
    center: [f64; 3],
    k: usize,
) -> Result<(Vec<Particle>, ReadStats), SpioError> {
    if k == 0 {
        return Ok((Vec::new(), ReadStats::default()));
    }
    let meta = &reader.meta;
    if (k as u64) > meta.total_particles {
        return Err(SpioError::Config(format!(
            "asked for {k} neighbours of {} total particles",
            meta.total_particles
        )));
    }
    // Initial radius from mean density: volume holding k particles.
    let mean_density = meta.total_particles as f64 / meta.domain.volume().max(1e-300);
    let mut radius = ((k as f64 / mean_density) * 3.0 / (4.0 * std::f64::consts::PI))
        .cbrt()
        .max(1e-9);
    let diag = {
        let e = meta.domain.extent();
        (e[0] * e[0] + e[1] * e[1] + e[2] * e[2]).sqrt()
    };
    let mut total_stats = ReadStats::default();
    loop {
        let (mut hits, stats) = radius_query(reader, storage, center, radius)?;
        total_stats.files_opened += stats.files_opened;
        total_stats.bytes_read += stats.bytes_read;
        if hits.len() >= k || radius > diag {
            hits.sort_by(|a, b| dist2(a.position, center).total_cmp(&dist2(b.position, center)));
            hits.truncate(k);
            total_stats.particles_read = hits.len() as u64;
            return Ok((hits, total_stats));
        }
        radius *= 2.0;
    }
}

/// Expand a box infinitesimally so half-open containment does not drop
/// points exactly on the hi faces.
fn grow(b: &Aabb3) -> Aabb3 {
    let eps = 1e-12;
    Aabb3::new(b.lo, [b.hi[0] + eps, b.hi[1] + eps, b.hi[2] + eps])
}

#[cfg(test)]
mod tests {
    use super::*;
    use spio_comm::{run_threaded_collect, Comm};
    use spio_core::{MemStorage, SpatialWriter, WriterConfig};
    use spio_types::{DomainDecomposition, GridDims, PartitionFactor};
    use spio_workloads::uniform_patch_particles;

    fn dataset() -> MemStorage {
        let storage = MemStorage::new();
        let s = storage.clone();
        let d =
            DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(4, 2, 2));
        run_threaded_collect(16, move |comm| {
            let ps = uniform_patch_particles(&d, comm.rank(), 500, 17);
            SpatialWriter::new(d.clone(), WriterConfig::new(PartitionFactor::new(2, 2, 1)))
                .write(&comm, &ps, &s)
                .unwrap();
        })
        .unwrap();
        storage
    }

    #[test]
    fn radius_query_matches_brute_force() {
        let storage = dataset();
        let reader = DatasetReader::open(&storage).unwrap();
        let (all, _) = reader.read_all(&storage).unwrap();
        let center = [0.3, 0.6, 0.4];
        for radius in [0.05, 0.15, 0.4] {
            let (hits, _) = radius_query(&reader, &storage, center, radius).unwrap();
            let expected = all
                .iter()
                .filter(|p| dist2(p.position, center) <= radius * radius)
                .count();
            assert_eq!(hits.len(), expected, "radius {radius}");
            assert!(hits
                .iter()
                .all(|p| dist2(p.position, center) <= radius * radius));
        }
    }

    #[test]
    fn small_radius_opens_few_files() {
        let storage = dataset();
        let reader = DatasetReader::open(&storage).unwrap();
        // Query well inside one partition.
        let (_, stats) = radius_query(&reader, &storage, [0.12, 0.25, 0.25], 0.05).unwrap();
        assert_eq!(stats.files_opened, 1);
        let total_files = reader.meta.entries.len() as u64;
        assert!(total_files > 1);
    }

    #[test]
    fn k_nearest_matches_brute_force() {
        let storage = dataset();
        let reader = DatasetReader::open(&storage).unwrap();
        let (all, _) = reader.read_all(&storage).unwrap();
        let center = [0.71, 0.31, 0.62];
        for k in [1usize, 5, 50] {
            let (knn, _) = k_nearest(&reader, &storage, center, k).unwrap();
            assert_eq!(knn.len(), k);
            // Distances are sorted.
            let d: Vec<f64> = knn.iter().map(|p| dist2(p.position, center)).collect();
            assert!(d.windows(2).all(|w| w[0] <= w[1]));
            // The k-th distance matches brute force.
            let mut brute: Vec<f64> = all.iter().map(|p| dist2(p.position, center)).collect();
            brute.sort_by(f64::total_cmp);
            assert!(
                (d[k - 1] - brute[k - 1]).abs() < 1e-12,
                "k={k}: {} vs {}",
                d[k - 1],
                brute[k - 1]
            );
        }
    }

    #[test]
    fn k_nearest_edge_cases() {
        let storage = dataset();
        let reader = DatasetReader::open(&storage).unwrap();
        let (none, _) = k_nearest(&reader, &storage, [0.5; 3], 0).unwrap();
        assert!(none.is_empty());
        assert!(k_nearest(&reader, &storage, [0.5; 3], 10_000_000).is_err());
        // Center outside the domain still works (expansion reaches in).
        let (hits, _) = k_nearest(&reader, &storage, [2.0, 2.0, 2.0], 3).unwrap();
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn negative_radius_rejected() {
        let storage = dataset();
        let reader = DatasetReader::open(&storage).unwrap();
        assert!(radius_query(&reader, &storage, [0.5; 3], -1.0).is_err());
    }
}
