//! Attribute histograms — exact, or estimated from a level-of-detail
//! prefix. Estimating a density distribution from the first levels and
//! refining it later is the analysis analogue of progressive rendering
//! (§4), and the §3.5 attribute ranges give the natural bin bounds.

use spio_core::{DatasetReader, Storage};
use spio_types::{Particle, SpioError};

/// A fixed-bin 1-D histogram over `[lo, hi)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    pub lo: f64,
    pub hi: f64,
    pub counts: Vec<u64>,
    /// Samples outside `[lo, hi)`.
    pub outliers: u64,
}

impl Histogram {
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0 && hi > lo, "need positive bins and a real range");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            outliers: 0,
        }
    }

    pub fn add(&mut self, value: f64) {
        if value < self.lo || value >= self.hi {
            self.outliers += 1;
            return;
        }
        let t = (value - self.lo) / (self.hi - self.lo);
        let bin = ((t * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
        self.counts[bin] += 1;
    }

    pub fn add_densities(&mut self, particles: &[Particle]) {
        for p in particles {
            self.add(p.density);
        }
    }

    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.outliers
    }

    /// Normalized frequencies (empty histogram gives zeros).
    pub fn frequencies(&self) -> Vec<f64> {
        let total = self.total().max(1) as f64;
        self.counts.iter().map(|&c| c as f64 / total).collect()
    }

    /// L1 distance between two histograms' frequency vectors (0 = same
    /// shape, 2 = disjoint).
    pub fn l1_distance(&self, other: &Histogram) -> f64 {
        assert_eq!(self.counts.len(), other.counts.len(), "bin counts differ");
        self.frequencies()
            .iter()
            .zip(other.frequencies())
            .map(|(a, b)| (a - b).abs())
            .sum()
    }
}

/// Exact density histogram of a whole dataset, with bin bounds taken from
/// the recorded §3.5 attribute ranges when present.
pub fn density_histogram<S: Storage>(
    reader: &DatasetReader,
    storage: &S,
    bins: usize,
) -> Result<Histogram, SpioError> {
    let (lo, hi) = density_bounds(reader);
    let mut h = Histogram::new(lo, hi, bins);
    for entry in reader.meta.entries.clone() {
        let (ps, _) = reader.read_box(storage, &entry.bounds)?;
        h.add_densities(&ps);
    }
    Ok(h)
}

/// Density histogram estimated from a LOD prefix covering `fraction` of
/// the dataset — reads only proportional prefixes of every file.
pub fn density_histogram_lod<S: Storage>(
    reader: &DatasetReader,
    storage: &S,
    bins: usize,
    fraction: f64,
) -> Result<Histogram, SpioError> {
    use spio_format::data_file::{decode_prefix, payload_range};
    use spio_format::LodParams;
    let (lo, hi) = density_bounds(reader);
    let mut h = Histogram::new(lo, hi, bins);
    let total = reader.meta.total_particles;
    let target = (total as f64 * fraction.clamp(0.0, 1.0)).round() as u64;
    for entry in &reader.meta.entries {
        let take = LodParams::file_prefix(entry.particle_count, total, target);
        if take == 0 {
            continue;
        }
        let (_, end) = payload_range(0, take as usize);
        let bytes = storage.read_range(&entry.file_name(), 0, end)?;
        let (_, ps) = decode_prefix(&bytes, take as usize)?;
        h.add_densities(&ps);
    }
    Ok(h)
}

fn density_bounds(reader: &DatasetReader) -> (f64, f64) {
    if let Some(ranges) = &reader.meta.attr_ranges {
        let lo = ranges
            .iter()
            .map(|r| r.density_min)
            .fold(f64::MAX, f64::min);
        let hi = ranges
            .iter()
            .map(|r| r.density_max)
            .fold(f64::MIN, f64::max);
        if lo < hi {
            // Nudge so the max lands inside the last half-open bin.
            return (lo, hi + (hi - lo) * 1e-9 + f64::MIN_POSITIVE);
        }
    }
    (0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spio_comm::{run_threaded_collect, Comm};
    use spio_core::{MemStorage, SpatialWriter, WriterConfig};
    use spio_types::{Aabb3, DomainDecomposition, GridDims, PartitionFactor};

    fn dataset() -> MemStorage {
        let storage = MemStorage::new();
        let s = storage.clone();
        let d =
            DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(4, 2, 1));
        run_threaded_collect(8, move |comm| {
            let b = d.patch_bounds(comm.rank());
            let n = 4000;
            let ps: Vec<Particle> = (0..n)
                .map(|i| {
                    let t = (i as f64 + 0.5) / n as f64;
                    let mut p = Particle::synthetic(
                        [
                            b.lo[0] + t * (b.hi[0] - b.lo[0]) * 0.999,
                            b.center()[1],
                            0.5,
                        ],
                        ((comm.rank() as u64) << 32) | i as u64,
                    );
                    // Bimodal density: half the ranks centered at 2, half at 8.
                    p.density = if comm.rank() % 2 == 0 { 2.0 } else { 8.0 } + t;
                    p
                })
                .collect();
            SpatialWriter::new(d.clone(), WriterConfig::new(PartitionFactor::new(2, 2, 1)))
                .write(&comm, &ps, &s)
                .unwrap();
        })
        .unwrap();
        storage
    }

    #[test]
    fn histogram_mechanics() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for v in [0.0, 1.9, 2.0, 9.99, -1.0, 10.0] {
            h.add(v);
        }
        assert_eq!(h.counts, vec![2, 1, 0, 0, 1]);
        assert_eq!(h.outliers, 2);
        assert_eq!(h.total(), 6);
        let f = h.frequencies();
        assert!((f[0] - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn exact_histogram_is_bimodal_and_complete() {
        let storage = dataset();
        let reader = DatasetReader::open(&storage).unwrap();
        let h = density_histogram(&reader, &storage, 10).unwrap();
        assert_eq!(h.total(), 32_000);
        assert_eq!(h.outliers, 0, "attr-range bounds must cover everything");
        // Two humps: mass near the low and high ends, a gap between.
        let f = h.frequencies();
        let low: f64 = f[..3].iter().sum();
        let mid: f64 = f[4..6].iter().sum();
        let high: f64 = f[7..].iter().sum();
        assert!(low > 0.3 && high > 0.3, "bimodal: {f:?}");
        assert!(mid < 0.15, "gap between modes: {f:?}");
    }

    #[test]
    fn lod_estimate_converges_to_exact() {
        let storage = dataset();
        let reader = DatasetReader::open(&storage).unwrap();
        let exact = density_histogram(&reader, &storage, 16).unwrap();
        let rough = density_histogram_lod(&reader, &storage, 16, 0.02).unwrap();
        let fine = density_histogram_lod(&reader, &storage, 16, 0.5).unwrap();
        let full = density_histogram_lod(&reader, &storage, 16, 1.0).unwrap();
        let d_rough = exact.l1_distance(&rough);
        let d_fine = exact.l1_distance(&fine);
        let d_full = exact.l1_distance(&full);
        assert!(d_full < 1e-12, "100% prefix is exact: {d_full}");
        assert!(d_fine <= d_rough + 1e-9, "{d_rough} → {d_fine}");
        assert!(d_rough < 0.5, "even 2% is a usable estimate: {d_rough}");
        // And the rough estimate read ~2% of the data.
        assert!(rough.total() < exact.total() / 20);
    }

    #[test]
    #[should_panic(expected = "bin counts differ")]
    fn l1_distance_shape_mismatch_panics() {
        let a = Histogram::new(0.0, 1.0, 4);
        let b = Histogram::new(0.0, 1.0, 5);
        a.l1_distance(&b);
    }
}
