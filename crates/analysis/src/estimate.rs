//! Progressive statistics from LOD prefixes.
//!
//! Because the LOD layout stores each file as a uniform random permutation
//! of its partition, a prefix is an unbiased sample: any mean-like
//! statistic computed from the first levels estimates the full-dataset
//! value, and refines as further levels stream in. This is the analysis
//! counterpart of the paper's progressive visualization (§4): "an
//! application can query a low level of detail to quickly display a
//! representative subset … and over time … load subsequent levels".

use spio_core::{LodCursor, Storage};
use spio_types::{Particle, SpioError};

/// Accumulates particles level by level and maintains running estimates
/// with simple standard-error bounds.
pub struct ProgressiveEstimator {
    cursor: LodCursor,
    total_particles: u64,
    samples: u64,
    sum_density: f64,
    sum_density_sq: f64,
    levels_read: u32,
}

/// A point-in-time estimate of the dataset's mean density.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    pub levels_read: u32,
    pub samples: u64,
    pub mean_density: f64,
    /// Standard error of the mean (0 when everything has been read).
    pub std_error: f64,
    /// Fraction of the dataset consumed.
    pub fraction: f64,
}

impl ProgressiveEstimator {
    /// Estimator over the files of `cursor` (typically the whole dataset
    /// for one reader).
    pub fn new(cursor: LodCursor, total_particles: u64) -> Self {
        ProgressiveEstimator {
            cursor,
            total_particles,
            samples: 0,
            sum_density: 0.0,
            sum_density_sq: 0.0,
            levels_read: 0,
        }
    }

    fn absorb(&mut self, particles: &[Particle]) {
        for p in particles {
            self.samples += 1;
            self.sum_density += p.density;
            self.sum_density_sq += p.density * p.density;
        }
    }

    /// Read one more level and return the refreshed estimate. Returns
    /// `None` when all levels are consumed.
    pub fn refine<S: Storage>(&mut self, storage: &S) -> Result<Option<Estimate>, SpioError> {
        if self.cursor.next_level() >= self.cursor.num_levels() {
            return Ok(None);
        }
        let (particles, _) = self.cursor.read_next_level(storage)?;
        self.absorb(&particles);
        self.levels_read += 1;
        Ok(Some(self.current()))
    }

    /// The current estimate.
    pub fn current(&self) -> Estimate {
        let n = self.samples.max(1) as f64;
        let mean = self.sum_density / n;
        let var = (self.sum_density_sq / n - mean * mean).max(0.0);
        // Finite-population correction: the error vanishes as the sample
        // approaches the whole dataset.
        let fraction = self.samples as f64 / self.total_particles.max(1) as f64;
        let fpc = (1.0 - fraction).max(0.0);
        Estimate {
            levels_read: self.levels_read,
            samples: self.samples,
            mean_density: mean,
            std_error: (var / n * fpc).sqrt(),
            fraction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spio_comm::{run_threaded_collect, Comm};
    use spio_core::{DatasetReader, MemStorage, SpatialWriter, WriterConfig};
    use spio_types::{Aabb3, DomainDecomposition, GridDims, PartitionFactor};

    /// Dataset where density varies smoothly with x, so the true mean is
    /// known and prefix estimates must converge to it.
    fn dataset() -> (MemStorage, f64) {
        let storage = MemStorage::new();
        let s = storage.clone();
        let d =
            DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(4, 2, 1));
        run_threaded_collect(8, move |comm| {
            let b = d.patch_bounds(comm.rank());
            let n = 2000;
            let ps: Vec<_> = (0..n)
                .map(|i| {
                    let t = (i as f64 + 0.5) / n as f64;
                    let x = b.lo[0] + t * (b.hi[0] - b.lo[0]) * 0.999;
                    let mut p = spio_types::Particle::synthetic(
                        [x, b.center()[1], 0.5],
                        ((comm.rank() as u64) << 32) | i as u64,
                    );
                    p.density = 10.0 * x; // mean over uniform x ≈ 5.0
                    p
                })
                .collect();
            SpatialWriter::new(d.clone(), WriterConfig::new(PartitionFactor::new(2, 2, 1)))
                .write(&comm, &ps, &s)
                .unwrap();
        })
        .unwrap();
        (storage, 5.0)
    }

    #[test]
    fn estimates_converge_with_shrinking_error() {
        let (storage, true_mean) = dataset();
        let reader = DatasetReader::open(&storage).unwrap();
        let indices: Vec<usize> = (0..reader.meta.entries.len()).collect();
        let cursor = LodCursor::new(&reader.meta, &indices, 1);
        let mut est = ProgressiveEstimator::new(cursor, reader.meta.total_particles);
        let mut history = Vec::new();
        while let Some(e) = est.refine(&storage).unwrap() {
            history.push(e);
        }
        let last = history.last().unwrap();
        assert!((last.fraction - 1.0).abs() < 1e-9, "consumed everything");
        assert!(
            (last.mean_density - true_mean).abs() < 0.05,
            "final mean {} vs true {true_mean}",
            last.mean_density
        );
        assert!(last.std_error < 1e-6, "no error left at 100%");
        // Early estimates are already in the right ballpark and carry
        // honest error bars.
        let early = &history[2]; // three levels ≈ a few hundred samples
        assert!(
            (early.mean_density - true_mean).abs() < 10.0 * early.std_error + 0.5,
            "early mean {} ± {} vs {true_mean}",
            early.mean_density,
            early.std_error
        );
        // Error shrinks monotonically-ish with more data.
        assert!(history.first().unwrap().std_error > last.std_error);
    }

    #[test]
    fn refine_stops_after_all_levels() {
        let (storage, _) = dataset();
        let reader = DatasetReader::open(&storage).unwrap();
        let indices: Vec<usize> = (0..reader.meta.entries.len()).collect();
        let cursor = LodCursor::new(&reader.meta, &indices, 1);
        let levels = cursor.num_levels();
        let mut est = ProgressiveEstimator::new(cursor, reader.meta.total_particles);
        let mut n = 0;
        while est.refine(&storage).unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, levels);
        assert!(est.refine(&storage).unwrap().is_none(), "stays exhausted");
    }
}
