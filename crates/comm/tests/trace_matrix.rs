//! Property test: the traced communication matrix is a double-entry ledger —
//! for random message plans, every byte recorded as sent is also recorded as
//! received, per `(src, dst, tag)` cell.

use spio_comm::{run_threaded, Comm, TracedComm};
use spio_trace::{JobReport, Trace};
use spio_util::check::{cases, Gen};

#[test]
fn comm_matrix_conserves_bytes() {
    cases(16, |g: &mut Gen| {
        let n = g.usize_in(2, 6);
        // A random global message plan. Every rank knows the whole plan, so
        // receivers can post matching receives in plan order (the mailbox's
        // non-overtaking rule keeps same-(src,tag) messages matched up).
        let plan: Vec<(usize, usize, u32, usize)> = (0..g.usize_in(1, 24))
            .map(|_| (g.index(n), g.index(n), g.u32_in(0, 7), g.usize_in(0, 256)))
            .collect();
        let trace = Trace::collecting();
        let t = trace.clone();
        let plan2 = plan.clone();
        run_threaded(n, move |comm| {
            let comm = TracedComm::new(comm, t.clone());
            for &(src, dst, tag, len) in &plan2 {
                if comm.rank() == src {
                    comm.send(dst, tag, vec![0xC3; len]);
                }
            }
            for &(src, dst, tag, len) in &plan2 {
                if comm.rank() == dst {
                    assert_eq!(comm.recv(src, tag).unwrap().len(), len);
                }
            }
        })
        .unwrap();

        let report = JobReport::from_snapshot(n, &trace.snapshot());
        assert!(
            report.comm_imbalances().is_empty(),
            "sent/received mismatch for plan {plan:?}"
        );
        let expected: u64 = plan.iter().map(|&(_, _, _, len)| len as u64).sum();
        assert_eq!(report.total_bytes_sent(), expected);
        let msgs: u64 = report.comm.iter().map(|c| c.msgs_sent).sum();
        assert_eq!(msgs, plan.len() as u64);
    });
}
