//! Property tests for the message-passing runtime: collectives must behave
//! like their MPI counterparts for arbitrary payload shapes and world
//! sizes.

use proptest::prelude::*;
use spio_comm::{run_threaded_collect, Comm};

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case spawns a world of threads
        ..ProptestConfig::default()
    })]

    #[test]
    fn allgather_any_block_shapes(
        n in 1usize..9,
        sizes in prop::collection::vec(0usize..64, 9),
        fill in any::<u8>(),
    ) {
        let sizes2 = sizes.clone();
        let results = run_threaded_collect(n, move |comm| {
            let mine = vec![fill ^ comm.rank() as u8; sizes2[comm.rank()]];
            comm.allgather(&mine)
        })
        .unwrap();
        for gathered in results {
            for (r, block) in gathered.iter().enumerate() {
                prop_assert_eq!(block.len(), sizes[r]);
                prop_assert!(block.iter().all(|&b| b == fill ^ r as u8));
            }
        }
    }

    #[test]
    fn alltoall_is_a_transpose(
        n in 1usize..7,
        seed in any::<u8>(),
    ) {
        let results = run_threaded_collect(n, move |comm| {
            let me = comm.rank();
            // Message to d encodes (src, dst, seed) with size (src + d) % 5.
            let sends: Vec<Vec<u8>> = (0..n)
                .map(|d| vec![me as u8 ^ d as u8 ^ seed; (me + d) % 5])
                .collect();
            comm.alltoall(sends)
        })
        .unwrap();
        for (dst, received) in results.into_iter().enumerate() {
            prop_assert_eq!(received.len(), n);
            for (src, msg) in received.into_iter().enumerate() {
                prop_assert_eq!(msg.len(), (src + dst) % 5);
                prop_assert!(msg.iter().all(|&b| b == src as u8 ^ dst as u8 ^ seed));
            }
        }
    }

    #[test]
    fn broadcast_any_root_any_payload(
        n in 1usize..9,
        root_pick in any::<prop::sample::Index>(),
        payload in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let root = root_pick.index(n);
        let p2 = payload.clone();
        let results = run_threaded_collect(n, move |comm| {
            let data = if comm.rank() == root { p2.clone() } else { vec![] };
            comm.broadcast(root, data)
        })
        .unwrap();
        for r in results {
            prop_assert_eq!(&r, &payload);
        }
    }

    #[test]
    fn gather_matches_contributions(
        n in 1usize..8,
        root_pick in any::<prop::sample::Index>(),
    ) {
        let root = root_pick.index(n);
        let results = run_threaded_collect(n, move |comm| {
            comm.gather_to(root, &[comm.rank() as u8, 0xAB])
        })
        .unwrap();
        for (r, res) in results.into_iter().enumerate() {
            if r == root {
                let blocks = res.unwrap();
                for (src, b) in blocks.into_iter().enumerate() {
                    prop_assert_eq!(b, vec![src as u8, 0xAB]);
                }
            } else {
                prop_assert!(res.is_none());
            }
        }
    }

    #[test]
    fn point_to_point_preserves_arbitrary_bytes(
        payload in prop::collection::vec(any::<u8>(), 0..512),
        tag in 0u32..1000,
    ) {
        let p2 = payload.clone();
        let results = run_threaded_collect(2, move |comm| {
            if comm.rank() == 0 {
                comm.send(1, tag, p2.clone());
                Vec::new()
            } else {
                comm.recv(0, tag)
            }
        })
        .unwrap();
        prop_assert_eq!(&results[1], &payload);
    }
}
