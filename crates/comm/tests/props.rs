//! Property tests for the message-passing runtime: collectives must behave
//! like their MPI counterparts for arbitrary payload shapes and world
//! sizes.

use spio_comm::{run_threaded_collect, Comm};
use spio_util::check::{cases, Gen};

// Each case spawns a world of threads, so keep the case counts modest.

#[test]
fn allgather_any_block_shapes() {
    cases(24, |g: &mut Gen| {
        let n = g.usize_in(1, 8);
        let sizes: Vec<usize> = (0..n).map(|_| g.usize_in(0, 63)).collect();
        let fill = g.u8();
        let sizes2 = sizes.clone();
        let results = run_threaded_collect(n, move |comm| {
            let mine = vec![fill ^ comm.rank() as u8; sizes2[comm.rank()]];
            comm.allgather(&mine)
        })
        .unwrap();
        for gathered in results {
            for (r, block) in gathered.iter().enumerate() {
                assert_eq!(block.len(), sizes[r]);
                assert!(block.iter().all(|&b| b == fill ^ r as u8));
            }
        }
    });
}

#[test]
fn alltoall_is_a_transpose() {
    cases(24, |g: &mut Gen| {
        let n = g.usize_in(1, 6);
        let seed = g.u8();
        let results = run_threaded_collect(n, move |comm| {
            let me = comm.rank();
            // Message to d encodes (src, dst, seed) with size (src + d) % 5.
            let sends: Vec<Vec<u8>> = (0..n)
                .map(|d| vec![me as u8 ^ d as u8 ^ seed; (me + d) % 5])
                .collect();
            comm.alltoall(sends)
        })
        .unwrap();
        for (dst, received) in results.into_iter().enumerate() {
            assert_eq!(received.len(), n);
            for (src, msg) in received.into_iter().enumerate() {
                assert_eq!(msg.len(), (src + dst) % 5);
                assert!(msg.iter().all(|&b| b == src as u8 ^ dst as u8 ^ seed));
            }
        }
    });
}

#[test]
fn broadcast_any_root_any_payload() {
    cases(24, |g: &mut Gen| {
        let n = g.usize_in(1, 8);
        let root = g.index(n);
        let payload = g.bytes(0, 128);
        let p2 = payload.clone();
        let results = run_threaded_collect(n, move |comm| {
            let data = if comm.rank() == root {
                p2.clone()
            } else {
                vec![]
            };
            comm.broadcast(root, data)
        })
        .unwrap();
        for r in results {
            assert_eq!(r, payload);
        }
    });
}

#[test]
fn gather_matches_contributions() {
    cases(24, |g: &mut Gen| {
        let n = g.usize_in(1, 7);
        let root = g.index(n);
        let results = run_threaded_collect(n, move |comm| {
            comm.gather_to(root, &[comm.rank() as u8, 0xAB])
        })
        .unwrap();
        for (r, res) in results.into_iter().enumerate() {
            if r == root {
                let blocks = res.unwrap();
                for (src, b) in blocks.into_iter().enumerate() {
                    assert_eq!(b, vec![src as u8, 0xAB]);
                }
            } else {
                assert!(res.is_none());
            }
        }
    });
}

#[test]
fn point_to_point_preserves_arbitrary_bytes() {
    cases(24, |g: &mut Gen| {
        let payload = g.bytes(0, 512);
        let tag = g.u32_in(0, 999);
        let p2 = payload.clone();
        let results = run_threaded_collect(2, move |comm| {
            if comm.rank() == 0 {
                comm.send(1, tag, p2.clone());
                Vec::new()
            } else {
                comm.recv(0, tag).unwrap()
            }
        })
        .unwrap();
        assert_eq!(results[1], payload);
    });
}
