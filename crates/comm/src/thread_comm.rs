//! Thread-backed communicator: one OS thread per rank, shared mailboxes.

use crate::collectives;
use crate::mailbox::Mailbox;
use crate::{CollectiveComm, Comm, RecvHandle, SendHandle, Tag, COLLECTIVE_TAG_BASE};
use spio_types::{Rank, SpioError};
use std::cell::Cell;
use std::sync::Arc;
use std::time::Duration;

/// State shared by every rank of one job.
pub(crate) struct Shared {
    pub(crate) size: usize,
    pub(crate) mailboxes: Vec<Arc<Mailbox>>,
}

/// A communicator handle owned by one rank of a thread-backed job.
///
/// Created by [`crate::run_threaded`]; can also be built in batch via
/// [`ThreadComm::create_world`] when the caller wants to manage threads
/// itself.
pub struct ThreadComm {
    shared: Arc<Shared>,
    rank: Rank,
    /// Collective sequence number: all ranks enter collectives in the same
    /// order, so a local counter yields matching reserved tags without any
    /// extra synchronization.
    coll_seq: Cell<u32>,
}

impl ThreadComm {
    /// Build communicators for all `size` ranks of a new world.
    pub fn create_world(size: usize) -> Vec<ThreadComm> {
        assert!(size > 0, "world size must be positive");
        let mailboxes = (0..size).map(|_| Arc::new(Mailbox::new())).collect();
        let shared = Arc::new(Shared { size, mailboxes });
        (0..size)
            .map(|rank| ThreadComm {
                shared: Arc::clone(&shared),
                rank,
                coll_seq: Cell::new(0),
            })
            .collect()
    }

    pub(crate) fn shared_handle(&self) -> Arc<Shared> {
        Arc::clone(&self.shared)
    }

    fn check_peer(&self, peer: Rank) {
        assert!(
            peer < self.shared.size,
            "rank {} addressed peer {} outside world of size {}",
            self.rank,
            peer,
            self.shared.size
        );
    }
}

impl Comm for ThreadComm {
    fn rank(&self) -> Rank {
        self.rank
    }

    fn size(&self) -> usize {
        self.shared.size
    }

    fn isend(&self, dest: Rank, tag: Tag, data: Vec<u8>) -> SendHandle {
        self.check_peer(dest);
        self.shared.mailboxes[dest].push(self.rank, tag, data);
        SendHandle::completed()
    }

    fn irecv(&self, src: Rank, tag: Tag) -> RecvHandle {
        self.check_peer(src);
        let mailbox = Arc::clone(&self.shared.mailboxes[self.rank]);
        mailbox.reserve(src, tag);
        let me = self.rank;
        let cleanup_mb = Arc::clone(&mailbox);
        RecvHandle::from_fn(move || {
            let got = mailbox.pop_blocking(me, src, tag);
            mailbox.unreserve(src, tag);
            got
        })
        .on_unwaited_drop(move || cleanup_mb.unreserve(src, tag))
    }

    fn barrier(&self) {
        collectives::dissemination_barrier(self);
    }

    fn allgather(&self, data: &[u8]) -> Vec<Vec<u8>> {
        collectives::ring_allgather(self, data)
    }

    fn alltoall(&self, sends: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        collectives::direct_alltoall(self, sends)
    }

    fn gather_to(&self, root: Rank, data: &[u8]) -> Option<Vec<Vec<u8>>> {
        collectives::gather_to(self, root, data)
    }

    fn broadcast(&self, root: Rank, data: Vec<u8>) -> Vec<u8> {
        collectives::binomial_broadcast(self, root, data)
    }

    fn recv_timeout(&self, src: Rank, tag: Tag, timeout: Duration) -> Result<Vec<u8>, SpioError> {
        self.check_peer(src);
        self.shared.mailboxes[self.rank].pop_blocking_timeout(self.rank, src, tag, timeout)
    }

    fn unconsumed(&self) -> Vec<(Rank, Tag, usize)> {
        self.shared.mailboxes[self.rank].leftovers()
    }
}

impl CollectiveComm for ThreadComm {
    fn next_collective_tag(&self) -> Tag {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq.wrapping_add(1));
        // Collectives may need a few distinct tags per invocation; stride by
        // 8 within the reserved space.
        COLLECTIVE_TAG_BASE + (seq % 0x0fff_ffff) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_threaded;

    #[test]
    fn world_has_distinct_ranks() {
        let world = ThreadComm::create_world(4);
        let ranks: Vec<_> = world.iter().map(|c| c.rank()).collect();
        assert_eq!(ranks, vec![0, 1, 2, 3]);
        assert!(world.iter().all(|c| c.size() == 4));
    }

    #[test]
    fn point_to_point_roundtrip() {
        run_threaded(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 5, vec![10, 20, 30]);
                let back = comm.recv(1, 6).unwrap();
                assert_eq!(back, vec![30, 20, 10]);
            } else {
                let mut msg = comm.recv(0, 5).unwrap();
                msg.reverse();
                comm.send(0, 6, msg);
            }
        })
        .unwrap();
    }

    #[test]
    fn nonblocking_out_of_order_completion() {
        run_threaded(3, |comm| match comm.rank() {
            0 => {
                // Post receives in the opposite order of sends.
                let h2 = comm.irecv(2, 1);
                let h1 = comm.irecv(1, 1);
                assert_eq!(h1.wait().unwrap(), vec![1]);
                assert_eq!(h2.wait().unwrap(), vec![2]);
            }
            r => comm.send(0, 1, vec![r as u8]),
        })
        .unwrap();
    }

    #[test]
    fn messages_non_overtaking_per_key() {
        run_threaded(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..100u8 {
                    comm.send(1, 3, vec![i]);
                }
            } else {
                for i in 0..100u8 {
                    assert_eq!(comm.recv(0, 3).unwrap(), vec![i]);
                }
            }
        })
        .unwrap();
    }

    #[test]
    #[should_panic(expected = "outside world")]
    fn send_out_of_range_panics() {
        let world = ThreadComm::create_world(2);
        world[0].isend(5, 0, vec![]).wait();
    }
}
