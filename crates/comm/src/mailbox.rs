//! Per-rank message mailboxes with MPI-style `(source, tag)` matching.

use crate::Tag;
use spio_types::{Rank, SpioError};
use spio_util::{lock_unpoisoned, wait_timeout_unpoisoned};
use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long a blocking receive waits before declaring the job deadlocked.
/// Generous enough for heavily oversubscribed test machines, short enough
/// that a wedged integration test fails with a useful message instead of
/// hanging CI.
pub const RECV_DEADLOCK_TIMEOUT: Duration = Duration::from_secs(120);

/// One rank's incoming-message store. Messages from the same `(src, tag)`
/// are delivered in send order (MPI non-overtaking rule); different keys are
/// independent.
type QueueMap = HashMap<(Rank, Tag), VecDeque<Vec<u8>>>;

#[derive(Default)]
struct Inner {
    queues: QueueMap,
    /// Outstanding posted receives per `(src, tag)`: an `irecv` registers a
    /// reservation so finalize can distinguish "message arrived but nobody
    /// asked" (a leak) from "receive posted, message in flight". Waiting or
    /// dropping the handle releases the reservation.
    reserved: HashMap<(Rank, Tag), usize>,
}

#[derive(Default)]
pub struct Mailbox {
    inner: Mutex<Inner>,
    arrived: Condvar,
}

impl Mailbox {
    pub fn new() -> Self {
        Self::default()
    }

    /// Deposit a message from `src` with `tag`.
    pub fn push(&self, src: Rank, tag: Tag, data: Vec<u8>) {
        let mut inner = lock_unpoisoned(&self.inner);
        inner.queues.entry((src, tag)).or_default().push_back(data);
        self.arrived.notify_all();
    }

    /// Register a posted (not yet completed) receive for `(src, tag)`.
    pub fn reserve(&self, src: Rank, tag: Tag) {
        let mut inner = lock_unpoisoned(&self.inner);
        *inner.reserved.entry((src, tag)).or_insert(0) += 1;
    }

    /// Release a reservation made by [`Mailbox::reserve`] — called when the
    /// posted receive completes or its handle is dropped unwaited.
    pub fn unreserve(&self, src: Rank, tag: Tag) {
        let mut inner = lock_unpoisoned(&self.inner);
        if let Some(n) = inner.reserved.get_mut(&(src, tag)) {
            *n -= 1;
            if *n == 0 {
                inner.reserved.remove(&(src, tag));
            }
        }
    }

    /// Pop the next message matching `(src, tag)`, blocking until one
    /// arrives.
    ///
    /// A receive blocked longer than [`RECV_DEADLOCK_TIMEOUT`] means the
    /// communication schedule is wrong; it surfaces as
    /// [`SpioError::Comm`] so the calling rank can fail its collective
    /// cleanly instead of dying and poisoning the whole job.
    pub fn pop_blocking(&self, me: Rank, src: Rank, tag: Tag) -> Result<Vec<u8>, SpioError> {
        self.pop_blocking_timeout(me, src, tag, RECV_DEADLOCK_TIMEOUT)
    }

    /// [`Mailbox::pop_blocking`] with an explicit timeout (tests use short
    /// ones to exercise the deadlock path quickly).
    pub fn pop_blocking_timeout(
        &self,
        me: Rank,
        src: Rank,
        tag: Tag,
        timeout: Duration,
    ) -> Result<Vec<u8>, SpioError> {
        let deadline = Instant::now() + timeout;
        let mut inner = lock_unpoisoned(&self.inner);
        loop {
            if let Some(queue) = inner.queues.get_mut(&(src, tag)) {
                if let Some(msg) = queue.pop_front() {
                    if queue.is_empty() {
                        inner.queues.remove(&(src, tag));
                    }
                    return Ok(msg);
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(SpioError::Comm(format!(
                    "rank {me}: receive from rank {src} tag {tag:#x} timed out after \
                     {timeout:?} — communication schedule deadlock"
                )));
            }
            let (guard, _) = wait_timeout_unpoisoned(&self.arrived, inner, deadline - now);
            inner = guard;
        }
    }

    /// Non-blocking probe: number of queued messages for `(src, tag)`.
    pub fn queued(&self, src: Rank, tag: Tag) -> usize {
        lock_unpoisoned(&self.inner)
            .queues
            .get(&(src, tag))
            .map_or(0, VecDeque::len)
    }

    /// Total queued messages (test/diagnostic aid).
    pub fn total_queued(&self) -> usize {
        lock_unpoisoned(&self.inner)
            .queues
            .values()
            .map(VecDeque::len)
            .sum()
    }

    /// Messages still sitting in the mailbox, as `(src, tag, byte_len)`
    /// triples sorted by key — the leak report finalize checks.
    pub fn leftovers(&self) -> Vec<(Rank, Tag, usize)> {
        let inner = lock_unpoisoned(&self.inner);
        let mut out: Vec<(Rank, Tag, usize)> = inner
            .queues
            .iter()
            .flat_map(|(&(src, tag), q)| q.iter().map(move |m| (src, tag, m.len())))
            .collect();
        out.sort_unstable();
        out
    }

    /// Posted receives never completed (reservation still held), as
    /// `(src, tag, count)` triples sorted by key.
    pub fn dangling_receives(&self) -> Vec<(Rank, Tag, usize)> {
        let inner = lock_unpoisoned(&self.inner);
        let mut out: Vec<(Rank, Tag, usize)> = inner
            .reserved
            .iter()
            .map(|(&(src, tag), &n)| (src, tag, n))
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_per_key() {
        let mb = Mailbox::new();
        mb.push(1, 7, vec![1]);
        mb.push(1, 7, vec![2]);
        mb.push(2, 7, vec![99]);
        assert_eq!(mb.pop_blocking(0, 1, 7).unwrap(), vec![1]);
        assert_eq!(mb.pop_blocking(0, 1, 7).unwrap(), vec![2]);
        assert_eq!(mb.pop_blocking(0, 2, 7).unwrap(), vec![99]);
        assert_eq!(mb.total_queued(), 0);
    }

    #[test]
    fn keys_are_independent() {
        let mb = Mailbox::new();
        mb.push(3, 1, vec![1]);
        mb.push(3, 2, vec![2]);
        // Popping tag 2 first must not disturb tag 1.
        assert_eq!(mb.pop_blocking(0, 3, 2).unwrap(), vec![2]);
        assert_eq!(mb.pop_blocking(0, 3, 1).unwrap(), vec![1]);
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let t = std::thread::spawn(move || mb2.pop_blocking(0, 5, 9));
        std::thread::sleep(Duration::from_millis(20));
        mb.push(5, 9, vec![42]);
        assert_eq!(t.join().unwrap().unwrap(), vec![42]);
    }

    #[test]
    fn timeout_surfaces_as_comm_error() {
        let mb = Mailbox::new();
        let err = mb
            .pop_blocking_timeout(3, 1, 0x42, Duration::from_millis(30))
            .unwrap_err();
        match err {
            SpioError::Comm(msg) => {
                assert!(msg.contains("rank 3"), "{msg}");
                assert!(msg.contains("deadlock"), "{msg}");
            }
            other => panic!("expected Comm error, got {other:?}"),
        }
        // The mailbox stays usable after a timed-out receive.
        mb.push(1, 0x42, vec![5]);
        assert_eq!(mb.pop_blocking(3, 1, 0x42).unwrap(), vec![5]);
    }

    #[test]
    fn queued_probe() {
        let mb = Mailbox::new();
        assert_eq!(mb.queued(0, 0), 0);
        mb.push(0, 0, vec![]);
        mb.push(0, 0, vec![]);
        assert_eq!(mb.queued(0, 0), 2);
    }

    #[test]
    fn leftovers_report_unreceived_messages() {
        let mb = Mailbox::new();
        assert!(mb.leftovers().is_empty());
        mb.push(2, 0x10, vec![0; 4]);
        mb.push(0, 0x11, vec![0; 9]);
        mb.push(2, 0x10, vec![0; 6]);
        assert_eq!(
            mb.leftovers(),
            vec![(0, 0x11, 9), (2, 0x10, 4), (2, 0x10, 6)]
        );
        mb.pop_blocking(1, 0, 0x11).unwrap();
        assert_eq!(mb.leftovers(), vec![(2, 0x10, 4), (2, 0x10, 6)]);
    }

    #[test]
    fn reservations_track_posted_receives() {
        let mb = Mailbox::new();
        mb.reserve(4, 0x20);
        mb.reserve(4, 0x20);
        mb.reserve(1, 0x21);
        assert_eq!(mb.dangling_receives(), vec![(1, 0x21, 1), (4, 0x20, 2)]);
        mb.unreserve(4, 0x20);
        mb.unreserve(1, 0x21);
        assert_eq!(mb.dangling_receives(), vec![(4, 0x20, 1)]);
        mb.unreserve(4, 0x20);
        assert!(mb.dangling_receives().is_empty());
    }
}
