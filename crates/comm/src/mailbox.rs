//! Per-rank message mailboxes with MPI-style `(source, tag)` matching.

use crate::Tag;
use spio_types::{Rank, SpioError};
use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long a blocking receive waits before declaring the job deadlocked.
/// Generous enough for heavily oversubscribed test machines, short enough
/// that a wedged integration test fails with a useful message instead of
/// hanging CI.
pub const RECV_DEADLOCK_TIMEOUT: Duration = Duration::from_secs(120);

/// One rank's incoming-message store. Messages from the same `(src, tag)`
/// are delivered in send order (MPI non-overtaking rule); different keys are
/// independent.
type QueueMap = HashMap<(Rank, Tag), VecDeque<Vec<u8>>>;

#[derive(Default)]
pub struct Mailbox {
    queues: Mutex<QueueMap>,
    arrived: Condvar,
}

impl Mailbox {
    pub fn new() -> Self {
        Self::default()
    }

    /// Deposit a message from `src` with `tag`.
    pub fn push(&self, src: Rank, tag: Tag, data: Vec<u8>) {
        let mut q = self.queues.lock().unwrap();
        q.entry((src, tag)).or_default().push_back(data);
        self.arrived.notify_all();
    }

    /// Pop the next message matching `(src, tag)`, blocking until one
    /// arrives.
    ///
    /// A receive blocked longer than [`RECV_DEADLOCK_TIMEOUT`] means the
    /// communication schedule is wrong; it surfaces as
    /// [`SpioError::Comm`] so the calling rank can fail its collective
    /// cleanly instead of dying and poisoning the whole job.
    pub fn pop_blocking(&self, me: Rank, src: Rank, tag: Tag) -> Result<Vec<u8>, SpioError> {
        self.pop_blocking_timeout(me, src, tag, RECV_DEADLOCK_TIMEOUT)
    }

    /// [`Mailbox::pop_blocking`] with an explicit timeout (tests use short
    /// ones to exercise the deadlock path quickly).
    pub fn pop_blocking_timeout(
        &self,
        me: Rank,
        src: Rank,
        tag: Tag,
        timeout: Duration,
    ) -> Result<Vec<u8>, SpioError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.queues.lock().unwrap();
        loop {
            if let Some(queue) = q.get_mut(&(src, tag)) {
                if let Some(msg) = queue.pop_front() {
                    if queue.is_empty() {
                        q.remove(&(src, tag));
                    }
                    return Ok(msg);
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(SpioError::Comm(format!(
                    "rank {me}: receive from rank {src} tag {tag:#x} timed out after \
                     {timeout:?} — communication schedule deadlock"
                )));
            }
            let (guard, _) = self.arrived.wait_timeout(q, deadline - now).unwrap();
            q = guard;
        }
    }

    /// Non-blocking probe: number of queued messages for `(src, tag)`.
    pub fn queued(&self, src: Rank, tag: Tag) -> usize {
        self.queues
            .lock()
            .unwrap()
            .get(&(src, tag))
            .map_or(0, VecDeque::len)
    }

    /// Total queued messages (test/diagnostic aid).
    pub fn total_queued(&self) -> usize {
        self.queues
            .lock()
            .unwrap()
            .values()
            .map(VecDeque::len)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_per_key() {
        let mb = Mailbox::new();
        mb.push(1, 7, vec![1]);
        mb.push(1, 7, vec![2]);
        mb.push(2, 7, vec![99]);
        assert_eq!(mb.pop_blocking(0, 1, 7).unwrap(), vec![1]);
        assert_eq!(mb.pop_blocking(0, 1, 7).unwrap(), vec![2]);
        assert_eq!(mb.pop_blocking(0, 2, 7).unwrap(), vec![99]);
        assert_eq!(mb.total_queued(), 0);
    }

    #[test]
    fn keys_are_independent() {
        let mb = Mailbox::new();
        mb.push(3, 1, vec![1]);
        mb.push(3, 2, vec![2]);
        // Popping tag 2 first must not disturb tag 1.
        assert_eq!(mb.pop_blocking(0, 3, 2).unwrap(), vec![2]);
        assert_eq!(mb.pop_blocking(0, 3, 1).unwrap(), vec![1]);
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let t = std::thread::spawn(move || mb2.pop_blocking(0, 5, 9));
        std::thread::sleep(Duration::from_millis(20));
        mb.push(5, 9, vec![42]);
        assert_eq!(t.join().unwrap().unwrap(), vec![42]);
    }

    #[test]
    fn timeout_surfaces_as_comm_error() {
        let mb = Mailbox::new();
        let err = mb
            .pop_blocking_timeout(3, 1, 0x42, Duration::from_millis(30))
            .unwrap_err();
        match err {
            SpioError::Comm(msg) => {
                assert!(msg.contains("rank 3"), "{msg}");
                assert!(msg.contains("deadlock"), "{msg}");
            }
            other => panic!("expected Comm error, got {other:?}"),
        }
        // The mailbox stays usable after a timed-out receive.
        mb.push(1, 0x42, vec![5]);
        assert_eq!(mb.pop_blocking(3, 1, 0x42).unwrap(), vec![5]);
    }

    #[test]
    fn queued_probe() {
        let mb = Mailbox::new();
        assert_eq!(mb.queued(0, 0), 0);
        mb.push(0, 0, vec![]);
        mb.push(0, 0, vec![]);
        assert_eq!(mb.queued(0, 0), 2);
    }
}
