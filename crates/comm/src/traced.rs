//! [`TracedComm`]: a [`Comm`] wrapper that records every point-to-point
//! message into a shared [`Trace`].
//!
//! Each message is recorded twice — once with [`Dir::Sent`] when it is
//! posted and once with [`Dir::Received`] when the matching receive
//! completes. The two sides land in the same shared trace buffer, so a job
//! report can cross-check that every byte sent was received (see
//! `JobReport::comm_imbalances`).
//!
//! Only user-tag traffic is recorded: collectives delegate to the inner
//! communicator and their internal messages stay out of the matrix. That is
//! deliberate — the communication matrix answers "who exchanged particles
//! with whom" for the paper's §3.3 aggregation exchange, which runs entirely
//! on user tags (`TAG_META`, `TAG_DATA`).

use crate::{CollectiveComm, Comm, RecvHandle, SendHandle, Tag};
use spio_trace::{Counter, Dir, Histogram, Trace};
use spio_types::{Rank, SpioError};
use std::time::Duration;

/// A communicator that mirrors every point-to-point message into a
/// [`Trace`]. With a disabled trace ([`Trace::off`]) every operation is a
/// plain delegation plus one branch — no allocation, no locking.
///
/// Alongside the per-message matrix records, the wrapper feeds the trace's
/// metrics registry: `comm.sent.msgs` / `comm.sent.bytes` /
/// `comm.received.msgs` / `comm.received.bytes` counters and a
/// `comm.msg_bytes` size histogram. Handles are resolved once here, so the
/// per-message cost is a few atomic adds.
pub struct TracedComm<C: Comm> {
    inner: C,
    trace: Trace,
    sent_msgs: Counter,
    sent_bytes: Counter,
    recv_msgs: Counter,
    recv_bytes: Counter,
    msg_bytes: Histogram,
}

impl<C: Comm> TracedComm<C> {
    pub fn new(inner: C, trace: Trace) -> Self {
        let metrics = trace.metrics();
        TracedComm {
            inner,
            trace,
            sent_msgs: metrics.counter("comm.sent.msgs"),
            sent_bytes: metrics.counter("comm.sent.bytes"),
            recv_msgs: metrics.counter("comm.received.msgs"),
            recv_bytes: metrics.counter("comm.received.bytes"),
            msg_bytes: metrics.histogram("comm.msg_bytes"),
        }
    }

    pub fn inner(&self) -> &C {
        &self.inner
    }

    pub fn into_inner(self) -> C {
        self.inner
    }

    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

impl<C: Comm> Comm for TracedComm<C> {
    fn rank(&self) -> Rank {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn isend(&self, dest: Rank, tag: Tag, data: Vec<u8>) -> SendHandle {
        let bytes = data.len() as u64;
        self.trace
            .message(self.inner.rank(), dest, tag, bytes, Dir::Sent);
        if self.trace.is_enabled() {
            self.sent_msgs.inc();
            self.sent_bytes.add(bytes);
            self.msg_bytes.record(bytes);
        }
        self.inner.isend(dest, tag, data)
    }

    fn irecv(&self, src: Rank, tag: Tag) -> RecvHandle {
        let handle = self.inner.irecv(src, tag);
        if !self.trace.is_enabled() {
            return handle;
        }
        let trace = self.trace.clone();
        let recv_msgs = self.recv_msgs.clone();
        let recv_bytes = self.recv_bytes.clone();
        let me = self.inner.rank();
        RecvHandle::from_fn(move || {
            let data = handle.wait()?;
            let bytes = data.len() as u64;
            trace.message(src, me, tag, bytes, Dir::Received);
            recv_msgs.inc();
            recv_bytes.add(bytes);
            Ok(data)
        })
    }

    fn barrier(&self) {
        self.inner.barrier()
    }

    fn allgather(&self, data: &[u8]) -> Vec<Vec<u8>> {
        self.inner.allgather(data)
    }

    fn alltoall(&self, sends: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        self.inner.alltoall(sends)
    }

    fn gather_to(&self, root: Rank, data: &[u8]) -> Option<Vec<Vec<u8>>> {
        self.inner.gather_to(root, data)
    }

    fn broadcast(&self, root: Rank, data: Vec<u8>) -> Vec<u8> {
        self.inner.broadcast(root, data)
    }

    fn recv_timeout(&self, src: Rank, tag: Tag, timeout: Duration) -> Result<Vec<u8>, SpioError> {
        let data = self.inner.recv_timeout(src, tag, timeout)?;
        if self.trace.is_enabled() {
            let bytes = data.len() as u64;
            self.trace
                .message(src, self.inner.rank(), tag, bytes, Dir::Received);
            self.recv_msgs.inc();
            self.recv_bytes.add(bytes);
        }
        Ok(data)
    }

    fn unconsumed(&self) -> Vec<(Rank, Tag, usize)> {
        self.inner.unconsumed()
    }
}

impl<C: CollectiveComm> CollectiveComm for TracedComm<C> {
    fn next_collective_tag(&self) -> Tag {
        self.inner.next_collective_tag()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_threaded;
    use spio_trace::TraceEvent;

    #[test]
    fn records_both_sides_of_a_message() {
        let trace = Trace::collecting();
        let t = trace.clone();
        run_threaded(2, move |comm| {
            let comm = TracedComm::new(comm, t.clone());
            if comm.rank() == 0 {
                comm.send(1, 7, vec![0; 96]);
            } else {
                let msg = comm.recv(0, 7).unwrap();
                assert_eq!(msg.len(), 96);
            }
        })
        .unwrap();
        let events = trace.events();
        assert_eq!(events.len(), 2);
        for dir in [Dir::Sent, Dir::Received] {
            assert!(
                events.iter().any(|e| matches!(
                    e,
                    TraceEvent::Message {
                        src: 0,
                        dst: 1,
                        tag: 7,
                        bytes: 96,
                        dir: d,
                        ..
                    } if *d == dir
                )),
                "missing {dir:?} record in {events:?}"
            );
        }
        let metrics = trace.metrics();
        assert_eq!(metrics.counter_value("comm.sent.msgs"), 1);
        assert_eq!(metrics.counter_value("comm.sent.bytes"), 96);
        assert_eq!(metrics.counter_value("comm.received.msgs"), 1);
        assert_eq!(metrics.counter_value("comm.received.bytes"), 96);
        assert_eq!(
            metrics.histogram_snapshot("comm.msg_bytes").unwrap().max,
            96
        );
    }

    #[test]
    fn collective_traffic_stays_out_of_the_matrix() {
        let trace = Trace::collecting();
        let t = trace.clone();
        run_threaded(4, move |comm| {
            let comm = TracedComm::new(comm, t.clone());
            comm.barrier();
            let g = comm.allgather(&[comm.rank() as u8]);
            assert_eq!(g.len(), 4);
            comm.broadcast(0, vec![1, 2, 3]);
        })
        .unwrap();
        assert!(trace.is_empty(), "collectives must not be traced");
    }

    #[test]
    fn disabled_trace_passes_through() {
        run_threaded(2, |comm| {
            let comm = TracedComm::new(comm, Trace::off());
            if comm.rank() == 0 {
                comm.send(1, 1, vec![5]);
            } else {
                assert_eq!(comm.recv(0, 1).unwrap(), vec![5]);
            }
            assert!(!comm.trace().is_enabled());
        })
        .unwrap();
    }
}
