//! Job launcher: run one closure per rank on dedicated threads.

use crate::thread_comm::ThreadComm;
use spio_types::SpioError;

/// Run `f(comm)` once per rank on `nprocs` threads and wait for all of them.
///
/// Panics inside any rank are converted into an error naming the rank, after
/// all surviving ranks have been joined (a panicking rank's peers may
/// themselves panic on receive timeout; the first rank's panic wins).
pub fn run_threaded<F>(nprocs: usize, f: F) -> Result<(), SpioError>
where
    F: Fn(ThreadComm) + Send + Sync + 'static,
{
    run_threaded_collect(nprocs, f).map(|_| ())
}

/// Like [`run_threaded`] but collects each rank's return value, indexed by
/// rank. Useful for tests that need to inspect per-rank results.
pub fn run_threaded_collect<F, T>(nprocs: usize, f: F) -> Result<Vec<T>, SpioError>
where
    F: Fn(ThreadComm) -> T + Send + Sync + 'static,
    T: Send + 'static,
{
    let world = ThreadComm::create_world(nprocs);
    let shared = world[0].shared_handle();
    let f = std::sync::Arc::new(f);
    let handles: Vec<_> = world
        .into_iter()
        .enumerate()
        .map(|(rank, comm)| {
            let f = std::sync::Arc::clone(&f);
            std::thread::Builder::new()
                .name(format!("spio-rank-{rank}"))
                // Rank programs are shallow; a modest stack lets tests run
                // hundreds of ranks without exhausting address space on
                // 32-bit-friendly settings.
                .stack_size(2 * 1024 * 1024)
                .spawn(move || f(comm))
                .expect("failed to spawn rank thread")
        })
        .collect();

    let mut results = Vec::with_capacity(nprocs);
    let mut first_panic: Option<(usize, String)> = None;
    for (rank, handle) in handles.into_iter().enumerate() {
        match handle.join() {
            Ok(v) => results.push(v),
            Err(payload) => {
                if first_panic.is_none() {
                    let msg = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    first_panic = Some((rank, msg));
                }
            }
        }
    }
    if let Some((rank, msg)) = first_panic {
        return Err(SpioError::Comm(format!("rank {rank} panicked: {msg}")));
    }
    // All ranks returned cleanly — every message sent must have been
    // received. Anything still queued is a leak: an isend whose matching
    // recv never ran, exactly the bug class MPI_Finalize flags on a real
    // machine.
    let mut leaks = Vec::new();
    for (rank, mailbox) in shared.mailboxes.iter().enumerate() {
        for (src, tag, bytes) in mailbox.leftovers() {
            leaks.push(format!(
                "rank {rank}: unreceived message from rank {src} tag {tag:#x} ({bytes} bytes)"
            ));
        }
    }
    if !leaks.is_empty() {
        return Err(SpioError::Comm(format!(
            "message leak at finalize: {}",
            leaks.join("; ")
        )));
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Comm;

    #[test]
    fn collect_returns_rank_indexed_results() {
        let results = run_threaded_collect(16, |comm| comm.rank() * 10).unwrap();
        assert_eq!(results, (0..16).map(|r| r * 10).collect::<Vec<_>>());
    }

    #[test]
    fn rank_panic_becomes_error() {
        let err = run_threaded(4, |comm| {
            if comm.rank() == 3 {
                panic!("boom on 3");
            }
        })
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("rank 3"), "got: {msg}");
        assert!(msg.contains("boom on 3"), "got: {msg}");
    }

    #[test]
    fn single_rank_world_works() {
        let results = run_threaded_collect(1, |comm| {
            comm.barrier();
            let g = comm.allgather(&[9]);
            (comm.size(), g)
        })
        .unwrap();
        assert_eq!(results[0].0, 1);
        assert_eq!(results[0].1, vec![vec![9]]);
    }

    #[test]
    fn large_world_spawns() {
        // 256 ranks exchanging in a ring — smoke test for thread scaling.
        run_threaded(256, |comm| {
            let n = comm.size();
            let right = (comm.rank() + 1) % n;
            let left = (comm.rank() + n - 1) % n;
            comm.send(right, 1, vec![comm.rank() as u8]);
            let got = comm.recv(left, 1).unwrap();
            assert_eq!(got, vec![left as u8]);
        })
        .unwrap();
    }
}
