//! # spio-comm
//!
//! A message-passing runtime providing the MPI subset the paper's I/O system
//! uses: non-blocking point-to-point sends/receives matched by `(source,
//! tag)`, barriers, and the collectives (`allgather`, `all-to-all`,
//! `gather`, `broadcast`) used for metadata exchange (§3.3), spatial
//! metadata collection (§3.5) and adaptive-grid construction (§6).
//!
//! The production implementation, [`ThreadComm`], backs each rank with an OS
//! thread and delivers messages through shared mailboxes. This substitutes
//! for MPI on a single node: the algorithm code in `spio-core` is written
//! against the [`Comm`] trait and never learns the difference. Large-scale
//! *timing* is handled separately by the `hpcsim` crate, which replays the
//! communication plans produced by `spio-core` against machine models.
//!
//! For observability, [`TracedComm`] wraps any [`Comm`] and records every
//! point-to-point message into a shared [`spio_trace::Trace`], building the
//! per-`(src, dst, tag)` communication matrix that `spio report` renders.

pub mod collectives;
pub mod mailbox;
pub mod runtime;
pub mod thread_comm;
pub mod traced;

pub use collectives::{allreduce_u64, exclusive_scan_u64, tree_reduce_u64};
pub use runtime::{run_threaded, run_threaded_collect};
pub use thread_comm::ThreadComm;
pub use traced::TracedComm;

use spio_types::{Rank, SpioError};

/// Message tag. User code may use any value below [`COLLECTIVE_TAG_BASE`];
/// the collective implementations reserve the upper tag space.
pub type Tag = u32;

/// Tags at or above this value are reserved for internal collectives.
pub const COLLECTIVE_TAG_BASE: Tag = 0x8000_0000;

/// Completion handle for a non-blocking send.
///
/// The thread-backed implementation buffers eagerly, so sends complete
/// immediately; the handle exists so algorithm code keeps the MPI structure
/// (post all sends, post all receives, then wait) that a real MPI port would
/// need.
#[must_use = "a send is only guaranteed complete after wait()"]
pub struct SendHandle(());

impl SendHandle {
    pub(crate) fn completed() -> Self {
        SendHandle(())
    }

    /// Block until the send buffer may be reused. (Immediate for
    /// [`ThreadComm`].)
    pub fn wait(self) {}
}

/// Completion handle for a non-blocking receive posted with [`Comm::irecv`].
pub struct RecvHandle {
    pub(crate) wait_fn: Box<dyn FnOnce() -> Result<Vec<u8>, SpioError> + Send>,
}

impl RecvHandle {
    /// Block until the matching message arrives and return its payload.
    ///
    /// Returns [`SpioError::Comm`] if the receive times out (deadlocked
    /// communication schedule) instead of panicking, so callers can unwind
    /// their collective participation cleanly.
    pub fn wait(self) -> Result<Vec<u8>, SpioError> {
        (self.wait_fn)()
    }
}

/// The MPI subset used by the spatially-aware I/O algorithms.
///
/// Matching follows MPI semantics: a receive posted for `(src, tag)` matches
/// sends from `src` with tag `tag` in program order. All collectives are
/// over the full communicator and must be entered by every rank in the same
/// order.
pub trait Comm {
    /// This process's rank in `0..size()`.
    fn rank(&self) -> Rank;

    /// Number of ranks in the communicator.
    fn size(&self) -> usize;

    /// Non-blocking tagged send of `data` to `dest`.
    fn isend(&self, dest: Rank, tag: Tag, data: Vec<u8>) -> SendHandle;

    /// Non-blocking tagged receive from `src`.
    fn irecv(&self, src: Rank, tag: Tag) -> RecvHandle;

    /// Blocking send (convenience over [`Comm::isend`]).
    fn send(&self, dest: Rank, tag: Tag, data: Vec<u8>) {
        self.isend(dest, tag, data).wait();
    }

    /// Blocking receive (convenience over [`Comm::irecv`]).
    fn recv(&self, src: Rank, tag: Tag) -> Result<Vec<u8>, SpioError> {
        self.irecv(src, tag).wait()
    }

    /// Synchronize all ranks.
    fn barrier(&self);

    /// Every rank contributes `data`; every rank receives all contributions
    /// indexed by rank (MPI_Allgatherv with byte payloads).
    fn allgather(&self, data: &[u8]) -> Vec<Vec<u8>>;

    /// Variable-size all-to-all: `sends[d]` goes to rank `d`; returns the
    /// messages received, indexed by source (MPI_Alltoallv).
    fn alltoall(&self, sends: Vec<Vec<u8>>) -> Vec<Vec<u8>>;

    /// Gather all contributions onto `root`; returns `Some(contributions)`
    /// on the root and `None` elsewhere.
    fn gather_to(&self, root: Rank, data: &[u8]) -> Option<Vec<Vec<u8>>>;

    /// Broadcast `data` (significant only on `root`) to all ranks.
    fn broadcast(&self, root: Rank, data: Vec<u8>) -> Vec<u8>;
}
