//! # spio-comm
//!
//! A message-passing runtime providing the MPI subset the paper's I/O system
//! uses: non-blocking point-to-point sends/receives matched by `(source,
//! tag)`, barriers, and the collectives (`allgather`, `all-to-all`,
//! `gather`, `broadcast`) used for metadata exchange (§3.3), spatial
//! metadata collection (§3.5) and adaptive-grid construction (§6).
//!
//! The production implementation, [`ThreadComm`], backs each rank with an OS
//! thread and delivers messages through shared mailboxes. This substitutes
//! for MPI on a single node: the algorithm code in `spio-core` is written
//! against the [`Comm`] trait and never learns the difference. Large-scale
//! *timing* is handled separately by the `hpcsim` crate, which replays the
//! communication plans produced by `spio-core` against machine models.
//!
//! For observability, [`TracedComm`] wraps any [`Comm`] and records every
//! point-to-point message into a shared [`spio_trace::Trace`], building the
//! per-`(src, dst, tag)` communication matrix that `spio report` renders.

pub mod collectives;
pub mod mailbox;
pub mod runtime;
pub mod thread_comm;
pub mod traced;

pub use collectives::{allreduce_u64, exclusive_scan_u64, tree_reduce_u64};
pub use runtime::{run_threaded, run_threaded_collect};
pub use thread_comm::ThreadComm;
pub use traced::TracedComm;

use spio_types::{Rank, SpioError};
use std::time::Duration;

/// Message tag. User code may use any value below [`COLLECTIVE_TAG_BASE`];
/// the collective implementations reserve the upper tag space.
pub type Tag = u32;

/// Tags at or above this value are reserved for internal collectives.
pub const COLLECTIVE_TAG_BASE: Tag = 0x8000_0000;

/// Completion handle for a non-blocking send.
///
/// The thread-backed implementation buffers eagerly, so sends complete
/// immediately; the handle exists so algorithm code keeps the MPI structure
/// (post all sends, post all receives, then wait) that a real MPI port would
/// need. Wrappers ([`TracedComm`], `spio-verify`'s `CheckedComm`) attach a
/// completion observer via [`SendHandle::from_fn`].
#[must_use = "a send is only guaranteed complete after wait()"]
pub struct SendHandle {
    on_wait: Option<Box<dyn FnOnce() + Send>>,
}

impl SendHandle {
    pub(crate) fn completed() -> Self {
        SendHandle { on_wait: None }
    }

    /// A handle that runs `f` when waited. Wrapper communicators use this
    /// to observe completion (and, at finalize, to report handles that were
    /// never waited).
    pub fn from_fn(f: impl FnOnce() + Send + 'static) -> Self {
        SendHandle {
            on_wait: Some(Box::new(f)),
        }
    }

    /// Block until the send buffer may be reused. (Immediate for
    /// [`ThreadComm`].)
    pub fn wait(mut self) {
        if let Some(f) = self.on_wait.take() {
            f();
        }
    }
}

/// Completion handle for a non-blocking receive posted with [`Comm::irecv`].
///
/// Dropping an unwaited handle runs its cleanup hook (if any), which the
/// thread-backed communicator uses to release the mailbox reservation the
/// posted receive made — a dropped wild receive must not leave state behind.
pub struct RecvHandle {
    wait_fn: Option<RecvWaitFn>,
    cleanup: Option<Box<dyn FnOnce() + Send>>,
}

/// Boxed completion closure for [`RecvHandle`]: blocks, then yields the
/// received payload (or the timeout/teardown error).
type RecvWaitFn = Box<dyn FnOnce() -> Result<Vec<u8>, SpioError> + Send>;

impl RecvHandle {
    /// A handle whose [`RecvHandle::wait`] runs `f`.
    pub fn from_fn(f: impl FnOnce() -> Result<Vec<u8>, SpioError> + Send + 'static) -> Self {
        RecvHandle {
            wait_fn: Some(Box::new(f)),
            cleanup: None,
        }
    }

    /// Attach a hook that runs if the handle is dropped without being
    /// waited. The wait path is expected to perform its own teardown, so a
    /// completed wait disarms the hook.
    pub fn on_unwaited_drop(mut self, f: impl FnOnce() + Send + 'static) -> Self {
        self.cleanup = Some(Box::new(f));
        self
    }

    /// Block until the matching message arrives and return its payload.
    ///
    /// Returns [`SpioError::Comm`] if the receive times out (deadlocked
    /// communication schedule) instead of panicking, so callers can unwind
    /// their collective participation cleanly.
    pub fn wait(mut self) -> Result<Vec<u8>, SpioError> {
        self.cleanup.take();
        match self.wait_fn.take() {
            Some(f) => f(),
            None => Err(SpioError::Comm("receive handle already consumed".into())),
        }
    }
}

impl Drop for RecvHandle {
    fn drop(&mut self) {
        if self.wait_fn.is_some() {
            if let Some(f) = self.cleanup.take() {
                f();
            }
        }
    }
}

/// The MPI subset used by the spatially-aware I/O algorithms.
///
/// Matching follows MPI semantics: a receive posted for `(src, tag)` matches
/// sends from `src` with tag `tag` in program order. All collectives are
/// over the full communicator and must be entered by every rank in the same
/// order.
pub trait Comm {
    /// This process's rank in `0..size()`.
    fn rank(&self) -> Rank;

    /// Number of ranks in the communicator.
    fn size(&self) -> usize;

    /// Non-blocking tagged send of `data` to `dest`.
    fn isend(&self, dest: Rank, tag: Tag, data: Vec<u8>) -> SendHandle;

    /// Non-blocking tagged receive from `src`.
    fn irecv(&self, src: Rank, tag: Tag) -> RecvHandle;

    /// Blocking send (convenience over [`Comm::isend`]).
    fn send(&self, dest: Rank, tag: Tag, data: Vec<u8>) {
        self.isend(dest, tag, data).wait();
    }

    /// Blocking receive (convenience over [`Comm::irecv`]).
    fn recv(&self, src: Rank, tag: Tag) -> Result<Vec<u8>, SpioError> {
        self.irecv(src, tag).wait()
    }

    /// Synchronize all ranks.
    fn barrier(&self);

    /// Every rank contributes `data`; every rank receives all contributions
    /// indexed by rank (MPI_Allgatherv with byte payloads).
    fn allgather(&self, data: &[u8]) -> Vec<Vec<u8>>;

    /// Variable-size all-to-all: `sends[d]` goes to rank `d`; returns the
    /// messages received, indexed by source (MPI_Alltoallv).
    fn alltoall(&self, sends: Vec<Vec<u8>>) -> Vec<Vec<u8>>;

    /// Gather all contributions onto `root`; returns `Some(contributions)`
    /// on the root and `None` elsewhere.
    fn gather_to(&self, root: Rank, data: &[u8]) -> Option<Vec<Vec<u8>>>;

    /// Broadcast `data` (significant only on `root`) to all ranks.
    fn broadcast(&self, root: Rank, data: Vec<u8>) -> Vec<u8>;

    /// Blocking receive that gives up after `timeout` with
    /// [`SpioError::Comm`]. Backends without fine-grained timers may ignore
    /// `timeout` and use their default stall detection.
    fn recv_timeout(&self, src: Rank, tag: Tag, timeout: Duration) -> Result<Vec<u8>, SpioError> {
        let _ = timeout;
        self.recv(src, tag)
    }

    /// Messages delivered to this rank's mailbox but never received, as
    /// `(src, tag, byte_len)` triples. Used by leak detection at finalize;
    /// backends without introspection report nothing.
    fn unconsumed(&self) -> Vec<(Rank, Tag, usize)> {
        Vec::new()
    }
}

/// Communicators the generic collective algorithms in [`collectives`] can
/// run over.
///
/// The algorithms derive their internal message tags from
/// [`CollectiveComm::next_collective_tag`], which must return a fresh block
/// of 8 tags at or above [`COLLECTIVE_TAG_BASE`] and advance identically on
/// every rank — guaranteed when all ranks enter collectives in the same
/// order, which is exactly the invariant `spio-verify`'s `CheckedComm`
/// cross-checks at runtime.
pub trait CollectiveComm: Comm {
    /// Reserve and return the base tag for the next collective's internal
    /// messages (the collective may use `tag..tag + 8`).
    fn next_collective_tag(&self) -> Tag;
}
