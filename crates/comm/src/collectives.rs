//! Collective operations built from tagged point-to-point messages.
//!
//! Each collective draws a fresh block of reserved tags from the
//! communicator's collective sequence counter, so back-to-back collectives
//! of the same kind cannot cross-match even when ranks are skewed in time.

use crate::{CollectiveComm, Tag};
use spio_types::Rank;

/// Collective-internal receive. A failed receive here (deadlock timeout)
/// means the collective schedule itself is broken; panicking is correct —
/// the job runtime converts rank panics into `SpioError::Comm` after
/// joining all ranks.
fn recv_or_die<C: CollectiveComm + ?Sized>(comm: &C, src: Rank, tag: Tag) -> Vec<u8> {
    comm.recv(src, tag)
        .unwrap_or_else(|e| panic!("collective receive failed: {e}"))
}

/// Dissemination barrier: `ceil(log2 n)` rounds, rank `r` signals
/// `(r + 2^k) mod n` and waits for `(r - 2^k) mod n`.
pub fn dissemination_barrier<C: CollectiveComm + ?Sized>(comm: &C) {
    let n = comm.size();
    if n == 1 {
        return;
    }
    let base = comm.next_collective_tag();
    let me = comm.rank();
    let mut round: Tag = 0;
    let mut dist = 1;
    while dist < n {
        let to = (me + dist) % n;
        let from = (me + n - dist % n) % n;
        comm.isend(to, base + round, Vec::new()).wait();
        recv_or_die(comm, from, base + round);
        dist *= 2;
        round += 1;
    }
}

/// Ring allgather: `n - 1` steps, each rank forwards the newest block to its
/// right neighbour. Variable block sizes are naturally supported because
/// every block travels as its own message.
pub fn ring_allgather<C: CollectiveComm + ?Sized>(comm: &C, data: &[u8]) -> Vec<Vec<u8>> {
    let n = comm.size();
    let me = comm.rank();
    let mut blocks: Vec<Option<Vec<u8>>> = vec![None; n];
    blocks[me] = Some(data.to_vec());
    if n == 1 {
        return blocks.into_iter().map(Option::unwrap).collect();
    }
    let tag = comm.next_collective_tag();
    let right = (me + 1) % n;
    let left = (me + n - 1) % n;
    // At step s we forward the block that originated at (me - s) mod n.
    for s in 0..n - 1 {
        let outgoing_origin = (me + n - s) % n;
        let block = blocks[outgoing_origin]
            .clone()
            .expect("ring invariant: block present before forwarding");
        comm.isend(right, tag, block).wait();
        let incoming_origin = (me + n - s - 1) % n;
        let received = recv_or_die(comm, left, tag);
        blocks[incoming_origin] = Some(received);
    }
    blocks.into_iter().map(Option::unwrap).collect()
}

/// Direct (pairwise) variable-size all-to-all. Every rank posts all sends,
/// then receives one message from every peer. Self-delivery bypasses the
/// mailbox.
pub fn direct_alltoall<C: CollectiveComm + ?Sized>(
    comm: &C,
    mut sends: Vec<Vec<u8>>,
) -> Vec<Vec<u8>> {
    let n = comm.size();
    assert_eq!(
        sends.len(),
        n,
        "alltoall needs exactly one (possibly empty) buffer per rank"
    );
    let me = comm.rank();
    let tag = comm.next_collective_tag();
    let own = std::mem::take(&mut sends[me]);
    for (dest, buf) in sends.into_iter().enumerate() {
        if dest != me {
            comm.isend(dest, tag, buf).wait();
        }
    }
    let mut received = Vec::with_capacity(n);
    for src in 0..n {
        if src == me {
            received.push(own.clone());
        } else {
            received.push(recv_or_die(comm, src, tag));
        }
    }
    received
}

/// Gather onto `root`; linear receive at the root (fine for the rank counts
/// the thread runtime targets; the simulator models tree gathers at scale).
pub fn gather_to<C: CollectiveComm + ?Sized>(
    comm: &C,
    root: Rank,
    data: &[u8],
) -> Option<Vec<Vec<u8>>> {
    let n = comm.size();
    let me = comm.rank();
    let tag = comm.next_collective_tag();
    if me == root {
        let mut out = vec![Vec::new(); n];
        out[root] = data.to_vec();
        for (src, slot) in out.iter_mut().enumerate() {
            if src != root {
                *slot = recv_or_die(comm, src, tag);
            }
        }
        Some(out)
    } else {
        comm.isend(root, tag, data.to_vec()).wait();
        None
    }
}

/// Binomial-tree broadcast rooted at `root`.
pub fn binomial_broadcast<C: CollectiveComm + ?Sized>(
    comm: &C,
    root: Rank,
    data: Vec<u8>,
) -> Vec<u8> {
    let n = comm.size();
    let me = comm.rank();
    let tag = comm.next_collective_tag();
    // Work in a rotated rank space where the root is 0.
    let vrank = (me + n - root) % n;
    let payload = if vrank == 0 {
        data
    } else {
        // Receive from parent: clear the lowest set bit of vrank.
        let parent_v = vrank & (vrank - 1);
        let parent = (parent_v + root) % n;
        recv_or_die(comm, parent, tag)
    };
    // Forward to children: set each bit above the lowest set bit while the
    // result stays in range.
    let lowest = if vrank == 0 {
        n.next_power_of_two()
    } else {
        vrank & vrank.wrapping_neg()
    };
    let mut bit = 1;
    while bit < lowest && vrank + bit < n {
        let child = (vrank + bit + root) % n;
        comm.isend(child, tag, payload.clone()).wait();
        bit <<= 1;
    }
    payload
}

/// Binomial-tree reduction to `root` of `u64` values with operator `op`;
/// returns `Some(result)` on the root.
pub fn tree_reduce_u64<C: CollectiveComm + ?Sized>(
    comm: &C,
    root: Rank,
    value: u64,
    op: fn(u64, u64) -> u64,
) -> Option<u64> {
    let n = comm.size();
    let me = comm.rank();
    let tag = comm.next_collective_tag();
    let vrank = (me + n - root) % n;
    let mut acc = value;
    // Receive from children (vrank + bit for each bit below our lowest set
    // bit), then send to parent.
    let lowest = if vrank == 0 {
        n.next_power_of_two()
    } else {
        vrank & vrank.wrapping_neg()
    };
    let mut bit = 1;
    while bit < lowest && vrank + bit < n {
        let child = (vrank + bit + root) % n;
        let b = recv_or_die(comm, child, tag);
        let v = u64::from_le_bytes(b.try_into().expect("reduce payload is 8 bytes"));
        acc = op(acc, v);
        bit <<= 1;
    }
    if vrank == 0 {
        Some(acc)
    } else {
        let parent_v = vrank & (vrank - 1);
        let parent = (parent_v + root) % n;
        comm.isend(parent, tag, acc.to_le_bytes().to_vec()).wait();
        None
    }
}

/// All-reduce of `u64` values: reduce to rank 0, then broadcast.
pub fn allreduce_u64<C: CollectiveComm + ?Sized>(
    comm: &C,
    value: u64,
    op: fn(u64, u64) -> u64,
) -> u64 {
    let reduced = tree_reduce_u64(comm, 0, value, op);
    let payload = reduced
        .map(|v| v.to_le_bytes().to_vec())
        .unwrap_or_default();
    let bytes = binomial_broadcast(comm, 0, payload);
    u64::from_le_bytes(bytes.try_into().expect("allreduce payload is 8 bytes"))
}

/// Exclusive prefix sum of `u64` values (rank 0 gets 0) — the offset
/// computation collective shared-file writers use to place their segments.
/// Implemented as a dissemination scan: log2(n) rounds.
pub fn exclusive_scan_u64<C: CollectiveComm + ?Sized>(comm: &C, value: u64) -> u64 {
    let n = comm.size();
    let me = comm.rank();
    if n == 1 {
        return 0;
    }
    let base = comm.next_collective_tag();
    let mut result = 0u64; // exclusive prefix
    let mut carry = value; // sum of my window
    let mut dist = 1;
    let mut round: Tag = 0;
    while dist < n {
        // Send my running window sum to the rank `dist` to the right;
        // receive from `dist` to the left (if any).
        if me + dist < n {
            comm.isend(me + dist, base + round, carry.to_le_bytes().to_vec())
                .wait();
        }
        if me >= dist {
            let b = recv_or_die(comm, me - dist, base + round);
            let v = u64::from_le_bytes(b.try_into().expect("scan payload is 8 bytes"));
            result += v;
            carry += v;
        }
        dist *= 2;
        round += 1;
    }
    result
}

#[cfg(test)]
mod tests {
    use crate::run_threaded_collect;
    use crate::Comm;

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        let results = run_threaded_collect(8, move |comm| {
            c2.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier every rank must observe all 8 arrivals.
            c2.load(Ordering::SeqCst)
        })
        .unwrap();
        assert!(results.iter().all(|&v| v == 8));
    }

    #[test]
    fn allgather_collects_in_rank_order() {
        for n in [1, 2, 3, 5, 8, 16] {
            let results = run_threaded_collect(n, move |comm| {
                let mine = vec![comm.rank() as u8; comm.rank() + 1]; // variable sizes
                comm.allgather(&mine)
            })
            .unwrap();
            for gathered in results {
                assert_eq!(gathered.len(), n);
                for (r, block) in gathered.iter().enumerate() {
                    assert_eq!(block, &vec![r as u8; r + 1]);
                }
            }
        }
    }

    #[test]
    fn alltoall_routes_and_preserves_sizes() {
        for n in [1, 2, 4, 7] {
            let results = run_threaded_collect(n, move |comm| {
                let me = comm.rank();
                // Message to d: [me, d] repeated (me + d) times.
                let sends: Vec<Vec<u8>> = (0..n)
                    .map(|d| [me as u8, d as u8].repeat(me + d + 1))
                    .collect();
                comm.alltoall(sends)
            })
            .unwrap();
            for (d, received) in results.into_iter().enumerate() {
                for (s, msg) in received.into_iter().enumerate() {
                    assert_eq!(msg, [s as u8, d as u8].repeat(s + d + 1));
                }
            }
        }
    }

    #[test]
    fn gather_collects_on_root_only() {
        let results = run_threaded_collect(6, |comm| {
            comm.gather_to(2, &[comm.rank() as u8])
                .map(|blocks| blocks.into_iter().map(|b| b[0]).collect::<Vec<u8>>())
        })
        .unwrap();
        for (r, res) in results.into_iter().enumerate() {
            if r == 2 {
                assert_eq!(res.unwrap(), vec![0, 1, 2, 3, 4, 5]);
            } else {
                assert!(res.is_none());
            }
        }
    }

    #[test]
    fn broadcast_from_every_root() {
        for n in [1, 2, 5, 8, 13] {
            for root in [0, n / 2, n - 1] {
                let results = run_threaded_collect(n, move |comm| {
                    let data = if comm.rank() == root {
                        vec![7, 7, 7, root as u8]
                    } else {
                        Vec::new()
                    };
                    comm.broadcast(root, data)
                })
                .unwrap();
                assert!(
                    results.iter().all(|r| r == &vec![7, 7, 7, root as u8]),
                    "broadcast failed for n={n} root={root}"
                );
            }
        }
    }

    #[test]
    fn reduce_and_allreduce() {
        use super::{allreduce_u64, tree_reduce_u64};
        for n in [1usize, 2, 5, 8, 13] {
            for root in [0, n - 1] {
                let results = run_threaded_collect(n, move |comm| {
                    let me = comm.rank() as u64;
                    let sum = tree_reduce_u64(&comm, root, me + 1, |a, b| a.wrapping_add(b));
                    let max = allreduce_u64(&comm, me, u64::max);
                    (sum, max)
                })
                .unwrap();
                let expected_sum: u64 = (1..=n as u64).sum();
                for (r, (sum, max)) in results.into_iter().enumerate() {
                    if r == root {
                        assert_eq!(sum, Some(expected_sum), "n={n} root={root}");
                    } else {
                        assert_eq!(sum, None);
                    }
                    assert_eq!(max, n as u64 - 1);
                }
            }
        }
    }

    #[test]
    fn exclusive_scan_computes_offsets() {
        use super::exclusive_scan_u64;
        for n in [1usize, 2, 3, 7, 16] {
            let results = run_threaded_collect(n, move |comm| {
                // Rank r contributes r + 1.
                exclusive_scan_u64(&comm, comm.rank() as u64 + 1)
            })
            .unwrap();
            for (r, got) in results.into_iter().enumerate() {
                let expected: u64 = (1..=r as u64).sum();
                assert_eq!(got, expected, "n={n} rank={r}");
            }
        }
    }

    #[test]
    fn consecutive_collectives_do_not_cross_match() {
        let results = run_threaded_collect(4, |comm| {
            let a = comm.allgather(&[1u8]);
            let b = comm.allgather(&[2u8]);
            comm.barrier();
            let c = comm.allgather(&[3u8]);
            (a, b, c)
        })
        .unwrap();
        for (a, b, c) in results {
            assert!(a.iter().all(|v| v == &[1]));
            assert!(b.iter().all(|v| v == &[2]));
            assert!(c.iter().all(|v| v == &[3]));
        }
    }
}
