//! Fig. 9: level-of-detail fidelity on a coal-injection-style dataset.
//!
//! The paper renders a 55 M-particle coal-jet dataset at 25/50/75/100 % of
//! the particles and observes that "most of the features are still visible
//! even using only 25 % of the particle data". As a quantitative proxy for
//! the rendering, this experiment writes a jet dataset with the real
//! spatially-aware writer (thread runtime), reads LOD prefixes of
//! increasing size, and compares the reconstructed density field against
//! the full dataset: normalized RMSE and feature coverage (the fraction of
//! occupied density cells that the prefix also samples).

use spio_comm::{run_threaded_collect, Comm};
use spio_core::{
    DatasetReader, FsStorage, LodOrder, MemStorage, SpatialWriter, Storage, WriterConfig,
};
use spio_types::{Aabb3, DomainDecomposition, GridDims, Particle, PartitionFactor};
use spio_workloads::{jet_patch_particles, JetSpec};

/// Density histogram resolution per axis.
pub const DENSITY_GRID: usize = 24;

/// One fidelity measurement.
#[derive(Debug, Clone)]
pub struct FidelityPoint {
    /// Fraction of the dataset read (0, 1].
    pub fraction: f64,
    pub particles_read: u64,
    /// RMSE of the (prefix-rescaled) density field vs the full data,
    /// normalized by the full field's RMS value.
    pub normalized_rmse: f64,
    /// Fraction of cells occupied in the full dataset that the prefix also
    /// samples — "are the features still visible?".
    pub coverage: f64,
}

/// Accumulate a density histogram over the unit cube.
pub fn density_field(particles: &[Particle], domain: &Aabb3) -> Vec<f64> {
    let mut grid = vec![0.0f64; DENSITY_GRID * DENSITY_GRID * DENSITY_GRID];
    for p in particles {
        let c = domain.cell_of([DENSITY_GRID; 3], p.position);
        grid[c[0] + DENSITY_GRID * (c[1] + DENSITY_GRID * c[2])] += 1.0;
    }
    grid
}

/// Compare a prefix's density field against the full field.
pub fn fidelity(full: &[f64], prefix: &[f64], fraction: f64) -> (f64, f64) {
    debug_assert_eq!(full.len(), prefix.len());
    let scale = 1.0 / fraction;
    let mut se = 0.0;
    let mut ref_sq = 0.0;
    let mut occupied = 0usize;
    let mut covered = 0usize;
    for (f, p) in full.iter().zip(prefix) {
        let diff = f - p * scale;
        se += diff * diff;
        ref_sq += f * f;
        if *f > 0.0 {
            occupied += 1;
            if *p > 0.0 {
                covered += 1;
            }
        }
    }
    let nrmse = if ref_sq > 0.0 {
        (se / ref_sq).sqrt()
    } else {
        0.0
    };
    let coverage = if occupied > 0 {
        covered as f64 / occupied as f64
    } else {
        1.0
    };
    (nrmse, coverage)
}

/// Write a jet dataset with `nprocs` thread-backed ranks and return the
/// storage. Runs the real spatially-aware writer end to end.
pub fn write_jet_dataset(nprocs: usize, total_particles: u64, seed: u64) -> MemStorage {
    write_jet_dataset_ordered(nprocs, total_particles, seed, LodOrder::Random)
}

/// Like [`write_jet_dataset`] but with an explicit LOD ordering heuristic
/// (§3.4 ablation: random vs stratified).
pub fn write_jet_dataset_ordered(
    nprocs: usize,
    total_particles: u64,
    seed: u64,
    order: LodOrder,
) -> MemStorage {
    let storage = MemStorage::new();
    let s2 = storage.clone();
    let decomp =
        DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::near_cubic(nprocs));
    let spec = JetSpec {
        total_particles,
        ..JetSpec::default()
    };
    run_threaded_collect(nprocs, move |comm| {
        let particles = jet_patch_particles(&decomp, comm.rank(), &spec, seed);
        // The jet leaves much of the domain empty: use adaptive aggregation.
        let writer = SpatialWriter::new(
            decomp.clone(),
            WriterConfig::new(PartitionFactor::new(2, 2, 2))
                .with_seed(seed)
                .with_lod_order(order)
                .adaptive(true),
        );
        writer.write(&comm, &particles, &s2).unwrap();
    })
    .unwrap();
    storage
}

/// Run the Fig. 9 sweep: read 25/50/75/100 % LOD prefixes of a jet dataset
/// and measure fidelity.
pub fn lod_quality<S: Storage>(storage: &S, fractions: &[f64]) -> Vec<FidelityPoint> {
    let reader = DatasetReader::open(storage).expect("dataset must exist");
    let domain = reader.meta.domain;
    let total = reader.meta.total_particles;
    let (all, _) = reader.read_all(storage).expect("full read");
    let full_field = density_field(&all, &domain);

    fractions
        .iter()
        .map(|&fraction| {
            // Read a proportional prefix of *every* file, exactly as an
            // application targeting this sampling rate would: the shuffled
            // layout makes each file prefix a uniform subsample of its
            // partition, so the union is a uniform subsample of the domain.
            let target = (total as f64 * fraction).round() as u64;
            let mut prefix: Vec<Particle> = Vec::with_capacity(target as usize);
            for entry in &reader.meta.entries {
                let file_take =
                    spio_format::LodParams::file_prefix(entry.particle_count, total, target);
                let (_, end) = spio_format::data_file::payload_range(0, file_take as usize);
                let bytes = storage
                    .read_range(&entry.file_name(), 0, end)
                    .expect("prefix read");
                let (_, ps) = spio_format::data_file::decode_prefix(&bytes, file_take as usize)
                    .expect("prefix decode");
                prefix.extend(ps);
            }
            let actual_fraction = prefix.len() as f64 / total as f64;
            let pf = density_field(&prefix, &domain);
            let (normalized_rmse, coverage) = fidelity(&full_field, &pf, actual_fraction);
            FidelityPoint {
                fraction,
                particles_read: prefix.len() as u64,
                normalized_rmse,
                coverage,
            }
        })
        .collect()
}

/// Render an x–y density projection of `particles` to a binary PPM (P6)
/// image — the closest artifact to the paper's Fig. 9 renderings this
/// repository produces. Uses a perceptually monotone blue→yellow ramp.
pub fn render_ppm(particles: &[Particle], domain: &Aabb3, width: usize, height: usize) -> Vec<u8> {
    let mut hist = vec![0u32; width * height];
    let e = domain.extent();
    for p in particles {
        let cx = (((p.position[0] - domain.lo[0]) / e[0]) * width as f64) as usize;
        let cy = (((p.position[1] - domain.lo[1]) / e[1]) * height as f64) as usize;
        hist[cx.min(width - 1) + width * cy.min(height - 1)] += 1;
    }
    let max = *hist.iter().max().unwrap_or(&1) as f64;
    let mut out = format!("P6\n{width} {height}\n255\n").into_bytes();
    for row in 0..height {
        for col in 0..width {
            let v = (hist[col + width * row] as f64 / max).powf(0.35);
            // Blue (cold) to yellow (hot).
            let r = (v * 255.0) as u8;
            let g = (v * 230.0) as u8;
            let b = ((1.0 - v) * 160.0 + 40.0 * v) as u8;
            out.extend_from_slice(&[r, g, b]);
        }
    }
    out
}

/// Convenience for the binary: write to a directory instead of memory.
pub fn write_jet_dataset_fs(
    dir: &std::path::Path,
    nprocs: usize,
    total_particles: u64,
    seed: u64,
) -> FsStorage {
    let storage = FsStorage::new(dir);
    let s2 = storage.clone();
    let decomp =
        DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::near_cubic(nprocs));
    let spec = JetSpec {
        total_particles,
        ..JetSpec::default()
    };
    run_threaded_collect(nprocs, move |comm| {
        let particles = jet_patch_particles(&decomp, comm.rank(), &spec, seed);
        let writer = SpatialWriter::new(
            decomp.clone(),
            WriterConfig::new(PartitionFactor::new(2, 2, 2))
                .with_seed(seed)
                .adaptive(true),
        );
        writer.write(&comm, &particles, &s2).unwrap();
    })
    .unwrap();
    storage
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fidelity_improves_with_fraction() {
        let storage = write_jet_dataset(8, 60_000, 7);
        let pts = lod_quality(&storage, &[0.25, 0.5, 0.75, 1.0]);
        assert_eq!(pts.len(), 4);
        // RMSE decreases monotonically (up to sampling noise) and is ~0 at
        // 100%.
        assert!(pts[3].normalized_rmse < 1e-9, "full read is exact");
        assert!(
            pts[0].normalized_rmse > pts[2].normalized_rmse,
            "25% {} must be noisier than 75% {}",
            pts[0].normalized_rmse,
            pts[2].normalized_rmse
        );
        // The paper's observation: 25% still shows the features.
        assert!(
            pts[0].coverage > 0.5,
            "25% must cover most occupied cells: {}",
            pts[0].coverage
        );
        assert!(pts[3].coverage > 0.999);
    }

    #[test]
    fn stratified_order_covers_at_least_as_well_at_low_fractions() {
        // §3.4 ablation: the stratified heuristic must not lose to the
        // random shuffle on feature coverage at small prefixes.
        let random = write_jet_dataset_ordered(8, 60_000, 7, LodOrder::Random);
        let strat = write_jet_dataset_ordered(8, 60_000, 7, LodOrder::Stratified);
        let r = lod_quality(&random, &[0.05]);
        let s = lod_quality(&strat, &[0.05]);
        assert!(
            s[0].coverage >= r[0].coverage - 0.02,
            "stratified {} vs random {}",
            s[0].coverage,
            r[0].coverage
        );
        // Both remain valid datasets covering everything at 100%.
        let s_full = lod_quality(&strat, &[1.0]);
        assert!(s_full[0].normalized_rmse < 1e-9);
    }

    #[test]
    fn ppm_render_has_correct_header_and_size() {
        let ps: Vec<Particle> = (0..100)
            .map(|i| Particle::synthetic([(i as f64) / 100.0, 0.5, 0.5], i))
            .collect();
        let img = render_ppm(&ps, &Aabb3::new([0.0; 3], [1.0; 3]), 32, 16);
        assert!(img.starts_with(b"P6\n32 16\n255\n"));
        let header_len = b"P6\n32 16\n255\n".len();
        assert_eq!(img.len(), header_len + 32 * 16 * 3);
    }

    #[test]
    fn density_field_counts_all_particles() {
        let storage = write_jet_dataset(8, 10_000, 3);
        let reader = DatasetReader::open(&storage).unwrap();
        let (all, _) = reader.read_all(&storage).unwrap();
        let field = density_field(&all, &reader.meta.domain);
        assert_eq!(field.iter().sum::<f64>() as u64, 10_000);
    }

    #[test]
    fn fidelity_of_identical_fields_is_zero() {
        let f = vec![1.0, 2.0, 0.0, 5.0];
        let (rmse, cov) = fidelity(&f, &f, 1.0);
        assert!(rmse < 1e-12);
        assert_eq!(cov, 1.0);
    }

    #[test]
    fn fidelity_detects_missing_features() {
        let full = vec![4.0, 4.0, 4.0, 4.0];
        let prefix = vec![1.0, 1.0, 0.0, 0.0]; // half the features absent
        let (rmse, cov) = fidelity(&full, &prefix, 0.25);
        assert!(rmse > 0.5);
        assert_eq!(cov, 0.5);
    }
}
