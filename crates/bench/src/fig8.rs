//! Fig. 8: level-of-detail read performance.
//!
//! 64 processes read progressively more levels of detail from the
//! 2-billion-particle dataset of Fig. 7 (written at (2,2,2), 8 Ki files)
//! with `P = 32`, `S = 2` — up to the 20 levels the paper derives from
//! `l = log2(2^31 / (64·32))`.

use crate::fig7::dataset_shape;
#[cfg(test)]
use crate::fig7::{PARTICLES_PER_WRITER, WRITER_PROCS};
use hpcsim::{simulate_lod_read, MachineModel};
use spio_core::plan::{plan_lod_read, DatasetShape};
use spio_types::PartitionFactor;

/// Readers in the Fig. 8 experiment.
pub const READERS: usize = 64;

/// One plotted point: cumulative time to read levels `0 ..= level`.
#[derive(Debug, Clone)]
pub struct Point {
    pub level: u32,
    pub time: f64,
    pub bytes: u64,
    pub opens: u64,
}

/// The Fig. 8 dataset (same as Fig. 7's aggregated dataset).
pub fn lod_dataset() -> DatasetShape {
    dataset_shape(PartitionFactor::new(2, 2, 2))
}

/// Maximum level index for the paper's configuration.
pub fn max_level(shape: &DatasetShape) -> u32 {
    shape.lod.num_levels(READERS as u64, shape.total_particles) - 1
}

/// Sweep levels 1 ..= max on one machine.
pub fn lod_sweep(machine: &MachineModel) -> Vec<Point> {
    let shape = lod_dataset();
    let max = max_level(&shape);
    (1..=max)
        .map(|level| {
            let plan = plan_lod_read(&shape, READERS, level);
            let r = simulate_lod_read(&plan, machine);
            Point {
                level,
                time: r.time,
                bytes: r.total_bytes,
                opens: r.total_opens,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcsim::{theta, workstation};

    #[test]
    fn paper_level_count() {
        // §5.4: n=64, P=32, S=2, 2^31 particles ⇒ top level l = 20.
        let shape = lod_dataset();
        assert_eq!(shape.total_particles, 1 << 31);
        assert_eq!(max_level(&shape), 20);
        assert_eq!(WRITER_PROCS as u64 * PARTICLES_PER_WRITER, 1 << 31);
    }

    #[test]
    fn theta_is_flat_at_low_levels_then_grows() {
        // Fig. 8 (Theta): "the first few levels can be read in about the
        // same time … dominated by file opening"; beyond ~level 8 the time
        // grows with the particle volume.
        let pts = lod_sweep(&theta());
        let t = |l: u32| pts.iter().find(|p| p.level == l).unwrap().time;
        assert!(
            t(6) < t(1) * 1.3,
            "low levels ~flat on theta: {} vs {}",
            t(1),
            t(6)
        );
        assert!(
            t(20) > 2.0 * t(8),
            "high levels grow with volume: {} vs {}",
            t(8),
            t(20)
        );
    }

    #[test]
    fn workstation_grows_earlier_than_theta() {
        // Fig. 8 contrast: on the SSD box time increases with the particle
        // volume well before Theta's open-dominated plateau ends (~level 8)
        // — "for initial lower levels we observe time increasing
        // proportionally with the number of particles being read".
        let ws = lod_sweep(&workstation());
        let th = lod_sweep(&theta());
        let t = |pts: &[Point], l: u32| pts.iter().find(|p| p.level == l).unwrap().time;
        let ws_growth = t(&ws, 12) / t(&ws, 4);
        let th_growth = t(&th, 12) / t(&th, 4);
        assert!(
            ws_growth > 2.0,
            "SSD box must grow by mid levels: {ws_growth}"
        );
        assert!(
            th_growth < 1.5,
            "Theta still open-dominated at level 12: {th_growth}"
        );
        // Low-level reads are fast enough for interactive use (§5.4).
        assert!(
            t(&ws, 5) < 2.0,
            "level-5 read should be interactive: {}",
            t(&ws, 5)
        );
    }

    #[test]
    fn reading_all_levels_equals_full_dataset_read() {
        // §5.4: at the last level "the timing is equivalent to reading the
        // entire dataset using 64 cores (as seen in Figure 7)".
        use crate::fig7::{read_scaling, time_of, Case};
        for machine in [theta(), workstation()] {
            let pts = lod_sweep(&machine);
            let full_lod = pts.last().unwrap();
            // Full payload plus each file's header + checksum-footer fetch.
            let expect = (1u64 << 31) * 124
                + 8192 * spio_format::data_file::lod_open_overhead((1 << 31) / 8192);
            assert_eq!(full_lod.bytes, expect, "all particles read");
            let fig7 = read_scaling(&machine, &[64]);
            let fig7_time = time_of(&fig7, Case::AggWithMeta, 64);
            let ratio = full_lod.time / fig7_time;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{}: LOD-complete {} vs fig7 full read {}",
                machine.name,
                full_lod.time,
                fig7_time
            );
        }
    }

    #[test]
    fn opens_are_constant_across_levels() {
        let pts = lod_sweep(&theta());
        assert!(pts.windows(2).all(|w| w[0].opens == w[1].opens));
        // 8192 files, one open each.
        assert_eq!(pts[0].opens, 8192);
    }
}
