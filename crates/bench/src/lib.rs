//! # spio-bench
//!
//! The experiment harness: one module (and one binary) per table/figure of
//! the paper's evaluation, regenerating the same rows/series the paper
//! reports. Write-scaling and large-scale read experiments replay exact
//! `spio-core` plans through the `hpcsim` machine models; the LOD-quality
//! experiment (Fig. 9) runs the real writer/reader on the thread runtime.
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig5_write_scaling`  | Fig. 5 — weak-scaling write throughput, Mira & Theta × {32 Ki, 64 Ki} particles/core |
//! | `fig6_time_breakdown` | Fig. 6 — aggregation vs file-I/O time split at 32 Ki processes |
//! | `fig7_read_scaling`   | Fig. 7 — visualization-read strong scaling, Theta & SSD workstation |
//! | `fig8_lod_reads`      | Fig. 8 — level-of-detail read time, 64 readers |
//! | `fig9_lod_quality`    | Fig. 9 — LOD fidelity proxy (density RMSE / coverage) on a jet dataset |
//! | `fig11_adaptive`      | Fig. 11 — adaptive vs non-adaptive aggregation under shrinking coverage |

pub mod ablation;
pub mod fig11;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod read_bench;
pub mod regression;
pub mod table;

/// The paper's per-core workloads (§5.1): 32 Ki and 64 Ki particles per
/// process (≈4 MB and ≈8 MB at 124 B/particle).
pub const PARTICLES_PER_CORE: [u64; 2] = [32 * 1024, 64 * 1024];

/// The paper's weak-scaling process counts: 512 … 262 144 (§5.2).
pub const SCALING_PROCS: [usize; 10] = [
    512, 1024, 2048, 4096, 8192, 16_384, 32_768, 65_536, 131_072, 262_144,
];
