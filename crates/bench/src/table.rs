//! Tiny fixed-width table printer for the experiment binaries.

/// Print a header row followed by data rows, all columns right-aligned to
/// the widest cell.
pub fn print_table(header: &[String], rows: &[Vec<String>]) {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i.min(widths.len() - 1)]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(header));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Format seconds with 3 significant decimals.
pub fn secs(t: f64) -> String {
    format!("{t:.3}")
}

/// Format a throughput in GB/s.
pub fn gbs(bytes_per_sec: f64) -> String {
    format!("{:.2}", bytes_per_sec / 1e9)
}

/// Format a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(1.23456), "1.235");
        assert_eq!(gbs(98.0e9), "98.00");
        assert_eq!(pct(0.256), "25.6%");
    }

    #[test]
    fn table_prints_without_panicking() {
        print_table(
            &["a".into(), "b".into()],
            &[vec!["1".into(), "2".into()], vec!["10".into(), "20".into()]],
        );
    }
}
