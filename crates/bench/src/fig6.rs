//! Fig. 6: time split between data aggregation (communication) and file
//! I/O for different aggregation configurations, at 32 Ki processes, on
//! both machines and both workloads.

use hpcsim::{simulate_spio_write, MachineModel};
use spio_core::plan::plan_write;
use spio_types::{Aabb3, DomainDecomposition, PartitionFactor};

/// One bar of Fig. 6.
#[derive(Debug, Clone)]
pub struct Bar {
    pub config: PartitionFactor,
    /// Fraction of (aggregation + file I/O) spent aggregating.
    pub aggregation_fraction: f64,
    pub aggregation_secs: f64,
    pub file_io_secs: f64,
}

/// The paper's Fig. 6 experiment: 32 768 processes.
pub const FIG6_PROCS: usize = 32_768;

/// Compute the breakdown bars for one machine/workload.
pub fn time_breakdown(machine: &MachineModel, per_core: u64) -> Vec<Bar> {
    crate::fig5::configs_for(machine)
        .into_iter()
        .map(|factor| {
            let decomp = DomainDecomposition::for_procs(Aabb3::new([0.0; 3], [1.0; 3]), FIG6_PROCS);
            let counts = vec![per_core; FIG6_PROCS];
            let plan = plan_write(&decomp, factor, &counts, false).unwrap();
            let b = simulate_spio_write(&plan, machine);
            Bar {
                config: factor,
                aggregation_fraction: b.aggregation_fraction(),
                aggregation_secs: b.aggregation,
                file_io_secs: b.create + b.data_io,
            }
        })
        .collect()
}

/// One bar of the real-execution breakdown: the [`Bar`] derived from
/// [`spio_core::WriteStats`], plus the same split derived independently
/// from the job's trace phase spans. The two must agree — the writer
/// records both from the same clock reads — so any drift flags an
/// instrumentation bug.
#[derive(Debug, Clone)]
pub struct RealBar {
    pub bar: Bar,
    /// Max-across-ranks aggregation time from the trace's phase spans.
    pub trace_aggregation_secs: f64,
    /// Max-across-ranks file-I/O time from the trace's phase spans.
    pub trace_file_io_secs: f64,
}

impl RealBar {
    /// Relative disagreement between the trace- and stats-derived
    /// aggregation/file-I/O split (0.0 = identical).
    pub fn trace_disagreement(&self) -> f64 {
        let rel = |a: f64, b: f64| {
            if a.max(b) > 0.0 {
                (a - b).abs() / a.max(b)
            } else {
                0.0
            }
        };
        rel(self.trace_aggregation_secs, self.bar.aggregation_secs)
            .max(rel(self.trace_file_io_secs, self.bar.file_io_secs))
    }
}

/// Supplementary desk-scale *real execution*: run the actual writer on the
/// thread runtime at `procs` ranks and report measured per-phase wall
/// times. Absolute values reflect the build machine, but the qualitative
/// Fig. 6 trend — aggregation share grows with the partition factor — is
/// observable in real message traffic, not just the model. Each job runs
/// with a [`spio_trace::Trace`] attached, and the returned bars carry the
/// trace-derived split for cross-checking against `WriteStats`.
pub fn time_breakdown_real(procs: usize, per_rank: usize) -> Vec<RealBar> {
    use spio_comm::{run_threaded_collect, Comm};
    use spio_core::writer::phases;
    use spio_core::{MemStorage, SpatialWriter, WriteStats, WriterConfig};
    use spio_trace::{JobReport, Trace};
    use spio_workloads::uniform_patch_particles;

    let decomp = DomainDecomposition::for_procs(Aabb3::new([0.0; 3], [1.0; 3]), procs);
    let mut out = Vec::new();
    for factor in [
        PartitionFactor::new(1, 1, 1),
        PartitionFactor::new(2, 2, 1),
        PartitionFactor::new(2, 2, 2),
        PartitionFactor::new(4, 2, 2),
    ] {
        if factor.validate(decomp.dims).is_err() {
            continue;
        }
        let storage = MemStorage::new();
        let trace = Trace::collecting();
        let t = trace.clone();
        let d = decomp.clone();
        let stats: Vec<WriteStats> = run_threaded_collect(procs, move |comm| {
            let ps = uniform_patch_particles(&d, comm.rank(), per_rank, 42);
            SpatialWriter::new(d.clone(), WriterConfig::new(factor))
                .with_trace(t.clone())
                .write(&comm, &ps, &storage.clone())
                .unwrap()
        })
        .unwrap();
        let merged = WriteStats::merge_max(&stats);
        let agg = merged.aggregation_time.as_secs_f64();
        let io = merged.file_io_time.as_secs_f64();
        let report = JobReport::from_snapshot(procs, &trace.take_snapshot());
        out.push(RealBar {
            bar: Bar {
                config: factor,
                aggregation_fraction: if agg + io > 0.0 {
                    agg / (agg + io)
                } else {
                    0.0
                },
                aggregation_secs: agg,
                file_io_secs: io,
            },
            trace_aggregation_secs: report.phase_max(phases::AGGREGATION).as_secs_f64(),
            trace_file_io_secs: report.phase_max(phases::FILE_IO).as_secs_f64(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcsim::{mira, theta};

    fn frac(bars: &[Bar], cfg: (usize, usize, usize)) -> f64 {
        bars.iter()
            .find(|b| b.config == PartitionFactor::new(cfg.0, cfg.1, cfg.2))
            .unwrap()
            .aggregation_fraction
    }

    #[test]
    fn aggregation_share_grows_with_partition_size() {
        // Fig. 6: "we observe an increase in aggregation time with more
        // aggregation partitions" — on both machines and both workloads.
        for m in [mira(), theta()] {
            for per_core in [32 * 1024, 64 * 1024] {
                let bars = time_breakdown(&m, per_core);
                assert!(frac(&bars, (2, 2, 2)) <= frac(&bars, (2, 2, 4)) + 1e-9);
                assert!(frac(&bars, (2, 2, 4)) <= frac(&bars, (2, 4, 4)) + 1e-9);
                assert_eq!(frac(&bars, (1, 1, 1)), 0.0, "FPP has no aggregation");
            }
        }
    }

    #[test]
    fn mira_aggregation_stays_a_small_share() {
        // Fig. 6a/b: "this percentage remains small compared to the actual
        // file I/O time" on Mira.
        let bars = time_breakdown(&mira(), 32 * 1024);
        assert!(
            frac(&bars, (2, 4, 4)) < 0.4,
            "Mira 2x4x4 aggregation share too large: {}",
            frac(&bars, (2, 4, 4))
        );
    }

    #[test]
    fn trace_breakdown_agrees_with_write_stats() {
        // The trace phase spans and WriteStats come from the same clock
        // reads, so the two derivations of the Fig. 6 split must agree to
        // well within 5%.
        for rb in time_breakdown_real(16, 4_000) {
            assert!(
                rb.trace_disagreement() <= 0.05,
                "{}: trace ({:.6}s agg / {:.6}s io) vs stats ({:.6}s / {:.6}s)",
                rb.bar.config,
                rb.trace_aggregation_secs,
                rb.trace_file_io_secs,
                rb.bar.aggregation_secs,
                rb.bar.file_io_secs
            );
        }
    }

    #[test]
    fn theta_spends_relatively_more_time_aggregating() {
        // Fig. 6c/d: "on Theta … the aggregation of data over the network
        // is far more expensive than on Mira" for the same configuration.
        for cfg in [(2, 2, 2), (2, 2, 4), (2, 4, 4)] {
            let m = frac(&time_breakdown(&mira(), 32 * 1024), cfg);
            let t = frac(&time_breakdown(&theta(), 32 * 1024), cfg);
            assert!(t > m, "theta {t:.3} must exceed mira {m:.3} for {cfg:?}");
        }
    }
}
