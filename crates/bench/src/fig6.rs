//! Fig. 6: time split between data aggregation (communication) and file
//! I/O for different aggregation configurations, at 32 Ki processes, on
//! both machines and both workloads.

use hpcsim::{simulate_spio_write, MachineModel};
use spio_core::plan::plan_write;
use spio_types::{Aabb3, DomainDecomposition, PartitionFactor};

/// One bar of Fig. 6.
#[derive(Debug, Clone)]
pub struct Bar {
    pub config: PartitionFactor,
    /// Fraction of (aggregation + file I/O) spent aggregating.
    pub aggregation_fraction: f64,
    pub aggregation_secs: f64,
    pub file_io_secs: f64,
}

/// The paper's Fig. 6 experiment: 32 768 processes.
pub const FIG6_PROCS: usize = 32_768;

/// Compute the breakdown bars for one machine/workload.
pub fn time_breakdown(machine: &MachineModel, per_core: u64) -> Vec<Bar> {
    crate::fig5::configs_for(machine)
        .into_iter()
        .map(|factor| {
            let decomp =
                DomainDecomposition::for_procs(Aabb3::new([0.0; 3], [1.0; 3]), FIG6_PROCS);
            let counts = vec![per_core; FIG6_PROCS];
            let plan = plan_write(&decomp, factor, &counts, false).unwrap();
            let b = simulate_spio_write(&plan, machine);
            Bar {
                config: factor,
                aggregation_fraction: b.aggregation_fraction(),
                aggregation_secs: b.aggregation,
                file_io_secs: b.create + b.data_io,
            }
        })
        .collect()
}

/// Supplementary desk-scale *real execution*: run the actual writer on the
/// thread runtime at `procs` ranks and report measured per-phase wall
/// times. Absolute values reflect the build machine, but the qualitative
/// Fig. 6 trend — aggregation share grows with the partition factor — is
/// observable in real message traffic, not just the model.
pub fn time_breakdown_real(procs: usize, per_rank: usize) -> Vec<Bar> {
    use spio_comm::{run_threaded_collect, Comm};
    use spio_core::{MemStorage, SpatialWriter, WriteStats, WriterConfig};
    use spio_workloads::uniform_patch_particles;

    let decomp = DomainDecomposition::for_procs(Aabb3::new([0.0; 3], [1.0; 3]), procs);
    let mut out = Vec::new();
    for factor in [
        PartitionFactor::new(1, 1, 1),
        PartitionFactor::new(2, 2, 1),
        PartitionFactor::new(2, 2, 2),
        PartitionFactor::new(4, 2, 2),
    ] {
        if factor.validate(decomp.dims).is_err() {
            continue;
        }
        let storage = MemStorage::new();
        let d = decomp.clone();
        let stats: Vec<WriteStats> = run_threaded_collect(procs, move |comm| {
            let ps = uniform_patch_particles(&d, comm.rank(), per_rank, 42);
            SpatialWriter::new(d.clone(), WriterConfig::new(factor))
                .write(&comm, &ps, &storage.clone())
                .unwrap()
        })
        .unwrap();
        let merged = WriteStats::merge_max(&stats);
        let agg = merged.aggregation_time.as_secs_f64();
        let io = merged.file_io_time.as_secs_f64();
        out.push(Bar {
            config: factor,
            aggregation_fraction: if agg + io > 0.0 { agg / (agg + io) } else { 0.0 },
            aggregation_secs: agg,
            file_io_secs: io,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcsim::{mira, theta};

    fn frac(bars: &[Bar], cfg: (usize, usize, usize)) -> f64 {
        bars.iter()
            .find(|b| b.config == PartitionFactor::new(cfg.0, cfg.1, cfg.2))
            .unwrap()
            .aggregation_fraction
    }

    #[test]
    fn aggregation_share_grows_with_partition_size() {
        // Fig. 6: "we observe an increase in aggregation time with more
        // aggregation partitions" — on both machines and both workloads.
        for m in [mira(), theta()] {
            for per_core in [32 * 1024, 64 * 1024] {
                let bars = time_breakdown(&m, per_core);
                assert!(frac(&bars, (2, 2, 2)) <= frac(&bars, (2, 2, 4)) + 1e-9);
                assert!(frac(&bars, (2, 2, 4)) <= frac(&bars, (2, 4, 4)) + 1e-9);
                assert_eq!(frac(&bars, (1, 1, 1)), 0.0, "FPP has no aggregation");
            }
        }
    }

    #[test]
    fn mira_aggregation_stays_a_small_share() {
        // Fig. 6a/b: "this percentage remains small compared to the actual
        // file I/O time" on Mira.
        let bars = time_breakdown(&mira(), 32 * 1024);
        assert!(
            frac(&bars, (2, 4, 4)) < 0.4,
            "Mira 2x4x4 aggregation share too large: {}",
            frac(&bars, (2, 4, 4))
        );
    }

    #[test]
    fn theta_spends_relatively_more_time_aggregating() {
        // Fig. 6c/d: "on Theta … the aggregation of data over the network
        // is far more expensive than on Mira" for the same configuration.
        for cfg in [(2, 2, 2), (2, 2, 4), (2, 4, 4)] {
            let m = frac(&time_breakdown(&mira(), 32 * 1024), cfg);
            let t = frac(&time_breakdown(&theta(), 32 * 1024), cfg);
            assert!(
                t > m,
                "theta {t:.3} must exceed mira {m:.3} for {cfg:?}"
            );
        }
    }
}
