//! Ablation studies for the design choices DESIGN.md calls out — beyond
//! the paper's own figures.
//!
//! * [`balanced_aggregation`] — §7's rebalanced adaptive grid vs the §6
//!   bounding-box grid, under increasingly skewed particle distributions;
//! * LOD ordering — §3.4's "density or random" reordering heuristics:
//!   feature coverage of small prefixes for the random shuffle vs the
//!   stratified order (run by `fig9::lod_quality` on real datasets);
//! * [`partition_factor_sensitivity`] — how sharply throughput responds to
//!   the tuning knob on each machine (why the paper exposes it to users).

use hpcsim::{simulate_spio_write, simulate_spio_write_node_contended, MachineModel};
use spio_core::adaptive::AdaptiveGrid;
use spio_core::grid::AggregationGrid;
use spio_core::plan::plan_write_on_grid;
use spio_types::{Aabb3, DomainDecomposition, PartitionFactor};

/// One row of the balanced-aggregation ablation.
#[derive(Debug, Clone)]
pub struct BalanceRow {
    /// Fraction of ranks holding the heavy load.
    pub skew: f64,
    pub bbox_imbalance: f64,
    pub balanced_imbalance: f64,
    pub bbox_time: f64,
    pub balanced_time: f64,
}

/// Compare §6 bounding-box adaptivity against §7 weight rebalancing at
/// `procs` ranks: a fraction `skew` of the ranks (a contiguous x-band)
/// holds `heavy_factor`× the base load.
pub fn balanced_aggregation(
    machine: &MachineModel,
    procs: usize,
    skews: &[f64],
    heavy_factor: u64,
) -> Vec<BalanceRow> {
    let decomp = DomainDecomposition::for_procs(Aabb3::new([0.0; 3], [1.0; 3]), procs);
    let factor = PartitionFactor::new(2, 2, 2);
    let base = 32 * 1024u64;
    skews
        .iter()
        .map(|&skew| {
            let heavy_x = ((decomp.dims.nx as f64) * skew).max(1.0) as usize;
            let counts: Vec<u64> = (0..procs)
                .map(|r| {
                    if decomp.patch_coords(r)[0] < heavy_x {
                        base * heavy_factor
                    } else {
                        base
                    }
                })
                .collect();
            let bbox = AdaptiveGrid::build(&decomp, factor, &counts).unwrap();
            let balanced = AdaptiveGrid::build_balanced(&decomp, factor, &counts).unwrap();
            let bbox_plan = plan_write_on_grid(&bbox, &counts, true).unwrap();
            let bal_plan = plan_write_on_grid(&balanced, &counts, true).unwrap();
            BalanceRow {
                skew,
                bbox_imbalance: AdaptiveGrid::imbalance(&bbox, &counts),
                balanced_imbalance: AdaptiveGrid::imbalance(&balanced, &counts),
                bbox_time: simulate_spio_write(&bbox_plan, machine).total(),
                balanced_time: simulate_spio_write(&bal_plan, machine).total(),
            }
        })
        .collect()
}

/// One row of the §3.2 aggregator-placement ablation.
#[derive(Debug, Clone)]
pub struct PlacementRow {
    pub factor: PartitionFactor,
    /// Aggregation time with aggregators uniform in rank space (§3.2).
    pub uniform_agg: f64,
    /// Aggregation time with partition-local aggregators.
    pub local_agg: f64,
}

/// Compare the paper's uniform-rank-space aggregator selection against
/// partition-local placement, under a node-contention-aware network model:
/// local placement can pack several aggregators onto one compute node's
/// NIC ("spatially neighboring processes may not be close in the network
/// topology … we choose a scheme which ensures a more even utilization of
/// the network", §3.2).
pub fn aggregator_placement(
    machine: &MachineModel,
    procs: usize,
    per_core: u64,
) -> Vec<PlacementRow> {
    let decomp = DomainDecomposition::for_procs(Aabb3::new([0.0; 3], [1.0; 3]), procs);
    let counts = vec![per_core; procs];
    crate::fig5::configs_for(machine)
        .into_iter()
        .filter(|f| f.group_size() > 1)
        .map(|factor| {
            let uniform = AggregationGrid::aligned(&decomp, factor).unwrap();
            let mut local = uniform.clone();
            local.use_partition_local_aggregators();
            let up = plan_write_on_grid(&uniform, &counts, false).unwrap();
            let lp = plan_write_on_grid(&local, &counts, false).unwrap();
            PlacementRow {
                factor,
                uniform_agg: simulate_spio_write_node_contended(&up, machine).aggregation,
                local_agg: simulate_spio_write_node_contended(&lp, machine).aggregation,
            }
        })
        .collect()
}

/// One row of the partition-factor sensitivity sweep.
#[derive(Debug, Clone)]
pub struct SensitivityRow {
    pub factor: PartitionFactor,
    pub throughput_gbs: f64,
}

/// Throughput across the full factor ladder at one scale — quantifies how
/// much a user loses by picking the wrong knob value on each machine.
pub fn partition_factor_sensitivity(
    machine: &MachineModel,
    procs: usize,
    per_core: u64,
) -> Vec<SensitivityRow> {
    crate::fig5::configs_for(machine)
        .into_iter()
        .map(|factor| {
            let p = crate::fig5::spio_point(machine, procs, per_core, factor);
            SensitivityRow {
                factor,
                throughput_gbs: p.throughput_gbs(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcsim::{mira, theta};

    #[test]
    fn rebalancing_helps_more_as_skew_grows() {
        let rows = balanced_aggregation(&theta(), 4096, &[0.5, 0.25, 0.125], 8);
        for r in &rows {
            assert!(
                r.balanced_imbalance <= r.bbox_imbalance + 1e-9,
                "skew {}: balanced {} vs bbox {}",
                r.skew,
                r.balanced_imbalance,
                r.bbox_imbalance
            );
        }
        // At the sharpest skew, rebalancing must clearly win on balance.
        let sharpest = rows.last().unwrap();
        assert!(sharpest.bbox_imbalance > 1.5);
        assert!(sharpest.balanced_imbalance < sharpest.bbox_imbalance * 0.75);
    }

    #[test]
    fn rebalancing_never_slows_the_simulated_write_much() {
        for m in [mira(), theta()] {
            let rows = balanced_aggregation(&m, 4096, &[0.25], 8);
            let r = &rows[0];
            assert!(
                r.balanced_time <= r.bbox_time * 1.1,
                "{}: balanced {} vs bbox {}",
                m.name,
                r.balanced_time,
                r.bbox_time
            );
        }
    }

    #[test]
    fn uniform_placement_wins_once_aggregators_are_sparse() {
        // §3.2's claim: uniform rank-space placement utilizes the network
        // more evenly. The ablation shows *when*: with sparse aggregators
        // (group size ≥ 8), partition-local placement packs several
        // aggregators onto one node's NIC and loses clearly; at tiny
        // factors (half the ranks aggregate), uniform placement needlessly
        // turns every rank's contribution into a remote message and the
        // trade-off reverses — matching the paper's practice of treating
        // (1,1,1) as plain file-per-process (trivially local).
        for m in [mira(), theta()] {
            let rows = aggregator_placement(&m, 4096, 32 * 1024);
            for r in rows.iter().filter(|r| r.factor.group_size() >= 8) {
                assert!(
                    r.uniform_agg < r.local_agg,
                    "{} {}: uniform {} vs local {}",
                    m.name,
                    r.factor,
                    r.uniform_agg,
                    r.local_agg
                );
            }
            // The sparsest configuration shows a pronounced gap.
            let sparsest = rows.iter().max_by_key(|r| r.factor.group_size()).unwrap();
            assert!(
                sparsest.local_agg > 1.5 * sparsest.uniform_agg,
                "{}: local {} vs uniform {}",
                m.name,
                sparsest.local_agg,
                sparsest.uniform_agg
            );
        }
    }

    #[test]
    fn factor_sensitivity_shows_machine_contrast() {
        // The best and worst factors differ by a large margin on both
        // machines — the reason the paper exposes the knob.
        for m in [mira(), theta()] {
            let rows = partition_factor_sensitivity(&m, 65_536, 32 * 1024);
            let best = rows.iter().map(|r| r.throughput_gbs).fold(0.0f64, f64::max);
            let worst = rows
                .iter()
                .map(|r| r.throughput_gbs)
                .fold(f64::MAX, f64::min);
            assert!(best > 2.0 * worst, "{}: best {best} worst {worst}", m.name);
        }
    }
}
