//! Bench regression gate: run the desk-scale Fig. 6 workload under full
//! tracing, distill it into a [`BenchRecord`] of per-configuration phase
//! times and traffic counts, and compare against a committed baseline.
//!
//! The record is deliberately small and stable: per partition factor it
//! keeps the *min-across-runs* of the *max-across-ranks* phase wall
//! times (min-of-N absorbs scheduler noise; max-of-ranks is the job's
//! critical path, matching how Fig. 6 reports time), plus deterministic
//! traffic totals (bytes written, bytes sent, storage-op count) that act
//! as a workload fingerprint. `spio bench --baseline BENCH_fig6.json`
//! replays the workload and fails if any phase regressed more than
//! [`DEFAULT_THRESHOLD`] beyond [`SLACK_US`], or if the fingerprint
//! drifted (which means the baseline describes a different workload and
//! must be re-recorded, not compared).

use spio_comm::{run_threaded_collect, Comm, TracedComm};
use spio_core::{
    DatasetReader, MemStorage, SpatialWriter, TracedStorage, WriteStats, WriterConfig,
};
use spio_trace::{JobReport, Trace, TraceSnapshot};
use spio_types::{Aabb3, DomainDecomposition, PartitionFactor};
use spio_util::Json;

/// Relative slowdown tolerated before a phase counts as regressed.
pub const DEFAULT_THRESHOLD: f64 = 0.20;

/// Absolute slack (µs) added on top of the relative threshold. Desk-scale
/// phases run single-digit milliseconds and thread-scheduling noise on a
/// shared machine is bimodal at that scale, so the slack must cover a full
/// scheduling hiccup; the relative threshold carries the gate once phases
/// are long enough to measure honestly.
pub const SLACK_US: u64 = 20_000;

/// How to run the benchmark workload.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Thread-runtime ranks per job.
    pub procs: usize,
    /// Particles per rank.
    pub per_rank: usize,
    /// Repetitions per configuration; phase times keep the minimum.
    pub runs: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            procs: 8,
            per_rank: 5_000,
            runs: 5,
        }
    }
}

/// Min-across-runs wall time of one phase, max across ranks within a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseTime {
    pub phase: String,
    pub micros: u64,
}

/// Measurements for one partition factor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigRecord {
    /// `PxxPyxPz` rendering of the partition factor.
    pub config: String,
    pub phases: Vec<PhaseTime>,
    /// Deterministic fingerprint: bytes handed to `write_file`/`write_range`.
    pub bytes_written: u64,
    /// Deterministic fingerprint: point-to-point bytes sent.
    pub bytes_sent: u64,
    /// Deterministic fingerprint: storage operations issued.
    pub storage_ops: u64,
}

/// The perf record `spio bench` writes and compares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchRecord {
    pub procs: usize,
    pub per_rank: usize,
    pub configs: Vec<ConfigRecord>,
}

/// Everything one `spio bench` invocation produces: the comparable
/// record plus the last job's full observability artifacts.
#[derive(Debug)]
pub struct BenchRun {
    pub record: BenchRecord,
    /// Trace snapshot of the final job (last factor, last run + read pass).
    pub snapshot: TraceSnapshot,
    /// Report derived from `snapshot`.
    pub report: JobReport,
    /// Metrics-registry dump of the final job, one JSON object per line.
    pub metrics_jsonl: String,
}

/// The partition factors the desk-scale Fig. 6 sweep exercises, in the
/// order they appear in the record. Factors invalid for the decomposition
/// at `procs` ranks are skipped.
pub fn fig6_factors() -> [PartitionFactor; 4] {
    [
        PartitionFactor::new(1, 1, 1),
        PartitionFactor::new(2, 2, 1),
        PartitionFactor::new(2, 2, 2),
        PartitionFactor::new(4, 2, 2),
    ]
}

/// Run the Fig. 6 workload under `cfg` with full tracing (phases, comm,
/// storage, metrics) and distill a [`BenchRecord`].
///
/// The last job additionally replays a whole-domain read through a traced
/// reader, so the returned snapshot/report exercise the read path too.
pub fn run_fig6(cfg: &BenchConfig) -> BenchRun {
    let decomp = DomainDecomposition::for_procs(Aabb3::new([0.0; 3], [1.0; 3]), cfg.procs);
    let factors: Vec<PartitionFactor> = fig6_factors()
        .into_iter()
        .filter(|f| f.validate(decomp.dims).is_ok())
        .collect();
    let runs = cfg.runs.max(1);
    let mut configs = Vec::new();
    let mut last: Option<(Trace, MemStorage)> = None;
    for (fi, &factor) in factors.iter().enumerate() {
        let mut best: Vec<PhaseTime> = Vec::new();
        let mut fingerprint = (0u64, 0u64, 0u64);
        for run in 0..runs {
            let storage = MemStorage::new();
            let trace = Trace::collecting();
            let (t, d) = (trace.clone(), decomp.clone());
            let s = storage.clone();
            let per_rank = cfg.per_rank;
            let stats: Vec<WriteStats> = run_threaded_collect(cfg.procs, move |comm| {
                let rank = comm.rank();
                let comm = TracedComm::new(comm, t.clone());
                let traced = TracedStorage::new(s.clone(), t.clone(), rank);
                let ps = spio_workloads::uniform_patch_particles(&d, rank, per_rank, 42);
                SpatialWriter::new(d.clone(), WriterConfig::new(factor))
                    .with_trace(t.clone())
                    .write(&comm, &ps, &traced)
                    .unwrap()
            })
            .unwrap();
            let _ = WriteStats::merge_max(&stats);
            let is_last_job = fi + 1 == factors.len() && run + 1 == runs;
            if is_last_job {
                // Whole-domain read pass through the traced reader, so the
                // exported snapshot covers reads as well as the write job.
                let traced = TracedStorage::new(storage.clone(), trace.clone(), 0);
                let reader = DatasetReader::open_traced(&traced, trace.clone(), 0).unwrap();
                reader
                    .read_box(&traced, &Aabb3::new([0.0; 3], [1.0; 3]))
                    .unwrap();
            }
            let report = JobReport::from_snapshot(cfg.procs, &trace.snapshot());
            fingerprint = (
                report.storage_bytes("write_file") + report.storage_bytes("write_range"),
                report.total_bytes_sent(),
                report.storage.len() as u64,
            );
            merge_min_phases(&mut best, &report);
            if is_last_job {
                last = Some((trace, storage));
            }
        }
        configs.push(ConfigRecord {
            config: factor.to_string(),
            phases: best,
            bytes_written: fingerprint.0,
            bytes_sent: fingerprint.1,
            storage_ops: fingerprint.2,
        });
    }
    let (trace, _storage) = last.expect("at least one valid partition factor");
    let metrics_jsonl = trace.metrics().to_jsonl();
    let snapshot = trace.take_snapshot();
    let report = JobReport::from_snapshot(cfg.procs, &snapshot);
    BenchRun {
        record: BenchRecord {
            procs: cfg.procs,
            per_rank: cfg.per_rank,
            configs,
        },
        snapshot,
        report,
        metrics_jsonl,
    }
}

/// Fold one run's per-phase critical-path times into the running minima.
fn merge_min_phases(best: &mut Vec<PhaseTime>, report: &JobReport) {
    for phase in report.phase_names() {
        let micros = report.phase_max(phase).as_micros() as u64;
        match best.iter_mut().find(|p| p.phase == phase) {
            Some(p) => p.micros = p.micros.min(micros),
            None => best.push(PhaseTime {
                phase: phase.to_string(),
                micros,
            }),
        }
    }
}

impl BenchRecord {
    pub fn to_json(&self) -> String {
        let configs = self
            .configs
            .iter()
            .map(|c| {
                let phases = c
                    .phases
                    .iter()
                    .map(|p| {
                        Json::Obj(vec![
                            ("phase".into(), Json::str(&p.phase)),
                            ("micros".into(), Json::u64(p.micros)),
                        ])
                    })
                    .collect();
                Json::Obj(vec![
                    ("config".into(), Json::str(&c.config)),
                    ("phases".into(), Json::Arr(phases)),
                    ("bytes_written".into(), Json::u64(c.bytes_written)),
                    ("bytes_sent".into(), Json::u64(c.bytes_sent)),
                    ("storage_ops".into(), Json::u64(c.storage_ops)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("format".into(), Json::str("spio-bench-record")),
            ("version".into(), Json::u64(1)),
            ("procs".into(), Json::u64(self.procs as u64)),
            ("per_rank".into(), Json::u64(self.per_rank as u64)),
            ("configs".into(), Json::Arr(configs)),
        ])
        .to_string()
    }

    pub fn from_json(text: &str) -> Result<BenchRecord, String> {
        let doc = Json::parse(text)?;
        if doc.get("format").and_then(Json::as_str) != Some("spio-bench-record") {
            return Err("not a spio bench record".into());
        }
        if doc.get("version").and_then(Json::as_u64) != Some(1) {
            return Err("unsupported bench-record version".into());
        }
        let num = |obj: &Json, key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing numeric field '{key}'"))
        };
        let mut record = BenchRecord {
            procs: num(&doc, "procs")? as usize,
            per_rank: num(&doc, "per_rank")? as usize,
            configs: Vec::new(),
        };
        for c in doc
            .get("configs")
            .and_then(Json::as_arr)
            .ok_or("missing array 'configs'")?
        {
            let mut phases = Vec::new();
            for p in c
                .get("phases")
                .and_then(Json::as_arr)
                .ok_or("missing array 'phases'")?
            {
                phases.push(PhaseTime {
                    phase: p
                        .get("phase")
                        .and_then(Json::as_str)
                        .ok_or("missing string field 'phase'")?
                        .to_string(),
                    micros: num(p, "micros")?,
                });
            }
            record.configs.push(ConfigRecord {
                config: c
                    .get("config")
                    .and_then(Json::as_str)
                    .ok_or("missing string field 'config'")?
                    .to_string(),
                phases,
                bytes_written: num(c, "bytes_written")?,
                bytes_sent: num(c, "bytes_sent")?,
                storage_ops: num(c, "storage_ops")?,
            });
        }
        Ok(record)
    }
}

/// Compare a current record against a baseline.
///
/// Returns `Err` when the two records describe different workloads
/// (procs/per_rank/config set/fingerprint mismatch) — such baselines must
/// be re-recorded, not gated against. Returns `Ok(regressions)` otherwise;
/// an empty vector means the gate passes. A phase regresses when
/// `cur > base * (1 + threshold) + SLACK_US`.
pub fn compare(
    base: &BenchRecord,
    cur: &BenchRecord,
    threshold: f64,
) -> Result<Vec<String>, String> {
    if base.procs != cur.procs || base.per_rank != cur.per_rank {
        return Err(format!(
            "workload mismatch: baseline is {} procs x {} particles, current is {} x {}",
            base.procs, base.per_rank, cur.procs, cur.per_rank
        ));
    }
    let mut regressions = Vec::new();
    for bc in &base.configs {
        let Some(cc) = cur.configs.iter().find(|c| c.config == bc.config) else {
            return Err(format!(
                "configuration {} missing from current run",
                bc.config
            ));
        };
        if (bc.bytes_written, bc.bytes_sent, bc.storage_ops)
            != (cc.bytes_written, cc.bytes_sent, cc.storage_ops)
        {
            return Err(format!(
                "{}: workload fingerprint drifted \
                 (written {} -> {}, sent {} -> {}, ops {} -> {}); re-record the baseline",
                bc.config,
                bc.bytes_written,
                cc.bytes_written,
                bc.bytes_sent,
                cc.bytes_sent,
                bc.storage_ops,
                cc.storage_ops
            ));
        }
        for bp in &bc.phases {
            let Some(cp) = cc.phases.iter().find(|p| p.phase == bp.phase) else {
                return Err(format!(
                    "{}: phase '{}' missing from current run",
                    bc.config, bp.phase
                ));
            };
            let limit = (bp.micros as f64 * (1.0 + threshold)) as u64 + SLACK_US;
            if cp.micros > limit {
                regressions.push(format!(
                    "{}/{}: {}µs -> {}µs (limit {}µs at +{:.0}% + {}µs slack)",
                    bc.config,
                    bp.phase,
                    bp.micros,
                    cp.micros,
                    limit,
                    threshold * 100.0,
                    SLACK_US
                ));
            }
        }
    }
    Ok(regressions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchConfig {
        BenchConfig {
            procs: 8,
            per_rank: 200,
            runs: 1,
        }
    }

    #[test]
    fn record_roundtrips_through_json() {
        let run = run_fig6(&tiny());
        let back = BenchRecord::from_json(&run.record.to_json()).unwrap();
        assert_eq!(back, run.record);
    }

    #[test]
    fn record_covers_all_valid_factors_and_phases() {
        let run = run_fig6(&tiny());
        assert!(
            run.record.configs.len() >= 2,
            "expected several partition factors at 8 ranks: {:?}",
            run.record.configs
        );
        for c in &run.record.configs {
            assert!(
                c.phases.iter().any(|p| p.phase == "file_io"),
                "{}: no file_io phase in {:?}",
                c.config,
                c.phases
            );
            assert!(c.bytes_written > 0, "{}: no bytes written", c.config);
            assert!(c.storage_ops > 0, "{}: no storage ops", c.config);
        }
        // The last job's artifacts cover storage latency + the read pass.
        assert!(run.report.op_latency("write_file").is_some());
        assert!(!run.snapshot.events.is_empty());
        assert!(run.metrics_jsonl.contains("storage.write_file.ops"));
    }

    #[test]
    fn chrome_export_of_bench_trace_validates() {
        // Acceptance: a traced fig6 run must export a Chrome trace that
        // passes the schema validator, and a report with latency
        // percentiles and a per-phase imbalance table.
        let run = run_fig6(&tiny());
        let chrome = spio_trace::chrome_trace(&run.snapshot);
        spio_trace::validate_chrome_trace(&chrome).unwrap();
        let lat = run.report.op_latency("write_file").unwrap();
        assert!(lat.p50_us <= lat.p95_us && lat.p95_us <= lat.p99_us);
        assert!(!run.report.imbalance.is_empty());
        let back = JobReport::from_json(&run.report.to_json()).unwrap();
        assert_eq!(back, run.report);
    }

    #[test]
    fn identical_records_pass_the_gate() {
        let run = run_fig6(&tiny());
        assert_eq!(
            compare(&run.record, &run.record, DEFAULT_THRESHOLD).unwrap(),
            Vec::<String>::new()
        );
    }

    #[test]
    fn slowdown_beyond_threshold_and_slack_regresses() {
        let base = run_fig6(&tiny()).record;
        let mut slow = base.clone();
        for c in &mut slow.configs {
            for p in &mut c.phases {
                p.micros = p.micros * 2 + 2 * SLACK_US;
            }
        }
        let regressions = compare(&base, &slow, DEFAULT_THRESHOLD).unwrap();
        assert!(!regressions.is_empty());
        // And small noise under the slack never regresses.
        let mut noisy = base.clone();
        for c in &mut noisy.configs {
            for p in &mut c.phases {
                p.micros += SLACK_US / 2;
            }
        }
        assert!(compare(&base, &noisy, DEFAULT_THRESHOLD)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn workload_mismatch_is_an_error_not_a_regression() {
        let base = run_fig6(&tiny()).record;
        let mut other = base.clone();
        other.per_rank += 1;
        assert!(compare(&base, &other, DEFAULT_THRESHOLD).is_err());
        let mut drifted = base.clone();
        drifted.configs[0].bytes_written += 1;
        assert!(compare(&base, &drifted, DEFAULT_THRESHOLD).is_err());
    }
}
