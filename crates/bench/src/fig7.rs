//! Fig. 7: visualization-read strong scaling.
//!
//! A 2-billion-particle dataset (64 Ki writers × 32 Ki particles) is read
//! by far fewer processes on Theta (64 → 2048) and on the SSD workstation
//! (1 → 64). Three dataset/read variants, as in the paper:
//!
//! 1. written at (2,2,2) **with** the spatial metadata file — readers open
//!    only the files their subdomain query intersects;
//! 2. written at (2,2,2) **without** spatial metadata — every reader must
//!    scan all 8 Ki files;
//! 3. written at (1,1,1) (file-per-process, 64 Ki files) with metadata —
//!    selective, but paying the per-file open cost.

use hpcsim::{simulate_box_read, MachineModel, ReadSimResult};
use spio_core::grid::AggregationGrid;
use spio_core::plan::{plan_box_read, plan_write_on_grid, DatasetShape};
use spio_types::{Aabb3, DomainDecomposition, PartitionFactor};

/// The paper's Fig. 7 dataset: 65 536 writers × 32 768 particles.
pub const WRITER_PROCS: usize = 65_536;
pub const PARTICLES_PER_WRITER: u64 = 32_768;

/// Reader counts per platform.
pub const THETA_READERS: [usize; 6] = [64, 128, 256, 512, 1024, 2048];
pub const WORKSTATION_READERS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// The three plotted cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Case {
    /// (2,2,2) aggregation, spatial metadata available.
    AggWithMeta,
    /// (2,2,2) aggregation, no spatial metadata (scan everything).
    AggWithoutMeta,
    /// (1,1,1) file-per-process layout, spatial metadata available.
    FppWithMeta,
}

impl Case {
    pub fn label(&self) -> &'static str {
        match self {
            Case::AggWithMeta => "2x2x2 (with spatial metadata)",
            Case::AggWithoutMeta => "2x2x2 (without spatial metadata)",
            Case::FppWithMeta => "1x1x1 (with spatial metadata)",
        }
    }
}

/// Build the Fig. 7 dataset shape for a factor.
pub fn dataset_shape(factor: PartitionFactor) -> DatasetShape {
    let decomp = DomainDecomposition::for_procs(Aabb3::new([0.0; 3], [1.0; 3]), WRITER_PROCS);
    let grid = AggregationGrid::aligned(&decomp, factor).unwrap();
    let counts = vec![PARTICLES_PER_WRITER; WRITER_PROCS];
    let plan = plan_write_on_grid(&grid, &counts, false).unwrap();
    DatasetShape::from_write(&grid, &plan)
}

/// One strong-scaling point.
#[derive(Debug, Clone)]
pub struct Point {
    pub case: Case,
    pub readers: usize,
    pub result: ReadSimResult,
}

/// Run the three cases across a reader sweep on one machine.
pub fn read_scaling(machine: &MachineModel, readers: &[usize]) -> Vec<Point> {
    let agg = dataset_shape(PartitionFactor::new(2, 2, 2));
    let fpp = dataset_shape(PartitionFactor::new(1, 1, 1));
    let mut out = Vec::new();
    for &n in readers {
        out.push(Point {
            case: Case::AggWithMeta,
            readers: n,
            result: simulate_box_read(&plan_box_read(&agg, n, true), machine),
        });
        out.push(Point {
            case: Case::AggWithoutMeta,
            readers: n,
            result: simulate_box_read(&plan_box_read(&agg, n, false), machine),
        });
        out.push(Point {
            case: Case::FppWithMeta,
            readers: n,
            result: simulate_box_read(&plan_box_read(&fpp, n, true), machine),
        });
    }
    out
}

/// Lookup helper.
pub fn time_of(points: &[Point], case: Case, readers: usize) -> f64 {
    points
        .iter()
        .find(|p| p.case == case && p.readers == readers)
        .map(|p| p.result.time)
        .unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcsim::{theta, workstation};

    #[test]
    fn dataset_is_two_billion_particles() {
        let s = dataset_shape(PartitionFactor::new(2, 2, 2));
        assert_eq!(s.total_particles, 1 << 31);
        assert_eq!(s.files.len(), 8192, "64Ki/(2·2·2) files");
        let fpp = dataset_shape(PartitionFactor::new(1, 1, 1));
        assert_eq!(fpp.files.len(), 65_536);
    }

    #[test]
    fn theta_with_metadata_strong_scales() {
        let pts = read_scaling(&theta(), &[64, 2048]);
        let t64 = time_of(&pts, Case::AggWithMeta, 64);
        let t2048 = time_of(&pts, Case::AggWithMeta, 2048);
        assert!(
            t2048 < t64 / 4.0,
            "32× readers should cut time well: {t64} → {t2048}"
        );
    }

    #[test]
    fn without_metadata_is_worst_and_does_not_scale() {
        // Fig. 7: "the lack of spatial information forces every process to
        // read the entire set of particles … adding more processes does not
        // reduce the per-process I/O load".
        for machine in [theta(), workstation()] {
            let readers = if machine.name == "theta" {
                [64usize, 1024]
            } else {
                [4, 64]
            };
            let pts = read_scaling(&machine, &readers);
            for &n in &readers {
                let nometa = time_of(&pts, Case::AggWithoutMeta, n);
                let meta = time_of(&pts, Case::AggWithMeta, n);
                let fpp = time_of(&pts, Case::FppWithMeta, n);
                assert!(
                    nometa > meta && nometa > fpp,
                    "{}@{n}: no-meta {nometa} must be worst (meta {meta}, fpp {fpp})",
                    machine.name
                );
            }
            let early = time_of(&pts, Case::AggWithoutMeta, readers[0]);
            let late = time_of(&pts, Case::AggWithoutMeta, readers[1]);
            assert!(
                late > early * 0.8,
                "{}: no-meta must not strong-scale: {early} → {late}",
                machine.name
            );
        }
    }

    #[test]
    fn file_count_gap_is_much_larger_on_theta_than_ssd() {
        // Fig. 7: reading 64 Ki files "has a stronger impact on Theta as
        // compared to the SSD based workstation", where the times are
        // "almost comparable".
        let theta_pts = read_scaling(&theta(), &[64]);
        let t_gap =
            time_of(&theta_pts, Case::FppWithMeta, 64) / time_of(&theta_pts, Case::AggWithMeta, 64);
        let ws_pts = read_scaling(&workstation(), &[16]);
        let w_gap =
            time_of(&ws_pts, Case::FppWithMeta, 16) / time_of(&ws_pts, Case::AggWithMeta, 16);
        assert!(
            t_gap > 1.5,
            "Theta must punish the 64Ki-file layout: gap {t_gap}"
        );
        assert!(
            w_gap < 1.3,
            "SSD box should barely notice the file count: gap {w_gap}"
        );
        assert!(t_gap > w_gap);
    }

    #[test]
    fn fpp_with_metadata_still_scales() {
        // Fig. 7: "although the large number of files reduces the overall
        // performance, the spatial information … still allows this approach
        // to scale well".
        let pts = read_scaling(&theta(), &[64, 1024]);
        let t64 = time_of(&pts, Case::FppWithMeta, 64);
        let t1024 = time_of(&pts, Case::FppWithMeta, 1024);
        assert!(t1024 < t64, "time must drop with more readers");
    }
}
