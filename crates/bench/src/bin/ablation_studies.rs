//! Ablation studies beyond the paper's figures: §7 weight-rebalanced
//! adaptive aggregation, and partition-factor sensitivity.

use spio_bench::ablation;
use spio_bench::table::{print_table, secs};

fn main() {
    println!("Ablation 1 — §7 rebalanced adaptive grid vs §6 bounding-box grid");
    println!("(4096 ranks, heavy x-band holds 8x the base load)\n");
    for machine in [hpcsim::mira(), hpcsim::theta()] {
        println!("{}:", machine.name);
        let rows = ablation::balanced_aggregation(&machine, 4096, &[0.5, 0.25, 0.125], 8);
        let header = vec![
            "heavy band".to_string(),
            "bbox imbalance".to_string(),
            "balanced imbalance".to_string(),
            "bbox time (s)".to_string(),
            "balanced time (s)".to_string(),
        ];
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    format!("{:.1}%", r.skew * 100.0),
                    format!("{:.2}x", r.bbox_imbalance),
                    format!("{:.2}x", r.balanced_imbalance),
                    secs(r.bbox_time),
                    secs(r.balanced_time),
                ]
            })
            .collect();
        print_table(&header, &table);
        println!();
    }

    println!("Ablation 2 — §3.2 aggregator placement under node contention");
    println!("(4096 ranks, aggregation-phase seconds)\n");
    for machine in [hpcsim::mira(), hpcsim::theta()] {
        println!("{}:", machine.name);
        let rows = spio_bench::ablation::aggregator_placement(&machine, 4096, 32 * 1024);
        let header = vec![
            "factor".to_string(),
            "uniform rank-space".to_string(),
            "partition-local".to_string(),
        ];
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| vec![r.factor.to_string(), secs(r.uniform_agg), secs(r.local_agg)])
            .collect();
        print_table(&header, &table);
        println!();
    }

    println!("Ablation 3 — partition-factor sensitivity at 65,536 ranks, 32Ki/core\n");
    for machine in [hpcsim::mira(), hpcsim::theta()] {
        println!("{}:", machine.name);
        let rows = ablation::partition_factor_sensitivity(&machine, 65_536, 32 * 1024);
        let header = vec!["factor".to_string(), "GB/s".to_string()];
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| vec![r.factor.to_string(), format!("{:.2}", r.throughput_gbs)])
            .collect();
        print_table(&header, &table);
        let best = rows.iter().map(|r| r.throughput_gbs).fold(0.0f64, f64::max);
        let worst = rows
            .iter()
            .map(|r| r.throughput_gbs)
            .fold(f64::MAX, f64::min);
        println!("best/worst ratio: {:.1}x\n", best / worst);
    }
    println!(
        "Takeaways: weight rebalancing (a §7 future-work item, implemented here) \
         removes the load imbalance bounding-box adaptivity leaves behind at no \
         simulated cost; and the partition factor is worth several-fold \
         throughput on both machines, justifying its exposure as a tuning knob."
    );
}
