//! Regenerates Fig. 7: visualization-style read strong scaling of a
//! 2-billion-particle dataset (written at 64 Ki cores) on Theta
//! (64 → 2048 readers) and an SSD workstation (1 → 64 readers), for the
//! three dataset variants the paper compares.

use spio_bench::fig7::{self, Case};
use spio_bench::table::{print_table, secs};

fn main() {
    let cases = [Case::AggWithMeta, Case::AggWithoutMeta, Case::FppWithMeta];
    for (machine, readers) in [
        (hpcsim::theta(), fig7::THETA_READERS.to_vec()),
        (hpcsim::workstation(), fig7::WORKSTATION_READERS.to_vec()),
    ] {
        println!(
            "\nFig. 7 — {} — read time (s) for a {} particle dataset",
            machine.name,
            (fig7::WRITER_PROCS as u64) * fig7::PARTICLES_PER_WRITER
        );
        let points = fig7::read_scaling(&machine, &readers);
        let mut header = vec!["readers".to_string()];
        header.extend(cases.iter().map(|c| c.label().to_string()));
        let rows: Vec<Vec<String>> = readers
            .iter()
            .map(|&n| {
                let mut row = vec![n.to_string()];
                for &c in &cases {
                    row.push(secs(fig7::time_of(&points, c, n)));
                }
                row
            })
            .collect();
        print_table(&header, &rows);
    }
    println!(
        "\nPaper reference (Fig. 7): with spatial metadata reads strong-scale; \
         without it every reader scans all files and performance is worst and \
         non-scaling; the 64Ki-file FPP layout pays heavily on Theta but is \
         almost comparable on the SSD workstation."
    );
}
