//! Regenerates Fig. 11: write time of adaptive vs non-adaptive aggregation
//! as the fraction of the domain containing particles shrinks from 100 %
//! to 12.5 %, at 4096 cores, on Mira and Theta.

use spio_bench::fig11;
use spio_bench::table::{print_table, secs};

fn main() {
    for machine in [hpcsim::mira(), hpcsim::theta()] {
        println!(
            "\nFig. 11 — {} — {} cores, factor 2x2x2, {}K particles per occupied core",
            machine.name,
            fig11::PROCS,
            fig11::PER_RANK / 1024
        );
        let points = fig11::adaptive_sweep(&machine);
        let header = vec![
            "coverage".to_string(),
            "non-adaptive (s)".to_string(),
            "adaptive (s)".to_string(),
            "non-adaptive files".to_string(),
            "adaptive files".to_string(),
        ];
        let rows: Vec<Vec<String>> = fig11::COVERAGES
            .iter()
            .map(|&cov| {
                let files = |ad: bool| {
                    points
                        .iter()
                        .find(|p| (p.coverage - cov).abs() < 1e-9 && p.adaptive == ad)
                        .unwrap()
                        .files
                        .to_string()
                };
                vec![
                    format!("{:.1}%", cov * 100.0),
                    secs(fig11::time_of(&points, cov, false)),
                    secs(fig11::time_of(&points, cov, true)),
                    files(false),
                    files(true),
                ]
            })
            .collect();
        print_table(&header, &rows);
    }
    println!(
        "\nPaper reference (Fig. 11): adaptive aggregation improves on the \
         non-adaptive scheme on both machines; on Mira the improvement grows \
         markedly as coverage shrinks, on Theta performance is nearly constant."
    );
}
