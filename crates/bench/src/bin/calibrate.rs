//! Internal calibration probe: prints the numbers behind every shape test
//! so machine constants can be tuned. Not part of the paper's figure set.

use spio_bench::{fig11, fig5, fig7, fig8, SCALING_PROCS};

fn main() {
    for machine in [hpcsim::mira(), hpcsim::theta()] {
        println!("== fig5 {} 32Ki ==", machine.name);
        let pts = fig5::weak_scaling(&machine, &SCALING_PROCS, 32 * 1024);
        let mut series: Vec<String> = pts.iter().map(|p| p.series.clone()).collect();
        series.dedup();
        let uniq: Vec<String> = {
            let mut s = series.clone();
            s.sort();
            s.dedup();
            s
        };
        print!("{:>8}", "procs");
        for s in &uniq {
            print!("{s:>16}");
        }
        println!();
        for &procs in &SCALING_PROCS {
            print!("{procs:>8}");
            for s in &uniq {
                print!("{:>16.2}", fig5::series_throughput(&pts, s, procs));
            }
            println!();
        }
        println!();
    }

    for machine in [hpcsim::mira(), hpcsim::theta()] {
        println!(
            "== fig6 {} 32Ki breakdown at 32768 (agg frac | agg s | io s) ==",
            machine.name
        );
        for b in spio_bench::fig6::time_breakdown(&machine, 32 * 1024) {
            println!(
                "{:>8}  {:>6.3}  {:>8.3}  {:>8.3}",
                b.config.to_string(),
                b.aggregation_fraction,
                b.aggregation_secs,
                b.file_io_secs
            );
        }
        println!();
    }

    println!("== fig7 theta ==");
    let pts = fig7::read_scaling(&hpcsim::theta(), &fig7::THETA_READERS);
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "readers", "meta", "no-meta", "fpp+meta"
    );
    for &n in &fig7::THETA_READERS {
        println!(
            "{n:>8} {:>14.2} {:>14.2} {:>14.2}",
            fig7::time_of(&pts, fig7::Case::AggWithMeta, n),
            fig7::time_of(&pts, fig7::Case::AggWithoutMeta, n),
            fig7::time_of(&pts, fig7::Case::FppWithMeta, n)
        );
    }
    println!("== fig7 workstation ==");
    let pts = fig7::read_scaling(&hpcsim::workstation(), &fig7::WORKSTATION_READERS);
    for &n in &fig7::WORKSTATION_READERS {
        println!(
            "{n:>8} {:>14.2} {:>14.2} {:>14.2}",
            fig7::time_of(&pts, fig7::Case::AggWithMeta, n),
            fig7::time_of(&pts, fig7::Case::AggWithoutMeta, n),
            fig7::time_of(&pts, fig7::Case::FppWithMeta, n)
        );
    }

    for machine in [hpcsim::theta(), hpcsim::workstation()] {
        println!("== fig8 {} (level: time bytes/reader) ==", machine.name);
        for p in fig8::lod_sweep(&machine) {
            println!(
                "{:>4} {:>10.3}s {:>12.1}MB",
                p.level,
                p.time,
                p.bytes as f64 / 64.0 / 1e6
            );
        }
    }

    for machine in [hpcsim::mira(), hpcsim::theta()] {
        println!(
            "== fig11 {} (coverage: nonadaptive adaptive) ==",
            machine.name
        );
        let pts = fig11::adaptive_sweep(&machine);
        for &cov in &fig11::COVERAGES {
            println!(
                "{cov:>6}: {:>8.3} {:>8.3}",
                fig11::time_of(&pts, cov, false),
                fig11::time_of(&pts, cov, true)
            );
        }
    }
}
