//! Regenerates Fig. 9 (quantitative proxy): writes a coal-injection-style
//! jet dataset with the real spatially-aware writer on the thread runtime,
//! then reads 25/50/75/100 % LOD prefixes and reports density-field
//! fidelity — normalized RMSE and feature coverage — in place of the
//! paper's renderings.
//!
//! Usage: `fig9_lod_quality [total_particles] [nprocs]`
//! (defaults: 1,048,576 particles on 64 ranks).

use spio_bench::fig9;
use spio_bench::table::{pct, print_table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let total: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1 << 20);
    let nprocs: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(64);

    println!(
        "Fig. 9 — LOD fidelity of a jet dataset ({total} particles, written by {nprocs} ranks \
         with adaptive 2x2x2 aggregation)"
    );
    let storage = fig9::write_jet_dataset(nprocs, total, 0xC0A1);
    let points = fig9::lod_quality(&storage, &[0.25, 0.5, 0.75, 1.0]);

    // Emit PPM renders of each fraction (the Fig. 9 panels) next to the
    // harness outputs.
    if let Ok(out_dir) = std::env::var("FIG9_PPM_DIR") {
        use spio_core::{DatasetReader, Storage as _};
        let reader = DatasetReader::open(&storage).unwrap();
        for frac in [0.25, 0.5, 0.75, 1.0] {
            // Proper LOD prefixes: a proportional slice of every file.
            let target = (reader.meta.total_particles as f64 * frac).round() as u64;
            let mut prefix = Vec::new();
            for entry in &reader.meta.entries {
                let take = spio_format::LodParams::file_prefix(
                    entry.particle_count,
                    reader.meta.total_particles,
                    target,
                );
                let (_, end) = spio_format::data_file::payload_range(0, take as usize);
                let bytes = storage.read_range(&entry.file_name(), 0, end).unwrap();
                let (_, ps) = spio_format::data_file::decode_prefix(&bytes, take as usize).unwrap();
                prefix.extend(ps);
            }
            let img = fig9::render_ppm(&prefix, &reader.meta.domain, 480, 480);
            let path = format!("{out_dir}/fig9_{:03}pct.ppm", (frac * 100.0) as u32);
            std::fs::write(&path, img).expect("write ppm");
            println!("wrote {path}");
        }
    }
    let header = vec![
        "fraction".to_string(),
        "particles".to_string(),
        "norm. RMSE".to_string(),
        "feature coverage".to_string(),
    ];
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                pct(p.fraction),
                p.particles_read.to_string(),
                format!("{:.4}", p.normalized_rmse),
                pct(p.coverage),
            ]
        })
        .collect();
    print_table(&header, &rows);
    println!(
        "\nPaper reference (Fig. 9): \"most of the features are still visible even \
         using only 25% of the particle data\" — here: ≥{:.0}% of occupied density \
         cells are sampled at the 25% level.",
        points[0].coverage * 100.0
    );
}
