//! Regenerates Fig. 5: parallel-write weak scaling on Mira and Theta for
//! 32 Ki and 64 Ki particles per core, across every aggregation
//! configuration the paper plots plus the IOR-FPP, IOR-collective and
//! PHDF5 baselines.
//!
//! Usage: `fig5_write_scaling [--quick]` (`--quick` sweeps fewer process
//! counts).

use spio_bench::table::print_table;
use spio_bench::{fig5, PARTICLES_PER_CORE, SCALING_PROCS};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let procs: Vec<usize> = if quick {
        vec![512, 4096, 32_768, 262_144]
    } else {
        SCALING_PROCS.to_vec()
    };

    for machine in [hpcsim::mira(), hpcsim::theta()] {
        for &per_core in &PARTICLES_PER_CORE {
            println!(
                "\nFig. 5 — {} — {} particles per core — write throughput (GB/s)",
                machine.name,
                per_core / 1024 * 1024
            );
            let points = fig5::weak_scaling(&machine, &procs, per_core);
            let mut series: Vec<String> = Vec::new();
            for p in &points {
                if !series.contains(&p.series) {
                    series.push(p.series.clone());
                }
            }
            let mut header = vec!["procs".to_string()];
            header.extend(series.iter().cloned());
            let rows: Vec<Vec<String>> = procs
                .iter()
                .map(|&n| {
                    let mut row = vec![n.to_string()];
                    for s in &series {
                        row.push(format!("{:.2}", fig5::series_throughput(&points, s, n)));
                    }
                    row
                })
                .collect();
            print_table(&header, &rows);
            let (best_cfg, best) = fig5::best_spio_throughput(&points, *procs.last().unwrap());
            println!(
                "max spatially-aware throughput at {} procs: {:.1} GB/s with {}",
                procs.last().unwrap(),
                best,
                best_cfg
            );
        }
    }
    println!(
        "\nPaper reference (§5.2): ~98 GB/s max on Mira; 216 / 243 GB/s on Theta \
         (32 Ki / 64 Ki) at 262,144 processes; FPP 83 / 160 GB/s on Theta."
    );
}
