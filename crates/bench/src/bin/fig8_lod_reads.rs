//! Regenerates Fig. 8: time to read progressively more levels of detail
//! from the 2-billion-particle dataset with 64 readers (P = 32, S = 2,
//! up to level 20), on Theta and the SSD workstation.

use spio_bench::fig8;
use spio_bench::table::{print_table, secs};

fn main() {
    for machine in [hpcsim::theta(), hpcsim::workstation()] {
        println!(
            "\nFig. 8 — {} — LOD read time with {} readers",
            machine.name,
            fig8::READERS
        );
        let header = vec![
            "levels".to_string(),
            "time (s)".to_string(),
            "MB/reader".to_string(),
        ];
        let rows: Vec<Vec<String>> = fig8::lod_sweep(&machine)
            .into_iter()
            .map(|p| {
                vec![
                    p.level.to_string(),
                    secs(p.time),
                    format!("{:.1}", p.bytes as f64 / fig8::READERS as f64 / 1e6),
                ]
            })
            .collect();
        print_table(&header, &rows);
    }
    println!(
        "\nPaper reference (Fig. 8): on Theta the first ~8 levels cost about the \
         same (file opens dominate), then time grows with the particle volume; \
         on the SSD workstation time grows with volume from early levels, and \
         low-LOD reads are fast enough for interactive use."
    );
}
