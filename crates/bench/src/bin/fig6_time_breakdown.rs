//! Regenerates Fig. 6: percentage of write time spent in data aggregation
//! (communication) vs file I/O, for each aggregation configuration, at
//! 32 768 processes, on Mira and Theta with both workloads.

use spio_bench::fig6;
use spio_bench::table::{pct, print_table, secs};

fn main() {
    for machine in [hpcsim::mira(), hpcsim::theta()] {
        for per_core in [32 * 1024u64, 64 * 1024] {
            println!(
                "\nFig. 6 — {} — {}K particles per core — {} processes",
                machine.name,
                per_core / 1024,
                fig6::FIG6_PROCS
            );
            let header = vec![
                "config".to_string(),
                "aggregation".to_string(),
                "file I/O".to_string(),
                "agg (s)".to_string(),
                "io (s)".to_string(),
            ];
            let rows: Vec<Vec<String>> = fig6::time_breakdown(&machine, per_core)
                .into_iter()
                .map(|b| {
                    vec![
                        b.config.to_string(),
                        pct(b.aggregation_fraction),
                        pct(1.0 - b.aggregation_fraction),
                        secs(b.aggregation_secs),
                        secs(b.file_io_secs),
                    ]
                })
                .collect();
            print_table(&header, &rows);
        }
    }
    println!(
        "\nSupplementary: REAL execution on this machine (64 thread-ranks, 20k \
         particles/rank, in-memory storage). Note the trade-off flips here: on a \
         shared-memory \"network\", aggregation is nearly free while large \
         factors serialize buffer assembly on single aggregator threads — a \
         third data point for the paper's argument that the best factor is \
         machine-dependent and must stay user-tunable."
    );
    let header = vec![
        "config".to_string(),
        "aggregation".to_string(),
        "agg (s)".to_string(),
        "io (s)".to_string(),
        "trace agg (s)".to_string(),
        "trace io (s)".to_string(),
        "drift".to_string(),
    ];
    let real = fig6::time_breakdown_real(64, 20_000);
    let rows: Vec<Vec<String>> = real
        .iter()
        .map(|rb| {
            vec![
                rb.bar.config.to_string(),
                pct(rb.bar.aggregation_fraction),
                secs(rb.bar.aggregation_secs),
                secs(rb.bar.file_io_secs),
                secs(rb.trace_aggregation_secs),
                secs(rb.trace_file_io_secs),
                pct(rb.trace_disagreement()),
            ]
        })
        .collect();
    print_table(&header, &rows);
    let worst = real
        .iter()
        .map(|rb| rb.trace_disagreement())
        .fold(0.0f64, f64::max);
    assert!(
        worst <= 0.05,
        "trace-derived breakdown drifted {:.1}% from WriteStats",
        worst * 100.0
    );
    println!(
        "trace cross-check: phase spans agree with WriteStats within {} (<= 5% required)",
        pct(worst)
    );

    println!(
        "\nPaper reference (Fig. 6): aggregation share grows with the partition \
         factor, stays small on Mira, and is much larger on Theta — favouring \
         smaller factors there."
    );
}
