//! Fig. 11: adaptive vs non-adaptive aggregation under shrinking particle
//! coverage.
//!
//! 4096 cores; particles occupy 100 % → 50 % → 25 % → 12.5 % of the domain
//! (occupied patches keep their per-patch load, per §6's injected-particle
//! framing). The non-adaptive grid assigns aggregators to empty regions
//! (Fig. 10e) and writes empty files for them; the adaptive grid covers
//! only the occupied region (Fig. 10f).

use hpcsim::{simulate_spio_write, MachineModel, WriteBreakdown};
use spio_core::plan::plan_write;
use spio_types::{Aabb3, DomainDecomposition, PartitionFactor};
use spio_workloads::coverage_counts_density;

/// The paper's Fig. 11 job size.
pub const PROCS: usize = 4096;
/// Particles per occupied process (the paper's smaller weak-scaling load).
pub const PER_RANK: u64 = 32 * 1024;
/// Coverage fractions swept in the paper.
pub const COVERAGES: [f64; 4] = [1.0, 0.5, 0.25, 0.125];

/// One plotted point.
#[derive(Debug, Clone)]
pub struct Point {
    pub coverage: f64,
    pub adaptive: bool,
    pub breakdown: WriteBreakdown,
    pub files: usize,
}

/// Run the sweep on one machine.
pub fn adaptive_sweep(machine: &MachineModel) -> Vec<Point> {
    let decomp = DomainDecomposition::for_procs(Aabb3::new([0.0; 3], [1.0; 3]), PROCS);
    let factor = PartitionFactor::new(2, 2, 2);
    let mut out = Vec::new();
    for &coverage in &COVERAGES {
        let counts = coverage_counts_density(&decomp, coverage, PER_RANK);
        for adaptive in [false, true] {
            let plan = plan_write(&decomp, factor, &counts, adaptive).unwrap();
            out.push(Point {
                coverage,
                adaptive,
                breakdown: simulate_spio_write(&plan, machine),
                files: plan.partition_count,
            });
        }
    }
    out
}

/// Lookup helper.
pub fn time_of(points: &[Point], coverage: f64, adaptive: bool) -> f64 {
    points
        .iter()
        .find(|p| (p.coverage - coverage).abs() < 1e-9 && p.adaptive == adaptive)
        .map(|p| p.breakdown.total())
        .unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcsim::{mira, theta};

    #[test]
    fn file_counts_follow_the_grids() {
        let pts = adaptive_sweep(&mira());
        let files = |cov: f64, ad: bool| {
            pts.iter()
                .find(|p| (p.coverage - cov).abs() < 1e-9 && p.adaptive == ad)
                .unwrap()
                .files
        };
        // Non-adaptive always builds the full 8×8×8 partition grid.
        for cov in COVERAGES {
            assert_eq!(files(cov, false), 512);
        }
        // Adaptive covers only the occupied band.
        assert_eq!(files(1.0, true), 512);
        assert_eq!(files(0.5, true), 256);
        assert_eq!(files(0.25, true), 128);
        assert_eq!(files(0.125, true), 64);
    }

    #[test]
    fn adaptive_wins_on_both_machines_below_full_coverage() {
        // Fig. 11: "overall we find that adaptive aggregation yields
        // improvement over non-adaptive aggregation" on both machines.
        for m in [mira(), theta()] {
            let pts = adaptive_sweep(&m);
            for cov in [0.5, 0.25, 0.125] {
                let a = time_of(&pts, cov, true);
                let n = time_of(&pts, cov, false);
                assert!(
                    a < n,
                    "{} cov {cov}: adaptive {a} must beat non-adaptive {n}",
                    m.name
                );
            }
            // At full coverage the two grids coincide.
            let a = time_of(&pts, 1.0, true);
            let n = time_of(&pts, 1.0, false);
            assert!((a - n).abs() / n < 0.05, "{}: {a} vs {n}", m.name);
        }
    }

    #[test]
    fn mira_adaptive_improves_markedly_as_coverage_shrinks() {
        // Fig. 11 (Mira): "as the domain occupied by particles decreases
        // from 100% to 50%, I/O time reduces significantly with adaptive
        // aggregation. The reduction … with non-adaptive aggregation is not
        // as significant."
        let pts = adaptive_sweep(&mira());
        let a100 = time_of(&pts, 1.0, true);
        let a50 = time_of(&pts, 0.5, true);
        assert!(
            a50 < 0.75 * a100,
            "adaptive must drop significantly: {a100} → {a50}"
        );
        let n100 = time_of(&pts, 1.0, false);
        let n50 = time_of(&pts, 0.5, false);
        let adaptive_drop = (a100 - a50) / a100;
        let nonadaptive_drop = (n100 - n50) / n100;
        assert!(
            adaptive_drop > nonadaptive_drop,
            "adaptive drop {adaptive_drop} vs non-adaptive {nonadaptive_drop}"
        );
        // And the relative gap keeps widening toward 12.5 % coverage.
        let gap50 = time_of(&pts, 0.5, false) / time_of(&pts, 0.5, true);
        let gap125 = time_of(&pts, 0.125, false) / time_of(&pts, 0.125, true);
        assert!(gap125 > gap50, "gap grows: {gap50} → {gap125}");
    }

    #[test]
    fn theta_adaptive_is_roughly_flat() {
        // Fig. 11 (Theta): "we observe almost constant performance on
        // Theta (green line)" — the OSTs are shared and placement of
        // aggregators matters less.
        let pts = adaptive_sweep(&theta());
        let times: Vec<f64> = COVERAGES.iter().map(|&c| time_of(&pts, c, true)).collect();
        let max = times.iter().cloned().fold(0.0, f64::max);
        let min = times.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max / min < 3.0,
            "Theta adaptive should vary little: {times:?}"
        );
        // Coverage effects on Theta are much milder than on Mira.
        let mira_pts = adaptive_sweep(&mira());
        let mira_ratio = time_of(&mira_pts, 1.0, true) / time_of(&mira_pts, 0.125, true);
        let theta_ratio = time_of(&pts, 1.0, true) / time_of(&pts, 0.125, true);
        assert!(mira_ratio > theta_ratio);
    }
}
