//! Fig. 5: parallel-write weak scaling on Mira and Theta.
//!
//! For each process count (512 … 262 144) and each aggregation
//! configuration the paper plots, build the exact write plan with the
//! production planner and replay it on the machine model; IOR
//! file-per-process, IOR collective (shared file) and Parallel HDF5 run as
//! the baseline patterns. The series reported here correspond one-to-one
//! to the trend lines of Fig. 5.

use hpcsim::{
    simulate_fpp_write, simulate_hdf5_shared_write, simulate_shared_file_write,
    simulate_spio_write, MachineModel, WriteBreakdown,
};
use spio_core::plan::plan_write;
use spio_types::{Aabb3, DomainDecomposition, PartitionFactor, PARTICLE_BYTES};

/// One plotted point.
#[derive(Debug, Clone)]
pub struct Point {
    pub procs: usize,
    /// Series label: a partition factor ("2x2x4") or a baseline name.
    pub series: String,
    pub breakdown: WriteBreakdown,
}

impl Point {
    pub fn throughput_gbs(&self) -> f64 {
        self.breakdown.throughput() / 1e9
    }
}

/// The partition-factor series the paper plots for each machine (§5.2:
/// Mira skips (1,1,2) and (1,2,2) after preliminary runs showed larger
/// factors win there).
pub fn configs_for(machine: &MachineModel) -> Vec<PartitionFactor> {
    let mut v = vec![PartitionFactor::new(1, 1, 1)];
    if machine.name == "theta" {
        v.push(PartitionFactor::new(1, 1, 2));
        v.push(PartitionFactor::new(1, 2, 2));
    }
    v.push(PartitionFactor::new(2, 2, 2));
    v.push(PartitionFactor::new(2, 2, 4));
    v.push(PartitionFactor::new(2, 4, 4));
    if machine.name == "theta" {
        v.push(PartitionFactor::new(4, 4, 4));
    }
    v
}

/// Simulate one spatially-aware configuration.
pub fn spio_point(
    machine: &MachineModel,
    procs: usize,
    per_core: u64,
    factor: PartitionFactor,
) -> Point {
    let decomp = DomainDecomposition::for_procs(Aabb3::new([0.0; 3], [1.0; 3]), procs);
    let counts = vec![per_core; procs];
    let plan = plan_write(&decomp, factor, &counts, false)
        .expect("paper configurations are valid for power-of-two grids");
    Point {
        procs,
        series: factor.to_string(),
        breakdown: simulate_spio_write(&plan, machine),
    }
}

/// Simulate the full Fig. 5 panel for one machine and workload.
pub fn weak_scaling(machine: &MachineModel, procs_list: &[usize], per_core: u64) -> Vec<Point> {
    let bytes_per_rank = per_core * PARTICLE_BYTES as u64;
    let mut points = Vec::new();
    for &procs in procs_list {
        for factor in configs_for(machine) {
            points.push(spio_point(machine, procs, per_core, factor));
        }
        points.push(Point {
            procs,
            series: "IOR-FPP".into(),
            breakdown: simulate_fpp_write(procs, bytes_per_rank, machine),
        });
        points.push(Point {
            procs,
            series: "IOR-collective".into(),
            breakdown: simulate_shared_file_write(procs, bytes_per_rank, machine),
        });
        points.push(Point {
            procs,
            series: "PHDF5".into(),
            breakdown: simulate_hdf5_shared_write(procs, bytes_per_rank, machine),
        });
    }
    points
}

/// Best spatially-aware throughput at a process count (helper for the
/// paper's headline numbers).
pub fn best_spio_throughput(points: &[Point], procs: usize) -> (String, f64) {
    points
        .iter()
        .filter(|p| p.procs == procs && p.series.contains('x'))
        .map(|p| (p.series.clone(), p.throughput_gbs()))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("at least one configuration per process count")
}

/// Throughput of a named series at a process count.
pub fn series_throughput(points: &[Point], series: &str, procs: usize) -> f64 {
    points
        .iter()
        .find(|p| p.procs == procs && p.series == series)
        .map(|p| p.throughput_gbs())
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SCALING_PROCS;
    use hpcsim::{mira, theta};

    // Shape assertions distilled from Fig. 5 and §5.2's narrative. These
    // use a reduced process list to keep test time low; the binaries print
    // the full sweep.

    #[test]
    fn mira_fpp_saturates_but_aggregated_configs_keep_scaling() {
        let m = mira();
        let pts = weak_scaling(&m, &SCALING_PROCS, 32 * 1024);
        // FPP throughput gains flatten: the last doubling buys < 35%.
        let fpp_128k = series_throughput(&pts, "IOR-FPP", 131_072);
        let fpp_256k = series_throughput(&pts, "IOR-FPP", 262_144);
        assert!(
            fpp_256k < fpp_128k * 1.35,
            "Mira FPP must saturate: {fpp_128k} → {fpp_256k}"
        );
        // (2,4,4) keeps scaling to the top and beats FPP at 256 Ki by a lot.
        let agg_256k = series_throughput(&pts, "2x4x4", 262_144);
        assert!(
            agg_256k > 2.0 * fpp_256k,
            "2x4x4 {agg_256k} must beat FPP {fpp_256k} at 256Ki"
        );
        let agg_128k = series_throughput(&pts, "2x4x4", 131_072);
        assert!(agg_256k > agg_128k, "still scaling at the top end");
    }

    #[test]
    fn mira_larger_factors_win_at_scale() {
        let m = mira();
        let pts = weak_scaling(&m, &[262_144], 32 * 1024);
        let (best, _) = best_spio_throughput(&pts, 262_144);
        assert!(
            best == "2x4x4" || best == "2x2x4",
            "Mira prefers large factors at scale, got {best}"
        );
    }

    #[test]
    fn theta_fpp_strong_early_then_overtaken() {
        let m = theta();
        let pts = weak_scaling(&m, &SCALING_PROCS, 32 * 1024);
        // Early on, FPP is at least competitive with (1,2,2).
        let fpp_4k = series_throughput(&pts, "IOR-FPP", 4096);
        let agg_4k = series_throughput(&pts, "1x2x2", 4096);
        assert!(
            fpp_4k >= agg_4k * 0.9,
            "FPP should be strong early on Theta: {fpp_4k} vs {agg_4k}"
        );
        // §5.2: (1,2,2) finally outperforms FPP at 65 536 processes.
        let fpp_64k = series_throughput(&pts, "IOR-FPP", 65_536);
        let agg_64k = series_throughput(&pts, "1x2x2", 65_536);
        assert!(
            agg_64k > fpp_64k,
            "(1,2,2) must overtake FPP at 64Ki: {agg_64k} vs {fpp_64k}"
        );
        let fpp_256k = series_throughput(&pts, "IOR-FPP", 262_144);
        let agg_256k = series_throughput(&pts, "1x2x2", 262_144);
        assert!(agg_256k > 1.2 * fpp_256k);
    }

    #[test]
    fn theta_small_factors_beat_large_ones() {
        let m = theta();
        let pts = weak_scaling(&m, &[262_144], 32 * 1024);
        let small = series_throughput(&pts, "1x2x2", 262_144);
        let large = series_throughput(&pts, "4x4x4", 262_144);
        assert!(
            small > large,
            "Theta prefers small factors: 1x2x2 {small} vs 4x4x4 {large}"
        );
    }

    #[test]
    fn collective_io_never_scales() {
        for m in [mira(), theta()] {
            let pts = weak_scaling(&m, &[512, 32_768, 262_144], 32 * 1024);
            let c_small = series_throughput(&pts, "IOR-collective", 512);
            let c_large = series_throughput(&pts, "IOR-collective", 262_144);
            // Collective gains far less than the 512× resource increase.
            assert!(
                c_large < c_small * 32.0,
                "{}: collective must not scale: {c_small} → {c_large}",
                m.name
            );
            // And is far below the best aggregated configuration at scale.
            let (_, best) = best_spio_throughput(&pts, 262_144);
            assert!(best > 4.0 * c_large, "{}: {best} vs {c_large}", m.name);
            // PHDF5 tracks collective but slower.
            let h = series_throughput(&pts, "PHDF5", 262_144);
            assert!(h <= c_large);
        }
    }

    #[test]
    fn headline_throughputs_roughly_match_paper() {
        // §5.2: ~98 GB/s on Mira; 216 (32Ki) / 243 (64Ki) GB/s on Theta at
        // 262 144 processes. We require the same order of magnitude
        // (within ~2×) and the Theta > Mira ordering.
        let mira_pts = weak_scaling(&mira(), &[262_144], 32 * 1024);
        let (_, mira_best) = best_spio_throughput(&mira_pts, 262_144);
        assert!(
            mira_best > 49.0 && mira_best < 196.0,
            "Mira best ≈98 GB/s, got {mira_best}"
        );
        let theta_pts = weak_scaling(&theta(), &[262_144], 32 * 1024);
        let (_, theta_best) = best_spio_throughput(&theta_pts, 262_144);
        assert!(
            theta_best > 108.0 && theta_best < 432.0,
            "Theta best ≈216 GB/s, got {theta_best}"
        );
        assert!(theta_best > mira_best);
    }

    #[test]
    fn sixtyfour_ki_workload_also_simulates() {
        let pts = weak_scaling(&theta(), &[512, 262_144], 64 * 1024);
        assert!(pts.iter().all(|p| p.breakdown.total() > 0.0));
        // 64 Ki particles/core at 262 144 ranks ⇒ ~2 TB per timestep.
        let p = pts
            .iter()
            .find(|p| p.procs == 262_144 && p.series == "1x2x2")
            .unwrap();
        assert!(p.breakdown.bytes > 2_000_000_000_000);
    }
}
