//! Read-serving regression gate: write a fig6-scale dataset, serve a
//! seeded multi-client query workload through [`spio_serve::QueryEngine`],
//! and distill cold/warm latency plus cache behaviour into a
//! [`ReadBenchRecord`] comparable against a committed baseline
//! (`BENCH_read.json`).
//!
//! Two numbers carry the gate, both min-across-runs of the hot-spot box
//! query: `cold_box_us` (first query on a fresh engine — storage reads +
//! decode) and `warm_box_us` (the identical repeat — pure cache + filter).
//! Their ratio is the headline serving win: the warm query must stay well
//! ahead of the cold one (the acceptance bar is 5×). The multi-client
//! replay afterwards exercises the pool/gate under contention and records
//! the cache hit rate; hit/miss counts are reported but not gated, since
//! concurrent eviction order is not deterministic.

use crate::regression::SLACK_US;
use spio_comm::run_threaded_collect;
use spio_core::{MemStorage, SpatialWriter, WriterConfig};
use spio_serve::{client_queries, hot_spot, Query, QueryEngine, ServeConfig, WorkloadSpec};
use spio_trace::{JobReport, Trace};
use spio_types::{Aabb3, DomainDecomposition, PartitionFactor};
use spio_util::Json;

/// How to run the read benchmark.
#[derive(Debug, Clone)]
pub struct ReadBenchConfig {
    /// Writer ranks producing the dataset.
    pub procs: usize,
    /// Particles per writer rank.
    pub per_rank: usize,
    /// Concurrent clients in the replay phase.
    pub clients: usize,
    /// Queries each client issues.
    pub queries_per_client: usize,
    /// Repetitions; latencies keep the minimum.
    pub runs: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for ReadBenchConfig {
    fn default() -> Self {
        ReadBenchConfig {
            procs: 8,
            per_rank: 5_000,
            clients: 4,
            queries_per_client: 24,
            runs: 3,
            seed: 42,
        }
    }
}

/// The perf record `spio bench --read` writes and compares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadBenchRecord {
    pub procs: usize,
    pub per_rank: usize,
    pub clients: usize,
    pub queries_per_client: usize,
    /// Min-across-runs latency of the first hot-spot box query on a fresh
    /// engine (µs).
    pub cold_box_us: u64,
    /// Min-across-runs latency of the identical repeat query (µs).
    pub warm_box_us: u64,
    /// Cache hits across the replay phase of the last run (informational).
    pub cache_hits: u64,
    /// Cache misses across the replay phase of the last run (informational).
    pub cache_misses: u64,
    /// Deterministic fingerprint: particles in the dataset.
    pub total_particles: u64,
    /// Deterministic fingerprint: particles the hot-spot box query returns.
    pub box_particles: u64,
}

impl ReadBenchRecord {
    /// Cold-to-warm speedup of the repeated box query.
    pub fn speedup(&self) -> f64 {
        self.cold_box_us as f64 / (self.warm_box_us.max(1)) as f64
    }

    /// Replay-phase cache hit rate in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Everything one `spio bench --read` invocation produces.
#[derive(Debug)]
pub struct ReadBenchRun {
    pub record: ReadBenchRecord,
    /// Report of the last run's traced serving job (query latency
    /// percentiles under `serve.query`, cache counters in the metrics
    /// registry).
    pub report: JobReport,
    /// Metrics-registry dump of the last run, one JSON object per line.
    pub metrics_jsonl: String,
}

/// Write the benchmark dataset once: the fig6 uniform workload at
/// `procs` ranks, aggregated 2×2×1.
fn build_dataset(cfg: &ReadBenchConfig) -> MemStorage {
    let decomp = DomainDecomposition::for_procs(Aabb3::new([0.0; 3], [1.0; 3]), cfg.procs);
    let factor = PartitionFactor::new(2, 2, 1);
    let storage = MemStorage::new();
    let (s, d, per_rank, seed) = (storage.clone(), decomp, cfg.per_rank, cfg.seed);
    run_threaded_collect(cfg.procs, move |comm| {
        let ps = spio_workloads::uniform_patch_particles(
            &d,
            spio_comm::Comm::rank(&comm),
            per_rank,
            seed,
        );
        SpatialWriter::new(d.clone(), WriterConfig::new(factor))
            .write(&comm, &ps, &s)
            .unwrap()
    })
    .unwrap();
    storage
}

/// Run the read benchmark and distill a [`ReadBenchRecord`].
pub fn run_read_bench(cfg: &ReadBenchConfig) -> ReadBenchRun {
    let storage = build_dataset(cfg);
    let runs = cfg.runs.max(1);
    let mut cold_us = u64::MAX;
    let mut warm_us = u64::MAX;
    let mut last: Option<(Trace, u64, u64, u64, u64)> = None;
    let spec = WorkloadSpec {
        seed: cfg.seed,
        queries_per_client: cfg.queries_per_client,
        ..WorkloadSpec::default()
    };
    for _ in 0..runs {
        let trace = Trace::collecting();
        let engine =
            QueryEngine::open_traced(storage.clone(), ServeConfig::default(), trace.clone())
                .unwrap();
        let hot = Query::Box(hot_spot(&engine.meta().domain));

        // Cold: first touch of the hot-spot files (storage + decode).
        let cold = engine.execute(&hot);
        assert!(cold.is_complete(), "bench dataset must serve cleanly");
        cold_us = cold_us.min(cold.stats.latency.as_micros() as u64);

        // Warm: identical repeat, fully cached.
        let warm = engine.execute(&hot);
        warm_us = warm_us.min(warm.stats.latency.as_micros() as u64);

        // Replay: concurrent seeded clients over the mixed workload.
        let before = engine.cache_stats();
        std::thread::scope(|scope| {
            for client in 0..cfg.clients {
                let (engine, meta, spec) = (&engine, engine.meta(), &spec);
                scope.spawn(move || {
                    for q in client_queries(meta, spec, client) {
                        engine.execute_as(client, &q);
                    }
                });
            }
        });
        let after = engine.cache_stats();
        last = Some((
            trace,
            after.hits - before.hits,
            after.misses - before.misses,
            engine.meta().total_particles,
            cold.particles.len() as u64,
        ));
    }
    let (trace, hits, misses, total_particles, box_particles) = last.expect("runs >= 1");
    let metrics_jsonl = trace.metrics().to_jsonl();
    let report = JobReport::from_snapshot(1, &trace.snapshot()).with_metrics(&trace.metrics());
    ReadBenchRun {
        record: ReadBenchRecord {
            procs: cfg.procs,
            per_rank: cfg.per_rank,
            clients: cfg.clients,
            queries_per_client: cfg.queries_per_client,
            cold_box_us: cold_us,
            warm_box_us: warm_us,
            cache_hits: hits,
            cache_misses: misses,
            total_particles,
            box_particles,
        },
        report,
        metrics_jsonl,
    }
}

impl ReadBenchRecord {
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            ("format".into(), Json::str("spio-read-bench-record")),
            ("version".into(), Json::u64(1)),
            ("procs".into(), Json::u64(self.procs as u64)),
            ("per_rank".into(), Json::u64(self.per_rank as u64)),
            ("clients".into(), Json::u64(self.clients as u64)),
            (
                "queries_per_client".into(),
                Json::u64(self.queries_per_client as u64),
            ),
            ("cold_box_us".into(), Json::u64(self.cold_box_us)),
            ("warm_box_us".into(), Json::u64(self.warm_box_us)),
            ("cache_hits".into(), Json::u64(self.cache_hits)),
            ("cache_misses".into(), Json::u64(self.cache_misses)),
            ("total_particles".into(), Json::u64(self.total_particles)),
            ("box_particles".into(), Json::u64(self.box_particles)),
        ])
        .to_string()
    }

    pub fn from_json(text: &str) -> Result<ReadBenchRecord, String> {
        let doc = Json::parse(text)?;
        if doc.get("format").and_then(Json::as_str) != Some("spio-read-bench-record") {
            return Err("not a spio read-bench record".into());
        }
        if doc.get("version").and_then(Json::as_u64) != Some(1) {
            return Err("unsupported read-bench-record version".into());
        }
        let num = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing numeric field '{key}'"))
        };
        Ok(ReadBenchRecord {
            procs: num("procs")? as usize,
            per_rank: num("per_rank")? as usize,
            clients: num("clients")? as usize,
            queries_per_client: num("queries_per_client")? as usize,
            cold_box_us: num("cold_box_us")?,
            warm_box_us: num("warm_box_us")?,
            cache_hits: num("cache_hits")?,
            cache_misses: num("cache_misses")?,
            total_particles: num("total_particles")?,
            box_particles: num("box_particles")?,
        })
    }
}

/// Compare a current read record against a baseline, with the same
/// threshold + slack rule as the write gate: a latency regresses when
/// `cur > base * (1 + threshold) + SLACK_US`. Returns `Err` when the
/// records describe different workloads (shape or fingerprint mismatch) —
/// re-record the baseline instead of comparing.
pub fn compare_read(
    base: &ReadBenchRecord,
    cur: &ReadBenchRecord,
    threshold: f64,
) -> Result<Vec<String>, String> {
    if (
        base.procs,
        base.per_rank,
        base.clients,
        base.queries_per_client,
    ) != (cur.procs, cur.per_rank, cur.clients, cur.queries_per_client)
    {
        return Err(format!(
            "workload mismatch: baseline {}x{} ({} clients x {} queries), \
             current {}x{} ({} x {})",
            base.procs,
            base.per_rank,
            base.clients,
            base.queries_per_client,
            cur.procs,
            cur.per_rank,
            cur.clients,
            cur.queries_per_client
        ));
    }
    if (base.total_particles, base.box_particles) != (cur.total_particles, cur.box_particles) {
        return Err(format!(
            "workload fingerprint drifted (particles {} -> {}, box hits {} -> {}); \
             re-record the baseline",
            base.total_particles, cur.total_particles, base.box_particles, cur.box_particles
        ));
    }
    let mut regressions = Vec::new();
    for (what, b, c) in [
        ("cold_box", base.cold_box_us, cur.cold_box_us),
        ("warm_box", base.warm_box_us, cur.warm_box_us),
    ] {
        let limit = (b as f64 * (1.0 + threshold)) as u64 + SLACK_US;
        if c > limit {
            regressions.push(format!(
                "read/{what}: {b}µs -> {c}µs (limit {limit}µs at +{:.0}% + {SLACK_US}µs slack)",
                threshold * 100.0
            ));
        }
    }
    Ok(regressions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regression::DEFAULT_THRESHOLD;

    fn tiny() -> ReadBenchConfig {
        ReadBenchConfig {
            procs: 8,
            per_rank: 500,
            clients: 2,
            queries_per_client: 6,
            runs: 1,
            seed: 42,
        }
    }

    #[test]
    fn record_roundtrips_through_json() {
        let run = run_read_bench(&tiny());
        let back = ReadBenchRecord::from_json(&run.record.to_json()).unwrap();
        assert_eq!(back, run.record);
    }

    #[test]
    fn run_produces_serving_artifacts() {
        let run = run_read_bench(&tiny());
        assert!(run.record.box_particles > 0, "hot spot query hit particles");
        assert!(run.record.cache_hits + run.record.cache_misses > 0);
        // The traced run surfaces query latency and cache counters.
        assert!(run.report.op_latency("serve.query").is_some());
        assert!(run
            .report
            .metric(spio_serve::cache::metric_names::HITS)
            .is_some());
        assert!(run.metrics_jsonl.contains("serve.query.latency_us"));
    }

    #[test]
    fn identical_records_pass_and_slowdowns_fail() {
        let run = run_read_bench(&tiny());
        let base = run.record;
        assert_eq!(
            compare_read(&base, &base, DEFAULT_THRESHOLD).unwrap(),
            Vec::<String>::new()
        );
        let mut slow = base.clone();
        slow.cold_box_us = slow.cold_box_us * 2 + 2 * SLACK_US;
        assert!(!compare_read(&base, &slow, DEFAULT_THRESHOLD)
            .unwrap()
            .is_empty());
        let mut drifted = base.clone();
        drifted.box_particles += 1;
        assert!(compare_read(&base, &drifted, DEFAULT_THRESHOLD).is_err());
        let mut other = base;
        other.clients += 1;
        assert!(compare_read(&other, &drifted, DEFAULT_THRESHOLD).is_err());
    }
}
