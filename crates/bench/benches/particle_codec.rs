//! Criterion bench for the particle record codec: the serialization on the
//! write path and the decode on the read path (124 B per particle).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spio_types::particle::{decode_particles, encode_particles};
use spio_types::{Particle, PARTICLE_BYTES};
use std::hint::black_box;

fn particles(n: usize) -> Vec<Particle> {
    (0..n)
        .map(|i| Particle::synthetic([i as f64, 1.0, -2.0], i as u64))
        .collect()
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("particle_codec");
    for &n in &[1024usize, 32 * 1024] {
        let ps = particles(n);
        let bytes = encode_particles(&ps);
        group.throughput(Throughput::Bytes((n * PARTICLE_BYTES) as u64));
        group.bench_with_input(BenchmarkId::new("encode", n), &ps, |b, ps| {
            b.iter(|| black_box(encode_particles(ps)));
        });
        group.bench_with_input(BenchmarkId::new("decode", n), &bytes, |b, bytes| {
            b.iter(|| black_box(decode_particles(bytes)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
