//! Microbench for the particle record codec: the serialization on the
//! write path and the decode on the read path (124 B per particle).

use spio_types::particle::{decode_particles, encode_particles};
use spio_types::Particle;
use spio_util::bench::{bench, black_box};

fn particles(n: usize) -> Vec<Particle> {
    (0..n)
        .map(|i| Particle::synthetic([i as f64, 1.0, -2.0], i as u64))
        .collect()
}

fn main() {
    for n in [1024usize, 32 * 1024] {
        let ps = particles(n);
        let bytes = encode_particles(&ps);
        bench(&format!("particle_codec/encode/{n}"), || {
            black_box(encode_particles(&ps));
        });
        bench(&format!("particle_codec/decode/{n}"), || {
            black_box(decode_particles(&bytes));
        });
    }
}
