//! Microbench for aggregation-grid construction: the static §3.1 grid, the
//! §6 adaptive grid, the §7 balanced bisection, and the event-level write
//! simulation that replays their plans.

use hpcsim::simulate_spio_write_events;
use spio_core::adaptive::AdaptiveGrid;
use spio_core::plan::plan_write;
use spio_types::{Aabb3, DomainDecomposition, PartitionFactor};
use spio_util::bench::{bench, black_box};

fn skewed_counts(decomp: &DomainDecomposition) -> Vec<u64> {
    (0..decomp.nprocs())
        .map(|r| {
            let p = decomp.patch_coords(r);
            if p[0] < decomp.dims.nx / 4 {
                256 * 1024
            } else if p[0] < decomp.dims.nx / 2 {
                32 * 1024
            } else {
                0
            }
        })
        .collect()
}

fn main() {
    for procs in [4096usize, 32_768] {
        let decomp = DomainDecomposition::for_procs(Aabb3::new([0.0; 3], [1.0; 3]), procs);
        let counts = skewed_counts(&decomp);
        bench(&format!("adaptive_grid/bbox/{procs}"), || {
            black_box(
                AdaptiveGrid::build(&decomp, PartitionFactor::new(2, 2, 2), &counts).unwrap(),
            );
        });
        bench(&format!("adaptive_grid/balanced/{procs}"), || {
            black_box(
                AdaptiveGrid::build_balanced(&decomp, PartitionFactor::new(2, 2, 2), &counts)
                    .unwrap(),
            );
        });
    }

    let machine = hpcsim::theta();
    for procs in [32_768usize, 262_144] {
        let decomp = DomainDecomposition::for_procs(Aabb3::new([0.0; 3], [1.0; 3]), procs);
        let counts = vec![32_768u64; procs];
        let plan = plan_write(&decomp, PartitionFactor::new(2, 2, 2), &counts, false).unwrap();
        bench(&format!("event_sim_write/{procs}"), || {
            black_box(simulate_spio_write_events(&plan, &machine));
        });
    }
}
