//! Criterion bench for aggregation-grid construction: the static §3.1
//! grid, the §6 adaptive grid, the §7 balanced bisection, and the
//! event-level write simulation that replays their plans.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpcsim::simulate_spio_write_events;
use spio_core::adaptive::AdaptiveGrid;
use spio_core::plan::plan_write;
use spio_types::{Aabb3, DomainDecomposition, PartitionFactor};
use std::hint::black_box;

fn skewed_counts(decomp: &DomainDecomposition) -> Vec<u64> {
    (0..decomp.nprocs())
        .map(|r| {
            let p = decomp.patch_coords(r);
            if p[0] < decomp.dims.nx / 4 {
                256 * 1024
            } else if p[0] < decomp.dims.nx / 2 {
                32 * 1024
            } else {
                0
            }
        })
        .collect()
}

fn bench_adaptive_grids(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive_grid");
    group.sample_size(10);
    for &procs in &[4096usize, 32_768] {
        let decomp = DomainDecomposition::for_procs(Aabb3::new([0.0; 3], [1.0; 3]), procs);
        let counts = skewed_counts(&decomp);
        group.bench_with_input(BenchmarkId::new("bbox", procs), &procs, |b, _| {
            b.iter(|| {
                black_box(
                    AdaptiveGrid::build(&decomp, PartitionFactor::new(2, 2, 2), &counts).unwrap(),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("balanced", procs), &procs, |b, _| {
            b.iter(|| {
                black_box(
                    AdaptiveGrid::build_balanced(&decomp, PartitionFactor::new(2, 2, 2), &counts)
                        .unwrap(),
                )
            });
        });
    }
    group.finish();
}

fn bench_event_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_sim_write");
    group.sample_size(10);
    for &procs in &[32_768usize, 262_144] {
        let decomp = DomainDecomposition::for_procs(Aabb3::new([0.0; 3], [1.0; 3]), procs);
        let counts = vec![32_768u64; procs];
        let plan = plan_write(&decomp, PartitionFactor::new(2, 2, 2), &counts, false).unwrap();
        let machine = hpcsim::theta();
        group.bench_with_input(BenchmarkId::from_parameter(procs), &plan, |b, plan| {
            b.iter(|| black_box(simulate_spio_write_events(plan, &machine)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_adaptive_grids, bench_event_sim);
criterion_main!(benches);
