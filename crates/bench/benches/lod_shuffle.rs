//! Criterion bench for the LOD reshuffle (§3.4).
//!
//! The paper measures the reordering of 32 Ki particles at 33 ms on Mira
//! and 80 ms on Theta (single core, not parallelized). This bench measures
//! the same operation on the build machine, at the paper's size and at the
//! aggregated-buffer sizes larger partition factors produce.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spio_core::shuffle::{lod_shuffle, partition_seed, shuffle_permutation};
use spio_types::Particle;
use std::hint::black_box;

fn particles(n: usize) -> Vec<Particle> {
    (0..n)
        .map(|i| Particle::synthetic([i as f64, 0.0, 0.0], i as u64))
        .collect()
}

fn bench_shuffle(c: &mut Criterion) {
    let mut group = c.benchmark_group("lod_shuffle");
    group.sample_size(20);
    // 32 Ki = the paper's per-core load; 256 Ki and 2 Mi = typical
    // aggregation buffers at factors (2,2,2) and (4,4,4).
    for &n in &[32 * 1024usize, 256 * 1024, 2 * 1024 * 1024] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let base = particles(n);
            b.iter(|| {
                let mut buf = base.clone();
                lod_shuffle(&mut buf, black_box(42));
                black_box(buf.len())
            });
        });
    }
    group.finish();
}

fn bench_permutation_reconstruction(c: &mut Criterion) {
    c.bench_function("shuffle_permutation_32k", |b| {
        b.iter(|| black_box(shuffle_permutation(32 * 1024, partition_seed(1, 7))))
    });
}

criterion_group!(benches, bench_shuffle, bench_permutation_reconstruction);
criterion_main!(benches);
