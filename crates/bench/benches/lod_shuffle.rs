//! Microbench for the LOD reshuffle (§3.4).
//!
//! The paper measures the reordering of 32 Ki particles at 33 ms on Mira
//! and 80 ms on Theta (single core, not parallelized). This bench measures
//! the same operation on the build machine, at the paper's size and at the
//! aggregated-buffer sizes larger partition factors produce.

use spio_core::shuffle::{lod_shuffle, lod_shuffle_parallel, partition_seed, shuffle_permutation};
use spio_types::Particle;
use spio_util::bench::{bench, black_box};

fn particles(n: usize) -> Vec<Particle> {
    (0..n)
        .map(|i| Particle::synthetic([i as f64, 0.0, 0.0], i as u64))
        .collect()
}

fn main() {
    // 32 Ki = the paper's per-core load; 256 Ki and 2 Mi = typical
    // aggregation buffers at factors (2,2,2) and (4,4,4).
    for n in [32 * 1024usize, 256 * 1024, 2 * 1024 * 1024] {
        let base = particles(n);
        bench(&format!("lod_shuffle/{n}"), || {
            let mut buf = base.clone();
            lod_shuffle(&mut buf, black_box(42));
            black_box(buf.len());
        });
        bench(&format!("lod_shuffle_parallel/{n}"), || {
            let mut buf = base.clone();
            lod_shuffle_parallel(&mut buf, black_box(42));
            black_box(buf.len());
        });
    }
    bench("shuffle_permutation_32k", || {
        black_box(shuffle_permutation(32 * 1024, partition_seed(1, 7)));
    });
}
