//! Criterion bench for the per-particle binning of the non-aligned write
//! path (§3.3): "each process must first identify the aggregation
//! partitions it intersects with and perform a scan through its particles".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spio_core::grid::AggregationGrid;
use spio_types::{Aabb3, DomainDecomposition, GridDims, Particle, PartitionFactor};
use std::hint::black_box;

fn scattered_particles(n: usize) -> Vec<Particle> {
    (0..n)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
            let f = |s: u64| ((h >> s) & 0xFFFF) as f64 / 65536.0;
            Particle::synthetic([f(0), f(16), f(32)], i as u64)
        })
        .collect()
}

fn bench_binning(c: &mut Criterion) {
    let decomp = DomainDecomposition::uniform(
        Aabb3::new([0.0; 3], [1.0; 3]),
        GridDims::new(8, 8, 8),
    );
    let grid = AggregationGrid::aligned(&decomp, PartitionFactor::new(2, 2, 2)).unwrap();
    let mut group = c.benchmark_group("particle_binning");
    for &n in &[32 * 1024usize, 256 * 1024] {
        let ps = scattered_particles(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &ps, |b, ps| {
            b.iter(|| {
                let mut bins = vec![0u32; grid.partitions.len()];
                for p in ps {
                    bins[grid.partition_of_point(p.position).unwrap()] += 1;
                }
                black_box(bins)
            });
        });
    }
    group.finish();
}

fn bench_grid_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregation_grid_setup");
    group.sample_size(10);
    // Build the full grid structure at the paper's largest job size.
    for &procs in &[4096usize, 65_536, 262_144] {
        group.bench_with_input(BenchmarkId::from_parameter(procs), &procs, |b, &procs| {
            let decomp = DomainDecomposition::for_procs(Aabb3::new([0.0; 3], [1.0; 3]), procs);
            b.iter(|| {
                black_box(
                    AggregationGrid::aligned(&decomp, PartitionFactor::new(2, 2, 2)).unwrap(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_binning, bench_grid_construction);
criterion_main!(benches);
