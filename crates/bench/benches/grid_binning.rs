//! Microbench for the per-particle binning of the non-aligned write path
//! (§3.3): "each process must first identify the aggregation partitions it
//! intersects with and perform a scan through its particles".

use spio_core::grid::AggregationGrid;
use spio_types::{Aabb3, DomainDecomposition, GridDims, Particle, PartitionFactor};
use spio_util::bench::{bench, black_box};

fn scattered_particles(n: usize) -> Vec<Particle> {
    (0..n)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
            let f = |s: u64| ((h >> s) & 0xFFFF) as f64 / 65536.0;
            Particle::synthetic([f(0), f(16), f(32)], i as u64)
        })
        .collect()
}

fn main() {
    let decomp =
        DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(8, 8, 8));
    let grid = AggregationGrid::aligned(&decomp, PartitionFactor::new(2, 2, 2)).unwrap();
    for n in [32 * 1024usize, 256 * 1024] {
        let ps = scattered_particles(n);
        bench(&format!("particle_binning/{n}"), || {
            let mut bins = vec![0u32; grid.partitions.len()];
            for p in &ps {
                bins[grid.partition_of_point(p.position).unwrap()] += 1;
            }
            black_box(bins);
        });
    }
    // Build the full grid structure at the paper's largest job size.
    for procs in [4096usize, 65_536, 262_144] {
        let decomp = DomainDecomposition::for_procs(Aabb3::new([0.0; 3], [1.0; 3]), procs);
        bench(&format!("aggregation_grid_setup/{procs}"), || {
            black_box(AggregationGrid::aligned(&decomp, PartitionFactor::new(2, 2, 2)).unwrap());
        });
    }
}
