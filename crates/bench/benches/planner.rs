//! Criterion bench for the write planner: building the exact message/file
//! inventory for a 262 144-rank job must stay cheap, since the simulator
//! calls it for every Fig. 5 point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spio_core::plan::{plan_box_read, plan_write, DatasetShape};
use spio_format::LodParams;
use spio_types::{Aabb3, DomainDecomposition, PartitionFactor};
use std::hint::black_box;

fn bench_write_planner(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_write");
    group.sample_size(10);
    for &procs in &[65_536usize, 262_144] {
        group.bench_with_input(BenchmarkId::from_parameter(procs), &procs, |b, &procs| {
            let decomp = DomainDecomposition::for_procs(Aabb3::new([0.0; 3], [1.0; 3]), procs);
            let counts = vec![32_768u64; procs];
            b.iter(|| {
                black_box(
                    plan_write(&decomp, PartitionFactor::new(2, 2, 2), &counts, false).unwrap(),
                )
            });
        });
    }
    group.finish();
}

fn bench_read_planner(c: &mut Criterion) {
    // The Fig. 7 dataset: 8192 files.
    let files: Vec<(Aabb3, u64)> = (0..8192)
        .map(|i| {
            let x = (i % 32) as f64 / 32.0;
            let y = ((i / 32) % 16) as f64 / 16.0;
            let z = (i / 512) as f64 / 16.0;
            (
                Aabb3::new([x, y, z], [x + 1.0 / 32.0, y + 1.0 / 16.0, z + 1.0 / 16.0]),
                262_144,
            )
        })
        .collect();
    let shape = DatasetShape {
        domain: Aabb3::new([0.0; 3], [1.0; 3]),
        total_particles: files.iter().map(|&(_, c)| c).sum(),
        files,
        lod: LodParams::default(),
    };
    c.bench_function("plan_box_read_2048_readers", |b| {
        b.iter(|| black_box(plan_box_read(&shape, 2048, true)))
    });
}

criterion_group!(benches, bench_write_planner, bench_read_planner);
criterion_main!(benches);
