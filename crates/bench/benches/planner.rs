//! Microbench for the write planner: building the exact message/file
//! inventory for a 262 144-rank job must stay cheap, since the simulator
//! calls it for every Fig. 5 point.

use spio_core::plan::{plan_box_read, plan_write, DatasetShape};
use spio_format::LodParams;
use spio_types::{Aabb3, DomainDecomposition, PartitionFactor};
use spio_util::bench::{bench, black_box};

fn main() {
    for procs in [65_536usize, 262_144] {
        let decomp = DomainDecomposition::for_procs(Aabb3::new([0.0; 3], [1.0; 3]), procs);
        let counts = vec![32_768u64; procs];
        bench(&format!("plan_write/{procs}"), || {
            black_box(plan_write(&decomp, PartitionFactor::new(2, 2, 2), &counts, false).unwrap());
        });
    }

    // The Fig. 7 dataset: 8192 files.
    let files: Vec<(Aabb3, u64)> = (0..8192)
        .map(|i| {
            let x = (i % 32) as f64 / 32.0;
            let y = ((i / 32) % 16) as f64 / 16.0;
            let z = (i / 512) as f64 / 16.0;
            (
                Aabb3::new([x, y, z], [x + 1.0 / 32.0, y + 1.0 / 16.0, z + 1.0 / 16.0]),
                262_144,
            )
        })
        .collect();
    let shape = DatasetShape {
        domain: Aabb3::new([0.0; 3], [1.0; 3]),
        total_particles: files.iter().map(|&(_, c)| c).sum(),
        files,
        lod: LodParams::default(),
    };
    bench("plan_box_read_2048_readers", || {
        black_box(plan_box_read(&shape, 2048, true));
    });
}
