//! Cache-under-chaos: faulted files must never be admitted to the block
//! cache (no sticky corruption), degradation must stay per-file, and a
//! warm cache must serve bytes identical to a cold read once the fault
//! clears.

use spio_comm::run_threaded_collect;
use spio_core::{
    ChaosConfig, ChaosStorage, DatasetReader, MemStorage, SpatialWriter, Storage, WriterConfig,
};
use spio_format::META_FILE_NAME;
use spio_serve::{Query, QueryEngine, ServeConfig};
use spio_types::particle::encode_particles;
use spio_types::{Aabb3, DomainDecomposition, GridDims, PartitionFactor};
use spio_workloads::uniform_patch_particles;

/// 4 writer ranks, one file per writer patch → 4 data files covering the
/// unit cube.
fn build_dataset() -> MemStorage {
    let storage = MemStorage::new();
    let s = storage.clone();
    let d = DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(2, 2, 1));
    run_threaded_collect(4, move |comm| {
        let ps = uniform_patch_particles(&d, spio_comm::Comm::rank(&comm), 200, 5);
        SpatialWriter::new(d.clone(), WriterConfig::new(PartitionFactor::new(1, 1, 1)))
            .write(&comm, &ps, &s)
            .unwrap()
    })
    .unwrap();
    storage
}

fn whole_domain() -> Query {
    Query::Box(Aabb3::new([0.0; 3], [1.0; 3]))
}

#[test]
fn poisoned_file_degrades_per_file_and_is_never_cached() {
    let storage = build_dataset();
    let chaos = ChaosStorage::new(storage, ChaosConfig::default());
    let engine = QueryEngine::open(chaos, ServeConfig::default()).unwrap();
    let files = engine.meta().entries.len();
    assert_eq!(files, 4);
    let victim = engine.meta().entries[2].file_name();
    engine.storage().poison(&victim);

    let got = engine.execute(&whole_domain());
    assert_eq!(got.failures.len(), 1, "exactly the poisoned file fails");
    assert_eq!(got.failures[0].file, victim);
    assert!(!got.particles.is_empty(), "healthy files still served");
    // The fault was never admitted: only the healthy blocks are cached.
    assert_eq!(engine.cache_stats().blocks as usize, files - 1);

    // A persistent fault keeps failing per query — served from storage
    // (and failing there), never from a stale cache entry.
    let again = engine.execute(&whole_domain());
    assert_eq!(again.failures.len(), 1);
    assert_eq!(again.stats.cache_misses, 1, "only the poisoned file misses");
    assert_eq!(
        encode_particles(&again.particles),
        encode_particles(&got.particles),
        "degraded results stay deterministic"
    );
    assert_eq!(engine.cache_stats().blocks as usize, files - 1);
}

#[test]
fn transient_fault_is_not_cached_and_clears_on_retry() {
    let storage = build_dataset();
    // Deterministic schedule: chaos-eligible read ops 1, 4, 7, 10, … fault
    // transiently. Op 1 is burned below, op 2 is the engine's metadata
    // read, the first query's four file reads are ops 3–6 (one fault),
    // the retry of the failed file is op 7 (faults again), and its second
    // retry is op 8 (succeeds).
    let chaos = ChaosStorage::new(
        storage.clone(),
        ChaosConfig {
            transient_every: Some(3),
            ..ChaosConfig::default()
        },
    );
    assert!(
        spio_core::Storage::read_file(&chaos, META_FILE_NAME).is_err(),
        "op 1 burned on a metadata read"
    );
    let engine = QueryEngine::open(chaos, ServeConfig::default()).unwrap();
    let files = engine.meta().entries.len();

    let first = engine.execute(&whole_domain());
    assert_eq!(first.failures.len(), 1, "one transient fault in ops 3-6");
    assert_eq!(engine.cache_stats().blocks as usize, files - 1);

    let second = engine.execute(&whole_domain());
    assert_eq!(second.failures.len(), 1, "op 7 faults the retry too");
    assert_eq!(second.failures[0].file, first.failures[0].file);

    let third = engine.execute(&whole_domain());
    assert!(third.is_complete(), "op 8 succeeds; the fault has cleared");
    assert_eq!(engine.cache_stats().blocks as usize, files);

    // Recovered result is byte-identical to the serial reader on the
    // pristine storage.
    let serial = DatasetReader::open(&storage).unwrap();
    let (expect, _) = serial
        .read_box(&storage, &Aabb3::new([0.0; 3], [1.0; 3]))
        .unwrap();
    assert_eq!(
        encode_particles(&third.particles),
        encode_particles(&expect)
    );
}

#[test]
fn corrupt_bytes_never_cached_and_warm_equals_cold() {
    let storage = build_dataset();
    let serial = DatasetReader::open(&storage).unwrap();
    let region = Aabb3::new([0.0; 3], [1.0; 3]);
    let (expect, _) = serial.read_box(&storage, &region).unwrap();

    let chaos = ChaosStorage::new(storage, ChaosConfig::default());
    let engine = QueryEngine::open(chaos, ServeConfig::default()).unwrap();
    let files = engine.meta().entries.len();
    let victim = engine.meta().entries[0].file_name();

    // Flip one payload byte: structurally valid, caught by the format-v2
    // chunk checksums at decode time.
    let pristine = engine.storage().inner().read_file(&victim).unwrap();
    let mut bytes = pristine.clone();
    let mid = spio_format::data_file::HEADER_BYTES + bytes.len() / 2;
    bytes[mid] ^= 0x01;
    engine
        .storage()
        .inner()
        .write_file(&victim, &bytes)
        .unwrap();

    let degraded = engine.execute(&whole_domain());
    assert_eq!(degraded.failures.len(), 1);
    assert_eq!(degraded.failures[0].file, victim);
    assert_eq!(
        engine.cache_stats().blocks as usize,
        files - 1,
        "the corrupt block was never admitted"
    );

    // Heal the file; the next read decodes cleanly and gets cached.
    engine
        .storage()
        .inner()
        .write_file(&victim, &pristine)
        .unwrap();
    let cold = engine.execute(&whole_domain());
    assert!(cold.is_complete());
    assert_eq!(encode_particles(&cold.particles), encode_particles(&expect));

    // Fully warm repeat: zero storage bytes, byte-identical to the cold
    // read (and hence to the serial oracle).
    let warm = engine.execute(&whole_domain());
    assert_eq!(warm.stats.bytes_read, 0);
    assert_eq!(warm.stats.cache_misses, 0);
    assert_eq!(encode_particles(&warm.particles), encode_particles(&expect));
}
