//! Property test: the spatial index's file selection is identical to the
//! linear `files_intersecting` oracle on randomized box queries, over
//! metadata produced by real writes of all three synthetic workloads
//! (uniform, clusters, jet).

use spio_comm::{run_threaded_collect, Comm};
use spio_core::{DatasetReader, MemStorage, SpatialWriter, WriterConfig};
use spio_format::{SpatialIndex, SpatialMetadata};
use spio_types::{Aabb3, DomainDecomposition, GridDims, Particle, PartitionFactor};
use spio_util::{cases, Gen};
use spio_workloads::{
    cluster_patch_particles, jet_patch_particles, uniform_patch_particles, ClusterSpec, JetSpec,
};

fn write_dataset(
    gen: impl Fn(&DomainDecomposition, usize) -> Vec<Particle> + Clone + Send + Sync + 'static,
) -> SpatialMetadata {
    let storage = MemStorage::new();
    let s = storage.clone();
    let d = DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(4, 2, 2));
    run_threaded_collect(16, move |comm| {
        let ps = gen(&d, comm.rank());
        SpatialWriter::new(d.clone(), WriterConfig::new(PartitionFactor::new(2, 2, 1)))
            .write(&comm, &ps, &s)
            .unwrap()
    })
    .unwrap();
    DatasetReader::open(&storage).unwrap().meta
}

fn random_query(g: &mut Gen, domain: &Aabb3) -> Aabb3 {
    let e = domain.extent();
    let mut lo = [0.0f64; 3];
    let mut hi = [0.0f64; 3];
    for a in 0..3 {
        // Anything from a sliver to the whole axis, sometimes poking
        // outside the domain so boundary handling gets exercised too.
        let x0 = g.f64_in(domain.lo[a] - 0.1 * e[a], domain.hi[a]);
        let x1 = g.f64_in(x0, domain.hi[a] + 0.1 * e[a]);
        lo[a] = x0;
        hi[a] = x1;
    }
    Aabb3::new(lo, hi)
}

fn assert_index_matches_oracle(meta: &SpatialMetadata, workload: &str) {
    let index = SpatialIndex::build(meta);
    assert_eq!(index.len(), meta.entries.len());
    cases(128, |g| {
        let q = random_query(g, &meta.domain);
        let got = index.query(&q);
        let want = meta.files_intersecting(&q);
        assert_eq!(got, want, "{workload}: selection diverged for {q:?}");
    });
    // Degenerate queries: empty box, whole domain, single point.
    let empty = Aabb3::new([0.5; 3], [0.5; 3]);
    assert_eq!(index.query(&empty), meta.files_intersecting(&empty));
    assert_eq!(
        index.query(&meta.domain),
        (0..meta.entries.len()).collect::<Vec<_>>()
    );
}

#[test]
fn index_matches_linear_oracle_on_uniform_writes() {
    let meta = write_dataset(|d, rank| uniform_patch_particles(d, rank, 300, 7));
    assert_index_matches_oracle(&meta, "uniform");
}

#[test]
fn index_matches_linear_oracle_on_cluster_writes() {
    let spec = ClusterSpec {
        total_particles: 6_000,
        ..ClusterSpec::default()
    };
    let meta = write_dataset(move |d, rank| cluster_patch_particles(d, rank, &spec, 11));
    assert_index_matches_oracle(&meta, "clusters");
}

#[test]
fn index_matches_linear_oracle_on_jet_writes() {
    let spec = JetSpec {
        total_particles: 6_000,
        ..JetSpec::default()
    };
    let meta = write_dataset(move |d, rank| jet_patch_particles(d, rank, &spec, 13));
    assert_index_matches_oracle(&meta, "jet");
}
