//! spio-serve: concurrent read-serving engine over a written dataset.
//!
//! The write path (spio-core `Dataset`) lays particles out so that spatial
//! reads touch few files; this crate is the companion *read service* that
//! exploits that layout under concurrent load:
//!
//! - [`SpatialIndex`](spio_format::SpatialIndex) (built once per open)
//!   turns "which files intersect this box" into an O(log n + k) probe
//!   instead of a linear metadata scan;
//! - [`BlockCache`] keeps decoded per-file particle payloads, sharded and
//!   byte-budgeted, keyed by `(file, LOD prefix level)`;
//! - [`WorkerPool`] + [`AdmissionGate`] fan per-file work across threads
//!   while bounding how many queries hold memory at once;
//! - [`QueryEngine`] ties them together and degrades per file: a corrupt
//!   or missing file yields a partial result, never a failed query and
//!   never a poisoned cache entry.
//!
//! [`workload`] generates seeded multi-client query mixes for the
//! `spio serve-bench` CLI and the read benchmark.

pub mod cache;
pub mod engine;
pub mod pool;
pub mod workload;

pub use cache::{block_cost, BlockCache, BlockKey, CacheStats};
pub use engine::{FileFailure, Query, QueryEngine, QueryResult, QueryStats, ServeConfig};
pub use pool::{AdmissionGate, Permit, WorkerPool};
pub use workload::{client_queries, hot_spot, WorkloadSpec};
