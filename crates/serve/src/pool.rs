//! Std-only worker pool and admission gate for the query executor.
//!
//! The pool fans per-file decode+filter jobs across a fixed set of threads;
//! the gate bounds how many *queries* are in flight at once, so a burst of
//! clients degrades to queueing instead of unbounded memory growth (each
//! admitted query can hold decoded blocks while it assembles its result).

use spio_trace::Gauge;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed-size thread pool executing boxed jobs from a shared queue.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` threads (at least one).
    pub fn new(workers: usize) -> WorkerPool {
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("spio-serve-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
        }
    }

    /// Queue a job. Panics if called after drop began (impossible through
    /// the public API).
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool alive")
            .send(Box::new(job))
            .expect("workers alive");
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    loop {
        // Lock only to dequeue; run the job with the queue unlocked so
        // other workers keep draining.
        let job = match rx.lock().unwrap().recv() {
            Ok(job) => job,
            Err(_) => return, // pool dropped its sender: drain done
        };
        job();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.tx.take(); // close the queue; workers exit after draining it
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Counting semaphore bounding in-flight queries, with the current depth
/// mirrored into a `serve.inflight` gauge.
pub struct AdmissionGate {
    state: Mutex<usize>,
    cv: Condvar,
    max: usize,
    inflight: Gauge,
}

impl AdmissionGate {
    pub fn new(max: usize, inflight: Gauge) -> AdmissionGate {
        AdmissionGate {
            state: Mutex::new(0),
            cv: Condvar::new(),
            max: max.max(1),
            inflight,
        }
    }

    /// Block until a slot frees, then take it. The returned permit releases
    /// on drop (also on panic, so a failed query never leaks a slot).
    pub fn acquire(&self) -> Permit<'_> {
        let mut n = self.state.lock().unwrap();
        while *n >= self.max {
            n = self.cv.wait(n).unwrap();
        }
        *n += 1;
        self.inflight.set(*n as i64);
        Permit { gate: self }
    }

    /// Queries currently admitted.
    pub fn in_flight(&self) -> usize {
        *self.state.lock().unwrap()
    }
}

/// RAII slot in the admission gate.
pub struct Permit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut n = self.gate.state.lock().unwrap();
        *n -= 1;
        self.gate.inflight.set(*n as i64);
        drop(n);
        self.gate.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn pool_runs_all_jobs_and_joins_on_drop() {
        let done = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(4);
            assert_eq!(pool.workers(), 4);
            for _ in 0..100 {
                let done = done.clone();
                pool.submit(move || {
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
        } // drop waits for the queue to drain
        assert_eq!(done.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        let (tx, rx) = channel();
        pool.submit(move || tx.send(42).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 42);
    }

    #[test]
    fn gate_bounds_concurrency() {
        let metrics = spio_trace::Trace::collecting().metrics();
        let gate = Arc::new(AdmissionGate::new(3, metrics.gauge("serve.inflight")));
        let active = Arc::new(AtomicUsize::new(0));
        let high_water = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..16)
            .map(|_| {
                let (gate, active, high) = (gate.clone(), active.clone(), high_water.clone());
                std::thread::spawn(move || {
                    let _permit = gate.acquire();
                    let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                    high.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(2));
                    active.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(high_water.load(Ordering::SeqCst) <= 3);
        assert_eq!(gate.in_flight(), 0);
        assert_eq!(metrics.gauge_value("serve.inflight"), 0);
    }

    #[test]
    fn permit_releases_on_panic() {
        let gate = Arc::new(AdmissionGate::new(1, Gauge::default()));
        let g = gate.clone();
        let _ = std::thread::spawn(move || {
            let _permit = g.acquire();
            panic!("query died");
        })
        .join();
        // The slot must be free again.
        let _permit = gate.acquire();
        assert_eq!(gate.in_flight(), 1);
    }
}
