//! Std-only worker pool and admission gate for the query executor.
//!
//! The pool fans per-file decode+filter jobs across a fixed set of threads;
//! the gate bounds how many *queries* are in flight at once, so a burst of
//! clients degrades to queueing instead of unbounded memory growth (each
//! admitted query can hold decoded blocks while it assembles its result).
//!
//! Panic containment: a job that panics must not take the server down with
//! it. Workers catch job panics and keep draining the queue, panics are
//! counted (surfaced through [`WorkerPool::job_panics`] so the engine can
//! report them), and every lock acquisition is poison-tolerant — a panic
//! observed by one thread never cascades into `PoisonError` unwinds across
//! the rest of the pool.

use spio_trace::Gauge;
use spio_util::{lock_unpoisoned, wait_unpoisoned};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed-size thread pool executing boxed jobs from a shared queue.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    panics: Arc<AtomicUsize>,
}

impl WorkerPool {
    /// Spawn `workers` threads (at least one).
    pub fn new(workers: usize) -> WorkerPool {
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let panics = Arc::new(AtomicUsize::new(0));
        let workers = (0..workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let panics = Arc::clone(&panics);
                std::thread::Builder::new()
                    .name(format!("spio-serve-{i}"))
                    .spawn(move || worker_loop(&rx, &panics))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
            panics,
        }
    }

    /// Queue a job. If the queue is somehow gone (every worker killed from
    /// outside), the job runs inline on the caller instead of panicking the
    /// submitting query thread.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        let Some(tx) = self.tx.as_ref() else {
            job();
            return;
        };
        if let Err(returned) = tx.send(Box::new(job)) {
            (returned.0)();
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Jobs that panicked (and were contained) since the pool started.
    pub fn job_panics(&self) -> usize {
        self.panics.load(Ordering::Relaxed)
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, panics: &AtomicUsize) {
    loop {
        // Lock only to dequeue; run the job with the queue unlocked so
        // other workers keep draining.
        let job = match lock_unpoisoned(rx).recv() {
            Ok(job) => job,
            Err(_) => return, // pool dropped its sender: drain done
        };
        // Contain the blast radius of a bad job: count the panic and go
        // back to serving. The job's own completion channel (if any) drops
        // here, which is how the engine observes the failure.
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            panics.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.tx.take(); // close the queue; workers exit after draining it
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Counting semaphore bounding in-flight queries, with the current depth
/// mirrored into a `serve.inflight` gauge.
pub struct AdmissionGate {
    state: Mutex<usize>,
    cv: std::sync::Condvar,
    max: usize,
    inflight: Gauge,
}

impl AdmissionGate {
    pub fn new(max: usize, inflight: Gauge) -> AdmissionGate {
        AdmissionGate {
            state: Mutex::new(0),
            cv: std::sync::Condvar::new(),
            max: max.max(1),
            inflight,
        }
    }

    /// Block until a slot frees, then take it. The returned permit releases
    /// on drop (also on panic, so a failed query never leaks a slot).
    pub fn acquire(&self) -> Permit<'_> {
        let mut n = lock_unpoisoned(&self.state);
        while *n >= self.max {
            n = wait_unpoisoned(&self.cv, n);
        }
        *n += 1;
        self.inflight.set(*n as i64);
        Permit { gate: self }
    }

    /// Queries currently admitted.
    pub fn in_flight(&self) -> usize {
        *lock_unpoisoned(&self.state)
    }
}

/// RAII slot in the admission gate.
pub struct Permit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut n = lock_unpoisoned(&self.gate.state);
        *n -= 1;
        self.gate.inflight.set(*n as i64);
        drop(n);
        self.gate.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn pool_runs_all_jobs_and_joins_on_drop() {
        let done = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(4);
            assert_eq!(pool.workers(), 4);
            for _ in 0..100 {
                let done = done.clone();
                pool.submit(move || {
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
        } // drop waits for the queue to drain
        assert_eq!(done.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        let (tx, rx) = channel();
        pool.submit(move || tx.send(42).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 42);
    }

    #[test]
    fn panicking_job_does_not_kill_the_pool() {
        let done = Arc::new(AtomicUsize::new(0));
        {
            // One worker: if the panic killed it, every later job would
            // sit in the queue forever and drop-join would deadlock.
            let pool = WorkerPool::new(1);
            pool.submit(|| panic!("bad job"));
            for _ in 0..50 {
                let done = done.clone();
                pool.submit(move || {
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Drop drains the queue through the surviving worker.
        }
        assert_eq!(done.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn job_panics_are_counted() {
        let pool = WorkerPool::new(2);
        pool.submit(|| panic!("one"));
        pool.submit(|| panic!("two"));
        // Both panics are contained by the catch in worker_loop; the count
        // becomes visible once the jobs have actually run.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.job_panics() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(pool.job_panics(), 2);
    }

    #[test]
    fn gate_bounds_concurrency() {
        let metrics = spio_trace::Trace::collecting().metrics();
        let gate = Arc::new(AdmissionGate::new(3, metrics.gauge("serve.inflight")));
        let active = Arc::new(AtomicUsize::new(0));
        let high_water = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..16)
            .map(|_| {
                let (gate, active, high) = (gate.clone(), active.clone(), high_water.clone());
                std::thread::spawn(move || {
                    let _permit = gate.acquire();
                    let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                    high.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(2));
                    active.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(high_water.load(Ordering::SeqCst) <= 3);
        assert_eq!(gate.in_flight(), 0);
        assert_eq!(metrics.gauge_value("serve.inflight"), 0);
    }

    #[test]
    fn permit_releases_on_panic() {
        let gate = Arc::new(AdmissionGate::new(1, Gauge::default()));
        let g = gate.clone();
        let _ = std::thread::spawn(move || {
            let _permit = g.acquire();
            panic!("query died");
        })
        .join();
        // The slot must be free again — and the poisoned gate mutex must
        // still be usable by every other query thread.
        let _permit = gate.acquire();
        assert_eq!(gate.in_flight(), 1);
    }
}
