//! Seeded multi-client query workloads for the serve bench and tests.
//!
//! Real read traffic against a spatial store is skewed: most clients probe
//! a handful of hot regions (a feature a scientist is inspecting) while a
//! tail of queries sweeps the rest of the domain. `client_queries` models
//! that mix deterministically: the same `(spec, client)` pair always
//! produces the same query list, so bench runs are reproducible and the
//! cold/warm comparison in `spio bench --read` measures caching, not
//! workload drift.

use crate::engine::Query;
use spio_format::SpatialMetadata;
use spio_types::Aabb3;
use spio_util::Rng;

/// Parameters of a synthetic multi-client query mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Base seed; each client derives an independent stream from it.
    pub seed: u64,
    /// Queries each client issues.
    pub queries_per_client: usize,
    /// Fraction of queries aimed at the shared hot-spot box.
    pub hot_fraction: f64,
    /// Fraction of queries that are LOD-prefix reads.
    pub lod_fraction: f64,
    /// Fraction of queries that add a density-range filter.
    pub density_fraction: f64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            seed: 42,
            queries_per_client: 24,
            hot_fraction: 0.5,
            lod_fraction: 0.2,
            density_fraction: 0.2,
        }
    }
}

/// The shared hot-spot region: a box spanning the central ~30% of each
/// axis. All clients hit the same box, which is what makes the warm-cache
/// phase of the bench mostly hits.
pub fn hot_spot(domain: &Aabb3) -> Aabb3 {
    let c = domain.center();
    let e = domain.extent();
    let lo = [c[0] - 0.15 * e[0], c[1] - 0.15 * e[1], c[2] - 0.15 * e[2]];
    let hi = [c[0] + 0.15 * e[0], c[1] + 0.15 * e[1], c[2] + 0.15 * e[2]];
    Aabb3::new(lo, hi)
}

fn random_box(rng: &mut Rng, domain: &Aabb3) -> Aabb3 {
    let e = domain.extent();
    let mut lo = [0.0f64; 3];
    let mut hi = [0.0f64; 3];
    for a in 0..3 {
        // Side between 5% and 40% of the domain extent on each axis.
        let side = rng.f64_in(0.05, 0.40) * e[a];
        let start = rng.f64_in(domain.lo[a], domain.hi[a] - side);
        lo[a] = start;
        hi[a] = start + side;
    }
    Aabb3::new(lo, hi)
}

/// Deterministic query list for one client. Clients get decorrelated
/// streams (seed mixed with the client id), but the *hot-spot box itself*
/// is shared across clients so their traffic overlaps.
pub fn client_queries(meta: &SpatialMetadata, spec: &WorkloadSpec, client: usize) -> Vec<Query> {
    let mut rng =
        Rng::seed_from_u64(spec.seed ^ (client as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let hot = hot_spot(&meta.domain);
    let num_levels = meta.lod.num_levels(1, meta.total_particles).max(1);
    (0..spec.queries_per_client)
        .map(|_| {
            let region = if rng.f64() < spec.hot_fraction {
                hot
            } else {
                random_box(&mut rng, &meta.domain)
            };
            let kind = rng.f64();
            if kind < spec.lod_fraction {
                Query::Lod {
                    region,
                    level: rng.usize_in(0, num_levels as usize - 1) as u32,
                }
            } else if kind < spec.lod_fraction + spec.density_fraction {
                let lo = rng.f64_in(0.8, 1.5);
                let hi = lo + rng.f64_in(0.05, 0.5);
                Query::Density { region, lo, hi }
            } else {
                Query::Box(region)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spio_format::meta::FileEntry;
    use spio_format::LodParams;
    use spio_types::{GridDims, PartitionFactor};

    fn meta() -> SpatialMetadata {
        SpatialMetadata {
            domain: Aabb3::new([0.0; 3], [1.0; 3]),
            writer_grid: GridDims::new(4, 4, 1),
            partition_factor: PartitionFactor::new(1, 1, 1),
            lod: LodParams::default(),
            total_particles: 4096,
            entries: vec![FileEntry {
                agg_rank: 0,
                particle_count: 4096,
                bounds: Aabb3::new([0.0; 3], [1.0; 3]),
            }],
            attr_ranges: None,
        }
    }

    #[test]
    fn same_client_same_queries() {
        let m = meta();
        let spec = WorkloadSpec::default();
        let a = client_queries(&m, &spec, 3);
        let b = client_queries(&m, &spec, 3);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(a.len(), spec.queries_per_client);
    }

    #[test]
    fn different_clients_differ_but_share_the_hot_spot() {
        let m = meta();
        let spec = WorkloadSpec {
            queries_per_client: 64,
            ..WorkloadSpec::default()
        };
        let a = client_queries(&m, &spec, 0);
        let b = client_queries(&m, &spec, 1);
        assert_ne!(format!("{a:?}"), format!("{b:?}"));
        let hot = hot_spot(&m.domain);
        let hot_hits = |qs: &[Query]| {
            qs.iter()
                .filter(|q| {
                    let r = match q {
                        Query::Box(r) => r,
                        Query::Lod { region, .. } => region,
                        Query::Density { region, .. } => region,
                    };
                    r.lo == hot.lo && r.hi == hot.hi
                })
                .count()
        };
        // Both clients aim a solid share of traffic at the same box.
        assert!(hot_hits(&a) > 16, "client 0 hot hits: {}", hot_hits(&a));
        assert!(hot_hits(&b) > 16, "client 1 hot hits: {}", hot_hits(&b));
    }

    #[test]
    fn mix_includes_all_query_kinds() {
        let m = meta();
        let spec = WorkloadSpec {
            queries_per_client: 200,
            ..WorkloadSpec::default()
        };
        let qs = client_queries(&m, &spec, 7);
        let boxes = qs.iter().filter(|q| matches!(q, Query::Box(_))).count();
        let lods = qs.iter().filter(|q| matches!(q, Query::Lod { .. })).count();
        let dens = qs
            .iter()
            .filter(|q| matches!(q, Query::Density { .. }))
            .count();
        assert!(boxes > 0 && lods > 0 && dens > 0, "{boxes}/{lods}/{dens}");
        for q in &qs {
            if let Query::Density { lo, hi, .. } = q {
                assert!(lo < hi);
            }
            if let Query::Lod { level, .. } = q {
                assert!((*level as usize) < m.lod.num_levels(1, m.total_particles) as usize);
            }
        }
    }
}
