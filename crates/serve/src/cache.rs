//! Sharded LRU cache of decoded per-file particle payloads.
//!
//! Decoding a data file (CRC verification + byte unpacking) dominates a
//! warm query's cost, so the engine caches the *decoded* particle vector,
//! not file bytes. Keys are `(file id, LOD prefix level)`: a full-file read
//! and an LOD prefix of the same file are distinct blocks. The cache is
//! byte-budgeted (particle payload bytes, the dominant term) and sharded —
//! each shard has its own lock and its own slice of the budget, so
//! concurrent queries touching different files do not serialize on one
//! mutex.
//!
//! Only successfully decoded blocks are ever inserted: a corrupt or
//! missing file produces an error *upstream* of the cache, so faults can
//! never become sticky (see the chaos tests).

use spio_trace::{Counter, Gauge, Metrics};
use spio_types::{Particle, PARTICLE_BYTES};
use spio_util::lock_unpoisoned;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// Cache key: one decoded block per (file, prefix depth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockKey {
    /// Index of the file's entry in the dataset metadata.
    pub file: u32,
    /// `None` = the whole file; `Some(l)` = the LOD prefix through level
    /// `l`. Callers canonicalize the level (clamp to the dataset's level
    /// count) before lookup so one prefix never appears under two keys.
    pub lod_level: Option<u32>,
}

/// Metric names the cache publishes into the job's registry.
pub mod metric_names {
    pub const HITS: &str = "serve.cache.hits";
    pub const MISSES: &str = "serve.cache.misses";
    pub const EVICTIONS: &str = "serve.cache.evictions";
    pub const BYTES: &str = "serve.cache.bytes";
}

struct Slot {
    block: Arc<Vec<Particle>>,
    cost: u64,
    /// Logical timestamp of the last touch; also this slot's key in `lru`.
    stamp: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<BlockKey, Slot>,
    /// Recency order: stamp → key. `pop_first` is the LRU victim.
    lru: BTreeMap<u64, BlockKey>,
    bytes: u64,
    clock: u64,
}

impl Shard {
    fn touch(&mut self, key: BlockKey) {
        self.clock += 1;
        let slot = self.map.get_mut(&key).expect("touched slot exists");
        self.lru.remove(&slot.stamp);
        slot.stamp = self.clock;
        self.lru.insert(self.clock, key);
    }
}

/// The sharded, byte-budgeted LRU block cache.
pub struct BlockCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard byte budget (total budget split evenly).
    shard_budget: u64,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    bytes_gauge: Gauge,
}

/// Point-in-time cache statistics. Hit/miss/eviction counts come from the
/// registry counters (zero when the engine runs untraced); bytes and block
/// counts are authoritative from the shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub bytes: u64,
    pub blocks: u64,
}

/// Payload bytes a decoded block occupies (the budgeted quantity).
pub fn block_cost(particles: &[Particle]) -> u64 {
    particles.len() as u64 * PARTICLE_BYTES as u64
}

impl BlockCache {
    /// A cache holding at most `total_bytes` of decoded payload across
    /// `shards` independently locked shards.
    pub fn new(total_bytes: u64, shards: usize, metrics: &Metrics) -> BlockCache {
        let shards = shards.max(1);
        BlockCache {
            shard_budget: total_bytes / shards as u64,
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            hits: metrics.counter(metric_names::HITS),
            misses: metrics.counter(metric_names::MISSES),
            evictions: metrics.counter(metric_names::EVICTIONS),
            bytes_gauge: metrics.gauge(metric_names::BYTES),
        }
    }

    fn shard_of(&self, key: &BlockKey) -> &Mutex<Shard> {
        // Multiply-mix the key so file ids that differ only in low bits
        // still spread across shards.
        let raw = ((key.file as u64) << 33)
            ^ key
                .lod_level
                .map_or(u64::MAX, |l| l as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mixed = raw.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        &self.shards[(mixed >> 32) as usize % self.shards.len()]
    }

    /// Look up a block, bumping its recency on hit.
    pub fn get(&self, key: &BlockKey) -> Option<Arc<Vec<Particle>>> {
        let mut shard = lock_unpoisoned(self.shard_of(key));
        if shard.map.contains_key(key) {
            shard.touch(*key);
            self.hits.inc();
            Some(shard.map[key].block.clone())
        } else {
            self.misses.inc();
            None
        }
    }

    /// Insert a successfully decoded block, evicting LRU blocks from the
    /// same shard until it fits. A block larger than a whole shard's
    /// budget is not cached at all (it would evict everything for one
    /// self-evicting tenant).
    pub fn insert(&self, key: BlockKey, block: Arc<Vec<Particle>>) {
        let cost = block_cost(&block);
        if cost > self.shard_budget {
            return;
        }
        let mut delta = cost as i64;
        let mut shard = lock_unpoisoned(self.shard_of(&key));
        if let Some(old) = shard.map.remove(&key) {
            // Racing loads of the same block: keep the newcomer.
            shard.lru.remove(&old.stamp);
            shard.bytes -= old.cost;
            delta -= old.cost as i64;
        }
        while shard.bytes + cost > self.shard_budget {
            let (_, victim) = shard.lru.pop_first().expect("bytes > 0 implies a victim");
            let evicted = shard.map.remove(&victim).expect("lru entry has a slot");
            shard.bytes -= evicted.cost;
            delta -= evicted.cost as i64;
            self.evictions.inc();
        }
        shard.clock += 1;
        let stamp = shard.clock;
        shard.bytes += cost;
        shard.lru.insert(stamp, key);
        shard.map.insert(key, Slot { block, cost, stamp });
        drop(shard);
        self.bytes_gauge.add(delta);
    }

    /// Current decoded payload bytes held across all shards.
    pub fn total_bytes(&self) -> u64 {
        self.shards.iter().map(|s| lock_unpoisoned(s).bytes).sum()
    }

    /// Aggregate statistics (see [`CacheStats`] for provenance).
    pub fn stats(&self) -> CacheStats {
        let (mut bytes, mut blocks) = (0u64, 0u64);
        for s in &self.shards {
            let s = lock_unpoisoned(s);
            bytes += s.bytes;
            blocks += s.map.len() as u64;
        }
        CacheStats {
            hits: self.hits.value(),
            misses: self.misses.value(),
            evictions: self.evictions.value(),
            bytes,
            blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spio_types::Particle;

    fn block(n: usize, tag: u64) -> Arc<Vec<Particle>> {
        Arc::new(
            (0..n)
                .map(|i| Particle::synthetic([0.1, 0.2, 0.3], (tag << 32) | i as u64))
                .collect(),
        )
    }

    fn key(file: u32) -> BlockKey {
        BlockKey {
            file,
            lod_level: None,
        }
    }

    #[test]
    fn hit_after_insert_and_counters() {
        let m = spio_trace::Trace::collecting().metrics();
        let c = BlockCache::new(1 << 20, 4, &m);
        assert!(c.get(&key(0)).is_none());
        c.insert(key(0), block(10, 0));
        let got = c.get(&key(0)).unwrap();
        assert_eq!(got.len(), 10);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.blocks), (1, 1, 1));
        assert_eq!(s.bytes, block_cost(&got));
        assert_eq!(m.counter_value(metric_names::HITS), 1);
    }

    #[test]
    fn full_and_lod_blocks_are_distinct() {
        let m = spio_trace::Trace::collecting().metrics();
        let c = BlockCache::new(1 << 20, 2, &m);
        c.insert(key(3), block(8, 1));
        let lod = BlockKey {
            file: 3,
            lod_level: Some(0),
        };
        assert!(c.get(&lod).is_none());
        c.insert(lod, block(2, 2));
        assert_eq!(c.get(&lod).unwrap().len(), 2);
        assert_eq!(c.get(&key(3)).unwrap().len(), 8);
    }

    #[test]
    fn lru_evicts_oldest_within_budget() {
        let m = spio_trace::Trace::collecting().metrics();
        // Single shard, room for exactly two 10-particle blocks.
        let c = BlockCache::new(2 * block_cost(&block(10, 0)), 1, &m);
        c.insert(key(0), block(10, 0));
        c.insert(key(1), block(10, 1));
        c.get(&key(0)); // 0 is now more recent than 1
        c.insert(key(2), block(10, 2));
        assert!(c.get(&key(1)).is_none(), "LRU victim was 1");
        assert!(c.get(&key(0)).is_some());
        assert!(c.get(&key(2)).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn oversized_block_is_not_cached() {
        let m = spio_trace::Trace::collecting().metrics();
        let c = BlockCache::new(block_cost(&block(10, 0)), 1, &m);
        c.insert(key(0), block(100, 0));
        assert_eq!(c.stats().blocks, 0);
        assert!(c.get(&key(0)).is_none());
    }

    #[test]
    fn reinsert_replaces_without_leaking_budget() {
        let m = spio_trace::Trace::collecting().metrics();
        let c = BlockCache::new(1 << 20, 1, &m);
        c.insert(key(0), block(10, 0));
        c.insert(key(0), block(20, 1));
        let s = c.stats();
        assert_eq!(s.blocks, 1);
        assert_eq!(s.bytes, block_cost(&block(20, 1)));
        assert_eq!(c.get(&key(0)).unwrap().len(), 20);
    }

    #[test]
    fn concurrent_mixed_access_keeps_budget_invariant() {
        let m = spio_trace::Trace::collecting().metrics();
        let budget = 64 * block_cost(&block(10, 0));
        let c = Arc::new(BlockCache::new(budget, 8, &m));
        let threads: Vec<_> = (0..8u32)
            .map(|t| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for i in 0..200u32 {
                        let k = key((t * 37 + i) % 100);
                        if c.get(&k).is_none() {
                            c.insert(k, block(10, k.file as u64));
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(c.total_bytes() <= budget);
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 1600);
    }
}
