//! The concurrent query engine.
//!
//! One [`QueryEngine`] serves many box / LOD / density-range queries
//! against a single dataset. File selection goes through the
//! [`SpatialIndex`] (built once at open), decoded payloads are reused
//! across queries through the [`BlockCache`], and per-file decode+filter
//! work fans across the [`WorkerPool`]. An [`AdmissionGate`] bounds the
//! number of queries in flight.
//!
//! Failure semantics mirror [`spio_core::DatasetReader::read_box_partial`]:
//! a corrupt or missing file degrades that file only — it is reported in
//! [`QueryResult::failures`], never cached, and never poisons the rest of
//! the query. Results are assembled in ascending file order with the same
//! shared filter ([`spio_core::append_box_hits`]) the serial reader uses,
//! so a complete concurrent result is byte-identical to the serial one.

use crate::cache::{BlockCache, BlockKey, CacheStats};
use crate::pool::{AdmissionGate, WorkerPool};
use spio_core::reader::phases as read_phases;
use spio_core::{append_box_hits, DatasetReader, LodCursor, Storage};
use spio_format::data_file::decode_data_file;
use spio_format::{SpatialIndex, SpatialMetadata};
use spio_trace::{Counter, Histogram, Trace};
use spio_types::{Aabb3, Particle, SpioError};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Metric names the engine publishes (the cache adds its own, see
/// [`crate::cache::metric_names`]).
pub mod metric_names {
    /// Total queries executed (counter).
    pub const QUERIES: &str = "serve.query.count";
    /// Queries that lost at least one file (counter).
    pub const PARTIAL: &str = "serve.query.partial";
    /// End-to-end query latency in µs (histogram).
    pub const LATENCY: &str = "serve.query.latency_us";
    /// Queries currently admitted (gauge).
    pub const INFLIGHT: &str = "serve.inflight";
}

/// Engine sizing knobs. The defaults suit the desk-scale datasets the
/// benches use; see docs/SERVING.md for tuning guidance.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads decoding and filtering files.
    pub workers: usize,
    /// Maximum queries admitted concurrently.
    pub max_inflight: usize,
    /// Decoded-payload budget of the block cache, in bytes.
    pub cache_bytes: u64,
    /// Lock shards in the block cache.
    pub cache_shards: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            max_inflight: 8,
            cache_bytes: 64 << 20,
            cache_shards: 8,
        }
    }
}

/// One query a client can issue.
#[derive(Debug, Clone)]
pub enum Query {
    /// All particles inside the box (the paper's §4 read).
    Box(Aabb3),
    /// A uniform subsample of the region: LOD prefixes through `level` of
    /// the intersecting files, filtered to the region.
    Lod { region: Aabb3, level: u32 },
    /// Particles inside the region with density in `[lo, hi]` (§3.5
    /// attribute-range extension).
    Density { region: Aabb3, lo: f64, hi: f64 },
}

impl Query {
    /// The spatial region the query touches.
    pub fn region(&self) -> &Aabb3 {
        match self {
            Query::Box(r) | Query::Lod { region: r, .. } | Query::Density { region: r, .. } => r,
        }
    }

    /// Short kind label (used as the storage-op "file" in traces).
    pub fn label(&self) -> &'static str {
        match self {
            Query::Box(_) => "box",
            Query::Lod { .. } => "lod",
            Query::Density { .. } => "density",
        }
    }
}

/// A file the query could not serve, and why.
#[derive(Debug)]
pub struct FileFailure {
    pub file: String,
    pub error: SpioError,
}

/// Per-query accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryStats {
    pub files_selected: usize,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Bytes fetched from storage (0 for a fully warm query).
    pub bytes_read: u64,
    pub latency: Duration,
}

/// What a query returned: particles from every healthy file, failures for
/// the rest.
#[derive(Debug)]
pub struct QueryResult {
    pub particles: Vec<Particle>,
    pub failures: Vec<FileFailure>,
    pub stats: QueryStats,
}

impl QueryResult {
    /// True when every selected file was served — the result is then
    /// byte-identical to the serial read path.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }
}

struct EngineShared<S> {
    storage: S,
    meta: SpatialMetadata,
    index: SpatialIndex,
    cache: BlockCache,
    trace: Trace,
    /// Dataset-wide LOD level count for the single-reader prefix math
    /// (levels are canonicalized against this before cache lookup).
    lod_levels: u32,
    query_count: Counter,
    partial_queries: Counter,
    query_latency: Histogram,
}

/// Result of one file's decode+filter job.
struct FileSlot {
    kept: Vec<Particle>,
    bytes_read: u64,
    cache_hit: bool,
}

impl<S: Storage + 'static> EngineShared<S> {
    /// Files this query must touch, ascending — the index-accelerated
    /// equivalent of the metadata's linear selection scans.
    fn select_files(&self, query: &Query) -> Vec<usize> {
        let mut files = self.index.query(query.region());
        if let Query::Density { lo, hi, .. } = query {
            if let Some(ranges) = &self.meta.attr_ranges {
                files.retain(|&i| ranges[i].density_overlaps(*lo, *hi));
            }
        }
        files
    }

    /// The canonical cache key for this query against file `idx`.
    fn block_key(&self, idx: usize, query: &Query) -> BlockKey {
        BlockKey {
            file: idx as u32,
            lod_level: match query {
                Query::Lod { level, .. } => Some((*level).min(self.lod_levels.saturating_sub(1))),
                _ => None,
            },
        }
    }

    /// Fetch a decoded block through the cache, loading (and verifying)
    /// from storage on miss. Only clean decodes are admitted to the cache.
    fn fetch_block(&self, key: BlockKey) -> Result<(Arc<Vec<Particle>>, u64, bool), SpioError> {
        if let Some(block) = self.cache.get(&key) {
            return Ok((block, 0, true));
        }
        let idx = key.file as usize;
        let (particles, bytes_read) = match key.lod_level {
            None => {
                let bytes = self
                    .storage
                    .read_file(&self.meta.entries[idx].file_name())?;
                let n = bytes.len() as u64;
                let (_, particles) = decode_data_file(&bytes)?;
                (particles, n)
            }
            Some(level) => {
                // The LOD cursor's ranged reads verify checksum chunks
                // incrementally, so prefix blocks get the same integrity
                // guarantee as full files.
                let mut cursor = LodCursor::new(&self.meta, &[idx], 1);
                let (particles, stats) = cursor.read_through_level(&self.storage, level)?;
                (particles, stats.bytes_read)
            }
        };
        let block = Arc::new(particles);
        self.cache.insert(key, Arc::clone(&block));
        Ok((block, bytes_read, false))
    }

    /// Decode (through the cache) and filter one file for `query`.
    fn run_file(&self, idx: usize, query: &Query) -> Result<FileSlot, SpioError> {
        let (block, bytes_read, cache_hit) = self.fetch_block(self.block_key(idx, query))?;
        let mut kept = Vec::new();
        match query {
            Query::Box(region) | Query::Lod { region, .. } => {
                append_box_hits(region, &self.meta.entries[idx].bounds, &block, &mut kept);
            }
            Query::Density { region, lo, hi } => kept.extend(
                block
                    .iter()
                    .filter(|p| region.contains(p.position) && p.density >= *lo && p.density <= *hi)
                    .copied(),
            ),
        }
        Ok(FileSlot {
            kept,
            bytes_read,
            cache_hit,
        })
    }
}

/// The serving front: shareable across client threads (`&self` methods).
pub struct QueryEngine<S: Storage + 'static> {
    shared: Arc<EngineShared<S>>,
    pool: WorkerPool,
    gate: AdmissionGate,
}

impl<S: Storage + 'static> QueryEngine<S> {
    /// Open a dataset and build the serving state (metadata parse + index
    /// build; no data files are touched yet).
    pub fn open(storage: S, config: ServeConfig) -> Result<Self, SpioError> {
        Self::open_traced(storage, config, Trace::off())
    }

    /// Like [`QueryEngine::open`] with tracing: query latencies, cache
    /// counters, and degraded-file faults land in `trace` and its metrics
    /// registry.
    pub fn open_traced(storage: S, config: ServeConfig, trace: Trace) -> Result<Self, SpioError> {
        let meta = DatasetReader::open(&storage)?.meta;
        let metrics = trace.metrics();
        let index = SpatialIndex::build(&meta);
        let lod_levels = meta.lod.num_levels(1, meta.total_particles);
        let shared = Arc::new(EngineShared {
            cache: BlockCache::new(config.cache_bytes, config.cache_shards, &metrics),
            storage,
            index,
            lod_levels,
            meta,
            trace,
            query_count: metrics.counter(metric_names::QUERIES),
            partial_queries: metrics.counter(metric_names::PARTIAL),
            query_latency: metrics.histogram(metric_names::LATENCY),
        });
        Ok(QueryEngine {
            shared,
            pool: WorkerPool::new(config.workers),
            gate: AdmissionGate::new(config.max_inflight, metrics.gauge(metric_names::INFLIGHT)),
        })
    }

    /// The dataset's metadata.
    pub fn meta(&self) -> &SpatialMetadata {
        &self.shared.meta
    }

    /// Current block-cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// The storage backend the engine reads from.
    pub fn storage(&self) -> &S {
        &self.shared.storage
    }

    /// Execute a query as client 0.
    pub fn execute(&self, query: &Query) -> QueryResult {
        self.execute_as(0, query)
    }

    /// Execute a query attributed to `client` (the trace "rank" of its
    /// spans, faults, and storage ops). Blocks until admitted and until
    /// every file job finished; safe to call from many threads at once.
    pub fn execute_as(&self, client: usize, query: &Query) -> QueryResult {
        let _permit = self.gate.acquire();
        let t0 = Instant::now();
        let sh = &self.shared;
        let files = sh.select_files(query);
        let (tx, rx) = channel();
        for (slot, &idx) in files.iter().enumerate() {
            let tx = tx.clone();
            let sh = Arc::clone(&self.shared);
            let query = query.clone();
            self.pool.submit(move || {
                let result = sh.run_file(idx, &query);
                // The receiver only disappears if the query thread died;
                // dropping the result is then the right thing.
                let _ = tx.send((slot, result));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<Result<FileSlot, SpioError>>> =
            files.iter().map(|_| None).collect();
        for (slot, result) in rx {
            slots[slot] = Some(result);
        }
        let mut stats = QueryStats {
            files_selected: files.len(),
            ..Default::default()
        };
        let mut particles = Vec::new();
        let mut failures = Vec::new();
        // Ascending file order — the same order the serial reader appends
        // in, which is what makes complete results byte-identical.
        for (slot, result) in slots.into_iter().enumerate() {
            // An empty slot means the worker died mid-job (the panic was
            // contained by the pool and the result channel dropped without
            // sending). Degrade that one file, not the whole query.
            let outcome = result.unwrap_or_else(|| {
                Err(SpioError::Io(std::io::Error::other(
                    "file job panicked before reporting a result",
                )))
            });
            match outcome {
                Ok(fs) => {
                    particles.extend(fs.kept);
                    stats.bytes_read += fs.bytes_read;
                    if fs.cache_hit {
                        stats.cache_hits += 1;
                    } else {
                        stats.cache_misses += 1;
                    }
                }
                Err(error) => {
                    // A failed file is by definition not served from cache
                    // (faults are never admitted), so it counts as a miss.
                    stats.cache_misses += 1;
                    let file = sh.meta.entries[files[slot]].file_name();
                    sh.trace.fault(client, "serve.degraded", &file, false);
                    failures.push(FileFailure { file, error });
                }
            }
        }
        stats.latency = t0.elapsed();
        sh.query_count.inc();
        sh.query_latency.record_duration(stats.latency);
        if !failures.is_empty() {
            sh.partial_queries.inc();
        }
        sh.trace.phase(client, read_phases::BOX, stats.latency);
        sh.trace.storage_op(
            client,
            "serve.query",
            query.label(),
            stats.bytes_read,
            stats.latency,
        );
        QueryResult {
            particles,
            failures,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spio_comm::{run_threaded_collect, Comm};
    use spio_core::{MemStorage, SpatialWriter, WriterConfig};
    use spio_types::particle::encode_particles;
    use spio_types::{DomainDecomposition, GridDims, PartitionFactor};

    /// Same 4×4×1 grid / 2×2 aggregation dataset the core reader tests use.
    fn build_dataset(per_rank: usize) -> MemStorage {
        let storage = MemStorage::new();
        let s2 = storage.clone();
        let d =
            DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(4, 4, 1));
        run_threaded_collect(16, move |comm| {
            let b = d.patch_bounds(comm.rank());
            let e = b.extent();
            let particles: Vec<Particle> = (0..per_rank)
                .map(|i| {
                    let t = (i as f64 + 0.5) / per_rank as f64;
                    let u = ((i * 13 + 5) % per_rank) as f64 / per_rank as f64;
                    Particle::synthetic(
                        [b.lo[0] + t * e[0] * 0.99, b.lo[1] + u * e[1] * 0.99, 0.5],
                        ((comm.rank() as u64) << 32) | i as u64,
                    )
                })
                .collect();
            let writer =
                SpatialWriter::new(d.clone(), WriterConfig::new(PartitionFactor::new(2, 2, 1)));
            writer.write(&comm, &particles, &s2).unwrap();
        })
        .unwrap();
        storage
    }

    fn queries() -> Vec<Aabb3> {
        vec![
            Aabb3::new([0.05, 0.05, 0.0], [0.4, 0.4, 1.0]),
            Aabb3::new([0.2, 0.2, 0.0], [0.8, 0.9, 1.0]),
            Aabb3::new([0.0; 3], [1.0; 3]),
            Aabb3::new([0.45, 0.45, 0.45], [0.55, 0.55, 0.55]),
        ]
    }

    #[test]
    fn box_results_byte_identical_to_serial_cold_and_warm() {
        let storage = build_dataset(40);
        let serial = DatasetReader::open(&storage).unwrap();
        let engine = QueryEngine::open(storage.clone(), ServeConfig::default()).unwrap();
        for q in queries() {
            let (expect, _) = serial.read_box(&storage, &q).unwrap();
            let cold = engine.execute(&Query::Box(q));
            assert!(cold.is_complete());
            assert_eq!(
                encode_particles(&cold.particles),
                encode_particles(&expect),
                "cold vs serial for {q:?}"
            );
            let warm = engine.execute(&Query::Box(q));
            assert_eq!(encode_particles(&warm.particles), encode_particles(&expect));
            assert_eq!(warm.stats.cache_misses, 0, "repeat query fully cached");
            assert_eq!(warm.stats.bytes_read, 0);
            assert_eq!(warm.stats.cache_hits as usize, warm.stats.files_selected);
        }
        // Untraced engines have inert registry counters; block counts are
        // authoritative from the shards.
        assert!(engine.cache_stats().blocks > 0);
    }

    #[test]
    fn density_results_match_serial_range_read() {
        let storage = build_dataset(40);
        let serial = DatasetReader::open(&storage).unwrap();
        let engine = QueryEngine::open(storage.clone(), ServeConfig::default()).unwrap();
        let region = Aabb3::new([0.1, 0.1, 0.0], [0.9, 0.9, 1.0]);
        let (lo, hi) = (1.1, 1.4);
        let (expect, _) = serial.read_box_density(&storage, &region, lo, hi).unwrap();
        let got = engine.execute(&Query::Density { region, lo, hi });
        assert!(got.is_complete());
        assert_eq!(encode_particles(&got.particles), encode_particles(&expect));
        assert!(
            !got.particles.is_empty(),
            "synthetic densities hit [1.1,1.4]"
        );
    }

    #[test]
    fn lod_results_match_serial_cursor() {
        let storage = build_dataset(64);
        let serial = DatasetReader::open(&storage).unwrap();
        let engine = QueryEngine::open(storage.clone(), ServeConfig::default()).unwrap();
        let region = Aabb3::new([0.05, 0.05, 0.0], [0.7, 0.7, 1.0]);
        let deepest = serial.lod_box_cursor(&region, 1).num_levels() - 1;
        for level in [0u32, 1, 99] {
            let capped = level.min(deepest);
            // Oracle: per intersecting file (ascending), the prefix through
            // `capped`, filtered to the region — the engine's exact
            // assembly order.
            let mut expect = Vec::new();
            for idx in serial.meta.files_intersecting(&region) {
                let mut cursor = LodCursor::new(&serial.meta, &[idx], 1);
                let (prefix, _) = cursor.read_through_level(&storage, capped).unwrap();
                expect.extend(prefix.into_iter().filter(|p| region.contains(p.position)));
            }
            let got = engine.execute(&Query::Lod { region, level });
            assert!(got.is_complete());
            assert_eq!(
                encode_particles(&got.particles),
                encode_particles(&expect),
                "level {level}"
            );
        }
        // A past-the-end level clamps onto the deepest block, so querying
        // the deepest level explicitly is fully warm.
        let blocks_before = engine.cache_stats().blocks;
        let again = engine.execute(&Query::Lod {
            region,
            level: deepest,
        });
        assert!(again.is_complete());
        assert_eq!(again.stats.cache_misses, 0);
        assert_eq!(engine.cache_stats().blocks, blocks_before);
    }

    #[test]
    fn concurrent_clients_get_identical_results() {
        let storage = build_dataset(40);
        let serial = DatasetReader::open(&storage).unwrap();
        let engine = QueryEngine::open(
            storage.clone(),
            ServeConfig {
                workers: 4,
                max_inflight: 4,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let expected: Vec<Vec<u8>> = queries()
            .iter()
            .map(|q| encode_particles(&serial.read_box(&storage, q).unwrap().0))
            .collect();
        std::thread::scope(|scope| {
            for client in 0..8usize {
                let engine = &engine;
                let expected = &expected;
                scope.spawn(move || {
                    for (i, q) in queries().iter().enumerate() {
                        let r = engine.execute_as(client, &Query::Box(*q));
                        assert!(r.is_complete());
                        assert_eq!(
                            encode_particles(&r.particles),
                            expected[i],
                            "client {client}"
                        );
                    }
                });
            }
        });
    }

    #[test]
    fn traced_engine_records_query_metrics() {
        let storage = build_dataset(20);
        let trace = Trace::collecting();
        let engine =
            QueryEngine::open_traced(storage, ServeConfig::default(), trace.clone()).unwrap();
        let q = Query::Box(Aabb3::new([0.0; 3], [0.6, 0.6, 1.0]));
        engine.execute(&q);
        engine.execute(&q);
        let m = trace.metrics();
        assert_eq!(m.counter_value(metric_names::QUERIES), 2);
        let lat = m.histogram_snapshot(metric_names::LATENCY).unwrap();
        assert_eq!(lat.count, 2);
        assert!(m.counter_value(crate::cache::metric_names::HITS) > 0);
        // serve.query storage ops surface latency percentiles in reports.
        let report = spio_trace::JobReport::from_snapshot(1, &trace.snapshot()).with_metrics(&m);
        assert!(report.op_latency("serve.query").is_some());
        assert!(report.metric(metric_names::LATENCY).is_some());
    }
}
