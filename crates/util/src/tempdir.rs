//! Self-deleting temporary directories (offline replacement for tempfile).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory under the system temp dir, removed (best-effort) on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    pub fn new() -> std::io::Result<TempDir> {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        for _ in 0..16 {
            let unique = format!(
                "spio-{}-{}-{nanos:x}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed),
            );
            let path = std::env::temp_dir().join(unique);
            match std::fs::create_dir(&path) {
                Ok(()) => return Ok(TempDir { path }),
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e),
            }
        }
        Err(std::io::Error::other("could not create unique temp dir"))
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Create a fresh temporary directory (mirrors `tempfile::tempdir()`).
pub fn tempdir() -> std::io::Result<TempDir> {
    TempDir::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes() {
        let kept;
        {
            let dir = tempdir().unwrap();
            kept = dir.path().to_path_buf();
            assert!(kept.is_dir());
            std::fs::write(kept.join("x"), b"y").unwrap();
        }
        assert!(!kept.exists(), "dropped TempDir must vanish");
    }

    #[test]
    fn dirs_are_unique() {
        let a = tempdir().unwrap();
        let b = tempdir().unwrap();
        assert_ne!(a.path(), b.path());
    }
}
