//! # spio-util
//!
//! Small, dependency-free building blocks shared across the workspace. The
//! build environment is fully offline, so everything the repo previously
//! pulled from crates.io (seeded RNG streams, property-test harness,
//! temporary directories, JSON for trace reports) lives here instead, as
//! plain-std implementations sized to what the workspace actually uses.

pub mod bench;
pub mod check;
pub mod crc;
pub mod json;
pub mod rng;
pub mod sync;
pub mod tempdir;

pub use check::{cases, cases_seeded, Gen};
pub use crc::{crc32, Crc32};
pub use json::Json;
pub use rng::Rng;
pub use sync::{lock_unpoisoned, wait_timeout_unpoisoned, wait_unpoisoned};
pub use tempdir::{tempdir, TempDir};
