//! Minimal property-test harness (offline replacement for proptest).
//!
//! Properties are closures over a [`Gen`] that draw inputs and assert with
//! the standard macros. [`cases`] runs the closure over a deterministic
//! sequence of seeds; on failure it reports the case number and seed so the
//! exact failing input can be replayed with [`cases_seeded`]. There is no
//! shrinking — the generators draw small values often enough that failures
//! tend to be readable as-is.

use crate::rng::{splitmix64, Rng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Input source handed to a property closure.
pub struct Gen {
    rng: Rng,
    /// Which case (0-based) this generator belongs to.
    pub case: u64,
}

impl Gen {
    pub fn from_seed(seed: u64, case: u64) -> Self {
        Gen {
            rng: Rng::seed_from_u64(seed),
            case,
        }
    }

    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    pub fn u32(&mut self) -> u32 {
        self.rng.next_u32()
    }

    pub fn u8(&mut self) -> u8 {
        self.rng.u8()
    }

    pub fn bool(&mut self) -> bool {
        self.rng.bool()
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.usize_in(lo, hi)
    }

    /// Uniform `u64` in `[lo, hi)`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.u64_in(lo, hi)
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.rng.u64_in(lo as u64, hi as u64) as u32
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.f64_in(lo, hi)
    }

    /// Uniform index into `len` elements (0 when `len` is 0).
    pub fn index(&mut self, len: usize) -> usize {
        self.rng.index(len)
    }

    /// Arbitrary bytes with length drawn from `[min_len, max_len)`.
    pub fn bytes(&mut self, min_len: usize, max_len: usize) -> Vec<u8> {
        let len = self.usize_in(min_len, max_len.max(min_len + 1));
        (0..len).map(|_| self.u8()).collect()
    }

    /// `[f64; 3]` with each component in `[lo, hi)`.
    pub fn f64x3(&mut self, lo: f64, hi: f64) -> [f64; 3] {
        [
            self.f64_in(lo, hi),
            self.f64_in(lo, hi),
            self.f64_in(lo, hi),
        ]
    }

    /// Access the underlying RNG for custom draws.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }
}

/// Derive the seed for case `i` of a property identified by `base`.
fn case_seed(base: u64, i: u64) -> u64 {
    let mut s = base ^ 0x5be4_df0a_75af_8a21u64.wrapping_mul(i.wrapping_add(1));
    splitmix64(&mut s)
}

/// Run `prop` over `n` deterministic cases; panic with case/seed context on
/// the first failure. `assume`-style early returns are fine: a case that
/// returns without asserting simply passes.
pub fn cases<F: Fn(&mut Gen)>(n: u64, prop: F) {
    for i in 0..n {
        let seed = case_seed(0xA5A5_0F0F_3C3C_9696, i);
        run_one(seed, i, &prop);
    }
}

/// Replay a single case by seed (printed in a failure message).
pub fn cases_seeded<F: Fn(&mut Gen)>(seed: u64, prop: F) {
    run_one(seed, 0, &prop);
}

fn run_one<F: Fn(&mut Gen)>(seed: u64, case: u64, prop: &F) {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut g = Gen::from_seed(seed, case);
        prop(&mut g);
    }));
    if let Err(payload) = result {
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("<non-string panic payload>");
        panic!("property failed on case {case} (replay seed {seed:#x}): {msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let count = AtomicU64::new(0);
        cases(32, |g| {
            let v = g.usize_in(0, 10);
            assert!(v < 10);
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 32);
    }

    #[test]
    #[should_panic(expected = "replay seed")]
    fn failing_property_reports_seed() {
        cases(16, |g| {
            let v = g.usize_in(0, 100);
            assert!(v < 1, "drew {v}");
        });
    }

    #[test]
    fn cases_are_deterministic() {
        let collect = || {
            let out = std::sync::Mutex::new(Vec::new());
            cases(8, |g| out.lock().unwrap().push(g.u64()));
            out.into_inner().unwrap()
        };
        assert_eq!(collect(), collect());
    }
}
