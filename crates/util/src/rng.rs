//! Seeded pseudo-random number generation: xoshiro256++ with splitmix64
//! seeding. Deterministic across platforms and fast enough for workload
//! generation and LOD shuffling; not cryptographic.

/// splitmix64 step — also used on its own for seed derivation.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ generator seeded from a single `u64`.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Expand a 64-bit seed into the full state with splitmix64 (the
    /// initialization recommended by the xoshiro authors).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    pub fn u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    #[inline]
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// Uniform `u64` in `[0, n)`; `n` must be positive. Uses rejection to
    /// avoid modulo bias.
    pub fn u64_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "u64_below(0)");
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }

    /// Uniform `u64` in `[lo, hi)`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "u64_in empty range {lo}..{hi}");
        lo + self.u64_below(hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// Uniform index into a collection of `len` elements.
    pub fn index(&mut self, len: usize) -> usize {
        self.u64_below(len.max(1) as u64) as usize
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.u64_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        let mut c = Rng::seed_from_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn f64_mean_is_centered() {
        let mut r = Rng::seed_from_u64(1);
        let n = 100_000;
        let mean = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn u64_below_stays_in_range_and_covers() {
        let mut r = Rng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.u64_below(10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..1000).collect();
        let mut b: Vec<u32> = (0..1000).collect();
        Rng::seed_from_u64(5).shuffle(&mut a);
        Rng::seed_from_u64(5).shuffle(&mut b);
        assert_eq!(a, b);
        assert_ne!(a, (0..1000).collect::<Vec<u32>>());
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<u32>>());
    }
}
