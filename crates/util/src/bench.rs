//! Tiny timing harness for the `benches/` targets (offline replacement for
//! Criterion). Reports mean wall time per iteration; no statistics engine,
//! just enough to compare orders of magnitude against the paper's numbers.

use std::time::{Duration, Instant};

/// Time `f` and print `name: <mean per iter> (<iters> iters)`.
///
/// Warm-up runs once, then the measurement loop repeats until at least
/// `min_total` has elapsed (so fast bodies get enough iterations to mean
/// something) or `max_iters` is reached (so slow bodies terminate).
pub fn bench<F: FnMut()>(name: &str, mut f: F) {
    f(); // warm-up (also surfaces panics before timing)
    let min_total = Duration::from_millis(200);
    let max_iters = 1_000_000u64;
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < min_total && iters < max_iters {
        f();
        iters += 1;
    }
    let per_iter = start.elapsed().as_secs_f64() / iters.max(1) as f64;
    println!("{name}: {} ({iters} iters)", format_time(per_iter));
}

/// Pretty-print seconds with an appropriate unit.
pub fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Prevent the optimizer from discarding a value (stable `black_box`).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    #[test]
    fn format_picks_units() {
        assert!(super::format_time(2.0).ends_with(" s"));
        assert!(super::format_time(2e-3).ends_with(" ms"));
        assert!(super::format_time(2e-6).ends_with(" µs"));
        assert!(super::format_time(2e-9).ends_with(" ns"));
    }
}
