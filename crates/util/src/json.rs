//! Minimal JSON encode/decode for the trace layer's `JobReport` files.
//!
//! Supports the full JSON grammar the reports need: objects, arrays,
//! strings (with escape sequences), numbers, booleans and null. Numbers are
//! held as `f64`, which is exact for the integers the reports store (byte
//! counts and microsecond durations, all far below 2^53).

use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn u64(v: u64) -> Json {
        Json::Num(v as f64)
    }

    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().filter(|n| *n >= 0.0).map(|n| n as u64)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("bad \\u escape")?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid UTF-8".to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::str("trace")),
            ("count".into(), Json::u64(12345)),
            ("frac".into(), Json::Num(0.25)),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "items".into(),
                Json::Arr(vec![
                    Json::u64(1),
                    Json::str("a\"b\\c\nd"),
                    Json::Arr(vec![]),
                ]),
            ),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn parses_whitespace_and_unicode() {
        let v = Json::parse(" { \"k\" : [ 1 , \"\\u0041π\" ] } ").unwrap();
        assert_eq!(
            v.get("k").unwrap().as_arr().unwrap()[1].as_str(),
            Some("Aπ")
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("123x").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
    }

    #[test]
    fn large_integers_roundtrip_exactly() {
        let n = (1u64 << 52) + 12345;
        let text = Json::u64(n).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(n));
    }
}
