//! CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the checksum
//! protecting data-file headers and payload chunks in format v2. Std-only,
//! table-driven, with a streaming state so readers that fetch a payload
//! incrementally (LOD prefix reads) can verify chunk boundaries without
//! re-reading earlier bytes.

const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// Streaming CRC-32 state. `finalize` does not consume the state, so a
/// caller can checkpoint the running value at chunk boundaries.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed more bytes into the running checksum.
    #[inline]
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        for &b in bytes {
            c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// The CRC of everything fed so far.
    #[inline]
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }

    /// Reset to the empty-input state (start of a new chunk).
    #[inline]
    pub fn reset(&mut self) {
        self.state = 0xFFFF_FFFF;
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32/ISO-HDLC check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let whole = crc32(&data);
        for split in [0, 1, 9, 4096, 9_999, 10_000] {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finalize(), whole, "split at {split}");
        }
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = vec![0xA5u8; 512];
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip {byte}.{bit} undetected");
            }
        }
    }

    #[test]
    fn reset_restarts_the_stream() {
        let mut c = Crc32::new();
        c.update(b"garbage");
        c.reset();
        c.update(b"123456789");
        assert_eq!(c.finalize(), 0xCBF4_3926);
    }
}
