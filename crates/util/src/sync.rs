//! Poison-tolerant locking.
//!
//! A panicking thread poisons every `std::sync::Mutex` it holds, and the
//! conventional `.lock().unwrap()` then turns one rank's panic into a
//! cascade that kills every other thread sharing the lock. For the
//! infrastructure locks in this workspace (mailboxes, caches, worker
//! queues, schedulers) the guarded state is always left consistent — each
//! critical section is a handful of straight-line statements — so the
//! right policy is to keep serving: take the data out of the poison
//! wrapper and carry on.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::Duration;

/// Lock `m`, recovering the guard if a previous holder panicked.
pub fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait`] that recovers the guard from a poisoned lock.
pub fn wait_unpoisoned<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait_timeout`] that recovers the guard from a poisoned lock.
pub fn wait_timeout_unpoisoned<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    cv.wait_timeout(guard, timeout)
        .unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_survives_poisoning() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock_unpoisoned(&m), 7);
        *lock_unpoisoned(&m) = 8;
        assert_eq!(*lock_unpoisoned(&m), 8);
    }

    #[test]
    fn wait_timeout_returns_guard() {
        let m = Mutex::new(1);
        let cv = Condvar::new();
        let g = lock_unpoisoned(&m);
        let (g, res) = wait_timeout_unpoisoned(&cv, g, Duration::from_millis(5));
        assert!(res.timed_out());
        assert_eq!(*g, 1);
    }
}
