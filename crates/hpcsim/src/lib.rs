//! # hpcsim
//!
//! A discrete-event performance simulator for HPC parallel I/O, used to
//! reproduce the paper's leadership-machine experiments (Mira and Theta at
//! up to 262 144 processes) on a workstation.
//!
//! ## How results are produced
//!
//! The *structure* of every experiment — the exact message matrix, file
//! counts, file sizes, and communication group sizes — is computed by the
//! production planner in `spio-core::plan`, the same grid/aggregation logic
//! the real writer executes. This crate assigns *time* to those operations
//! using first-order machine models:
//!
//! * [`network`] — an alpha-beta point-to-point model with group-size
//!   contention, plus collective cost formulas;
//! * [`filesystem`] — queueing models of parallel filesystems: a GPFS-like
//!   system with dedicated I/O nodes (Mira), a Lustre-like system with a
//!   metadata server and striped object storage targets (Theta), and an SSD
//!   workstation;
//! * [`machine`] — calibrated constants for the three platforms, each
//!   documented with the paper observation it is tuned against.
//!
//! Simulated results reproduce the *shape* of the paper's figures (who
//! wins, where file-per-process saturates, where crossovers fall), not the
//! authors' absolute numbers; see `EXPERIMENTS.md` at the repository root.

pub mod event_sim;
pub mod filesystem;
pub mod machine;
pub mod network;
pub mod read_sim;
pub mod topology;
pub mod write_sim;

pub use event_sim::{simulate_spio_write_events, EventWriteResult, ServerPool};
pub use machine::{mira, theta, workstation, MachineModel};
pub use read_sim::{simulate_box_read, simulate_lod_read, simulate_read, ReadSimResult};
pub use topology::{mean_hops, Dragonfly, Topology, Torus5D};
pub use write_sim::{
    simulate_fpp_write, simulate_hdf5_shared_write, simulate_shared_file_write,
    simulate_spio_write, simulate_spio_write_node_contended, WriteBreakdown,
};
