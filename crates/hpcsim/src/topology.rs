//! Network topologies: hop distances on Mira's 5-D torus and Theta's
//! Dragonfly.
//!
//! §3.2 chooses aggregators "uniformly from the rank space" because
//! "spatially neighboring processes may not be close in the network
//! topology". These models make that statement quantitative: they map
//! ranks to topology coordinates and count hops, so the placement study
//! can charge longer routes more latency.

use spio_types::Rank;

/// A machine interconnect with a per-pair hop count.
pub trait Topology {
    /// Network hops between the *nodes* hosting two ranks (0 when they
    /// share a node).
    fn hops(&self, a: Rank, b: Rank) -> u32;

    /// Worst-case hop count (network diameter).
    fn diameter(&self) -> u32;
}

/// A 5-dimensional torus (IBM Blue Gene/Q). Nodes are numbered in
/// row-major order over `dims`; each hop moves ±1 along one dimension with
/// wraparound.
#[derive(Debug, Clone)]
pub struct Torus5D {
    pub dims: [usize; 5],
    pub ranks_per_node: usize,
}

impl Torus5D {
    /// Mira-like: 49,152 nodes as a 4×4×4×48×16 torus (a realistic BG/Q
    /// partitioning), 16 ranks per node.
    pub fn mira() -> Self {
        Torus5D {
            dims: [4, 4, 4, 48, 16],
            ranks_per_node: 16,
        }
    }

    pub fn nodes(&self) -> usize {
        self.dims.iter().product()
    }

    fn coords(&self, node: usize) -> [usize; 5] {
        let mut c = [0; 5];
        let mut rest = node % self.nodes();
        for (i, &d) in self.dims.iter().enumerate() {
            c[i] = rest % d;
            rest /= d;
        }
        c
    }
}

impl Topology for Torus5D {
    fn hops(&self, a: Rank, b: Rank) -> u32 {
        let na = a / self.ranks_per_node;
        let nb = b / self.ranks_per_node;
        if na == nb {
            return 0;
        }
        let ca = self.coords(na);
        let cb = self.coords(nb);
        let mut h = 0u32;
        for i in 0..5 {
            let d = self.dims[i];
            let diff = ca[i].abs_diff(cb[i]);
            h += diff.min(d - diff) as u32; // torus wraparound
        }
        h
    }

    fn diameter(&self) -> u32 {
        self.dims.iter().map(|&d| (d / 2) as u32).sum()
    }
}

/// A Dragonfly (Cray Aries): nodes grouped into all-to-all-connected
/// groups; minimal routes are 1 hop within a group, and up to
/// local-global-local (3 hops) between groups.
#[derive(Debug, Clone)]
pub struct Dragonfly {
    /// Nodes per group.
    pub group_size: usize,
    pub ranks_per_node: usize,
}

impl Dragonfly {
    /// Theta-like: 96 nodes per group (24 Aries switches × 4 nodes),
    /// 64 ranks per node.
    pub fn theta() -> Self {
        Dragonfly {
            group_size: 96,
            ranks_per_node: 64,
        }
    }
}

impl Topology for Dragonfly {
    fn hops(&self, a: Rank, b: Rank) -> u32 {
        let na = a / self.ranks_per_node;
        let nb = b / self.ranks_per_node;
        if na == nb {
            return 0;
        }
        if na / self.group_size == nb / self.group_size {
            1
        } else {
            3
        }
    }

    fn diameter(&self) -> u32 {
        3
    }
}

/// Mean hops from a set of sender ranks to one aggregator — the quantity
/// §3.2's placement decision trades off.
pub fn mean_hops<T: Topology>(topo: &T, senders: &[Rank], aggregator: Rank) -> f64 {
    if senders.is_empty() {
        return 0.0;
    }
    senders
        .iter()
        .map(|&s| topo.hops(s, aggregator) as f64)
        .sum::<f64>()
        / senders.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torus_basic_properties() {
        let t = Torus5D::mira();
        assert_eq!(t.nodes(), 49_152);
        // Same node ⇒ 0 hops; neighbours ⇒ 1.
        assert_eq!(t.hops(0, 15), 0);
        assert_eq!(t.hops(0, 16), 1);
        // Symmetry.
        for (a, b) in [(0, 100_000), (12_345, 678_901), (5, 5)] {
            assert_eq!(t.hops(a, b), t.hops(b, a));
        }
        // Wraparound: the far end of a dimension is 1 hop away.
        // Node with coord (3,0,0,0,0) is linear index 3.
        assert_eq!(t.hops(0, 3 * 16), 1, "torus wraps 0↔3 in a dim of 4");
        // Bounded by the diameter.
        assert!(t.hops(0, 49_151 * 16) <= t.diameter());
        assert_eq!(t.diameter(), 2 + 2 + 2 + 24 + 8);
    }

    #[test]
    fn dragonfly_basic_properties() {
        let d = Dragonfly::theta();
        assert_eq!(d.hops(0, 1), 0, "same node");
        assert_eq!(d.hops(0, 64), 1, "same group");
        assert_eq!(d.hops(0, 96 * 64), 3, "different groups");
        assert_eq!(d.hops(96 * 64, 0), 3, "symmetric");
        assert_eq!(d.diameter(), 3);
    }

    #[test]
    fn uniform_placement_has_longer_routes_but_even_spread() {
        // §3.2's trade-off quantified: a partition-local aggregator is
        // close to its senders; a uniform-rank-space aggregator is farther
        // away on average.
        let t = Torus5D::mira();
        // Group of 8 consecutive nodes' worth of senders (ranks 0..128).
        let senders: Vec<Rank> = (0..128).collect();
        let local_agg = 0;
        let distant_agg = 24_000 * 16; // mid-machine
        let near = mean_hops(&t, &senders, local_agg);
        let far = mean_hops(&t, &senders, distant_agg);
        assert!(near < 2.0, "local placement keeps routes short: {near}");
        assert!(far > near + 2.0, "uniform placement pays hops: {far}");
    }

    #[test]
    fn mean_hops_empty_is_zero() {
        let d = Dragonfly::theta();
        assert_eq!(mean_hops(&d, &[], 0), 0.0);
    }
}
