//! Machine presets: calibrated constants for the paper's three platforms.
//!
//! Every constant is first-order realistic for the hardware and then tuned
//! so the *shapes* of the paper's figures emerge (see the per-field notes).
//! The calibration targets, quoted from the paper:
//!
//! * Mira (IBM BG/Q, 5-D torus, GPFS with dedicated I/O nodes):
//!   aggregation is cheap relative to file I/O (Fig. 6a/b); file-per-process
//!   saturates at very high core counts while (2,2,4)/(2,4,4) keep scaling
//!   to a ~98 GB/s maximum at 262 144 ranks (Fig. 5 top); larger partition
//!   factors are preferred.
//! * Theta (Cray XC40, KNL, Dragonfly, Lustre with 48 OSTs): aggregation is
//!   far more expensive (Fig. 6c/d); file-per-process is excellent until
//!   file-creation cost flattens it, and (1,2,2) overtakes it at 65 536
//!   ranks, reaching 216–243 GB/s at 262 144 (Fig. 5 bottom); smaller
//!   partition factors are preferred.
//! * SSD workstation (4×18-core Xeon, 3 TB RAM, SSDs): file count barely
//!   matters; reads are bandwidth-bound and benefit from the huge page
//!   cache (§5.3/5.4).

use crate::filesystem::{FsKind, FsModel};

/// Metadata pipeline count the filesystem model exposes (helper shared
/// with the event-level simulator).
pub fn mds_width_of(fs: &FsModel) -> usize {
    fs.mds_width.max(1)
}
use crate::network::NetModel;

/// A complete machine description consumed by the write/read simulators.
#[derive(Debug, Clone)]
pub struct MachineModel {
    pub name: &'static str,
    /// MPI ranks per compute node.
    pub ranks_per_node: usize,
    pub net: NetModel,
    pub fs: FsModel,
    /// Serial LOD-shuffle cost per particle, seconds. Calibrated directly
    /// against §3.4: 32 Ki particles take 33 ms on Mira (≈1.0 µs/particle)
    /// and 80 ms on Theta (≈2.4 µs/particle, slower single-thread KNL).
    pub shuffle_per_particle: f64,
}

/// ALCF Mira: 49 152-node IBM Blue Gene/Q, 16 ranks/node typical,
/// 5-D torus, GPFS via 384 dedicated I/O nodes (1 : 128 compute nodes).
pub fn mira() -> MachineModel {
    MachineModel {
        name: "mira",
        ranks_per_node: 16,
        net: NetModel {
            // BG/Q has ~2 µs nearest-neighbour latency and high-bisection
            // 5-D torus links; per-rank share of the node's 10 × 2 GB/s
            // links is generous, and contention grows slowly — this keeps
            // aggregation a small fraction of write time (Fig. 6a/b).
            alpha: 2.5e-6,
            rank_bw: 1.2e9,
            congestion_per_log2: 0.06,
            global_bw: 12.0e12,
        },
        fs: FsModel {
            kind: FsKind::Gpfs,
            mds_width: 1, // unused for GPFS (metadata rides the IONs)
            // GPFS create cost with strong directory/allocation contention:
            // this is what saturates file-per-process writes at 128 Ki+
            // ranks in Fig. 5 (top) and separates adaptive from
            // non-adaptive aggregation in Fig. 11 (left).
            create_base: 8.0e-4,
            create_contention_k0: 4300.0,
            open_service: 1.5e-3,
            data_servers: 384,
            // Mira's published ~240 GB/s filesystem bandwidth divided over
            // its 384 I/O nodes: ~0.625 GB/s of sustained GPFS throughput
            // per ION. Jobs only reach the IONs their compute nodes hang
            // off (1 per 2048 ranks), so a 262 Ki-rank job tops out near
            // half the filesystem peak — the paper's "50% of the maximum
            // throughput on Mira using 1/3 of the system".
            server_bw: 0.625e9,
            per_file_data_overhead: 4.0e-3,
            stripe_size: 8 << 20,
            max_stripes: 1,
            client_bw: 1.4e9,
            backend_bw: 240.0e9,
            ranks_per_ion: 2048, // 128 nodes × 16 ranks
            shared_file_eff: 0.30,
        },
        shuffle_per_particle: 33.0e-3 / 32_768.0,
    }
}

/// ALCF Theta: Cray XC40, 64-core KNL nodes, Dragonfly, Lustre with
/// 48 OSTs (the paper uses 48 stripes of 8 MB per ALCF guidance).
pub fn theta() -> MachineModel {
    MachineModel {
        name: "theta",
        ranks_per_node: 64,
        net: NetModel {
            // Slow single-thread KNL cores packing buffers plus shared
            // Dragonfly links: aggregation is expensive and grows quickly
            // with group size (Fig. 6c/d), which is why small partition
            // factors win on Theta.
            alpha: 6.0e-6,
            rank_bw: 0.38e9,
            congestion_per_log2: 0.55,
            global_bw: 6.0e12,
        },
        fs: FsModel {
            kind: FsKind::Lustre,
            // One MDS with a few service pipelines: creates are cheap until
            // hundreds of thousands arrive at once — the file-per-process
            // flattening of Fig. 5 (bottom) at 131–262 Ki ranks.
            mds_width: 64,
            create_base: 0.05e-3,
            create_contention_k0: 5300.0,
            // Cold-client open (RPC + lock + stat) on a busy Lustre MDS:
            // this is the per-file cost that separates the 64 Ki-file
            // file-per-process dataset from the 8 Ki-file aggregated one in
            // Fig. 7, and the flat open-dominated region of Fig. 8.
            open_service: 10.0e-3,
            data_servers: 48,
            // 48 OSTs × ~5.2 GB/s ≈ theta's ~250 GB/s Lustre.
            server_bw: 5.2e9,
            per_file_data_overhead: 0.4e-3,
            stripe_size: 8 << 20,
            max_stripes: 48,
            client_bw: 0.45e9,
            backend_bw: 250.0e9,
            ranks_per_ion: 1, // unused for Lustre
            shared_file_eff: 0.22,
        },
        shuffle_per_particle: 80.0e-3 / 32_768.0,
    }
}

/// The paper's read-evaluation workstation: 4 × 18-core Xeons, 3 TB RAM,
/// two SSDs. With 3 TB of page cache over a 256 GB dataset, effective read
/// bandwidth is far above raw SSD speed; per-process decode is the limit.
pub fn workstation() -> MachineModel {
    MachineModel {
        name: "ssd-workstation",
        ranks_per_node: 72,
        net: NetModel {
            // Shared-memory "network": collectives are effectively free.
            alpha: 2.0e-7,
            rank_bw: 8.0e9,
            congestion_per_log2: 0.02,
            global_bw: 100.0e9,
        },
        fs: FsModel {
            kind: FsKind::Ssd,
            mds_width: 16,
            create_base: 2.0e-5,
            create_contention_k0: 1.0e6,
            // SSD + VFS opens are ~50 µs — this is why reading 64 Ki files
            // costs almost the same as 8 Ki files on the workstation
            // (Fig. 7 right), unlike on Theta.
            open_service: 5.0e-5,
            data_servers: 2,
            server_bw: 9.0e9,
            per_file_data_overhead: 1.0e-5,
            stripe_size: 1 << 20,
            max_stripes: 2,
            client_bw: 0.40e9,
            backend_bw: 18.0e9,
            ranks_per_ion: 1,
            shared_file_eff: 0.8,
        },
        shuffle_per_particle: 0.9e-6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_costs_match_paper_measurements() {
        // §3.4: 32 Ki particles — 33 ms on Mira, 80 ms on Theta.
        let m = mira().shuffle_per_particle * 32_768.0;
        let t = theta().shuffle_per_particle * 32_768.0;
        assert!((m - 0.033).abs() < 1e-6);
        assert!((t - 0.080).abs() < 1e-6);
        assert!(t > m, "Theta single-core is slower than Mira's");
    }

    #[test]
    fn theta_aggregation_is_relatively_more_expensive() {
        // The per-byte aggregation cost (with an 8-rank group) relative to
        // per-byte storage cost must be higher on Theta than Mira — the
        // Fig. 6 machine contrast.
        let rel = |m: &MachineModel| {
            let agg = m.net.contention(8) / m.net.rank_bw;
            let io = 1.0 / (m.fs.server_bw * m.fs.engaged_servers(32_768) as f64);
            agg / io
        };
        assert!(rel(&theta()) > 2.0 * rel(&mira()));
    }

    #[test]
    fn lustre_creates_cheaper_than_gpfs_at_moderate_scale() {
        let g = mira().fs.create_phase(4096, 4096, 1.0);
        let l = theta().fs.create_phase(4096, 4096, 1.0);
        assert!(l < g);
    }

    #[test]
    fn workstation_opens_are_cheap() {
        assert!(workstation().fs.open_service < theta().fs.open_service / 10.0);
    }

    #[test]
    fn presets_are_self_consistent() {
        for m in [mira(), theta(), workstation()] {
            assert!(m.net.alpha > 0.0 && m.net.rank_bw > 0.0);
            assert!(m.fs.server_bw > 0.0 && m.fs.backend_bw >= m.fs.server_bw);
            assert!(m.fs.data_servers >= 1);
            assert!(m.shuffle_per_particle > 0.0);
        }
    }
}
