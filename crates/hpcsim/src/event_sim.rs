//! Event-level write simulation.
//!
//! The phase model in [`crate::write_sim`] treats a write as bulk-
//! synchronous: all aggregation finishes before any shuffle starts, all
//! shuffles before any file I/O. Real two-phase I/O overlaps — a partition
//! whose aggregation finishes early starts writing while others still
//! communicate. This module replays the same [`WritePlan`] as a chain of
//! per-partition events through shared FIFO resources:
//!
//! ```text
//! partition i:  [NIC ingest] → [CPU shuffle] → [MDS create] → [server write]
//!                  private        private        shared pool     shared pool
//! ```
//!
//! Completion times emerge from resource contention rather than phase
//! barriers, so the event-level makespan is a lower bound on the phase
//! model's total (and both bound the truth from different sides). The
//! figure harness uses the phase model — matching the paper's per-phase
//! reporting — and the tests here cross-validate the two.

use crate::filesystem::FsKind;
use crate::machine::MachineModel;
use spio_core::plan::WritePlan;
use std::collections::HashMap;

/// A pool of identical FIFO servers; jobs take the earliest-available one.
#[derive(Debug, Clone)]
pub struct ServerPool {
    avail: Vec<f64>,
}

impl ServerPool {
    pub fn new(servers: usize) -> Self {
        ServerPool {
            avail: vec![0.0; servers.max(1)],
        }
    }

    /// Serve a job arriving at `arrival` with the given `service` time on a
    /// specific server; returns completion time.
    pub fn serve_on(&mut self, server: usize, arrival: f64, service: f64) -> f64 {
        let s = server % self.avail.len();
        let start = arrival.max(self.avail[s]);
        let done = start + service;
        self.avail[s] = done;
        done
    }

    /// Serve on the earliest-available server.
    pub fn serve_earliest(&mut self, arrival: f64, service: f64) -> f64 {
        let mut best = 0;
        for (i, &t) in self.avail.iter().enumerate() {
            if t < self.avail[best] {
                best = i;
            }
        }
        self.serve_on(best, arrival, service)
    }
}

/// Result of an event-level write replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventWriteResult {
    /// Time when the last partition's file write completes.
    pub makespan: f64,
    /// Earliest partition completion (overlap indicator).
    pub first_done: f64,
    pub bytes: u64,
}

impl EventWriteResult {
    pub fn throughput(&self) -> f64 {
        if self.makespan == 0.0 {
            return 0.0;
        }
        self.bytes as f64 / self.makespan
    }
}

/// Replay `plan` event-by-event on `machine`.
pub fn simulate_spio_write_events(plan: &WritePlan, machine: &MachineModel) -> EventWriteResult {
    let net = &machine.net;
    let fs = &machine.fs;
    let n = plan.nprocs;

    // Group incoming data per aggregator.
    let mut per_agg: HashMap<usize, Vec<u64>> = HashMap::new();
    for m in &plan.data_messages {
        per_agg
            .entry(m.dst)
            .or_default()
            .push(if m.src == m.dst { 0 } else { m.bytes });
    }

    // Stage timings per partition, in partition order.
    struct Part {
        agg_rank: usize,
        ready: f64, // aggregation + shuffle complete
        file_bytes: u64,
        index: usize,
    }
    let start = if plan.setup_allgather {
        net.allgather_time(n, 8)
    } else {
        0.0
    };
    let mut parts: Vec<Part> = Vec::with_capacity(plan.partition_count);
    for (idx, ((w, &particles), agg)) in plan
        .file_writes
        .iter()
        .zip(&plan.shuffle_particles)
        .zip(&plan.aggregators)
        .enumerate()
    {
        // NIC ingest: remote messages serialized at the aggregator.
        let empty = Vec::new();
        let msgs = per_agg.get(agg).unwrap_or(&empty);
        let remote: Vec<u64> = msgs.iter().copied().filter(|&b| b > 0).collect();
        let ingest = if remote.is_empty() {
            0.0
        } else {
            net.group_gather_time_var(&remote)
        };
        // Metadata exchange gates buffer allocation (tiny messages).
        let meta = net.meta_exchange_time(msgs.len());
        // CPU shuffle.
        let shuffle = particles as f64 * machine.shuffle_per_particle;
        parts.push(Part {
            agg_rank: *agg,
            ready: start + meta + ingest + shuffle,
            file_bytes: w.bytes,
            index: idx,
        });
    }

    // Shared resources: metadata pipelines and data servers.
    let engaged = fs.engaged_servers(n).max(1);
    let mds_width = match fs.kind {
        FsKind::Gpfs => engaged,
        _ => {
            // Lustre/SSD expose mds_width pipelines.
            // (Matches FsModel::create_phase's width choice.)
            crate::machine::mds_width_of(fs)
        }
    };
    let mut mds = ServerPool::new(mds_width);
    let mut data = ServerPool::new(engaged);
    // Create service time under global contention, as in the phase model.
    let create_service =
        fs.create_base * (1.0 + plan.partition_count as f64 / fs.create_contention_k0);

    // Process partitions in event order (earliest ready first).
    let mut order: Vec<usize> = (0..parts.len()).collect();
    order.sort_by(|&a, &b| {
        parts[a]
            .ready
            .total_cmp(&parts[b].ready)
            .then(parts[a].index.cmp(&parts[b].index))
    });
    let mut makespan = 0.0f64;
    let mut first_done = f64::MAX;
    for &i in &order {
        let p = &parts[i];
        let created = mds.serve_earliest(p.ready, create_service);
        let service = p.file_bytes as f64 / fs.server_bw + fs.per_file_data_overhead;
        let done = match fs.kind {
            FsKind::Gpfs => {
                let ion = (p.agg_rank / fs.ranks_per_ion) % engaged;
                data.serve_on(ion, created, service)
            }
            _ => data.serve_on(p.index, created, service),
        };
        // Client-side rate floor.
        let done = done.max(created + p.file_bytes as f64 / fs.client_bw);
        makespan = makespan.max(done);
        first_done = first_done.min(done);
    }
    // Global caps: backend bandwidth and cross-network bandwidth.
    let floor = (plan.storage_bytes() as f64 / fs.backend_bw)
        .max(plan.network_bytes() as f64 / net.global_bw);
    EventWriteResult {
        makespan: makespan.max(floor),
        first_done: if first_done == f64::MAX {
            0.0
        } else {
            first_done
        },
        bytes: plan.storage_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{mira, theta};
    use crate::write_sim::simulate_spio_write;
    use spio_core::plan::plan_write;
    use spio_types::{Aabb3, DomainDecomposition, PartitionFactor};

    fn uniform_plan(procs: usize, factor: (usize, usize, usize)) -> WritePlan {
        let d = DomainDecomposition::for_procs(Aabb3::new([0.0; 3], [1.0; 3]), procs);
        plan_write(
            &d,
            PartitionFactor::new(factor.0, factor.1, factor.2),
            &vec![32_768u64; procs],
            false,
        )
        .unwrap()
    }

    #[test]
    fn server_pool_fifo_semantics() {
        let mut p = ServerPool::new(2);
        // Two jobs at t=0 run in parallel; a third queues.
        assert_eq!(p.serve_earliest(0.0, 1.0), 1.0);
        assert_eq!(p.serve_earliest(0.0, 1.0), 1.0);
        assert_eq!(p.serve_earliest(0.0, 1.0), 2.0);
        // Late arrival starts at its arrival time.
        assert_eq!(p.serve_earliest(10.0, 0.5), 10.5);
    }

    #[test]
    fn event_makespan_bounded_by_phase_model() {
        // Overlap can only help: the event-level makespan never exceeds
        // the bulk-synchronous phase total (compared without the metadata-
        // file epilogue, which the event model does not include), and it is
        // at least the largest single cost.
        for m in [mira(), theta()] {
            for factor in [(1, 1, 1), (2, 2, 2), (2, 4, 4)] {
                let plan = uniform_plan(4096, factor);
                let phase = simulate_spio_write(&plan, &m);
                let event = simulate_spio_write_events(&plan, &m);
                let phase_total = phase.total() - phase.meta;
                assert!(
                    event.makespan <= phase_total * 1.05,
                    "{} {:?}: event {} vs phase {}",
                    m.name,
                    factor,
                    event.makespan,
                    phase_total
                );
                assert!(
                    event.makespan >= phase.data_io * 0.2,
                    "{} {:?}: event {} vs io {}",
                    m.name,
                    factor,
                    event.makespan,
                    phase.data_io
                );
            }
        }
    }

    #[test]
    fn event_model_preserves_the_paper_orderings() {
        // The headline qualitative conclusions survive the more detailed
        // model: on Theta at scale, (1,2,2) still beats FPP-style (1,1,1).
        let m = theta();
        let small = simulate_spio_write_events(&uniform_plan(131_072, (1, 2, 2)), &m);
        let fpp = simulate_spio_write_events(&uniform_plan(131_072, (1, 1, 1)), &m);
        assert!(
            small.throughput() > fpp.throughput(),
            "aggregated {} vs fpp {}",
            small.throughput(),
            fpp.throughput()
        );
        // And on Mira, large factors beat FPP by a wide margin.
        let m = mira();
        let agg = simulate_spio_write_events(&uniform_plan(65_536, (2, 4, 4)), &m);
        let fpp = simulate_spio_write_events(&uniform_plan(65_536, (1, 1, 1)), &m);
        assert!(agg.throughput() > 2.0 * fpp.throughput());
    }

    #[test]
    fn overlap_shows_up_as_spread_completions() {
        // Partitions finish at different times (first_done < makespan)
        // once resources are contended.
        let plan = uniform_plan(4096, (2, 2, 2));
        let r = simulate_spio_write_events(&plan, &mira());
        assert!(r.first_done > 0.0);
        assert!(r.first_done < r.makespan);
    }

    #[test]
    fn deterministic() {
        let plan = uniform_plan(2048, (2, 2, 2));
        let a = simulate_spio_write_events(&plan, &theta());
        let b = simulate_spio_write_events(&plan, &theta());
        assert_eq!(a, b);
    }
}
