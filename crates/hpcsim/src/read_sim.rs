//! Read-phase simulation: event-driven replay of a [`ReadPlan`].
//!
//! Each reader executes its file accesses *sequentially* (open, transfer,
//! next file), while all readers run concurrently and contend for the
//! metadata service and data servers. The event loop always advances the
//! reader with the earliest local clock, so cross-reader queueing at the
//! servers emerges naturally — this is what makes the
//! 64 Ki-file file-per-process dataset slow to read on Theta (Fig. 7) while
//! the SSD workstation barely notices the file count.

use crate::filesystem::ReadServers;
use crate::machine::MachineModel;
use spio_core::plan::ReadPlan;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of one simulated parallel read.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadSimResult {
    /// Wall time: the last reader's completion.
    pub time: f64,
    /// Mean per-reader completion (load-balance indicator).
    pub mean_reader_time: f64,
    pub total_bytes: u64,
    pub total_opens: u64,
}

/// Replay `plan` on `machine`.
pub fn simulate_read(plan: &ReadPlan, machine: &MachineModel) -> ReadSimResult {
    let fs = &machine.fs;
    // Group accesses per reader, preserving plan order.
    let mut per_reader: Vec<Vec<(usize, u64)>> = vec![Vec::new(); plan.nreaders];
    for r in &plan.reads {
        per_reader[r.rank].push((r.file, r.bytes));
    }
    let mut servers = ReadServers::new(fs, plan.nreaders);
    // Heap of (next-event time, reader, next op index).
    let mut heap: BinaryHeap<Reverse<(u64, usize, usize)>> = BinaryHeap::new();
    for (rank, ops) in per_reader.iter().enumerate() {
        if !ops.is_empty() {
            heap.push(Reverse((0, rank, 0)));
        }
    }
    let mut completion = vec![0.0f64; plan.nreaders];
    while let Some(Reverse((now_bits, rank, op))) = heap.pop() {
        let now = f64::from_bits(now_bits);
        let (file, bytes) = per_reader[rank][op];
        let done = servers.file_read(fs, now, file, bytes);
        if op + 1 < per_reader[rank].len() {
            heap.push(Reverse((done.to_bits(), rank, op + 1)));
        } else {
            completion[rank] = done;
        }
    }
    // Global backend cap: the plan's total volume cannot move faster than
    // the storage backend.
    let floor = plan.total_bytes() as f64 / fs.backend_bw;
    let time = completion.iter().cloned().fold(0.0, f64::max).max(floor);
    let active = completion.iter().filter(|&&c| c > 0.0).count().max(1);
    let mean = completion.iter().sum::<f64>() / active as f64;
    ReadSimResult {
        time,
        mean_reader_time: mean.max(floor),
        total_bytes: plan.total_bytes(),
        total_opens: plan.total_opens(),
    }
}

/// Convenience: simulate a Fig. 7-style box read.
pub fn simulate_box_read(plan: &ReadPlan, machine: &MachineModel) -> ReadSimResult {
    simulate_read(plan, machine)
}

/// Convenience: simulate a Fig. 8-style LOD read.
pub fn simulate_lod_read(plan: &ReadPlan, machine: &MachineModel) -> ReadSimResult {
    simulate_read(plan, machine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{theta, workstation};
    use spio_core::plan::{plan_box_read, plan_lod_read, DatasetShape};
    use spio_format::LodParams;
    use spio_types::Aabb3;

    /// A dataset of `files` equal files tiling the unit cube along x.
    fn shape(files: usize, particles_per_file: u64) -> DatasetShape {
        let fs = (0..files)
            .map(|i| {
                let lo = i as f64 / files as f64;
                let hi = (i + 1) as f64 / files as f64;
                (
                    Aabb3::new([lo, 0.0, 0.0], [hi, 1.0, 1.0]),
                    particles_per_file,
                )
            })
            .collect();
        DatasetShape {
            domain: Aabb3::new([0.0; 3], [1.0; 3]),
            files: fs,
            total_particles: files as u64 * particles_per_file,
            lod: LodParams::default(),
        }
    }

    #[test]
    fn metadata_reads_strong_scale() {
        let s = shape(512, 100_000);
        let m = theta();
        let t8 = simulate_read(&plan_box_read(&s, 8, true), &m);
        let t64 = simulate_read(&plan_box_read(&s, 64, true), &m);
        assert!(
            t64.time < t8.time,
            "more readers must be faster with metadata: {} vs {}",
            t64.time,
            t8.time
        );
    }

    #[test]
    fn no_metadata_reads_do_not_scale() {
        let s = shape(512, 100_000);
        let m = theta();
        let t8 = simulate_read(&plan_box_read(&s, 8, false), &m);
        let t64 = simulate_read(&plan_box_read(&s, 64, false), &m);
        assert!(
            t64.time >= t8.time * 0.9,
            "full-scan reads cannot strong-scale: {} vs {}",
            t64.time,
            t8.time
        );
        // And they are far slower than metadata-guided reads. (The test
        // dataset tiles files along x only, so a cubic reader query still
        // touches 1/4 of the files — the selectivity gain is ~4x.)
        let meta = simulate_read(&plan_box_read(&s, 64, true), &m);
        assert!(
            t64.time > 3.0 * meta.time,
            "no-meta {} vs meta {}",
            t64.time,
            meta.time
        );
    }

    #[test]
    fn many_small_files_hurt_theta_more_than_workstation() {
        // Same bytes, 8× the files: the slowdown factor must be larger on
        // Theta (expensive opens) than on the SSD box (cheap opens).
        let few = shape(128, 800_000);
        let many = shape(1024, 100_000);
        let ratio = |m: &MachineModel| {
            let a = simulate_read(&plan_box_read(&few, 16, true), m).time;
            let b = simulate_read(&plan_box_read(&many, 16, true), m).time;
            b / a
        };
        assert!(ratio(&theta()) > ratio(&workstation()));
    }

    #[test]
    fn lod_time_grows_with_level() {
        let s = shape(128, 1 << 20);
        let m = workstation();
        let t0 = simulate_read(&plan_lod_read(&s, 64, 0), &m);
        let t5 = simulate_read(&plan_lod_read(&s, 64, 5), &m);
        let t_all = simulate_read(&plan_lod_read(&s, 64, 40), &m);
        assert!(t0.time < t5.time);
        assert!(t5.time < t_all.time);
        // Every particle transferred once, plus each file's one-time
        // header + checksum-footer fetch.
        assert_eq!(
            t_all.total_bytes,
            128 * ((1 << 20) * 124 + spio_format::data_file::lod_open_overhead(1 << 20))
        );
    }

    #[test]
    fn empty_files_cost_only_opens() {
        let s = shape(4, 0);
        let r = simulate_read(&plan_lod_read(&s, 2, 0), &theta());
        assert_eq!(r.total_bytes, 0);
        assert_eq!(r.total_opens, 4);
        // Pure metadata cost: a handful of opens, well under a second.
        assert!(r.time > 0.0 && r.time < 0.1, "{}", r.time);
    }

    #[test]
    fn deterministic_replay() {
        let s = shape(64, 500_000);
        let m = theta();
        let a = simulate_read(&plan_box_read(&s, 16, true), &m);
        let b = simulate_read(&plan_box_read(&s, 16, true), &m);
        assert_eq!(a, b);
    }
}
