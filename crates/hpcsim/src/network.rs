//! Network timing model.
//!
//! Point-to-point messages follow the classic alpha-beta model — latency
//! plus bytes over bandwidth — with two congestion corrections that drive
//! the paper's machine-dependent aggregation behaviour (Fig. 6):
//!
//! * **ingest serialization**: all members of an aggregation group deliver
//!   into one aggregator NIC, so the group's data phase is serialized at
//!   the receiver;
//! * **group contention**: larger communication groups suffer growing link
//!   contention, scaled by a per-machine factor (`congestion_per_log2`).
//!   Mira's 5-D torus keeps this small; Theta's shared Dragonfly links and
//!   slower KNL cores make it large, which is why the paper finds smaller
//!   partition factors preferable on Theta.

/// Calibrated network constants for one machine.
#[derive(Debug, Clone)]
pub struct NetModel {
    /// Per-message latency, seconds.
    pub alpha: f64,
    /// Per-rank deliverable bandwidth, bytes/s (injection ≈ reception).
    pub rank_bw: f64,
    /// Extra contention per doubling of the communication group size:
    /// effective bandwidth is divided by `1 + c * log2(group)`.
    pub congestion_per_log2: f64,
    /// Machine-global aggregate bandwidth cap (bisection-flavoured),
    /// bytes/s.
    pub global_bw: f64,
}

impl NetModel {
    /// Congestion divisor for a group of `g` communicating ranks.
    pub fn contention(&self, g: usize) -> f64 {
        if g <= 1 {
            return 1.0;
        }
        1.0 + self.congestion_per_log2 * (g as f64).log2()
    }

    /// Time for one aggregation group: `g` senders delivering `bytes_each`
    /// into a single aggregator. Reception is serialized at the
    /// aggregator's NIC; latency pipelines, so one alpha per message.
    pub fn group_gather_time(&self, g: usize, bytes_each: u64) -> f64 {
        if g == 0 || bytes_each == 0 {
            return if g == 0 { 0.0 } else { g as f64 * self.alpha };
        }
        g as f64 * self.alpha + (g as f64 * bytes_each as f64) / self.rank_bw * self.contention(g)
    }

    /// Time for a group where senders contribute different amounts.
    pub fn group_gather_time_var(&self, byte_counts: &[u64]) -> f64 {
        let g = byte_counts.len();
        if g == 0 {
            return 0.0;
        }
        let total: u64 = byte_counts.iter().sum();
        g as f64 * self.alpha + total as f64 / self.rank_bw * self.contention(g)
    }

    /// Aggregation-phase time across many concurrent groups: groups run in
    /// parallel, bounded below by the slowest group and by the global
    /// bandwidth cap on the total cross-network volume.
    pub fn concurrent_groups_time(&self, group_times: &[f64], cross_bytes: u64) -> f64 {
        let slowest = group_times.iter().cloned().fold(0.0, f64::max);
        let global = cross_bytes as f64 / self.global_bw;
        slowest.max(global)
    }

    /// Recursive-doubling style all-gather of `block` bytes per rank over
    /// `n` ranks: log2(n) rounds of latency; every rank ultimately receives
    /// `n * block` bytes.
    pub fn allgather_time(&self, n: usize, block: u64) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        let rounds = (n as f64).log2().ceil();
        rounds * self.alpha + (n as f64 * block as f64) / self.rank_bw
    }

    /// Dissemination barrier: log2(n) latency rounds.
    pub fn barrier_time(&self, n: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        (n as f64).log2().ceil() * self.alpha
    }

    /// Metadata exchange: `g` tiny messages into one aggregator, latency
    /// dominated.
    pub fn meta_exchange_time(&self, g: usize) -> f64 {
        g as f64 * self.alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetModel {
        NetModel {
            alpha: 2e-6,
            rank_bw: 1.0e9,
            congestion_per_log2: 0.1,
            global_bw: 100.0e9,
        }
    }

    #[test]
    fn contention_grows_with_group() {
        let n = net();
        assert_eq!(n.contention(1), 1.0);
        assert!(n.contention(8) > n.contention(2));
        assert!((n.contention(8) - 1.3).abs() < 1e-12);
    }

    #[test]
    fn gather_time_scales_with_group_and_bytes() {
        let n = net();
        let t1 = n.group_gather_time(8, 1 << 20);
        let t2 = n.group_gather_time(8, 1 << 21);
        let t3 = n.group_gather_time(16, 1 << 20);
        assert!(t2 > t1, "more bytes, more time");
        assert!(t3 > t1, "bigger group, more time (serialized ingest)");
        // 8 × 1 MiB at 1 GB/s with 1.3 contention ≈ 10.9 ms.
        assert!((t1 - (8.0 * 2e-6 + 8.0 * 1048576.0 / 1e9 * 1.3)).abs() < 1e-9);
    }

    #[test]
    fn group_of_one_is_contention_free() {
        let n = net();
        let t = n.group_gather_time(1, 1 << 20);
        assert!((t - (2e-6 + 1048576.0 / 1e9)).abs() < 1e-12);
    }

    #[test]
    fn variable_gather_matches_uniform_when_equal() {
        let n = net();
        let uniform = n.group_gather_time(4, 1000);
        let var = n.group_gather_time_var(&[1000, 1000, 1000, 1000]);
        assert!((uniform - var).abs() < 1e-12);
    }

    #[test]
    fn concurrent_groups_bounded_by_global_cap() {
        let n = net();
        // Tiny per-group times but a petabyte crossing the network.
        let t = n.concurrent_groups_time(&[0.001, 0.002], 1 << 50);
        assert!((t - (1u64 << 50) as f64 / 100.0e9).abs() < 1e-6);
        // Slowest group wins when volume is small.
        let t = n.concurrent_groups_time(&[0.5, 0.2], 1000);
        assert_eq!(t, 0.5);
    }

    #[test]
    fn collective_costs_grow_logarithmically() {
        let n = net();
        assert_eq!(n.barrier_time(1), 0.0);
        assert!(n.barrier_time(1024) > n.barrier_time(16));
        assert!(n.allgather_time(1024, 8) > n.allgather_time(16, 8));
        assert_eq!(n.allgather_time(1, 8), 0.0);
    }
}
