//! Parallel filesystem timing models.
//!
//! Two queueing abstractions cover the paper's three storage systems:
//!
//! * a **metadata service** with `mds_width` parallel pipelines whose
//!   per-create service time grows with the number of concurrent creates
//!   per pipeline — this is what makes file-per-process I/O saturate on
//!   Mira's GPFS (Fig. 5 top) and flatten on Theta's Lustre at very high
//!   core counts ("the file creation time … begins to dominate", §5.2);
//! * a set of **data servers** (Lustre OSTs, or GPFS I/O nodes) with
//!   per-server bandwidth, a fixed per-file-access overhead, and a global
//!   backend cap.
//!
//! The placement policy differs per system: on the GPFS model data flows
//! through the *writer's* dedicated I/O node (1 ION per `ranks_per_ion`
//! ranks, so small jobs only reach a few IONs), while on Lustre and the SSD
//! box data is placed by *file* across OSTs/stripes.

use spio_types::Rank;

/// Which placement/metadata behaviour to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsKind {
    /// GPFS with dedicated I/O nodes (Mira): data routed by writer rank.
    Gpfs,
    /// Lustre with one MDS and striped OSTs (Theta): data placed by file.
    Lustre,
    /// Local SSD workstation: single data server, cheap metadata.
    Ssd,
}

/// Calibrated filesystem constants for one machine.
#[derive(Debug, Clone)]
pub struct FsModel {
    pub kind: FsKind,
    /// Parallel metadata pipelines (GPFS: scales with engaged IONs; Lustre:
    /// MDS service threads; SSD: effectively unbounded).
    pub mds_width: usize,
    /// Base service time of one file create, seconds.
    pub create_base: f64,
    /// Create-contention knee: total concurrent creates beyond this
    /// inflate the per-create service time linearly (directory/allocation
    /// lock contention is global).
    pub create_contention_k0: f64,
    /// Service time of one open/stat, seconds.
    pub open_service: f64,
    /// Total data servers installed (IONs or OSTs).
    pub data_servers: usize,
    /// Bandwidth of one data server, bytes/s.
    pub server_bw: f64,
    /// Fixed server-side cost per file access (allocation, seek), seconds.
    pub per_file_data_overhead: f64,
    /// Stripe size for by-file placement, bytes.
    pub stripe_size: u64,
    /// Maximum stripes (servers) a single file spans.
    pub max_stripes: usize,
    /// Per-process end-to-end rate (memory copies, encode/decode), bytes/s.
    pub client_bw: f64,
    /// Global backend cap, bytes/s.
    pub backend_bw: f64,
    /// Compute ranks served by one dedicated I/O node (GPFS only).
    pub ranks_per_ion: usize,
    /// Bandwidth efficiency of interleaved shared-file writes (lock and
    /// false-sharing penalty), in (0, 1].
    pub shared_file_eff: f64,
}

/// Outcome of a bulk-synchronous write phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteIoOutcome {
    /// Time for all file creates to drain through the metadata service.
    pub create_time: f64,
    /// Time for all data to drain through the data servers.
    pub data_time: f64,
}

impl WriteIoOutcome {
    pub fn total(&self) -> f64 {
        self.create_time + self.data_time
    }
}

impl FsModel {
    /// Data servers reachable by a job of `nprocs` ranks.
    pub fn engaged_servers(&self, nprocs: usize) -> usize {
        match self.kind {
            FsKind::Gpfs => (nprocs.div_ceil(self.ranks_per_ion)).min(self.data_servers),
            FsKind::Lustre | FsKind::Ssd => self.data_servers,
        }
    }

    /// Metadata pipelines available to a job of `nprocs` ranks (on GPFS the
    /// metadata path runs through the engaged IONs).
    fn engaged_mds(&self, nprocs: usize) -> usize {
        match self.kind {
            FsKind::Gpfs => self.engaged_servers(nprocs).max(1),
            FsKind::Lustre => self.mds_width,
            FsKind::Ssd => self.mds_width,
        }
    }

    /// Time for `n_creates` concurrent file creates issued by a job of
    /// `nprocs` ranks. `weight` scales the per-create cost (empty files are
    /// cheaper than data files — used by the Fig. 11 non-adaptive baseline).
    ///
    /// The per-create service time grows with the *total* number of
    /// concurrent creates (directory and allocation-map locks are global,
    /// not per-pipeline), which is what bends file-per-process throughput
    /// down at extreme scale on both GPFS and Lustre.
    pub fn create_phase(&self, nprocs: usize, n_creates: usize, weight: f64) -> f64 {
        if n_creates == 0 {
            return 0.0;
        }
        let width = self.engaged_mds(nprocs) as f64;
        let service = self.create_base * (1.0 + n_creates as f64 / self.create_contention_k0);
        (n_creates as f64 / width) * service * weight
    }

    /// Time for a bulk-synchronous independent-file write phase:
    /// `writes[i] = (writer_rank, bytes)`, one file per entry.
    pub fn write_phase(&self, nprocs: usize, writes: &[(Rank, u64)]) -> WriteIoOutcome {
        let create_time = self.create_phase(nprocs, writes.len(), 1.0);
        let servers = self.engaged_servers(nprocs).max(1);
        let mut busy = vec![0.0f64; servers];
        let mut client_max = 0.0f64;
        for (i, &(rank, bytes)) in writes.iter().enumerate() {
            client_max = client_max.max(bytes as f64 / self.client_bw);
            match self.kind {
                FsKind::Gpfs => {
                    // Data flows through the writer's ION.
                    let ion = (rank / self.ranks_per_ion) % servers;
                    busy[ion] += bytes as f64 / self.server_bw + self.per_file_data_overhead;
                }
                FsKind::Lustre | FsKind::Ssd => {
                    // Striped by file: split across up to max_stripes OSTs.
                    let nstripes = ((bytes / self.stripe_size.max(1)) as usize + 1)
                        .min(self.max_stripes)
                        .min(servers)
                        .max(1);
                    let per = bytes as f64 / nstripes as f64;
                    for s in 0..nstripes {
                        let ost = (i + s) % servers;
                        busy[ost] += per / self.server_bw + self.per_file_data_overhead;
                    }
                }
            }
        }
        let total_bytes: u64 = writes.iter().map(|&(_, b)| b).sum();
        let server_max = busy.iter().cloned().fold(0.0, f64::max);
        let data_time = server_max
            .max(client_max)
            .max(total_bytes as f64 / self.backend_bw);
        WriteIoOutcome {
            create_time,
            data_time,
        }
    }

    /// Time for a collective shared-file write: `nwriters` aggregators
    /// writing interleaved stripes of one file of `total_bytes`. The file
    /// spans at most `max_stripes` servers; interleaved access pays the
    /// shared-file efficiency penalty, which worsens as more writers
    /// contend for extent locks.
    pub fn shared_write_phase(
        &self,
        nprocs: usize,
        total_bytes: u64,
        nwriters: usize,
    ) -> WriteIoOutcome {
        let create_time = self.create_phase(nprocs, 1, 1.0);
        let servers = self.engaged_servers(nprocs).min(self.max_stripes).max(1);
        // Lock contention grows with writers per stripe.
        let writers_per_server = (nwriters as f64 / servers as f64).max(1.0);
        let eff = self.shared_file_eff / (1.0 + writers_per_server.log2().max(0.0) * 0.25);
        let bw = (servers as f64 * self.server_bw * eff).min(self.backend_bw);
        let data_time =
            (total_bytes as f64 / bw).max(total_bytes as f64 / nwriters as f64 / self.client_bw);
        WriteIoOutcome {
            create_time,
            data_time,
        }
    }
}

/// Event-driven server state for read simulation: per-pipeline and
/// per-server next-available times.
#[derive(Debug, Clone)]
pub struct ReadServers {
    mds: Vec<f64>,
    data: Vec<f64>,
}

impl ReadServers {
    pub fn new(fs: &FsModel, nprocs: usize) -> Self {
        ReadServers {
            mds: vec![0.0; fs.engaged_mds(nprocs).max(1)],
            data: vec![0.0; fs.engaged_servers(nprocs).max(1)],
        }
    }

    /// One file read by one reader: open at the metadata service, then
    /// transfer through a data server, bounded by the client rate.
    /// `now` is the reader's clock; returns the completion time.
    pub fn file_read(&mut self, fs: &FsModel, now: f64, file_id: usize, bytes: u64) -> f64 {
        // Open: pick the least-loaded metadata pipeline.
        let m = least_loaded(&self.mds);
        let open_start = now.max(self.mds[m]);
        let open_end = open_start + fs.open_service;
        self.mds[m] = open_end;
        // Transfer: data server by file placement.
        let d = file_id % self.data.len();
        let service = bytes as f64 / fs.server_bw + fs.per_file_data_overhead;
        let xfer_start = open_end.max(self.data[d]);
        let server_end = xfer_start + service;
        self.data[d] = server_end;
        // The client cannot consume faster than its own rate.
        server_end.max(open_end + bytes as f64 / fs.client_bw)
    }
}

fn least_loaded(v: &[f64]) -> usize {
    let mut best = 0;
    for (i, &t) in v.iter().enumerate() {
        if t < v[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lustre() -> FsModel {
        FsModel {
            kind: FsKind::Lustre,
            mds_width: 4,
            create_base: 1e-4,
            create_contention_k0: 512.0,
            open_service: 1e-3,
            data_servers: 48,
            server_bw: 5.0e9,
            per_file_data_overhead: 1e-3,
            stripe_size: 8 << 20,
            max_stripes: 48,
            client_bw: 0.5e9,
            backend_bw: 240.0e9,
            ranks_per_ion: 1,
            shared_file_eff: 0.4,
        }
    }

    fn gpfs() -> FsModel {
        FsModel {
            kind: FsKind::Gpfs,
            mds_width: 1,
            create_base: 3e-4,
            create_contention_k0: 64.0,
            open_service: 1e-3,
            data_servers: 384,
            server_bw: 4.0e9,
            per_file_data_overhead: 5e-3,
            stripe_size: 8 << 20,
            max_stripes: 1,
            client_bw: 1.0e9,
            backend_bw: 240.0e9,
            ranks_per_ion: 2048,
            shared_file_eff: 0.4,
        }
    }

    #[test]
    fn gpfs_small_jobs_engage_few_ions() {
        let fs = gpfs();
        assert_eq!(fs.engaged_servers(512), 1);
        assert_eq!(fs.engaged_servers(4096), 2);
        assert_eq!(fs.engaged_servers(262_144), 128);
        assert_eq!(fs.engaged_servers(10_000_000), 384, "capped at installed");
    }

    #[test]
    fn lustre_always_sees_all_osts() {
        let fs = lustre();
        assert_eq!(fs.engaged_servers(64), 48);
        assert_eq!(fs.engaged_servers(262_144), 48);
    }

    #[test]
    fn create_phase_superlinear_in_concurrency() {
        let fs = lustre();
        let t1k = fs.create_phase(1024, 1024, 1.0);
        let t64k = fs.create_phase(65_536, 65_536, 1.0);
        // 64× the creates must cost more than 64× the time (contention).
        assert!(t64k > 64.0 * t1k);
        assert_eq!(fs.create_phase(1024, 0, 1.0), 0.0);
    }

    #[test]
    fn write_phase_respects_backend_cap() {
        let fs = lustre();
        // 1024 files × 1 GB = 1 TB across 48 × 5 GB/s = capped at 240 GB/s.
        let writes: Vec<(Rank, u64)> = (0..1024).map(|r| (r, 1 << 30)).collect();
        let out = fs.write_phase(1024, &writes);
        let total = 1024.0 * (1u64 << 30) as f64;
        assert!(out.data_time >= total / 240.0e9 * 0.999);
    }

    #[test]
    fn gpfs_routes_by_writer_rank() {
        let fs = gpfs();
        // Eight 1 GiB writers on one ION serialize its 4 GB/s link (~2 s);
        // spread across eight IONs they are client-bound (~0.77 s).
        let same: Vec<(Rank, u64)> = (0..8).map(|r| (r, 1u64 << 30)).collect();
        let diff: Vec<(Rank, u64)> = (0..8).map(|r| (r * 2048, 1u64 << 30)).collect();
        let same = fs.write_phase(32_768, &same);
        let diff = fs.write_phase(32_768, &diff);
        assert!(
            same.data_time > 1.5 * diff.data_time,
            "same-ION {} vs spread {}",
            same.data_time,
            diff.data_time
        );
    }

    #[test]
    fn big_lustre_files_stripe_wider_than_small() {
        let fs = lustre();
        let small = fs.write_phase(48, &[(0, 8 << 20)]);
        let big = fs.write_phase(48, &[(0, 48 * (8 << 20))]);
        // 48× the data but striped over ~7 servers: much less than 48× slower.
        assert!(big.data_time < small.data_time * 48.0);
    }

    #[test]
    fn shared_write_pays_contention() {
        let fs = lustre();
        // With enough writers that clients are not the bottleneck, adding
        // more writers per stripe costs lock contention.
        let few = fs.shared_write_phase(4096, 1 << 34, 256);
        let many = fs.shared_write_phase(4096, 1 << 34, 4096);
        assert!(
            many.data_time > few.data_time,
            "many {} vs few {}",
            many.data_time,
            few.data_time
        );
        // And both are worse than ideally-striped independent writes by
        // enough clients to saturate the OSTs.
        let writes: Vec<(Rank, u64)> = (0..512).map(|r| (r, (1u64 << 34) / 512)).collect();
        let independent = fs.write_phase(4096, &writes);
        assert!(few.data_time > independent.data_time);
    }

    #[test]
    fn read_chain_serializes_on_one_server() {
        let fs = lustre();
        // 24 concurrent readers hammering one OST queue up behind each
        // other; spread across OSTs they are client-bound and finish
        // together sooner.
        let mut same = ReadServers::new(&fs, 64);
        let worst_same = (0..24)
            .map(|_| same.file_read(&fs, 0.0, 0, 100 << 20))
            .fold(0.0, f64::max);
        let mut spread = ReadServers::new(&fs, 64);
        let worst_spread = (0..24)
            .map(|i| spread.file_read(&fs, 0.0, i, 100 << 20))
            .fold(0.0, f64::max);
        assert!(
            worst_same > worst_spread,
            "same-OST {worst_same} vs spread {worst_spread}"
        );
    }

    #[test]
    fn read_bounded_by_client_rate() {
        let fs = lustre();
        let mut servers = ReadServers::new(&fs, 1);
        // 1 GB: server side is 0.2 s + overhead, client side is 2 s.
        let t = servers.file_read(&fs, 0.0, 0, 1 << 30);
        assert!(t >= (1u64 << 30) as f64 / fs.client_bw);
    }
}
