//! Write-phase simulation: replay a [`WritePlan`] (or a baseline pattern)
//! against a machine model, producing the per-phase breakdown of Fig. 6 and
//! the throughput points of Fig. 5.

use crate::machine::MachineModel;
use spio_core::plan::WritePlan;
use std::collections::HashMap;

/// Per-phase timing of one simulated write timestep.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WriteBreakdown {
    /// Grid setup (including the §6 extent/count all-gather if adaptive).
    pub setup: f64,
    /// Metadata + particle exchange over the network.
    pub aggregation: f64,
    /// LOD reshuffle (serial per aggregator; slowest aggregator bounds it).
    pub shuffle: f64,
    /// File creates at the metadata service.
    pub create: f64,
    /// Data transfer to storage.
    pub data_io: f64,
    /// Spatial metadata gather + write.
    pub meta: f64,
    /// Payload bytes written (for throughput).
    pub bytes: u64,
}

impl WriteBreakdown {
    /// End-to-end time of the timestep.
    pub fn total(&self) -> f64 {
        self.setup + self.aggregation + self.shuffle + self.create + self.data_io + self.meta
    }

    /// Aggregate write throughput in bytes/s.
    pub fn throughput(&self) -> f64 {
        if self.total() == 0.0 {
            return 0.0;
        }
        self.bytes as f64 / self.total()
    }

    /// The paper's Fig. 6 split: fraction of (aggregation + file I/O) time
    /// spent aggregating.
    pub fn aggregation_fraction(&self) -> f64 {
        let io = self.create + self.data_io;
        let denom = self.aggregation + io;
        if denom == 0.0 {
            return 0.0;
        }
        self.aggregation / denom
    }
}

/// Simulate the spatially-aware writer executing `plan` on `machine`,
/// additionally serializing aggregators that share a compute node on that
/// node's NIC. The default [`simulate_spio_write`] ignores node sharing
/// (aggregators are normally placed at node granularity or wider); this
/// variant exposes the §3.2 placement trade-off — partition-local
/// placement packs several aggregators per node and pays for it here.
pub fn simulate_spio_write_node_contended(
    plan: &WritePlan,
    machine: &MachineModel,
) -> WriteBreakdown {
    let mut b = simulate_spio_write(plan, machine);
    // Recompute the aggregation phase with per-node serialization.
    let net = &machine.net;
    let mut per_agg: HashMap<usize, Vec<u64>> = HashMap::new();
    for m in &plan.data_messages {
        if m.src != m.dst {
            per_agg.entry(m.dst).or_default().push(m.bytes);
        }
    }
    let mut per_node: HashMap<usize, f64> = HashMap::new();
    for (agg, bytes) in &per_agg {
        let node = agg / machine.ranks_per_node;
        *per_node.entry(node).or_default() += net.group_gather_time_var(bytes);
    }
    let node_times: Vec<f64> = per_node.into_values().collect();
    b.aggregation = net.concurrent_groups_time(&node_times, plan.network_bytes());
    b
}

/// Simulate the spatially-aware writer executing `plan` on `machine`.
pub fn simulate_spio_write(plan: &WritePlan, machine: &MachineModel) -> WriteBreakdown {
    let net = &machine.net;
    let fs = &machine.fs;
    let n = plan.nprocs;

    // Setup: adaptive mode pays the extent/count all-gather.
    let setup = if plan.setup_allgather {
        net.allgather_time(n, 8)
    } else {
        0.0
    };

    // Aggregation: group messages by destination aggregator. Self-sends are
    // local memcpys and cost no network time.
    let mut per_agg: HashMap<usize, Vec<u64>> = HashMap::new();
    for m in &plan.data_messages {
        if m.src != m.dst {
            per_agg.entry(m.dst).or_default().push(m.bytes);
        }
    }
    let mut group_times: Vec<f64> = per_agg
        .values()
        .map(|bytes| net.group_gather_time_var(bytes))
        .collect();
    if !plan.meta_messages.is_empty() {
        // Metadata exchange overlaps poorly (it gates buffer allocation);
        // charge the slowest aggregator's tiny-message drain.
        let mut meta_per_agg: HashMap<usize, usize> = HashMap::new();
        for m in &plan.meta_messages {
            if m.src != m.dst {
                *meta_per_agg.entry(m.dst).or_default() += 1;
            }
        }
        let meta_time = meta_per_agg
            .values()
            .map(|&g| net.meta_exchange_time(g))
            .fold(0.0, f64::max);
        group_times.push(meta_time);
    }
    let aggregation = net.concurrent_groups_time(&group_times, plan.network_bytes());

    // Shuffle: aggregators work in parallel; the largest buffer bounds the
    // phase (the reordering is serial per aggregator, §3.4).
    let shuffle = plan
        .shuffle_particles
        .iter()
        .map(|&p| p as f64 * machine.shuffle_per_particle)
        .fold(0.0, f64::max);

    // File I/O.
    let writes: Vec<(usize, u64)> = plan.file_writes.iter().map(|w| (w.rank, w.bytes)).collect();
    let io = fs.write_phase(n, &writes);

    // Spatial metadata: an all-gather of per-rank entries plus one small
    // file written by rank 0.
    let meta = net.allgather_time(n, plan.meta_gather_bytes) + fs.create_base + fs.open_service;

    WriteBreakdown {
        setup,
        aggregation,
        shuffle,
        create: io.create_time,
        data_io: io.data_time,
        meta,
        bytes: plan.storage_bytes(),
    }
}

/// Simulate an IOR-style file-per-process write: every rank creates and
/// writes its own file; no aggregation, no metadata file.
pub fn simulate_fpp_write(
    nprocs: usize,
    bytes_per_rank: u64,
    machine: &MachineModel,
) -> WriteBreakdown {
    let writes: Vec<(usize, u64)> = (0..nprocs).map(|r| (r, bytes_per_rank)).collect();
    let io = machine.fs.write_phase(nprocs, &writes);
    WriteBreakdown {
        create: io.create_time,
        data_io: io.data_time,
        bytes: nprocs as u64 * bytes_per_rank,
        ..Default::default()
    }
}

/// Simulate IOR-style collective shared-file I/O: ROMIO-like two-phase with
/// rank-order (spatially unaware) aggregators writing interleaved stripes
/// of one shared file.
pub fn simulate_shared_file_write(
    nprocs: usize,
    bytes_per_rank: u64,
    machine: &MachineModel,
) -> WriteBreakdown {
    let net = &machine.net;
    let fs = &machine.fs;
    // ROMIO-style aggregator count: a few per engaged data server.
    let naggs = (fs.engaged_servers(nprocs) * 8).clamp(1, nprocs);
    let group = nprocs.div_ceil(naggs);
    let agg_time = net.group_gather_time(group, bytes_per_rank);
    let total = nprocs as u64 * bytes_per_rank;
    let aggregation = net.concurrent_groups_time(
        &vec![agg_time; naggs.min(64)],
        total.saturating_sub(total / naggs as u64),
    );
    let io = fs.shared_write_phase(nprocs, total, naggs);
    WriteBreakdown {
        aggregation,
        create: io.create_time,
        data_io: io.data_time,
        bytes: total,
        ..Default::default()
    }
}

/// Simulate Parallel HDF5 (h5perf-style) collective writes to one shared
/// file: the IOR-collective pattern plus HDF5's collective metadata
/// (dataset creation, space allocation) — modeled as extra collective
/// rounds and a lower effective efficiency.
pub fn simulate_hdf5_shared_write(
    nprocs: usize,
    bytes_per_rank: u64,
    machine: &MachineModel,
) -> WriteBreakdown {
    let mut b = simulate_shared_file_write(nprocs, bytes_per_rank, machine);
    // Collective open + metadata rounds: every rank participates in a few
    // small all-gathers and the root performs serialized header updates.
    let meta_rounds = 4.0;
    b.meta +=
        meta_rounds * machine.net.allgather_time(nprocs, 128) + 16.0 * machine.fs.open_service;
    // HDF5's chunked layout and datatype conversion cost on the data path.
    b.data_io *= 1.25;
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{mira, theta};
    use spio_core::plan::plan_write;
    use spio_types::{Aabb3, DomainDecomposition, PartitionFactor};

    fn uniform_plan(nprocs: usize, per_rank: u64, factor: (usize, usize, usize)) -> WritePlan {
        let d = DomainDecomposition::for_procs(Aabb3::new([0.0; 3], [1.0; 3]), nprocs);
        let counts = vec![per_rank; nprocs];
        plan_write(
            &d,
            PartitionFactor::new(factor.0, factor.1, factor.2),
            &counts,
            false,
        )
        .unwrap()
    }

    #[test]
    fn breakdown_sums_and_throughput() {
        let plan = uniform_plan(64, 32_768, (2, 2, 2));
        let b = simulate_spio_write(&plan, &theta());
        assert!(b.total() > 0.0);
        assert!(b.throughput() > 0.0);
        assert!(b.aggregation > 0.0, "2x2x2 moves data over the network");
        assert!(b.bytes > 64 * 32_768 * 124);
    }

    #[test]
    fn fpp_factor_has_no_aggregation() {
        let plan = uniform_plan(64, 32_768, (1, 1, 1));
        let b = simulate_spio_write(&plan, &theta());
        assert_eq!(b.aggregation, 0.0, "self-sends are free");
    }

    #[test]
    fn aggregation_fraction_larger_on_theta_than_mira() {
        // The Fig. 6 contrast: same configuration, same workload — Theta
        // spends relatively more time aggregating.
        let plan = uniform_plan(4096, 32_768, (2, 2, 2));
        let m = simulate_spio_write(&plan, &mira());
        let t = simulate_spio_write(&plan, &theta());
        assert!(
            t.aggregation_fraction() > m.aggregation_fraction(),
            "mira {:.3} vs theta {:.3}",
            m.aggregation_fraction(),
            t.aggregation_fraction()
        );
    }

    #[test]
    fn aggregation_fraction_grows_with_partition_factor() {
        // Fig. 6: more aggregation partitions per file ⇒ more communication.
        let small = simulate_spio_write(&uniform_plan(4096, 32_768, (1, 1, 2)), &theta());
        let large = simulate_spio_write(&uniform_plan(4096, 32_768, (2, 4, 4)), &theta());
        assert!(large.aggregation_fraction() > small.aggregation_fraction());
    }

    #[test]
    fn ior_baselines_produce_sane_times() {
        let fpp = simulate_fpp_write(4096, 4 << 20, &theta());
        let shared = simulate_shared_file_write(4096, 4 << 20, &theta());
        let hdf5 = simulate_hdf5_shared_write(4096, 4 << 20, &theta());
        assert!(fpp.total() > 0.0);
        assert!(
            shared.total() > fpp.total(),
            "shared file is slower on theta"
        );
        assert!(hdf5.total() > shared.total(), "hdf5 adds overhead");
    }

    #[test]
    fn adaptive_plan_charges_setup_allgather() {
        let d = DomainDecomposition::for_procs(Aabb3::new([0.0; 3], [1.0; 3]), 64);
        let mut counts = vec![0u64; 64];
        for c in counts.iter_mut().take(32) {
            *c = 1000;
        }
        let plan = plan_write(&d, PartitionFactor::new(2, 2, 2), &counts, true).unwrap();
        let b = simulate_spio_write(&plan, &theta());
        assert!(b.setup > 0.0);
    }
}
