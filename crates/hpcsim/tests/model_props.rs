//! Property tests on the machine models: timing functions must be
//! deterministic, non-negative, and monotone in work.

use hpcsim::{mira, simulate_read, theta, workstation, MachineModel};
use spio_core::plan::{plan_box_read, plan_write, DatasetShape};
use spio_format::LodParams;
use spio_types::{Aabb3, DomainDecomposition, PartitionFactor};
use spio_util::check::{cases, Gen};

fn machines() -> Vec<MachineModel> {
    vec![mira(), theta(), workstation()]
}

#[test]
fn create_phase_monotone_and_deterministic() {
    cases(48, |g: &mut Gen| {
        let a = g.usize_in(1, 99_999);
        let b = g.usize_in(1, 99_999);
        let procs = g.usize_in(1, 299_999);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for m in machines() {
            let t_lo = m.fs.create_phase(procs, lo, 1.0);
            let t_hi = m.fs.create_phase(procs, hi, 1.0);
            assert!(t_lo >= 0.0 && t_hi >= 0.0);
            assert!(t_hi >= t_lo, "{}: {lo}→{t_lo}, {hi}→{t_hi}", m.name);
            assert_eq!(t_lo, m.fs.create_phase(procs, lo, 1.0));
            // Weight scales linearly.
            let weighted = m.fs.create_phase(procs, lo, 0.5);
            assert!((weighted - t_lo * 0.5).abs() < 1e-12);
        }
    });
}

#[test]
fn write_phase_monotone_in_bytes() {
    cases(48, |g: &mut Gen| {
        let nfiles = g.usize_in(1, 255);
        let bytes_a = g.u64_in(1, 999_999_999);
        let bytes_b = g.u64_in(1, 999_999_999);
        let (lo, hi) = if bytes_a <= bytes_b {
            (bytes_a, bytes_b)
        } else {
            (bytes_b, bytes_a)
        };
        for m in machines() {
            let small: Vec<(usize, u64)> = (0..nfiles).map(|r| (r * 7, lo)).collect();
            let large: Vec<(usize, u64)> = (0..nfiles).map(|r| (r * 7, hi)).collect();
            let ts = m.fs.write_phase(nfiles * 7 + 1, &small);
            let tl = m.fs.write_phase(nfiles * 7 + 1, &large);
            assert!(tl.data_time >= ts.data_time, "{}", m.name);
            assert!(ts.data_time > 0.0);
        }
    });
}

#[test]
fn gather_time_monotone_in_group_and_bytes() {
    cases(48, |g: &mut Gen| {
        let g_a = g.usize_in(1, 511);
        let g_b = g.usize_in(1, 511);
        let bytes = g.u64_in(1, 99_999_999);
        let (lo, hi) = if g_a <= g_b { (g_a, g_b) } else { (g_b, g_a) };
        for m in machines() {
            let t_lo = m.net.group_gather_time(lo, bytes);
            let t_hi = m.net.group_gather_time(hi, bytes);
            assert!(t_hi >= t_lo, "{}: groups {lo}/{hi}", m.name);
            let t_more = m.net.group_gather_time(lo, bytes * 2);
            assert!(t_more > t_lo);
        }
    });
}

#[test]
fn simulated_write_time_positive_and_deterministic() {
    cases(24, |g: &mut Gen| {
        let procs = 1usize << g.u64_in(6, 13);
        let factors = [(1, 1, 1), (2, 2, 2), (2, 2, 4)];
        let f = factors[g.index(3)];
        let decomp = DomainDecomposition::for_procs(Aabb3::new([0.0; 3], [1.0; 3]), procs);
        let counts = vec![32_768u64; procs];
        let factor = PartitionFactor::new(f.0, f.1, f.2);
        if factor.validate(decomp.dims).is_err() {
            return; // factor does not divide this grid; skip the case
        }
        let plan = plan_write(&decomp, factor, &counts, false).unwrap();
        for m in machines() {
            let a = hpcsim::simulate_spio_write(&plan, &m);
            let b = hpcsim::simulate_spio_write(&plan, &m);
            assert!(a.total() > 0.0);
            assert_eq!(a, b, "{} must be deterministic", m.name);
            assert!(a.throughput() > 0.0);
        }
    });
}

#[test]
fn read_time_monotone_in_dataset_size() {
    cases(24, |g: &mut Gen| {
        let files = g.usize_in(1, 63);
        let per_file_a = g.u64_in(1, 1_999_999);
        let per_file_b = g.u64_in(1, 1_999_999);
        let readers = g.usize_in(1, 31);
        let (lo, hi) = if per_file_a <= per_file_b {
            (per_file_a, per_file_b)
        } else {
            (per_file_b, per_file_a)
        };
        let shape = |per: u64| DatasetShape {
            domain: Aabb3::new([0.0; 3], [1.0; 3]),
            files: (0..files)
                .map(|i| {
                    let x = i as f64 / files as f64;
                    (
                        Aabb3::new([x, 0.0, 0.0], [x + 1.0 / files as f64, 1.0, 1.0]),
                        per,
                    )
                })
                .collect(),
            total_particles: files as u64 * per,
            lod: LodParams::default(),
        };
        for m in machines() {
            let t_lo = simulate_read(&plan_box_read(&shape(lo), readers, true), &m).time;
            let t_hi = simulate_read(&plan_box_read(&shape(hi), readers, true), &m).time;
            assert!(t_hi >= t_lo, "{}: {t_lo} vs {t_hi}", m.name);
        }
    });
}
