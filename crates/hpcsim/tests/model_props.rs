//! Property tests on the machine models: timing functions must be
//! deterministic, non-negative, and monotone in work.

use hpcsim::{mira, simulate_read, theta, workstation, MachineModel};
use proptest::prelude::*;
use spio_core::plan::{plan_box_read, plan_write, DatasetShape};
use spio_format::LodParams;
use spio_types::{Aabb3, DomainDecomposition, PartitionFactor};

fn machines() -> Vec<MachineModel> {
    vec![mira(), theta(), workstation()]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn create_phase_monotone_and_deterministic(
        a in 1usize..100_000,
        b in 1usize..100_000,
        procs in 1usize..300_000,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for m in machines() {
            let t_lo = m.fs.create_phase(procs, lo, 1.0);
            let t_hi = m.fs.create_phase(procs, hi, 1.0);
            prop_assert!(t_lo >= 0.0 && t_hi >= 0.0);
            prop_assert!(t_hi >= t_lo, "{}: {lo}→{t_lo}, {hi}→{t_hi}", m.name);
            prop_assert_eq!(t_lo, m.fs.create_phase(procs, lo, 1.0));
            // Weight scales linearly.
            let weighted = m.fs.create_phase(procs, lo, 0.5);
            prop_assert!((weighted - t_lo * 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn write_phase_monotone_in_bytes(
        nfiles in 1usize..256,
        bytes_a in 1u64..1_000_000_000,
        bytes_b in 1u64..1_000_000_000,
    ) {
        let (lo, hi) = if bytes_a <= bytes_b { (bytes_a, bytes_b) } else { (bytes_b, bytes_a) };
        for m in machines() {
            let small: Vec<(usize, u64)> = (0..nfiles).map(|r| (r * 7, lo)).collect();
            let large: Vec<(usize, u64)> = (0..nfiles).map(|r| (r * 7, hi)).collect();
            let ts = m.fs.write_phase(nfiles * 7 + 1, &small);
            let tl = m.fs.write_phase(nfiles * 7 + 1, &large);
            prop_assert!(tl.data_time >= ts.data_time, "{}", m.name);
            prop_assert!(ts.data_time > 0.0);
        }
    }

    #[test]
    fn gather_time_monotone_in_group_and_bytes(
        g_a in 1usize..512,
        g_b in 1usize..512,
        bytes in 1u64..100_000_000,
    ) {
        let (lo, hi) = if g_a <= g_b { (g_a, g_b) } else { (g_b, g_a) };
        for m in machines() {
            let t_lo = m.net.group_gather_time(lo, bytes);
            let t_hi = m.net.group_gather_time(hi, bytes);
            prop_assert!(t_hi >= t_lo, "{}: groups {lo}/{hi}", m.name);
            let t_more = m.net.group_gather_time(lo, bytes * 2);
            prop_assert!(t_more > t_lo);
        }
    }

    #[test]
    fn simulated_write_time_positive_and_deterministic(
        procs_pow in 6u32..14,
        factor_pick in 0usize..3,
    ) {
        let procs = 1usize << procs_pow;
        let factors = [(1, 1, 1), (2, 2, 2), (2, 2, 4)];
        let f = factors[factor_pick];
        let decomp = DomainDecomposition::for_procs(Aabb3::new([0.0; 3], [1.0; 3]), procs);
        let counts = vec![32_768u64; procs];
        let factor = PartitionFactor::new(f.0, f.1, f.2);
        prop_assume!(factor.validate(decomp.dims).is_ok());
        let plan = plan_write(&decomp, factor, &counts, false).unwrap();
        for m in machines() {
            let a = hpcsim::simulate_spio_write(&plan, &m);
            let b = hpcsim::simulate_spio_write(&plan, &m);
            prop_assert!(a.total() > 0.0);
            prop_assert_eq!(a, b, "{} must be deterministic", m.name);
            prop_assert!(a.throughput() > 0.0);
        }
    }

    #[test]
    fn read_time_monotone_in_dataset_size(
        files in 1usize..64,
        per_file_a in 1u64..2_000_000,
        per_file_b in 1u64..2_000_000,
        readers in 1usize..32,
    ) {
        let (lo, hi) = if per_file_a <= per_file_b {
            (per_file_a, per_file_b)
        } else {
            (per_file_b, per_file_a)
        };
        let shape = |per: u64| DatasetShape {
            domain: Aabb3::new([0.0; 3], [1.0; 3]),
            files: (0..files)
                .map(|i| {
                    let x = i as f64 / files as f64;
                    (
                        Aabb3::new([x, 0.0, 0.0], [x + 1.0 / files as f64, 1.0, 1.0]),
                        per,
                    )
                })
                .collect(),
            total_particles: files as u64 * per,
            lod: LodParams::default(),
        };
        for m in machines() {
            let t_lo = simulate_read(&plan_box_read(&shape(lo), readers, true), &m).time;
            let t_hi = simulate_read(&plan_box_read(&shape(hi), readers, true), &m).time;
            prop_assert!(t_hi >= t_lo, "{}: {t_lo} vs {t_hi}", m.name);
        }
    }
}
