//! Property tests for the on-disk format and LOD arithmetic.

use proptest::prelude::*;
use spio_format::data_file::{
    decode_data_file, decode_prefix, encode_data_file, DataFileHeader,
};
use spio_format::{FileEntry, LodParams, SpatialMetadata};
use spio_types::{Aabb3, GridDims, Particle, PartitionFactor};

fn arb_particles(max: usize) -> impl Strategy<Value = Vec<Particle>> {
    prop::collection::vec(
        (prop::array::uniform3(-1e3f64..1e3), any::<u64>())
            .prop_map(|(pos, id)| Particle::synthetic(pos, id)),
        0..max,
    )
}

proptest! {
    #[test]
    fn data_file_roundtrip(ps in arb_particles(128), seed in any::<u64>()) {
        let bounds = Aabb3::new([-1e3; 3], [1e3; 3]);
        let header = DataFileHeader::new(ps.len() as u64, bounds, seed);
        let bytes = encode_data_file(&header, &ps);
        let (h2, ps2) = decode_data_file(&bytes).unwrap();
        prop_assert_eq!(h2, header);
        prop_assert_eq!(ps2, ps);
    }

    #[test]
    fn any_prefix_decodes(ps in arb_particles(64), take in 0usize..80) {
        let header = DataFileHeader::new(
            ps.len() as u64,
            Aabb3::new([0.0; 3], [1.0; 3]),
            7,
        );
        let bytes = encode_data_file(&header, &ps);
        let (_, got) = decode_prefix(&bytes, take).unwrap();
        let want = take.min(ps.len());
        prop_assert_eq!(got.as_slice(), &ps[..want]);
    }

    #[test]
    fn truncated_data_file_rejected(ps in arb_particles(32), cut in 1usize..50) {
        prop_assume!(!ps.is_empty());
        let header = DataFileHeader::new(ps.len() as u64, Aabb3::new([0.0;3],[1.0;3]), 0);
        let mut bytes = encode_data_file(&header, &ps);
        let cut = cut.min(bytes.len() - 1);
        bytes.truncate(bytes.len() - cut);
        prop_assert!(decode_data_file(&bytes).is_err());
    }

    #[test]
    fn metadata_roundtrip(
        n_entries in 0usize..32,
        total_scale in 1u64..1000,
        p in 1u64..256,
        s in 1u64..8,
    ) {
        let entries: Vec<FileEntry> = (0..n_entries)
            .map(|i| FileEntry {
                agg_rank: (i * 7) as u64,
                particle_count: total_scale * (i as u64 + 1),
                bounds: Aabb3::new(
                    [i as f64, 0.0, 0.0],
                    [i as f64 + 0.5, 1.0, 1.0],
                ),
            })
            .collect();
        let total = entries.iter().map(|e| e.particle_count).sum();
        let meta = SpatialMetadata {
            domain: Aabb3::new([0.0; 3], [n_entries as f64 + 1.0, 1.0, 1.0]),
            writer_grid: GridDims::new(4, 2, 1),
            partition_factor: PartitionFactor::new(2, 1, 1),
            lod: LodParams::new(p, s).unwrap(),
            total_particles: total,
            entries,
            attr_ranges: if n_entries % 2 == 0 {
                None
            } else {
                Some(
                    (0..n_entries)
                        .map(|i| {
                            let mut r = spio_format::meta::AttrRange::empty();
                            r.include(i as f64, i as f64 * 2.0);
                            r
                        })
                        .collect(),
                )
            },
        };
        let decoded = SpatialMetadata::decode(&meta.encode()).unwrap();
        prop_assert_eq!(decoded, meta);
    }

    #[test]
    fn lod_levels_partition_any_dataset(
        p in 1u64..512,
        s in 1u64..6,
        n in 1u64..128,
        total in 0u64..2_000_000,
    ) {
        let lod = LodParams::new(p, s).unwrap();
        let levels = lod.num_levels(n, total);
        let sum: u64 = (0..levels).map(|l| lod.actual_level_size(n, l, total)).sum();
        prop_assert_eq!(sum, total, "levels must partition the dataset");
        // Every interior level is full-size.
        for l in 0..levels.saturating_sub(1) {
            prop_assert_eq!(lod.actual_level_size(n, l, total), lod.level_size(n, l));
        }
        // Prefixes are monotone and clamp at total.
        let mut prev = 0;
        for l in 0..levels {
            let pre = lod.prefix_len(n, l, total);
            prop_assert!(pre >= prev);
            prop_assert!(pre <= total);
            prev = pre;
        }
        if levels > 0 {
            prop_assert_eq!(lod.prefix_len(n, levels - 1, total), total);
        }
    }

    #[test]
    fn file_prefixes_cover_global_prefix(
        file_counts in prop::collection::vec(0u64..10_000, 1..20),
        frac in 0.0f64..1.0,
    ) {
        let total: u64 = file_counts.iter().sum();
        let global = (total as f64 * frac) as u64;
        let covered: u64 = file_counts
            .iter()
            .map(|&c| LodParams::file_prefix(c, total, global))
            .sum();
        prop_assert!(covered >= global, "{covered} < {global}");
        // And never reads more than the dataset.
        prop_assert!(covered <= total);
        // Per-file prefixes are clamped.
        for &c in &file_counts {
            prop_assert!(LodParams::file_prefix(c, total, global) <= c);
        }
    }

    #[test]
    fn file_prefix_monotone_in_global(
        file in 1u64..10_000,
        total in 1u64..1_000_000,
        a in 0u64..1_000_000,
        b in 0u64..1_000_000,
    ) {
        prop_assume!(file <= total);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            LodParams::file_prefix(file, total, lo) <= LodParams::file_prefix(file, total, hi)
        );
    }

    #[test]
    fn box_query_selects_all_intersecting(
        qlo in prop::array::uniform3(0.0f64..0.9),
        qext in prop::array::uniform3(0.05f64..0.5),
    ) {
        // 4 disjoint slabs along x.
        let entries: Vec<FileEntry> = (0..4)
            .map(|i| FileEntry {
                agg_rank: i as u64,
                particle_count: 10,
                bounds: Aabb3::new(
                    [i as f64 * 0.25, 0.0, 0.0],
                    [(i as f64 + 1.0) * 0.25, 1.0, 1.0],
                ),
            })
            .collect();
        let meta = SpatialMetadata {
            domain: Aabb3::new([0.0; 3], [1.0; 3]),
            writer_grid: GridDims::new(4, 1, 1),
            partition_factor: PartitionFactor::new(1, 1, 1),
            lod: LodParams::default(),
            total_particles: 40,
            entries: entries.clone(),
            attr_ranges: None,
        };
        let q = Aabb3::new(qlo, [
            (qlo[0] + qext[0]).min(1.0),
            (qlo[1] + qext[1]).min(1.0),
            (qlo[2] + qext[2]).min(1.0),
        ]);
        let selected = meta.files_intersecting(&q);
        for (i, e) in entries.iter().enumerate() {
            prop_assert_eq!(
                selected.contains(&i),
                e.bounds.intersects(&q),
                "selection must match geometry for file {}", i
            );
        }
    }
}
