//! Property tests for the on-disk format and LOD arithmetic.

use spio_format::data_file::{decode_data_file, decode_prefix, encode_data_file, DataFileHeader};
use spio_format::{FileEntry, LodParams, SpatialMetadata};
use spio_types::{Aabb3, GridDims, Particle, PartitionFactor};
use spio_util::check::{cases, Gen};

fn arb_particles(g: &mut Gen, max: usize) -> Vec<Particle> {
    let n = g.usize_in(0, max.saturating_sub(1));
    (0..n)
        .map(|_| {
            let pos = [
                g.f64_in(-1e3, 1e3),
                g.f64_in(-1e3, 1e3),
                g.f64_in(-1e3, 1e3),
            ];
            Particle::synthetic(pos, g.u64())
        })
        .collect()
}

#[test]
fn data_file_roundtrip() {
    cases(128, |g: &mut Gen| {
        let ps = arb_particles(g, 128);
        let seed = g.u64();
        let bounds = Aabb3::new([-1e3; 3], [1e3; 3]);
        let header = DataFileHeader::new(ps.len() as u64, bounds, seed);
        let bytes = encode_data_file(&header, &ps);
        let (h2, ps2) = decode_data_file(&bytes).unwrap();
        assert_eq!(h2, header);
        assert_eq!(ps2, ps);
    });
}

#[test]
fn any_prefix_decodes() {
    cases(128, |g: &mut Gen| {
        let ps = arb_particles(g, 64);
        let take = g.usize_in(0, 79);
        let header = DataFileHeader::new(ps.len() as u64, Aabb3::new([0.0; 3], [1.0; 3]), 7);
        let bytes = encode_data_file(&header, &ps);
        let (_, got) = decode_prefix(&bytes, take).unwrap();
        let want = take.min(ps.len());
        assert_eq!(got.as_slice(), &ps[..want]);
    });
}

#[test]
fn truncated_data_file_rejected() {
    cases(128, |g: &mut Gen| {
        let mut ps = arb_particles(g, 32);
        if ps.is_empty() {
            ps.push(Particle::synthetic([0.0; 3], 1));
        }
        let header = DataFileHeader::new(ps.len() as u64, Aabb3::new([0.0; 3], [1.0; 3]), 0);
        let mut bytes = encode_data_file(&header, &ps);
        let cut = g.usize_in(1, 49).min(bytes.len() - 1);
        bytes.truncate(bytes.len() - cut);
        assert!(decode_data_file(&bytes).is_err());
    });
}

#[test]
fn metadata_roundtrip() {
    cases(128, |g: &mut Gen| {
        let n_entries = g.usize_in(0, 31);
        let total_scale = g.u64_in(1, 999);
        let p = g.u64_in(1, 255);
        let s = g.u64_in(1, 7);
        let entries: Vec<FileEntry> = (0..n_entries)
            .map(|i| FileEntry {
                agg_rank: (i * 7) as u64,
                particle_count: total_scale * (i as u64 + 1),
                bounds: Aabb3::new([i as f64, 0.0, 0.0], [i as f64 + 0.5, 1.0, 1.0]),
            })
            .collect();
        let total = entries.iter().map(|e| e.particle_count).sum();
        let meta = SpatialMetadata {
            domain: Aabb3::new([0.0; 3], [n_entries as f64 + 1.0, 1.0, 1.0]),
            writer_grid: GridDims::new(4, 2, 1),
            partition_factor: PartitionFactor::new(2, 1, 1),
            lod: LodParams::new(p, s).unwrap(),
            total_particles: total,
            entries,
            attr_ranges: if n_entries.is_multiple_of(2) {
                None
            } else {
                Some(
                    (0..n_entries)
                        .map(|i| {
                            let mut r = spio_format::meta::AttrRange::empty();
                            r.include(i as f64, i as f64 * 2.0);
                            r
                        })
                        .collect(),
                )
            },
        };
        let decoded = SpatialMetadata::decode(&meta.encode()).unwrap();
        assert_eq!(decoded, meta);
    });
}

#[test]
fn lod_levels_partition_any_dataset() {
    cases(256, |g: &mut Gen| {
        let p = g.u64_in(1, 511);
        let s = g.u64_in(1, 5);
        let n = g.u64_in(1, 127);
        let total = g.u64_in(0, 1_999_999);
        let lod = LodParams::new(p, s).unwrap();
        let levels = lod.num_levels(n, total);
        let sum: u64 = (0..levels)
            .map(|l| lod.actual_level_size(n, l, total))
            .sum();
        assert_eq!(sum, total, "levels must partition the dataset");
        // Every interior level is full-size.
        for l in 0..levels.saturating_sub(1) {
            assert_eq!(lod.actual_level_size(n, l, total), lod.level_size(n, l));
        }
        // Prefixes are monotone and clamp at total.
        let mut prev = 0;
        for l in 0..levels {
            let pre = lod.prefix_len(n, l, total);
            assert!(pre >= prev);
            assert!(pre <= total);
            prev = pre;
        }
        if levels > 0 {
            assert_eq!(lod.prefix_len(n, levels - 1, total), total);
        }
    });
}

#[test]
fn file_prefixes_cover_global_prefix() {
    cases(256, |g: &mut Gen| {
        let n_files = g.usize_in(1, 19);
        let file_counts: Vec<u64> = (0..n_files).map(|_| g.u64_in(0, 9_999)).collect();
        let frac = g.f64_in(0.0, 1.0);
        let total: u64 = file_counts.iter().sum();
        let global = (total as f64 * frac) as u64;
        let covered: u64 = file_counts
            .iter()
            .map(|&c| LodParams::file_prefix(c, total, global))
            .sum();
        assert!(covered >= global, "{covered} < {global}");
        // And never reads more than the dataset.
        assert!(covered <= total);
        // Per-file prefixes are clamped.
        for &c in &file_counts {
            assert!(LodParams::file_prefix(c, total, global) <= c);
        }
    });
}

#[test]
fn file_prefix_monotone_in_global() {
    cases(256, |g: &mut Gen| {
        let total = g.u64_in(1, 999_999);
        let file = g.u64_in(1, 9_999).min(total);
        let a = g.u64_in(0, 999_999);
        let b = g.u64_in(0, 999_999);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(LodParams::file_prefix(file, total, lo) <= LodParams::file_prefix(file, total, hi));
    });
}

#[test]
fn box_query_selects_all_intersecting() {
    cases(256, |g: &mut Gen| {
        let qlo = [g.f64_in(0.0, 0.9), g.f64_in(0.0, 0.9), g.f64_in(0.0, 0.9)];
        let qext = [
            g.f64_in(0.05, 0.5),
            g.f64_in(0.05, 0.5),
            g.f64_in(0.05, 0.5),
        ];
        // 4 disjoint slabs along x.
        let entries: Vec<FileEntry> = (0..4)
            .map(|i| FileEntry {
                agg_rank: i as u64,
                particle_count: 10,
                bounds: Aabb3::new(
                    [i as f64 * 0.25, 0.0, 0.0],
                    [(i as f64 + 1.0) * 0.25, 1.0, 1.0],
                ),
            })
            .collect();
        let meta = SpatialMetadata {
            domain: Aabb3::new([0.0; 3], [1.0; 3]),
            writer_grid: GridDims::new(4, 1, 1),
            partition_factor: PartitionFactor::new(1, 1, 1),
            lod: LodParams::default(),
            total_particles: 40,
            entries: entries.clone(),
            attr_ranges: None,
        };
        let q = Aabb3::new(
            qlo,
            [
                (qlo[0] + qext[0]).min(1.0),
                (qlo[1] + qext[1]).min(1.0),
                (qlo[2] + qext[2]).min(1.0),
            ],
        );
        let selected = meta.files_intersecting(&q);
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(
                selected.contains(&i),
                e.bounds.intersects(&q),
                "selection must match geometry for file {i}"
            );
        }
    });
}
