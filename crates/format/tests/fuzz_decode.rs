//! Robustness: decoders must return errors, never panic, on arbitrary or
//! corrupted bytes. A reader crashing on a truncated checkpoint would be a
//! production incident; these tests fuzz the attack surface.

use spio_format::data_file::{decode_data_file, decode_prefix, encode_data_file, DataFileHeader};
use spio_format::{SpatialMetadata, DATA_MAGIC, META_MAGIC};
use spio_types::{Aabb3, Particle};
use spio_util::check::{cases, Gen};

#[test]
fn data_file_decode_never_panics() {
    cases(512, |g: &mut Gen| {
        let bytes = g.bytes(0, 2048);
        let _ = decode_data_file(&bytes);
        let _ = decode_prefix(&bytes, 10);
        let _ = DataFileHeader::decode(&bytes);
    });
}

#[test]
fn metadata_decode_never_panics() {
    cases(512, |g: &mut Gen| {
        let bytes = g.bytes(0, 2048);
        let _ = SpatialMetadata::decode(&bytes);
    });
}

#[test]
fn magic_prefixed_garbage_still_safe() {
    cases(512, |g: &mut Gen| {
        // Valid magic, garbage after: exercises the deeper parse paths.
        let mut bytes = g.bytes(8, 1024);
        let which = g.index(2);
        let magic = if which == 0 { DATA_MAGIC } else { META_MAGIC };
        bytes[..8].copy_from_slice(&magic);
        if which == 0 {
            let _ = decode_data_file(&bytes);
        } else {
            let _ = SpatialMetadata::decode(&bytes);
        }
    });
}

#[test]
fn bit_flips_in_valid_files_never_panic() {
    cases(512, |g: &mut Gen| {
        let n = g.usize_in(1, 31);
        let ps: Vec<Particle> = (0..n)
            .map(|i| Particle::synthetic([i as f64, 0.0, 0.0], i as u64))
            .collect();
        let header = DataFileHeader::new(n as u64, Aabb3::new([0.0; 3], [n as f64, 1.0, 1.0]), 9);
        let mut bytes = encode_data_file(&header, &ps);
        let pos = g.index(bytes.len());
        let flip_mask = g.u8() | 1; // never zero, so a bit always flips
        bytes[pos] ^= flip_mask;
        // Must either decode (flip hit a benign payload bit) or error —
        // never panic.
        if let Ok((h, got)) = decode_data_file(&bytes) {
            assert_eq!(got.len() as u64, h.particle_count);
        }
    });
}

#[test]
fn truncations_of_valid_metadata_never_panic() {
    use spio_format::{FileEntry, LodParams};
    use spio_types::{GridDims, PartitionFactor};
    cases(512, |g: &mut Gen| {
        let n_entries = g.usize_in(0, 7);
        let meta = SpatialMetadata {
            domain: Aabb3::new([0.0; 3], [1.0; 3]),
            writer_grid: GridDims::new(2, 2, 1),
            partition_factor: PartitionFactor::new(1, 1, 1),
            lod: LodParams::default(),
            total_particles: n_entries as u64 * 5,
            entries: (0..n_entries)
                .map(|i| FileEntry {
                    agg_rank: i as u64,
                    particle_count: 5,
                    bounds: Aabb3::new([i as f64, 0.0, 0.0], [i as f64 + 1.0, 1.0, 1.0]),
                })
                .collect(),
            attr_ranges: None,
        };
        let bytes = meta.encode();
        let cut = g.index(bytes.len() + 1);
        let _ = SpatialMetadata::decode(&bytes[..cut]);
    });
}
