//! The spatial metadata file (§3.5, Fig. 4).
//!
//! One row per data file: the aggregator rank that wrote it (the data file
//! name is derived from this rank), the number of particles it holds, and
//! the bounding box of those particles. The aggregation scheme guarantees
//! the boxes are unique and non-overlapping, so a box query can select
//! exactly the files it needs. A small global header carries the domain
//! bounds, the writer configuration and the dataset's LOD parameters.

use crate::data_file_name;
use crate::lod::LodParams;
use spio_types::{Aabb3, GridDims, PartitionFactor, SpioError};

/// Magic bytes opening the metadata file.
pub const META_MAGIC: [u8; 8] = *b"SPIOMET1";
/// Current metadata format version. Version 1 files (no attribute-range
/// section) remain readable.
pub const META_VERSION: u32 = 2;
/// Flag bit: an attribute-range section follows the entry table.
pub const FLAG_ATTR_RANGES: u32 = 1;

const ENTRY_BYTES: usize = 8 + 8 + 48;
const RANGE_BYTES: usize = 4 * 8;
const HEADER_BYTES: usize = 8 + 4 + 4 + 48 + 12 + 12 + 16 + 8 + 8;

/// One Fig. 4 row: a data file's aggregator rank, particle count and bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FileEntry {
    /// Rank of the aggregator that wrote the file; determines the file name.
    pub agg_rank: u64,
    /// Particles stored in the file.
    pub particle_count: u64,
    /// Bounding box of the particles (the partition box, half-open).
    pub bounds: Aabb3,
}

impl FileEntry {
    /// The data file's name, derived from the aggregator rank (Fig. 4).
    pub fn file_name(&self) -> String {
        data_file_name(self.agg_rank as usize)
    }
}

/// Per-file min/max of the non-spatial scalar attributes — the §3.5
/// extension the paper plans ("storing, e.g., the minimum and maximum
/// values of scalar fields of the region as well. Such metadata can be
/// used to narrow down range-queries on these non-spatial attributes").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttrRange {
    pub density_min: f64,
    pub density_max: f64,
    pub volume_min: f64,
    pub volume_max: f64,
}

impl AttrRange {
    /// The empty range (identity for [`AttrRange::merge`]).
    pub fn empty() -> Self {
        AttrRange {
            density_min: f64::INFINITY,
            density_max: f64::NEG_INFINITY,
            volume_min: f64::INFINITY,
            volume_max: f64::NEG_INFINITY,
        }
    }

    /// Grow to include one particle's attributes.
    pub fn include(&mut self, density: f64, volume: f64) {
        self.density_min = self.density_min.min(density);
        self.density_max = self.density_max.max(density);
        self.volume_min = self.volume_min.min(volume);
        self.volume_max = self.volume_max.max(volume);
    }

    /// Union of two ranges.
    pub fn merge(&self, other: &AttrRange) -> AttrRange {
        AttrRange {
            density_min: self.density_min.min(other.density_min),
            density_max: self.density_max.max(other.density_max),
            volume_min: self.volume_min.min(other.volume_min),
            volume_max: self.volume_max.max(other.volume_max),
        }
    }

    /// Could a particle with density inside `[lo, hi]` live in this file?
    pub fn density_overlaps(&self, lo: f64, hi: f64) -> bool {
        self.density_min <= hi && lo <= self.density_max
    }
}

/// The spatial metadata file: global dataset description plus one
/// [`FileEntry`] per data file.
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialMetadata {
    /// Bounds of the full simulation domain.
    pub domain: Aabb3,
    /// Process grid the dataset was written with.
    pub writer_grid: GridDims,
    /// Aggregation partition factor used at write time.
    pub partition_factor: PartitionFactor,
    /// LOD parameters baked in at write time (readers may override `n`).
    pub lod: LodParams,
    /// Total particles across all files.
    pub total_particles: u64,
    /// One row per data file, in aggregation-partition order.
    pub entries: Vec<FileEntry>,
    /// Optional per-file scalar attribute ranges (parallel to `entries`),
    /// the §3.5 range-query extension. `None` for version-1 datasets.
    pub attr_ranges: Option<Vec<AttrRange>>,
}

impl SpatialMetadata {
    /// Serialize to the on-disk binary layout.
    pub fn encode(&self) -> Vec<u8> {
        if let Some(r) = &self.attr_ranges {
            assert_eq!(
                r.len(),
                self.entries.len(),
                "attribute ranges must parallel the entry table"
            );
        }
        let mut out = Vec::with_capacity(
            HEADER_BYTES
                + self.entries.len() * ENTRY_BYTES
                + self
                    .attr_ranges
                    .as_ref()
                    .map_or(0, |r| r.len() * RANGE_BYTES),
        );
        out.extend_from_slice(&META_MAGIC);
        out.extend_from_slice(&META_VERSION.to_le_bytes());
        let flags = if self.attr_ranges.is_some() {
            FLAG_ATTR_RANGES
        } else {
            0
        };
        out.extend_from_slice(&flags.to_le_bytes());
        for v in self.domain.lo.iter().chain(&self.domain.hi) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for d in self.writer_grid.as_array() {
            out.extend_from_slice(&(d as u32).to_le_bytes());
        }
        for d in self.partition_factor.as_array() {
            out.extend_from_slice(&(d as u32).to_le_bytes());
        }
        out.extend_from_slice(&self.lod.p.to_le_bytes());
        out.extend_from_slice(&self.lod.s.to_le_bytes());
        out.extend_from_slice(&self.total_particles.to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for e in &self.entries {
            out.extend_from_slice(&e.agg_rank.to_le_bytes());
            out.extend_from_slice(&e.particle_count.to_le_bytes());
            for v in e.bounds.lo.iter().chain(&e.bounds.hi) {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        if let Some(ranges) = &self.attr_ranges {
            for r in ranges {
                for v in [r.density_min, r.density_max, r.volume_min, r.volume_max] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        out
    }

    /// Parse the on-disk binary layout.
    pub fn decode(bytes: &[u8]) -> Result<Self, SpioError> {
        if bytes.len() < HEADER_BYTES {
            return Err(SpioError::Format("metadata file truncated".into()));
        }
        if bytes[..8] != META_MAGIC {
            return Err(SpioError::Format("bad metadata magic".into()));
        }
        let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap());
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
        let f64_at = |o: usize| f64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
        let version = u32_at(8);
        if version == 0 || version > META_VERSION {
            return Err(SpioError::Format(format!(
                "unsupported metadata version {version}"
            )));
        }
        let flags = u32_at(12);
        let mut lo = [0.0; 3];
        let mut hi = [0.0; 3];
        for a in 0..3 {
            lo[a] = f64_at(16 + a * 8);
            hi[a] = f64_at(40 + a * 8);
        }
        let domain = Aabb3 { lo, hi };
        let writer_grid = GridDims::new(
            u32_at(64) as usize,
            u32_at(68) as usize,
            u32_at(72) as usize,
        );
        let partition_factor = PartitionFactor::new(
            u32_at(76) as usize,
            u32_at(80) as usize,
            u32_at(84) as usize,
        );
        let lod = LodParams::new(u64_at(88), u64_at(96))
            .map_err(|e| SpioError::Format(format!("bad LOD params in metadata: {e}")))?;
        let total_particles = u64_at(104);
        let n_entries = u64_at(112) as usize;
        let need = HEADER_BYTES + n_entries * ENTRY_BYTES;
        if bytes.len() < need {
            return Err(SpioError::Format(format!(
                "metadata declares {n_entries} entries ({need} bytes) but file has {}",
                bytes.len()
            )));
        }
        let mut entries = Vec::with_capacity(n_entries);
        for i in 0..n_entries {
            let o = HEADER_BYTES + i * ENTRY_BYTES;
            let agg_rank = u64_at(o);
            let particle_count = u64_at(o + 8);
            let mut lo = [0.0; 3];
            let mut hi = [0.0; 3];
            for a in 0..3 {
                lo[a] = f64_at(o + 16 + a * 8);
                hi[a] = f64_at(o + 40 + a * 8);
            }
            entries.push(FileEntry {
                agg_rank,
                particle_count,
                bounds: Aabb3 { lo, hi },
            });
        }
        let attr_ranges = if version >= 2 && flags & FLAG_ATTR_RANGES != 0 {
            let base = HEADER_BYTES + n_entries * ENTRY_BYTES;
            if bytes.len() < base + n_entries * RANGE_BYTES {
                return Err(SpioError::Format(
                    "metadata attribute-range section truncated".into(),
                ));
            }
            let mut ranges = Vec::with_capacity(n_entries);
            for i in 0..n_entries {
                let o = base + i * RANGE_BYTES;
                ranges.push(AttrRange {
                    density_min: f64_at(o),
                    density_max: f64_at(o + 8),
                    volume_min: f64_at(o + 16),
                    volume_max: f64_at(o + 24),
                });
            }
            Some(ranges)
        } else {
            None
        };
        Ok(SpatialMetadata {
            domain,
            writer_grid,
            partition_factor,
            lod,
            total_particles,
            entries,
            attr_ranges,
        })
    }

    /// Indices of entries whose bounds intersect `query` — the file
    /// selection step of a box query (§4). A reader then opens only these
    /// data files.
    pub fn files_intersecting(&self, query: &Aabb3) -> Vec<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.bounds.intersects(query))
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of entries that intersect `query` *and* could contain a
    /// particle with density in `[density_lo, density_hi]`, using the §3.5
    /// attribute-range extension to prune files. Datasets without ranges
    /// fall back to spatial pruning only (conservative, still correct).
    pub fn files_for_range_query(
        &self,
        query: &Aabb3,
        density_lo: f64,
        density_hi: f64,
    ) -> Vec<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(i, e)| {
                e.bounds.intersects(query)
                    && self
                        .attr_ranges
                        .as_ref()
                        .is_none_or(|r| r[*i].density_overlaps(density_lo, density_hi))
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Sanity-check the §3.5 guarantee that file boxes are unique and
    /// non-overlapping. Used by verification tooling and tests.
    ///
    /// Builds the z-order [`crate::SpatialIndex`] once and probes each box
    /// against it: O(n log n) for valid (disjoint) metadata, instead of the
    /// pairwise O(n²) scan — the difference between instant and minutes for
    /// `spio validate` on many-thousand-file datasets. The pair reported on
    /// failure is the same lowest-(i, j) pair the pairwise scan would find.
    pub fn validate_disjoint(&self) -> Result<(), SpioError> {
        let index = crate::index::SpatialIndex::build(self);
        for (i, a) in self.entries.iter().enumerate() {
            // The probe returns ascending indices; a hit above `i` is the
            // smallest overlapping partner (pairs below `i` were already
            // checked from the other side on an earlier iteration).
            if let Some(j) = index.query(&a.bounds).into_iter().find(|&j| j > i) {
                let b = &self.entries[j];
                return Err(SpioError::Format(format!(
                    "file boxes overlap: rank {} {:?} vs rank {} {:?}",
                    a.agg_rank, a.bounds, b.agg_rank, b.bounds
                )));
            }
        }
        let sum: u64 = self.entries.iter().map(|e| e.particle_count).sum();
        if sum != self.total_particles {
            return Err(SpioError::Format(format!(
                "entry particle counts sum to {sum}, header says {}",
                self.total_particles
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 4 example: 16 ranks, 2×2 aggregation of the unit square,
    /// aggregators 0, 4, 8, 12.
    fn fig4_metadata() -> SpatialMetadata {
        let domain = Aabb3::new([0.0, 0.0, 0.0], [1.0, 1.0, 1.0]);
        let boxes = [
            ([0.0, 0.0], [0.5, 0.5], 0u64),
            ([0.5, 0.0], [1.0, 0.5], 4),
            ([0.0, 0.5], [0.5, 1.0], 8),
            ([0.5, 0.5], [1.0, 1.0], 12),
        ];
        let entries = boxes
            .iter()
            .map(|&(lo2, hi2, rank)| FileEntry {
                agg_rank: rank,
                particle_count: 100,
                bounds: Aabb3::new([lo2[0], lo2[1], 0.0], [hi2[0], hi2[1], 1.0]),
            })
            .collect();
        SpatialMetadata {
            domain,
            writer_grid: GridDims::new(4, 4, 1),
            partition_factor: PartitionFactor::new(2, 2, 1),
            lod: LodParams::default(),
            total_particles: 400,
            entries,
            attr_ranges: None,
        }
    }

    #[test]
    fn fig4_file_names() {
        let m = fig4_metadata();
        let names: Vec<String> = m.entries.iter().map(FileEntry::file_name).collect();
        assert_eq!(
            names,
            vec!["file_0.spd", "file_4.spd", "file_8.spd", "file_12.spd"]
        );
    }

    #[test]
    fn roundtrip() {
        let m = fig4_metadata();
        let bytes = m.encode();
        assert_eq!(SpatialMetadata::decode(&bytes).unwrap(), m);
    }

    #[test]
    fn rejects_corruption() {
        let m = fig4_metadata();
        let mut bytes = m.encode();
        bytes[3] = b'?';
        assert!(SpatialMetadata::decode(&bytes).is_err());
        let bytes = m.encode();
        assert!(SpatialMetadata::decode(&bytes[..bytes.len() - 10]).is_err());
    }

    #[test]
    fn box_query_selects_only_intersecting_files() {
        let m = fig4_metadata();
        // Query inside the lower-left quadrant.
        let q = Aabb3::new([0.1, 0.1, 0.2], [0.3, 0.3, 0.8]);
        assert_eq!(m.files_intersecting(&q), vec![0]);
        // Query straddling x = 0.5 touches two quadrants.
        let q = Aabb3::new([0.4, 0.1, 0.2], [0.6, 0.3, 0.8]);
        assert_eq!(m.files_intersecting(&q), vec![0, 1]);
        // Whole domain touches all.
        assert_eq!(m.files_intersecting(&m.domain.clone()).len(), 4);
        // Outside the domain touches none.
        let q = Aabb3::new([2.0; 3], [3.0; 3]);
        assert!(m.files_intersecting(&q).is_empty());
    }

    #[test]
    fn validate_disjoint_accepts_fig4_and_catches_overlap() {
        let mut m = fig4_metadata();
        m.validate_disjoint().unwrap();
        m.entries[1].bounds = m.entries[0].bounds;
        assert!(m.validate_disjoint().is_err());
    }

    #[test]
    fn validate_disjoint_matches_pairwise_oracle_on_random_boxes() {
        // The index-backed check must agree with the O(n²) pairwise scan it
        // replaced, on boxes that sometimes overlap and sometimes don't.
        spio_util::cases(64, |g| {
            let n = g.usize_in(1, 32);
            let entries: Vec<FileEntry> = (0..n)
                .map(|i| {
                    let lo = g.f64x3(0.0, 1.0);
                    let ext = g.f64x3(0.0, 0.12);
                    FileEntry {
                        agg_rank: i as u64,
                        particle_count: 1,
                        bounds: Aabb3::new(lo, [lo[0] + ext[0], lo[1] + ext[1], lo[2] + ext[2]]),
                    }
                })
                .collect();
            let naive_ok = entries.iter().enumerate().all(|(i, a)| {
                entries[i + 1..]
                    .iter()
                    .all(|b| !a.bounds.intersects(&b.bounds))
            });
            let m = SpatialMetadata {
                domain: Aabb3::new([0.0; 3], [2.0; 3]),
                writer_grid: GridDims::new(1, 1, 1),
                partition_factor: PartitionFactor::new(1, 1, 1),
                lod: LodParams::default(),
                total_particles: n as u64,
                entries,
                attr_ranges: None,
            };
            assert_eq!(m.validate_disjoint().is_ok(), naive_ok);
        });
    }

    #[test]
    fn attr_ranges_roundtrip_and_prune() {
        let mut m = fig4_metadata();
        let mut ranges: Vec<AttrRange> = Vec::new();
        for i in 0..m.entries.len() {
            let mut r = AttrRange::empty();
            // File i holds densities in [i, i + 0.5].
            r.include(i as f64, 1e-6);
            r.include(i as f64 + 0.5, 2e-6);
            ranges.push(r);
        }
        m.attr_ranges = Some(ranges);
        let decoded = SpatialMetadata::decode(&m.encode()).unwrap();
        assert_eq!(decoded, m);
        // Range query: density in [1.2, 2.1] over the whole domain hits
        // files 1 and 2 only.
        let hits = m.files_for_range_query(&m.domain.clone(), 1.2, 2.1);
        assert_eq!(hits, vec![1, 2]);
        // Spatial pruning still applies on top.
        let q = Aabb3::new([0.0, 0.0, 0.0], [0.4, 0.4, 1.0]);
        let hits = m.files_for_range_query(&q, 0.0, 10.0);
        assert_eq!(hits, vec![0]);
    }

    #[test]
    fn version1_dataset_without_ranges_still_reads() {
        // Hand-build a version-1 file: same layout, version field = 1,
        // flags = 0, no range section.
        let m = fig4_metadata();
        let mut bytes = m.encode();
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        let decoded = SpatialMetadata::decode(&bytes).unwrap();
        assert_eq!(decoded.entries, m.entries);
        assert!(decoded.attr_ranges.is_none());
        // Range queries degrade to spatial-only pruning.
        let hits = decoded.files_for_range_query(&m.domain.clone(), 100.0, 200.0);
        assert_eq!(hits.len(), 4, "no ranges ⇒ cannot prune by density");
    }

    #[test]
    fn truncated_range_section_rejected() {
        let mut m = fig4_metadata();
        m.attr_ranges = Some(vec![AttrRange::empty(); 4]);
        let bytes = m.encode();
        assert!(SpatialMetadata::decode(&bytes[..bytes.len() - 8]).is_err());
    }

    #[test]
    fn attr_range_math() {
        let mut r = AttrRange::empty();
        r.include(2.0, 5.0);
        r.include(-1.0, 3.0);
        assert_eq!(r.density_min, -1.0);
        assert_eq!(r.density_max, 2.0);
        assert_eq!(r.volume_min, 3.0);
        assert_eq!(r.volume_max, 5.0);
        assert!(r.density_overlaps(1.5, 9.0));
        assert!(!r.density_overlaps(2.5, 9.0));
        let other = {
            let mut o = AttrRange::empty();
            o.include(10.0, 1.0);
            o
        };
        let merged = r.merge(&other);
        assert_eq!(merged.density_max, 10.0);
        assert_eq!(merged.volume_min, 1.0);
    }

    #[test]
    fn validate_catches_count_mismatch() {
        let mut m = fig4_metadata();
        m.total_particles = 999;
        assert!(m.validate_disjoint().is_err());
    }
}
