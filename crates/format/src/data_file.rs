//! Per-aggregator data file: fixed header + LOD-ordered particle payload.

use spio_types::{Aabb3, Particle, SpioError, PARTICLE_BYTES};

/// Magic bytes opening every data file.
pub const DATA_MAGIC: [u8; 8] = *b"SPIOPRT1";
/// Current data-file format version.
pub const DATA_VERSION: u32 = 1;
/// Serialized header size in bytes.
pub const HEADER_BYTES: usize = 8 + 4 + 4 + 8 + 48 + 8 + 16;

/// Header of a data file.
///
/// The header records everything a reader needs to interpret the payload
/// without consulting the metadata file: how many particles follow, the
/// bounding box they live in (the aggregation partition's box), and the
/// seed of the LOD shuffle so the permutation is reproducible for
/// verification tooling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataFileHeader {
    pub version: u32,
    /// Reserved for format evolution (compression, extra attributes, …).
    pub flags: u32,
    /// Number of particle records in the payload.
    pub particle_count: u64,
    /// Spatial bounds of the particles (the partition box).
    pub bounds: Aabb3,
    /// Seed used for the LOD random shuffle of this file's payload.
    pub shuffle_seed: u64,
}

impl DataFileHeader {
    pub fn new(particle_count: u64, bounds: Aabb3, shuffle_seed: u64) -> Self {
        DataFileHeader {
            version: DATA_VERSION,
            flags: 0,
            particle_count,
            bounds,
            shuffle_seed,
        }
    }

    /// Serialize to exactly [`HEADER_BYTES`] bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_BYTES);
        out.extend_from_slice(&DATA_MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.flags.to_le_bytes());
        out.extend_from_slice(&self.particle_count.to_le_bytes());
        for v in self.bounds.lo.iter().chain(&self.bounds.hi) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&self.shuffle_seed.to_le_bytes());
        out.extend_from_slice(&[0u8; 16]); // reserved
        debug_assert_eq!(out.len(), HEADER_BYTES);
        out
    }

    /// Parse a header from the start of `bytes`.
    pub fn decode(bytes: &[u8]) -> Result<Self, SpioError> {
        if bytes.len() < HEADER_BYTES {
            return Err(SpioError::Format(format!(
                "data file truncated: {} bytes, header needs {HEADER_BYTES}",
                bytes.len()
            )));
        }
        if bytes[..8] != DATA_MAGIC {
            return Err(SpioError::Format("bad data-file magic".into()));
        }
        let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap());
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
        let f64_at = |o: usize| f64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
        let version = u32_at(8);
        if version != DATA_VERSION {
            return Err(SpioError::Format(format!(
                "unsupported data-file version {version} (expected {DATA_VERSION})"
            )));
        }
        let flags = u32_at(12);
        let particle_count = u64_at(16);
        let mut lo = [0.0; 3];
        let mut hi = [0.0; 3];
        for a in 0..3 {
            lo[a] = f64_at(24 + a * 8);
            hi[a] = f64_at(48 + a * 8);
        }
        let shuffle_seed = u64_at(72);
        Ok(DataFileHeader {
            version,
            flags,
            particle_count,
            bounds: Aabb3 { lo, hi },
            shuffle_seed,
        })
    }
}

/// Serialize a complete data file (header + payload) into one buffer.
pub fn encode_data_file(header: &DataFileHeader, particles: &[Particle]) -> Vec<u8> {
    debug_assert_eq!(header.particle_count as usize, particles.len());
    let mut out = header.encode();
    out.reserve(particles.len() * PARTICLE_BYTES);
    for p in particles {
        p.encode(&mut out);
    }
    out
}

/// Parse a complete data file, validating payload length against the header.
pub fn decode_data_file(bytes: &[u8]) -> Result<(DataFileHeader, Vec<Particle>), SpioError> {
    let header = DataFileHeader::decode(bytes)?;
    let payload = &bytes[HEADER_BYTES..];
    // Checked arithmetic: a corrupted count must produce an error, not an
    // overflow panic.
    let expected = header
        .particle_count
        .checked_mul(PARTICLE_BYTES as u64)
        .filter(|&e| e == payload.len() as u64);
    if expected.is_none() {
        return Err(SpioError::Format(format!(
            "payload is {} bytes, header declares {} particles",
            payload.len(),
            header.particle_count
        )));
    }
    let particles = payload
        .chunks_exact(PARTICLE_BYTES)
        .map(Particle::decode)
        .collect();
    Ok((header, particles))
}

/// Decode only the first `prefix` particles of a file — the core LOD-read
/// operation: a prefix of the shuffled payload is a uniform subsample.
///
/// `bytes` may be the whole file or any prefix long enough to hold the
/// requested records (readers fetch exactly `payload_range(prefix)` bytes).
pub fn decode_prefix(
    bytes: &[u8],
    prefix: usize,
) -> Result<(DataFileHeader, Vec<Particle>), SpioError> {
    let header = DataFileHeader::decode(bytes)?;
    let want = (prefix as u64).min(header.particle_count) as usize;
    let need = (want as u64)
        .checked_mul(PARTICLE_BYTES as u64)
        .and_then(|p| p.checked_add(HEADER_BYTES as u64))
        .ok_or_else(|| SpioError::Format("prefix length overflows".into()))?;
    if (bytes.len() as u64) < need {
        return Err(SpioError::Format(format!(
            "prefix read needs {need} bytes, have {}",
            bytes.len()
        )));
    }
    let need = need as usize;
    let particles = bytes[HEADER_BYTES..need]
        .chunks_exact(PARTICLE_BYTES)
        .map(Particle::decode)
        .collect();
    Ok((header, particles))
}

/// Byte range `[start, end)` of particle records `[from, to)` within a data
/// file — what a reader passes to a ranged read to append one more LOD
/// level.
pub fn payload_range(from: usize, to: usize) -> (u64, u64) {
    debug_assert!(from <= to);
    (
        (HEADER_BYTES + from * PARTICLE_BYTES) as u64,
        (HEADER_BYTES + to * PARTICLE_BYTES) as u64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> DataFileHeader {
        DataFileHeader::new(3, Aabb3::new([0.0, 1.0, 2.0], [3.0, 4.0, 5.0]), 0xDEADBEEF)
    }

    #[test]
    fn header_roundtrip() {
        let h = sample_header();
        let bytes = h.encode();
        assert_eq!(bytes.len(), HEADER_BYTES);
        assert_eq!(DataFileHeader::decode(&bytes).unwrap(), h);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut bytes = sample_header().encode();
        bytes[0] = b'X';
        assert!(matches!(
            DataFileHeader::decode(&bytes),
            Err(SpioError::Format(m)) if m.contains("magic")
        ));
        let mut bytes = sample_header().encode();
        bytes[8] = 99;
        assert!(matches!(
            DataFileHeader::decode(&bytes),
            Err(SpioError::Format(m)) if m.contains("version")
        ));
    }

    #[test]
    fn rejects_truncated_header() {
        let bytes = sample_header().encode();
        assert!(DataFileHeader::decode(&bytes[..HEADER_BYTES - 1]).is_err());
    }

    #[test]
    fn whole_file_roundtrip() {
        let ps: Vec<Particle> = (0..3)
            .map(|i| Particle::synthetic([i as f64, 0.5, 2.5], 100 + i))
            .collect();
        let h = sample_header();
        let bytes = encode_data_file(&h, &ps);
        let (h2, ps2) = decode_data_file(&bytes).unwrap();
        assert_eq!(h2, h);
        assert_eq!(ps2, ps);
    }

    #[test]
    fn detects_payload_length_mismatch() {
        let ps: Vec<Particle> = (0..3).map(|i| Particle::synthetic([0.0; 3], i)).collect();
        let h = sample_header();
        let mut bytes = encode_data_file(&h, &ps);
        bytes.truncate(bytes.len() - 1);
        assert!(decode_data_file(&bytes).is_err());
    }

    #[test]
    fn prefix_reads_partial_payload() {
        let ps: Vec<Particle> = (0..10).map(|i| Particle::synthetic([0.0; 3], i)).collect();
        let h = DataFileHeader::new(10, Aabb3::new([0.0; 3], [1.0; 3]), 1);
        let bytes = encode_data_file(&h, &ps);
        let (_, got) = decode_prefix(&bytes, 4).unwrap();
        assert_eq!(got, ps[..4]);
        // Prefix beyond the file clamps to the full payload.
        let (_, got) = decode_prefix(&bytes, 100).unwrap();
        assert_eq!(got, ps);
        // A prefix read works from a truncated buffer of exactly the right size.
        let (_, end) = payload_range(0, 4);
        let (_, got) = decode_prefix(&bytes[..end as usize], 4).unwrap();
        assert_eq!(got, ps[..4]);
    }

    #[test]
    fn payload_range_math() {
        let (s, e) = payload_range(0, 0);
        assert_eq!(s, e);
        assert_eq!(s, HEADER_BYTES as u64);
        let (s, e) = payload_range(2, 5);
        assert_eq!(s, (HEADER_BYTES + 2 * PARTICLE_BYTES) as u64);
        assert_eq!(e - s, (3 * PARTICLE_BYTES) as u64);
    }
}
