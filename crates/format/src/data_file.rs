//! Per-aggregator data file: fixed header + LOD-ordered particle payload.
//!
//! ## Format versions
//!
//! * **v1** — header + payload, no integrity checking beyond the magic,
//!   version and length arithmetic. Still fully readable.
//! * **v2** (current) — adds end-to-end integrity checking: the header
//!   carries a CRC-32 of itself, and a checksum *footer* after the payload
//!   holds one CRC-32 per chunk of [`CHECKSUM_CHUNK_RECORDS`] particle
//!   records. The footer placement (rather than between header and payload)
//!   keeps the payload at the same byte offset as v1, so prefix/ranged LOD
//!   reads use identical byte arithmetic for both versions and v1 datasets
//!   read back byte-identically.

use spio_types::{Aabb3, Particle, SpioError, PARTICLE_BYTES};
use spio_util::crc32;

/// Magic bytes opening every data file (shared by v1 and v2; the version
/// field distinguishes them).
pub const DATA_MAGIC: [u8; 8] = *b"SPIOPRT1";
/// First data-file format version (no checksums).
pub const DATA_VERSION_V1: u32 = 1;
/// Current data-file format version (checksummed).
pub const DATA_VERSION: u32 = 2;
/// Serialized header size in bytes (identical for v1 and v2).
pub const HEADER_BYTES: usize = 8 + 4 + 4 + 8 + 48 + 8 + 16;
/// Particle records per payload-checksum chunk in v2 files. Chosen so a
/// chunk (~496 KiB) is large enough that the footer is negligible (4 bytes
/// per chunk) yet small enough that ranged LOD reads cross chunk boundaries
/// often and verify the prefix they fetched incrementally.
pub const CHECKSUM_CHUNK_RECORDS: u64 = 4096;

/// Header flag bits. Bits 0 and 1 record the LOD ordering (see
/// `spio_core::writer::flags`); bit 2 is owned by the format layer.
pub mod header_flags {
    /// A v2 checksum footer (one CRC-32 per payload chunk) follows the
    /// payload, and the header's reserved tail carries the chunk size and
    /// a header CRC-32.
    pub const CHECKSUMS: u32 = 4;
}

/// Header of a data file.
///
/// The header records everything a reader needs to interpret the payload
/// without consulting the metadata file: how many particles follow, the
/// bounding box they live in (the aggregation partition's box), and the
/// seed of the LOD shuffle so the permutation is reproducible for
/// verification tooling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataFileHeader {
    pub version: u32,
    /// LOD-order bits plus [`header_flags::CHECKSUMS`].
    pub flags: u32,
    /// Number of particle records in the payload.
    pub particle_count: u64,
    /// Spatial bounds of the particles (the partition box).
    pub bounds: Aabb3,
    /// Seed used for the LOD random shuffle of this file's payload.
    pub shuffle_seed: u64,
    /// Particle records per checksum chunk (v2 with checksums; 0 in v1).
    pub checksum_chunk: u32,
}

impl DataFileHeader {
    /// A current-version (checksummed) header.
    pub fn new(particle_count: u64, bounds: Aabb3, shuffle_seed: u64) -> Self {
        DataFileHeader {
            version: DATA_VERSION,
            flags: header_flags::CHECKSUMS,
            particle_count,
            bounds,
            shuffle_seed,
            checksum_chunk: CHECKSUM_CHUNK_RECORDS as u32,
        }
    }

    /// A legacy v1 header (no checksums) — for compatibility tooling and
    /// tests; new data is always written as v2.
    pub fn new_v1(particle_count: u64, bounds: Aabb3, shuffle_seed: u64) -> Self {
        DataFileHeader {
            version: DATA_VERSION_V1,
            flags: 0,
            particle_count,
            bounds,
            shuffle_seed,
            checksum_chunk: 0,
        }
    }

    /// Does this file carry a checksum footer?
    pub fn has_checksums(&self) -> bool {
        self.version >= 2 && self.flags & header_flags::CHECKSUMS != 0 && self.checksum_chunk > 0
    }

    /// Number of checksum-footer entries (0 for v1 or empty files).
    pub fn num_chunks(&self) -> u64 {
        if !self.has_checksums() || self.particle_count == 0 {
            0
        } else {
            self.particle_count.div_ceil(self.checksum_chunk as u64)
        }
    }

    /// Total encoded file size implied by this header: header + payload +
    /// checksum footer. `None` if the particle count overflows.
    pub fn encoded_len(&self) -> Option<u64> {
        self.particle_count
            .checked_mul(PARTICLE_BYTES as u64)?
            .checked_add(HEADER_BYTES as u64)?
            .checked_add(self.num_chunks().checked_mul(4)?)
    }

    /// Serialize to exactly [`HEADER_BYTES`] bytes. v1 headers reproduce
    /// the pre-checksum layout byte for byte.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_BYTES);
        out.extend_from_slice(&DATA_MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.flags.to_le_bytes());
        out.extend_from_slice(&self.particle_count.to_le_bytes());
        for v in self.bounds.lo.iter().chain(&self.bounds.hi) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&self.shuffle_seed.to_le_bytes());
        if self.version >= 2 {
            out.extend_from_slice(&self.checksum_chunk.to_le_bytes());
            out.extend_from_slice(&[0u8; 8]); // reserved
            let crc = crc32(&out);
            out.extend_from_slice(&crc.to_le_bytes());
        } else {
            out.extend_from_slice(&[0u8; 16]); // reserved
        }
        debug_assert_eq!(out.len(), HEADER_BYTES);
        out
    }

    /// Parse a header from the start of `bytes`. Accepts v1 and v2; a v2
    /// header must pass its own CRC (any flipped header byte is caught).
    pub fn decode(bytes: &[u8]) -> Result<Self, SpioError> {
        if bytes.len() < HEADER_BYTES {
            return Err(SpioError::Format(format!(
                "data file truncated: {} bytes, header needs {HEADER_BYTES}",
                bytes.len()
            )));
        }
        if bytes[..8] != DATA_MAGIC {
            return Err(SpioError::Format("bad data-file magic".into()));
        }
        let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap());
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
        let f64_at = |o: usize| f64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
        let version = u32_at(8);
        if version != DATA_VERSION_V1 && version != DATA_VERSION {
            return Err(SpioError::Format(format!(
                "unsupported data-file version {version} (expected {DATA_VERSION_V1} or {DATA_VERSION})"
            )));
        }
        let checksum_chunk = if version >= 2 {
            let stored = u32_at(HEADER_BYTES - 4);
            let computed = crc32(&bytes[..HEADER_BYTES - 4]);
            if stored != computed {
                return Err(SpioError::Format(format!(
                    "header checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )));
            }
            u32_at(80)
        } else {
            0
        };
        let flags = u32_at(12);
        let particle_count = u64_at(16);
        if version >= 2 && flags & header_flags::CHECKSUMS != 0 && checksum_chunk == 0 {
            return Err(SpioError::Format(
                "checksummed file declares a zero chunk size".into(),
            ));
        }
        let mut lo = [0.0; 3];
        let mut hi = [0.0; 3];
        for a in 0..3 {
            lo[a] = f64_at(24 + a * 8);
            hi[a] = f64_at(48 + a * 8);
        }
        let shuffle_seed = u64_at(72);
        Ok(DataFileHeader {
            version,
            flags,
            particle_count,
            bounds: Aabb3 { lo, hi },
            shuffle_seed,
            checksum_chunk,
        })
    }
}

/// CRC-32 of each payload chunk: chunk `c` covers records
/// `[c·K, min((c+1)·K, N))` where `K` is the header's chunk size.
fn chunk_crcs(header: &DataFileHeader, payload: &[u8]) -> Vec<u32> {
    let chunk_bytes = header.checksum_chunk as usize * PARTICLE_BYTES;
    payload.chunks(chunk_bytes.max(1)).map(crc32).collect()
}

/// Serialize a complete data file (header + payload + checksum footer for
/// v2 headers) into one buffer.
pub fn encode_data_file(header: &DataFileHeader, particles: &[Particle]) -> Vec<u8> {
    debug_assert_eq!(header.particle_count as usize, particles.len());
    let mut out = header.encode();
    out.reserve(particles.len() * PARTICLE_BYTES + header.num_chunks() as usize * 4);
    for p in particles {
        p.encode(&mut out);
    }
    if header.has_checksums() {
        for crc in chunk_crcs(header, &out[HEADER_BYTES..]) {
            out.extend_from_slice(&crc.to_le_bytes());
        }
    }
    out
}

/// Parse the checksum footer of a v2 file (empty for v1 / empty files).
pub fn decode_checksum_footer(
    header: &DataFileHeader,
    bytes: &[u8],
) -> Result<Vec<u32>, SpioError> {
    let n = header.num_chunks() as usize;
    if n == 0 {
        return Ok(Vec::new());
    }
    let payload_end = HEADER_BYTES + header.particle_count as usize * PARTICLE_BYTES;
    let footer_end = payload_end + 4 * n;
    if bytes.len() < footer_end {
        return Err(SpioError::Format(format!(
            "checksum footer truncated: file is {} bytes, footer ends at {footer_end}",
            bytes.len()
        )));
    }
    Ok(bytes[payload_end..footer_end]
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

/// Verify every payload chunk of a whole-file buffer against its checksum
/// footer. Returns the number of chunks verified (0 for v1 files, which
/// carry no checksums). A v2 file with any flipped payload or footer byte
/// fails with [`SpioError::Format`].
pub fn verify_checksums(bytes: &[u8]) -> Result<usize, SpioError> {
    let header = DataFileHeader::decode(bytes)?;
    verify_checksums_with_header(&header, bytes)
}

fn verify_checksums_with_header(header: &DataFileHeader, bytes: &[u8]) -> Result<usize, SpioError> {
    if !header.has_checksums() {
        return Ok(0);
    }
    let stored = decode_checksum_footer(header, bytes)?;
    let payload_end = HEADER_BYTES + header.particle_count as usize * PARTICLE_BYTES;
    let computed = chunk_crcs(header, &bytes[HEADER_BYTES..payload_end]);
    debug_assert_eq!(stored.len(), computed.len());
    for (i, (s, c)) in stored.iter().zip(&computed).enumerate() {
        if s != c {
            return Err(SpioError::Format(format!(
                "payload checksum mismatch in chunk {i} (records {}..{}): stored {s:#010x}, computed {c:#010x}",
                i as u64 * header.checksum_chunk as u64,
                ((i as u64 + 1) * header.checksum_chunk as u64).min(header.particle_count),
            )));
        }
    }
    Ok(stored.len())
}

/// Parse a complete data file, validating payload length against the header
/// and — for v2 files — every payload chunk against the checksum footer,
/// so a single flipped byte anywhere in the file surfaces as an error
/// rather than a silently wrong query answer.
pub fn decode_data_file(bytes: &[u8]) -> Result<(DataFileHeader, Vec<Particle>), SpioError> {
    let header = DataFileHeader::decode(bytes)?;
    // Checked arithmetic: a corrupted count must produce an error, not an
    // overflow panic.
    let expected = header.encoded_len().filter(|&e| e == bytes.len() as u64);
    if expected.is_none() {
        return Err(SpioError::Format(format!(
            "file is {} bytes, header declares {} particles ({} expected)",
            bytes.len(),
            header.particle_count,
            header
                .encoded_len()
                .map_or("overflowing".to_string(), |e| e.to_string()),
        )));
    }
    verify_checksums_with_header(&header, bytes)?;
    let payload_end = HEADER_BYTES + header.particle_count as usize * PARTICLE_BYTES;
    let particles = bytes[HEADER_BYTES..payload_end]
        .chunks_exact(PARTICLE_BYTES)
        .map(Particle::decode)
        .collect();
    Ok((header, particles))
}

/// Decode only the first `prefix` particles of a file — the core LOD-read
/// operation: a prefix of the shuffled payload is a uniform subsample.
///
/// `bytes` may be the whole file or any prefix long enough to hold the
/// requested records (readers fetch exactly `payload_range(prefix)` bytes).
/// Such ranged prefixes carry no checksum footer, so this function performs
/// no chunk verification; `spio_core::LodCursor` fetches the footer
/// separately and verifies chunk boundaries as its prefix grows.
pub fn decode_prefix(
    bytes: &[u8],
    prefix: usize,
) -> Result<(DataFileHeader, Vec<Particle>), SpioError> {
    let header = DataFileHeader::decode(bytes)?;
    let want = (prefix as u64).min(header.particle_count) as usize;
    let need = (want as u64)
        .checked_mul(PARTICLE_BYTES as u64)
        .and_then(|p| p.checked_add(HEADER_BYTES as u64))
        .ok_or_else(|| SpioError::Format("prefix length overflows".into()))?;
    if (bytes.len() as u64) < need {
        return Err(SpioError::Format(format!(
            "prefix read needs {need} bytes, have {}",
            bytes.len()
        )));
    }
    let need = need as usize;
    let particles = bytes[HEADER_BYTES..need]
        .chunks_exact(PARTICLE_BYTES)
        .map(Particle::decode)
        .collect();
    Ok((header, particles))
}

/// Byte range `[start, end)` of particle records `[from, to)` within a data
/// file — what a reader passes to a ranged read to append one more LOD
/// level. Identical for v1 and v2 files (the v2 checksum footer sits
/// *after* the payload precisely so this arithmetic never changes).
pub fn payload_range(from: usize, to: usize) -> (u64, u64) {
    debug_assert!(from <= to);
    (
        (HEADER_BYTES + from * PARTICLE_BYTES) as u64,
        (HEADER_BYTES + to * PARTICLE_BYTES) as u64,
    )
}

/// Byte range of the checksum footer implied by `header` — what a LOD
/// reader fetches (once, tiny) to verify ranged payload reads.
pub fn footer_range(header: &DataFileHeader) -> (u64, u64) {
    let start = HEADER_BYTES as u64 + header.particle_count * PARTICLE_BYTES as u64;
    (start, start + header.num_chunks() * 4)
}

fn default_chunk_count(count: u64) -> u64 {
    if count == 0 {
        0
    } else {
        count.div_ceil(CHECKSUM_CHUNK_RECORDS)
    }
}

/// Encoded size of a current-version (v2, checksummed) data file holding
/// `count` particle records — what planners and simulators should charge
/// per file write.
pub fn encoded_file_len(count: u64) -> u64 {
    HEADER_BYTES as u64 + count * PARTICLE_BYTES as u64 + 4 * default_chunk_count(count)
}

/// Bytes a ranged (LOD) reader fetches from a v2 file before any payload:
/// the header plus the checksum footer.
pub fn lod_open_overhead(count: u64) -> u64 {
    HEADER_BYTES as u64 + 4 * default_chunk_count(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> DataFileHeader {
        DataFileHeader::new(3, Aabb3::new([0.0, 1.0, 2.0], [3.0, 4.0, 5.0]), 0xDEADBEEF)
    }

    #[test]
    fn header_roundtrip() {
        let h = sample_header();
        let bytes = h.encode();
        assert_eq!(bytes.len(), HEADER_BYTES);
        assert_eq!(DataFileHeader::decode(&bytes).unwrap(), h);
    }

    #[test]
    fn v1_header_roundtrip_and_layout() {
        let h = DataFileHeader::new_v1(3, Aabb3::new([0.0; 3], [1.0; 3]), 42);
        let bytes = h.encode();
        assert_eq!(bytes.len(), HEADER_BYTES);
        // v1 reserves the final 16 bytes as zero — the pre-checksum layout.
        assert_eq!(&bytes[80..96], &[0u8; 16]);
        assert_eq!(DataFileHeader::decode(&bytes).unwrap(), h);
        assert!(!h.has_checksums());
        assert_eq!(h.num_chunks(), 0);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut bytes = sample_header().encode();
        bytes[0] = b'X';
        assert!(matches!(
            DataFileHeader::decode(&bytes),
            Err(SpioError::Format(m)) if m.contains("magic")
        ));
        let mut bytes = sample_header().encode();
        bytes[8] = 99;
        assert!(matches!(
            DataFileHeader::decode(&bytes),
            Err(SpioError::Format(m)) if m.contains("version")
        ));
    }

    #[test]
    fn rejects_truncated_header() {
        let bytes = sample_header().encode();
        assert!(DataFileHeader::decode(&bytes[..HEADER_BYTES - 1]).is_err());
    }

    #[test]
    fn any_flipped_header_byte_is_caught() {
        let good = sample_header().encode();
        for i in 0..HEADER_BYTES {
            let mut bytes = good.clone();
            bytes[i] ^= 1 << (i % 8);
            assert!(
                DataFileHeader::decode(&bytes).is_err(),
                "flip at header byte {i} undetected"
            );
        }
    }

    #[test]
    fn whole_file_roundtrip() {
        let ps: Vec<Particle> = (0..3)
            .map(|i| Particle::synthetic([i as f64, 0.5, 2.5], 100 + i))
            .collect();
        let h = sample_header();
        let bytes = encode_data_file(&h, &ps);
        assert_eq!(bytes.len() as u64, h.encoded_len().unwrap());
        let (h2, ps2) = decode_data_file(&bytes).unwrap();
        assert_eq!(h2, h);
        assert_eq!(ps2, ps);
        assert_eq!(verify_checksums(&bytes).unwrap(), 1);
    }

    #[test]
    fn v1_file_roundtrip_without_footer() {
        let ps: Vec<Particle> = (0..5).map(|i| Particle::synthetic([0.0; 3], i)).collect();
        let h = DataFileHeader::new_v1(5, Aabb3::new([0.0; 3], [1.0; 3]), 7);
        let bytes = encode_data_file(&h, &ps);
        assert_eq!(bytes.len(), HEADER_BYTES + 5 * PARTICLE_BYTES);
        let (h2, ps2) = decode_data_file(&bytes).unwrap();
        assert_eq!(h2, h);
        assert_eq!(ps2, ps);
        assert_eq!(verify_checksums(&bytes).unwrap(), 0);
    }

    #[test]
    fn any_flipped_payload_byte_is_caught() {
        let ps: Vec<Particle> = (0..9)
            .map(|i| Particle::synthetic([i as f64, 0.5, 0.5], i))
            .collect();
        let h = DataFileHeader::new(9, Aabb3::new([0.0; 3], [9.0, 1.0, 1.0]), 3);
        let good = encode_data_file(&h, &ps);
        for i in HEADER_BYTES..good.len() {
            let mut bytes = good.clone();
            bytes[i] ^= 1 << (i % 8);
            assert!(
                matches!(decode_data_file(&bytes), Err(SpioError::Format(_))),
                "flip at byte {i} undetected"
            );
        }
    }

    #[test]
    fn multi_chunk_files_verify_every_chunk() {
        // A small chunk size forces several chunks without a huge payload.
        let n = 10u64;
        let ps: Vec<Particle> = (0..n).map(|i| Particle::synthetic([0.0; 3], i)).collect();
        let mut h = DataFileHeader::new(n, Aabb3::new([0.0; 3], [1.0; 3]), 1);
        h.checksum_chunk = 3; // chunks of 3, 3, 3, 1 records
        let bytes = encode_data_file(&h, &ps);
        assert_eq!(h.num_chunks(), 4);
        assert_eq!(verify_checksums(&bytes).unwrap(), 4);
        // Corrupt the final (partial) chunk: still caught.
        let mut bad = bytes.clone();
        let last_payload = HEADER_BYTES + (n as usize) * PARTICLE_BYTES - 1;
        bad[last_payload] ^= 0x80;
        assert!(matches!(
            decode_data_file(&bad),
            Err(SpioError::Format(m)) if m.contains("chunk 3")
        ));
    }

    #[test]
    fn detects_payload_length_mismatch() {
        let ps: Vec<Particle> = (0..3).map(|i| Particle::synthetic([0.0; 3], i)).collect();
        let h = sample_header();
        let mut bytes = encode_data_file(&h, &ps);
        bytes.truncate(bytes.len() - 1);
        assert!(decode_data_file(&bytes).is_err());
    }

    #[test]
    fn prefix_reads_partial_payload() {
        let ps: Vec<Particle> = (0..10).map(|i| Particle::synthetic([0.0; 3], i)).collect();
        let h = DataFileHeader::new(10, Aabb3::new([0.0; 3], [1.0; 3]), 1);
        let bytes = encode_data_file(&h, &ps);
        let (_, got) = decode_prefix(&bytes, 4).unwrap();
        assert_eq!(got, ps[..4]);
        // Prefix beyond the file clamps to the full payload.
        let (_, got) = decode_prefix(&bytes, 100).unwrap();
        assert_eq!(got, ps);
        // A prefix read works from a truncated buffer of exactly the right size.
        let (_, end) = payload_range(0, 4);
        let (_, got) = decode_prefix(&bytes[..end as usize], 4).unwrap();
        assert_eq!(got, ps[..4]);
    }

    #[test]
    fn payload_range_math() {
        let (s, e) = payload_range(0, 0);
        assert_eq!(s, e);
        assert_eq!(s, HEADER_BYTES as u64);
        let (s, e) = payload_range(2, 5);
        assert_eq!(s, (HEADER_BYTES + 2 * PARTICLE_BYTES) as u64);
        assert_eq!(e - s, (3 * PARTICLE_BYTES) as u64);
    }

    #[test]
    fn planner_size_helpers_match_encoding() {
        for n in [0u64, 1, 3, 4095, 4096, 4097, 10_000] {
            let ps: Vec<Particle> = (0..n.min(20))
                .map(|i| Particle::synthetic([0.0; 3], i))
                .collect();
            if (ps.len() as u64) == n {
                let h = DataFileHeader::new(n, Aabb3::new([0.0; 3], [1.0; 3]), 1);
                assert_eq!(
                    encode_data_file(&h, &ps).len() as u64,
                    encoded_file_len(n),
                    "n={n}"
                );
            }
            let h = DataFileHeader::new(n, Aabb3::new([0.0; 3], [1.0; 3]), 1);
            assert_eq!(encoded_file_len(n), h.encoded_len().unwrap(), "n={n}");
            let (s, e) = footer_range(&h);
            assert_eq!(lod_open_overhead(n), HEADER_BYTES as u64 + (e - s), "n={n}");
        }
    }

    #[test]
    fn footer_range_math() {
        let h = DataFileHeader::new(10, Aabb3::new([0.0; 3], [1.0; 3]), 1);
        let (s, e) = footer_range(&h);
        assert_eq!(s, (HEADER_BYTES + 10 * PARTICLE_BYTES) as u64);
        assert_eq!(e - s, 4); // one chunk
        let v1 = DataFileHeader::new_v1(10, Aabb3::new([0.0; 3], [1.0; 3]), 1);
        let (s, e) = footer_range(&v1);
        assert_eq!(s, e);
    }
}
