//! # spio-format
//!
//! The on-disk format written by the spatially-aware I/O system:
//!
//! * **Data files** ([`data_file`]) — one per aggregation partition, holding
//!   a header plus that partition's particles in level-of-detail order
//!   (§3.4). Because the LOD order is a random permutation, any prefix of
//!   the payload is a uniform spatial subsample of the partition.
//! * **The spatial metadata file** ([`meta`]) — the Fig. 4 table: one row
//!   per data file with the aggregator rank (from which the data file's name
//!   is derived) and the bounding box of the particles inside it, plus the
//!   global information readers need (domain bounds, LOD parameters, writer
//!   configuration).
//! * **LOD level math** ([`lod`]) — the `x(n, l) = n · P · S^l` level-size
//!   formula of §3.4 and the prefix arithmetic readers use to turn "read up
//!   to level l" into byte ranges.
//! * **The spatial file index** ([`index`]) — a z-order-sorted BVH over the
//!   metadata's file boxes for O(log n + k) file selection when the same
//!   dataset serves many queries.
//!
//! All integers are little-endian; all files start with an 8-byte magic and
//! a format version so readers can fail fast on foreign bytes.

pub mod data_file;
pub mod index;
pub mod lod;
pub mod meta;

pub use data_file::{DataFileHeader, DATA_MAGIC, DATA_VERSION};
pub use index::SpatialIndex;
pub use lod::LodParams;
pub use meta::{FileEntry, SpatialMetadata, META_MAGIC, META_VERSION};

/// Derive a data file's name from its aggregator rank, as in Fig. 4
/// ("Agg rank is used to derive the name of the data file").
pub fn data_file_name(agg_rank: usize) -> String {
    format!("file_{agg_rank}.spd")
}

/// Conventional name of the spatial metadata file inside a dataset
/// directory.
pub const META_FILE_NAME: &str = "spatial_meta.spm";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_names_follow_fig4_convention() {
        // Fig. 4 derives File_0, File_4, File_8, File_12 from agg ranks.
        assert_eq!(data_file_name(0), "file_0.spd");
        assert_eq!(data_file_name(12), "file_12.spd");
    }
}
