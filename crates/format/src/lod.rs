//! Level-of-detail arithmetic (§3.4).
//!
//! The format defines level `l` as a subset of at most
//! `x(n, l) = n · P · S^l` particles, where `n` is the number of processes
//! *reading* the data, `P` is the per-reader particle count of level 0, and
//! `S` is the resolution scale factor (default 2). Levels are virtual: the
//! data is stored as one randomly permuted sequence, and reading "up to
//! level l" just means reading a longer prefix. The last level holds
//! whatever remains (the paper's 100-particle example: levels of 32, 64 and
//! the remaining 4).

use spio_types::SpioError;

/// LOD parameters `(P, S)` from §3.4.
///
/// ```
/// use spio_format::LodParams;
/// // The paper's example: 100 particles, one reader, P = 32, S = 2
/// // ⇒ levels of 32, 64, and the remaining 4 particles.
/// let lod = LodParams::default();
/// assert_eq!(lod.actual_level_size(1, 0, 100), 32);
/// assert_eq!(lod.actual_level_size(1, 1, 100), 64);
/// assert_eq!(lod.actual_level_size(1, 2, 100), 4);
/// assert_eq!(lod.num_levels(1, 100), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LodParams {
    /// Particles per reading process in level 0.
    pub p: u64,
    /// Resolution scale factor between consecutive levels (≥ 1).
    pub s: u64,
}

impl Default for LodParams {
    /// The paper's defaults: `P = 32`, `S = 2`.
    fn default() -> Self {
        LodParams { p: 32, s: 2 }
    }
}

impl LodParams {
    pub fn new(p: u64, s: u64) -> Result<Self, SpioError> {
        if p == 0 {
            return Err(SpioError::Config("LOD parameter P must be positive".into()));
        }
        if s == 0 {
            return Err(SpioError::Config("LOD scale S must be at least 1".into()));
        }
        Ok(LodParams { p, s })
    }

    /// Maximum size of level `l` for `n` readers: `x(n, l) = n · P · S^l`,
    /// saturating at `u64::MAX` rather than overflowing.
    pub fn level_size(&self, n: u64, l: u32) -> u64 {
        self.s
            .checked_pow(l)
            .and_then(|sl| sl.checked_mul(self.p))
            .and_then(|v| v.checked_mul(n))
            .unwrap_or(u64::MAX)
    }

    /// Total particles in levels `0 ..= l` ignoring the dataset size:
    /// `n·P·(S^(l+1) − 1)/(S − 1)` for `S > 1`, `(l+1)·n·P` for `S = 1`.
    pub fn cumulative_size(&self, n: u64, l: u32) -> u64 {
        if self.s == 1 {
            return (l as u64 + 1).saturating_mul(self.p).saturating_mul(n);
        }
        // Sum the geometric series with saturation.
        let mut total = 0u64;
        let mut term = self.p.saturating_mul(n);
        for _ in 0..=l {
            total = total.saturating_add(term);
            term = term.saturating_mul(self.s);
            if total == u64::MAX {
                break;
            }
        }
        total
    }

    /// Actual particle count of level `l` in a dataset of `total` particles:
    /// full `x(n, l)` for interior levels, the remainder for the last.
    pub fn actual_level_size(&self, n: u64, l: u32, total: u64) -> u64 {
        let before = if l == 0 {
            0
        } else {
            self.cumulative_size(n, l - 1)
        };
        if before >= total {
            return 0;
        }
        (total - before).min(self.level_size(n, l))
    }

    /// Number of non-empty levels for a dataset of `total` particles read by
    /// `n` processes: the smallest `L` with `cumulative_size(n, L-1) ≥ total`.
    pub fn num_levels(&self, n: u64, total: u64) -> u32 {
        if total == 0 {
            return 0;
        }
        let mut l = 0u32;
        while self.cumulative_size(n, l) < total {
            l += 1;
        }
        l + 1
    }

    /// Particles to read in total (across all readers) when loading levels
    /// `0 ..= l` of a dataset of `total` particles.
    pub fn prefix_len(&self, n: u64, l: u32, total: u64) -> u64 {
        self.cumulative_size(n, l).min(total)
    }

    /// Split a global prefix of `global_prefix` particles (out of `total`)
    /// proportionally across a file holding `file_total` particles. Files
    /// store independent permutations, so reading a proportional prefix of
    /// every file yields a uniform subsample of the whole dataset.
    ///
    /// Rounds up so that the union over files always covers at least the
    /// requested global prefix, and clamps to the file size.
    pub fn file_prefix(file_total: u64, total: u64, global_prefix: u64) -> u64 {
        if total == 0 || file_total == 0 {
            return 0;
        }
        if global_prefix >= total {
            return file_total;
        }
        // ceil(file_total * global_prefix / total) without overflow for the
        // magnitudes in play (≤ 2^31 particles per file, ≤ 2^40 total).
        let num = (file_total as u128) * (global_prefix as u128);
        let den = total as u128;
        (num.div_ceil(den) as u64).min(file_total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_100_particle_example() {
        // §3.4: 100 particles, one reader, P = 32, S = 2 ⇒ levels of 32, 64,
        // and the remaining 4.
        let lod = LodParams::default();
        assert_eq!(lod.level_size(1, 0), 32);
        assert_eq!(lod.level_size(1, 1), 64);
        assert_eq!(lod.actual_level_size(1, 0, 100), 32);
        assert_eq!(lod.actual_level_size(1, 1, 100), 64);
        assert_eq!(lod.actual_level_size(1, 2, 100), 4);
        assert_eq!(lod.actual_level_size(1, 3, 100), 0);
        assert_eq!(lod.num_levels(1, 100), 3);
    }

    #[test]
    fn paper_fig8_level_count() {
        // §5.4: 2^31 particles, n = 64, P = 32, S = 2 ⇒
        // l = log2(2^31 / (64·32)) = 20 is the highest level index.
        let lod = LodParams::default();
        let total = 1u64 << 31;
        let levels = lod.num_levels(64, total);
        assert_eq!(levels, 21, "levels 0..=20");
        assert_eq!(lod.level_size(64, 20), total);
        // Levels 0..=19 cover total − n·P = 2^31 − 2048 particles…
        assert_eq!(lod.cumulative_size(64, 19), total - 2048);
        // …so level 20 holds the remaining 2048.
        assert_eq!(lod.actual_level_size(64, 20, total), 2048);
    }

    #[test]
    fn levels_partition_dataset_exactly() {
        let lod = LodParams::new(7, 3).unwrap();
        let total = 123_456;
        let n = 5;
        let sum: u64 = (0..lod.num_levels(n, total))
            .map(|l| lod.actual_level_size(n, l, total))
            .sum();
        assert_eq!(sum, total);
    }

    #[test]
    fn s_equals_one_gives_linear_levels() {
        let lod = LodParams::new(10, 1).unwrap();
        assert_eq!(lod.level_size(2, 0), 20);
        assert_eq!(lod.level_size(2, 5), 20);
        assert_eq!(lod.cumulative_size(2, 4), 100);
        assert_eq!(lod.num_levels(2, 95), 5);
    }

    #[test]
    fn saturation_instead_of_overflow() {
        let lod = LodParams::default();
        assert_eq!(lod.level_size(u64::MAX / 2, 60), u64::MAX);
        assert_eq!(lod.cumulative_size(1 << 40, 63), u64::MAX);
    }

    #[test]
    fn prefix_len_clamps_to_total() {
        let lod = LodParams::default();
        assert_eq!(lod.prefix_len(1, 0, 100), 32);
        assert_eq!(lod.prefix_len(1, 1, 100), 96);
        assert_eq!(lod.prefix_len(1, 10, 100), 100);
    }

    #[test]
    fn file_prefix_is_proportional_and_covering() {
        // 4 files of 25 in a 100-particle dataset, asking for 50 globally.
        assert_eq!(LodParams::file_prefix(25, 100, 50), 13); // ceil(12.5)
        assert_eq!(LodParams::file_prefix(25, 100, 100), 25);
        assert_eq!(LodParams::file_prefix(25, 100, 0), 0);
        assert_eq!(LodParams::file_prefix(0, 100, 50), 0);
        // Rounding up means coverage never falls short.
        let covered: u64 = (0..4).map(|_| LodParams::file_prefix(25, 100, 30)).sum();
        assert!(covered >= 30);
    }

    #[test]
    fn rejects_degenerate_params() {
        assert!(LodParams::new(0, 2).is_err());
        assert!(LodParams::new(32, 0).is_err());
    }

    #[test]
    fn empty_dataset_has_no_levels() {
        assert_eq!(LodParams::default().num_levels(4, 0), 0);
    }
}
