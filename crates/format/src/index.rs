//! Spatial file index: a z-order-sorted bounding-volume hierarchy over the
//! metadata's file boxes.
//!
//! [`SpatialMetadata::files_intersecting`] scans every entry on every query
//! — fine for one-shot reads, linear cost for a serving engine answering
//! thousands of box queries against a many-thousand-file dataset. The index
//! is built once per dataset: entries are sorted along the Z-order curve of
//! their box centers (the same curve the LOD reader-assignment uses, so
//! spatially close files land in the same subtree), and an implicit binary
//! tree of union boxes is layered on top. A query descends only into
//! subtrees whose union box intersects it: O(log n + k) for the disjoint
//! boxes the aggregation scheme produces.
//!
//! Results are returned in ascending entry order — exactly the order of the
//! linear scan — so callers that assemble per-file results positionally get
//! byte-identical output to the scan-based read path. The linear scan stays
//! as the test oracle.

use crate::meta::SpatialMetadata;
use spio_types::zorder::morton3;
use spio_types::Aabb3;

/// Entries per leaf. Small enough that a leaf test is a handful of box
/// intersections, large enough that the node array stays compact.
const LEAF_SIZE: usize = 8;

/// Sentinel child id marking a leaf node.
const NO_CHILD: u32 = u32::MAX;

/// Resolution of the center quantization feeding the Morton code
/// (21 bits per axis is the most `morton3` interleaves into 64 bits).
const ZRES: f64 = (1u64 << 21) as f64;

struct Node {
    /// Union of the boxes of every entry under this node.
    bounds: Aabb3,
    /// Range of `order` this node covers (leaves only scan it directly).
    start: u32,
    end: u32,
    /// Child node ids; `NO_CHILD` for leaves (both or neither).
    left: u32,
    right: u32,
}

/// The immutable index over one dataset's file boxes.
pub struct SpatialIndex {
    /// Entry indices sorted along the Z-order curve of their box centers.
    order: Vec<u32>,
    /// Entry bounds, stored positionally along `order` for locality.
    boxes: Vec<Aabb3>,
    nodes: Vec<Node>,
    /// Root node id (meaningless when `nodes` is empty).
    root: u32,
}

impl SpatialIndex {
    /// Build the index from a dataset's metadata.
    pub fn build(meta: &SpatialMetadata) -> SpatialIndex {
        let boxes: Vec<Aabb3> = meta.entries.iter().map(|e| e.bounds).collect();
        Self::from_boxes(&boxes)
    }

    /// Build from bare boxes (index `i` of the result refers to `boxes[i]`).
    pub fn from_boxes(boxes: &[Aabb3]) -> SpatialIndex {
        if boxes.is_empty() {
            return SpatialIndex {
                order: Vec::new(),
                boxes: Vec::new(),
                nodes: Vec::new(),
                root: 0,
            };
        }
        // Quantize centers against the union of the boxes rather than a
        // caller-supplied domain: robust to metadata whose header domain
        // is stale or wider than the data.
        let union = boxes
            .iter()
            .copied()
            .reduce(|a, b| a.union(&b))
            .expect("non-empty");
        let extent = union.extent();
        let mut keyed: Vec<(u64, u32)> = boxes
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let c = b.center();
                let mut q = [0u32; 3];
                for a in 0..3 {
                    let t = if extent[a] > 0.0 {
                        ((c[a] - union.lo[a]) / extent[a]).clamp(0.0, 1.0)
                    } else {
                        0.0
                    };
                    q[a] = (t * (ZRES - 1.0)) as u32;
                }
                (morton3(q[0], q[1], q[2]), i as u32)
            })
            .collect();
        // Tie-break on the entry id so the build is fully deterministic.
        keyed.sort_unstable();
        let order: Vec<u32> = keyed.iter().map(|&(_, i)| i).collect();
        let sorted_boxes: Vec<Aabb3> = order.iter().map(|&i| boxes[i as usize]).collect();
        let mut nodes = Vec::with_capacity(2 * order.len() / LEAF_SIZE + 2);
        let root = build_node(&mut nodes, &sorted_boxes, 0, order.len());
        SpatialIndex {
            order,
            boxes: sorted_boxes,
            nodes,
            root,
        }
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Indices of entries whose bounds intersect `query`, ascending — the
    /// same set, in the same order, as the linear
    /// [`SpatialMetadata::files_intersecting`] scan.
    pub fn query(&self, query: &Aabb3) -> Vec<usize> {
        let mut out = Vec::new();
        self.query_into(query, &mut out);
        out
    }

    /// [`SpatialIndex::query`] into a reusable buffer (cleared first).
    pub fn query_into(&self, query: &Aabb3, out: &mut Vec<usize>) {
        out.clear();
        if self.nodes.is_empty() {
            return;
        }
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id as usize];
            if !node.bounds.intersects(query) {
                continue;
            }
            if node.left == NO_CHILD {
                for i in node.start as usize..node.end as usize {
                    if self.boxes[i].intersects(query) {
                        out.push(self.order[i] as usize);
                    }
                }
            } else {
                stack.push(node.left);
                stack.push(node.right);
            }
        }
        // Ascending entry order restores exact parity with the linear scan.
        out.sort_unstable();
    }
}

/// Recursively build the tree over `boxes[start..end)` (positions along the
/// z-order), returning the new node's id.
fn build_node(nodes: &mut Vec<Node>, boxes: &[Aabb3], start: usize, end: usize) -> u32 {
    let bounds = boxes[start..end]
        .iter()
        .copied()
        .reduce(|a, b| a.union(&b))
        .expect("non-empty node range");
    let id = nodes.len() as u32;
    if end - start <= LEAF_SIZE {
        nodes.push(Node {
            bounds,
            start: start as u32,
            end: end as u32,
            left: NO_CHILD,
            right: NO_CHILD,
        });
        return id;
    }
    nodes.push(Node {
        bounds,
        start: start as u32,
        end: end as u32,
        left: NO_CHILD,
        right: NO_CHILD,
    });
    let mid = start + (end - start) / 2;
    let left = build_node(nodes, boxes, start, mid);
    let right = build_node(nodes, boxes, mid, end);
    nodes[id as usize].left = left;
    nodes[id as usize].right = right;
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::FileEntry;
    use crate::LodParams;
    use spio_types::{GridDims, PartitionFactor};
    use spio_util::cases;

    /// A grid of disjoint tiles, like aggregation produces.
    fn grid_metadata(nx: usize, ny: usize) -> SpatialMetadata {
        let domain = Aabb3::new([0.0; 3], [1.0, 1.0, 1.0]);
        let mut entries = Vec::new();
        for y in 0..ny {
            for x in 0..nx {
                let lo = [x as f64 / nx as f64, y as f64 / ny as f64, 0.0];
                let hi = [(x + 1) as f64 / nx as f64, (y + 1) as f64 / ny as f64, 1.0];
                entries.push(FileEntry {
                    agg_rank: (y * nx + x) as u64,
                    particle_count: 10,
                    bounds: Aabb3::new(lo, hi),
                });
            }
        }
        let total = entries.len() as u64 * 10;
        SpatialMetadata {
            domain,
            writer_grid: GridDims::new(nx, ny, 1),
            partition_factor: PartitionFactor::new(1, 1, 1),
            lod: LodParams::default(),
            total_particles: total,
            entries,
            attr_ranges: None,
        }
    }

    #[test]
    fn matches_linear_scan_on_grid() {
        let meta = grid_metadata(8, 8);
        let index = SpatialIndex::build(&meta);
        assert_eq!(index.len(), 64);
        let queries = [
            Aabb3::new([0.0; 3], [1.0; 3]),
            Aabb3::new([0.1, 0.1, 0.0], [0.2, 0.2, 1.0]),
            Aabb3::new([0.45, 0.45, 0.3], [0.55, 0.55, 0.6]),
            Aabb3::new([2.0; 3], [3.0; 3]),
            Aabb3::new([0.0, 0.0, 0.0], [0.01, 1.0, 1.0]),
        ];
        for q in &queries {
            assert_eq!(index.query(q), meta.files_intersecting(q), "query {q:?}");
        }
    }

    #[test]
    fn empty_index_returns_nothing() {
        let mut meta = grid_metadata(2, 2);
        meta.entries.clear();
        meta.total_particles = 0;
        let index = SpatialIndex::build(&meta);
        assert!(index.is_empty());
        assert!(index.query(&Aabb3::new([0.0; 3], [1.0; 3])).is_empty());
    }

    #[test]
    fn random_boxes_match_oracle_even_when_overlapping() {
        // The index must agree with the scan for arbitrary (not necessarily
        // disjoint) boxes: correctness does not rely on the §3.5 guarantee.
        cases(64, |g| {
            let n = g.usize_in(1, 40);
            let boxes: Vec<Aabb3> = (0..n)
                .map(|_| {
                    let lo = g.f64x3(-1.0, 1.0);
                    let ext = g.f64x3(0.0, 0.8);
                    Aabb3::new(lo, [lo[0] + ext[0], lo[1] + ext[1], lo[2] + ext[2]])
                })
                .collect();
            let index = SpatialIndex::from_boxes(&boxes);
            for _ in 0..8 {
                let lo = g.f64x3(-1.2, 1.2);
                let ext = g.f64x3(0.0, 1.5);
                let q = Aabb3::new(lo, [lo[0] + ext[0], lo[1] + ext[1], lo[2] + ext[2]]);
                let oracle: Vec<usize> = boxes
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| b.intersects(&q))
                    .map(|(i, _)| i)
                    .collect();
                assert_eq!(index.query(&q), oracle);
            }
        });
    }

    #[test]
    fn query_into_reuses_buffer() {
        let meta = grid_metadata(4, 4);
        let index = SpatialIndex::build(&meta);
        let mut buf = vec![99usize; 3];
        index.query_into(&Aabb3::new([0.0; 3], [0.3; 3]), &mut buf);
        assert_eq!(
            buf,
            meta.files_intersecting(&Aabb3::new([0.0; 3], [0.3; 3]))
        );
    }
}
