//! Schedule-invariance and known-bad-program detection under the
//! deterministic explorer.
//!
//! Part 1: every collective in `spio_comm::collectives` must produce the
//! same results under `SEEDS` different seeded interleavings — the
//! algorithms may not depend on message arrival order.
//!
//! Part 2 (the verification sandwich): the known-bad fixtures run as
//! `CheckedComm<ExplorerComm>`. The explorer turns would-be hangs into
//! structural deadlock reports, and CheckedComm turns semantic divergence
//! into rank-attributed diagnostics. Either way: a readable error, never a
//! wall-clock hang.

use spio_comm::collectives::{
    allreduce_u64, binomial_broadcast, direct_alltoall, dissemination_barrier, exclusive_scan_u64,
    gather_to, ring_allgather, tree_reduce_u64,
};
use spio_comm::Comm;
use spio_trace::Trace;
use spio_verify::{explore_collect, fixtures, CheckedWorld, ExplorerComm};
use std::time::Duration;

const SEEDS: u64 = 12;
const NPROCS: usize = 4;

/// Run `f` under every seed and assert the sorted per-rank results are
/// identical across all interleavings.
fn assert_schedule_invariant<T, F>(name: &str, f: F)
where
    T: std::fmt::Debug + PartialEq + Send + 'static,
    F: Fn(&ExplorerComm) -> T + Send + Sync + Copy + 'static,
{
    let mut reference: Option<Vec<T>> = None;
    for seed in 0..SEEDS {
        let results = explore_collect(NPROCS, seed, move |comm| f(&comm))
            .unwrap_or_else(|e| panic!("{name}: seed {seed} failed: {e}"));
        match &reference {
            None => reference = Some(results),
            Some(expect) => assert_eq!(
                expect, &results,
                "{name}: results diverged between seed 0 and seed {seed}"
            ),
        }
    }
}

#[test]
fn barrier_is_schedule_invariant() {
    assert_schedule_invariant("dissemination_barrier", |comm| {
        dissemination_barrier(comm);
        comm.rank()
    });
}

#[test]
fn allgather_is_schedule_invariant() {
    assert_schedule_invariant("ring_allgather", |comm| {
        ring_allgather(comm, &[comm.rank() as u8, 0xA5])
    });
}

#[test]
fn alltoall_is_schedule_invariant() {
    assert_schedule_invariant("direct_alltoall", |comm| {
        let sends: Vec<Vec<u8>> = (0..comm.size())
            .map(|dst| vec![comm.rank() as u8, dst as u8])
            .collect();
        direct_alltoall(comm, sends)
    });
}

#[test]
fn gather_is_schedule_invariant() {
    assert_schedule_invariant("gather_to", |comm| {
        gather_to(comm, 2, &[comm.rank() as u8; 3])
    });
}

#[test]
fn broadcast_is_schedule_invariant() {
    assert_schedule_invariant("binomial_broadcast", |comm| {
        let payload = if comm.rank() == 1 {
            vec![7, 7, 7]
        } else {
            Vec::new()
        };
        binomial_broadcast(comm, 1, payload)
    });
}

#[test]
fn tree_reduce_is_schedule_invariant() {
    assert_schedule_invariant("tree_reduce_u64", |comm| {
        tree_reduce_u64(comm, 0, (comm.rank() as u64 + 1) * 10, u64::wrapping_add)
    });
}

#[test]
fn allreduce_is_schedule_invariant() {
    assert_schedule_invariant("allreduce_u64", |comm| {
        allreduce_u64(comm, 1 << comm.rank(), |a, b| a | b)
    });
}

#[test]
fn exclusive_scan_is_schedule_invariant() {
    assert_schedule_invariant("exclusive_scan_u64", |comm| {
        exclusive_scan_u64(comm, comm.rank() as u64 + 1)
    });
}

/// Run a fixture as CheckedComm over ExplorerComm under one seed and
/// return the error every known-bad program must produce.
fn checked_explore(
    seed: u64,
    f: impl Fn(&spio_verify::CheckedComm<ExplorerComm>) + Send + Sync + 'static,
) -> String {
    let world = CheckedWorld::new(Trace::off())
        // The explorer detects stalls structurally; the timeout only
        // matters if something escapes to a real clock, so keep it short.
        .with_stall_timeout(Duration::from_millis(200));
    let err = explore_collect(NPROCS, seed, move |comm| {
        let checked = world.wrap(comm);
        f(&checked);
        checked.finalize().map(|_| ()).map_err(|e| e.to_string())
    })
    .expect_err("known-bad fixture must be diagnosed");
    err.to_string()
}

#[test]
fn skipped_barrier_is_diagnosed_not_hung() {
    for seed in 0..4 {
        let msg = checked_explore(seed, fixtures::skipped_barrier);
        // Rank 1 reaches the (gated) finalize while everyone else gates
        // the barrier: a deterministic mismatch diff.
        assert!(msg.contains("collective-mismatch"), "seed {seed}: {msg}");
        assert!(msg.contains("op=barrier"), "seed {seed}: {msg}");
        assert!(msg.contains("rank 1: op=finalize"), "seed {seed}: {msg}");
    }
}

#[test]
fn broadcast_root_disagreement_is_diagnosed() {
    for seed in 0..4 {
        let msg = checked_explore(seed, fixtures::root_disagreement);
        assert!(msg.contains("collective-mismatch"), "seed {seed}: {msg}");
        assert!(msg.contains("root=0"), "seed {seed}: {msg}");
        assert!(
            msg.contains("rank 3: op=broadcast root=1"),
            "seed {seed}: {msg}"
        );
    }
}

#[test]
fn unequal_collective_counts_are_diagnosed() {
    for seed in 0..4 {
        let msg = checked_explore(seed, fixtures::unequal_collective_counts);
        assert!(msg.contains("collective-mismatch"), "seed {seed}: {msg}");
        assert!(msg.contains("op=allgather"), "seed {seed}: {msg}");
        assert!(msg.contains("op=barrier"), "seed {seed}: {msg}");
    }
}

#[test]
fn tag_mismatch_is_a_structural_deadlock() {
    for seed in 0..4 {
        let msg = checked_explore(seed, fixtures::tag_mismatch);
        // Rank 1 blocks on a tag nobody sends; under the explorer this is
        // detected the moment no rank can make progress.
        assert!(
            msg.contains("deadlock") || msg.contains("stalled"),
            "seed {seed}: {msg}"
        );
        assert!(msg.contains("rank 1"), "seed {seed}: {msg}");
    }
}

#[test]
fn recv_without_send_is_diagnosed_with_wait_graph() {
    for seed in 0..4 {
        let msg = checked_explore(seed, fixtures::recv_without_send);
        assert!(
            msg.contains("deadlock") || msg.contains("stalled"),
            "seed {seed}: {msg}"
        );
        assert!(msg.contains("rank 0"), "seed {seed}: {msg}");
    }
}

/// The leak checks also work under the explorer: a message sent but never
/// received is reported, not dropped.
#[test]
fn orphan_message_is_reported_under_explorer() {
    let msg = checked_explore(0, |comm| {
        // Everyone must traverse the same collective sequence (finalize
        // is gated), so all ranks do the leak-generating exchange.
        if comm.rank() == 0 {
            comm.send(1, 0x33, vec![1, 2, 3]);
        }
        // rank 1 never receives tag 0x33.
    });
    assert!(
        msg.contains("message leak") || msg.contains("never received"),
        "{msg}"
    );
}
