//! # spio-verify
//!
//! Correctness tooling for the spio workspace, in three pillars:
//!
//! * [`CheckedComm`] — a [`Comm`](spio_comm::Comm) wrapper (the semantics
//!   sibling of `TracedComm`) that runtime-verifies MPI rules the way MUST
//!   does on real machines: every rank's collective-call sequence is
//!   cross-checked *before* the collective runs (same op, same root, same
//!   payload arity, with a rank-level diff on mismatch), unwaited
//!   `SendHandle`/`RecvHandle`s and unconsumed mailbox messages are
//!   reported as leaks at [`CheckedComm::finalize`], and a blocked receive
//!   that exceeds the stall timeout dumps a wait-for graph (who blocks on
//!   whose `(src, tag)`) instead of hanging bare.
//! * [`explore`] — a std-only, loom-lite deterministic scheduler: rank
//!   programs run one-at-a-time under a cooperatively passed token, and a
//!   seeded RNG picks which runnable rank proceeds at every communication
//!   yield point. `k` seeds give `k` reproducible interleavings, which is
//!   how the test suite asserts every collective in
//!   `spio_comm::collectives` is schedule-invariant and that known-bad
//!   programs deadlock *detectably* (structural wait-for cycle, not a
//!   wall-clock hang).
//! * [`lint`] — a std-only source scanner enforcing repo invariants
//!   (`.unwrap()`/`.expect()` discipline, clock usage, bare lock unwraps)
//!   against a committed per-crate baseline ratchet: counts may only go
//!   down.
//!
//! Verifier findings are first-class trace events
//! ([`TraceEvent::Verify`](spio_trace::TraceEvent)) so `spio report` can
//! aggregate them per rule alongside phases, faults, and the comm matrix.

pub mod checked;
pub mod explorer;
pub mod fixtures;
pub mod lint;

pub use checked::{CheckedComm, CheckedShared, CheckedWorld};
pub use explorer::{explore, explore_collect, ExplorerComm};
pub use lint::{lint_tree, LintConfig, LintCounts, Ratchet};

/// Tags at or above this value are reserved for CheckedComm's internal
/// gate exchange. This sits near the top of the collective tag space;
/// collision with `COLLECTIVE_TAG_BASE + 8*seq` would need ~2^28 collective
/// calls in one job, far beyond anything the thread runtime executes.
pub const VERIFY_TAG_BASE: u32 = 0xF000_0000;
