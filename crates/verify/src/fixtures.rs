//! Known-bad comm programs: the regression corpus for the verification
//! layer.
//!
//! Each fixture encodes one classic MPI misuse. The test suite runs them
//! under the schedule explorer (so a deadlock is detected structurally,
//! never hanging the suite) wrapped in `CheckedComm` (so the failure is a
//! rank-attributed diagnostic, not a bare error). All fixtures are generic
//! over [`CollectiveComm`], so the same programs also document what the
//! thread runtime would do with them.

use spio_comm::CollectiveComm;

/// One rank skips a barrier every other rank enters: the peers' gate (or
/// the barrier itself) can never complete. Expected: stall / structural
/// deadlock naming the skipping rank.
pub fn skipped_barrier<C: CollectiveComm>(comm: &C) {
    if comm.rank() != 1 {
        comm.barrier();
    }
}

/// Sender and receiver disagree on the message tag, so the receive can
/// never match. Expected: deadlock whose wait-for graph shows rank 1
/// waiting on rank 0 with the wrong tag.
pub fn tag_mismatch<C: CollectiveComm>(comm: &C) {
    if comm.rank() == 0 {
        comm.send(1, 0x10, vec![1, 2, 3]);
    } else if comm.rank() == 1 {
        let _ = comm.recv(0, 0x11);
    }
}

/// A receive nobody ever sends to. Expected: deadlock/stall attributing
/// the orphan receive to rank 0.
pub fn recv_without_send<C: CollectiveComm>(comm: &C) {
    if comm.rank() == 0 {
        let _ = comm.recv(1, 0x42);
    }
}

/// Ranks disagree on the broadcast root. Expected: a collective-mismatch
/// diff listing each rank's claimed root.
pub fn root_disagreement<C: CollectiveComm>(comm: &C) {
    let root = if comm.rank() == comm.size() - 1 { 1 } else { 0 };
    comm.broadcast(root, vec![comm.rank() as u8]);
}

/// Rank 0 calls allgather twice while everyone else calls it once and
/// moves on to a barrier: the ranks' collective sequences diverge at call
/// #2. Expected: a mismatch diff (allgather vs barrier) or a stall,
/// depending on timing — never silent corruption.
pub fn unequal_collective_counts<C: CollectiveComm>(comm: &C) {
    comm.allgather(&[comm.rank() as u8]);
    if comm.rank() == 0 {
        comm.allgather(&[0xAA]);
    } else {
        comm.barrier();
    }
}
