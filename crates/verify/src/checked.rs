//! [`CheckedComm`]: runtime verification of MPI semantics.
//!
//! The wrapper enforces three rule families:
//!
//! 1. **Collective agreement.** Before a collective runs, every rank
//!    exchanges a compact descriptor of the call it is about to make (op
//!    kind, root, payload arity) over a reserved tag space, using the same
//!    ring pattern as `ring_allgather`. Every rank therefore sees every
//!    other rank's descriptor and computes the *same* rank-level diff on
//!    mismatch — all ranks fail together with the identical diagnosis,
//!    instead of some ranks hanging inside a half-entered collective.
//! 2. **Leak freedom.** Every `SendHandle`/`RecvHandle` the wrapper hands
//!    out is registered until waited; [`CheckedComm::finalize`] reports
//!    still-registered handles and messages left in the rank's mailbox.
//! 3. **Stall diagnosis.** Blocking receives (including the gate exchange)
//!    publish what they are blocked on into a job-wide wait-for map. When a
//!    receive exceeds the stall timeout, the rank dumps the full graph —
//!    `rank a ← waiting on rank b (tag t, context)` for every blocked rank
//!    — so a deadlock reads as a diagnosis, not a dead terminal.
//!
//! Findings are recorded into the wrapper's [`Trace`] as
//! [`TraceEvent::Verify`](spio_trace::TraceEvent) events before the wrapper
//! panics (collective mismatch, stall) or returns an error (finalize
//! leaks), so even a failed job leaves an analyzable report behind.

use crate::VERIFY_TAG_BASE;
use spio_comm::{CollectiveComm, Comm, RecvHandle, SendHandle, Tag};
use spio_trace::Trace;
use spio_types::{Rank, SpioError};
use spio_util::lock_unpoisoned;
use std::cell::Cell;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Default stall timeout: long enough that a healthy oversubscribed test
/// run never trips it, short enough that a deadlocked CI job fails with a
/// wait-for graph well before the job-level timeout.
pub const DEFAULT_STALL_TIMEOUT: Duration = Duration::from_secs(30);

/// The collective kinds CheckedComm gates. Descriptors carry the
/// discriminant, so every rank can name the op the others entered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CollOp {
    Barrier,
    Allgather,
    Alltoall,
    Gather,
    Broadcast,
    Finalize,
}

impl CollOp {
    fn id(self) -> u64 {
        match self {
            CollOp::Barrier => 0,
            CollOp::Allgather => 1,
            CollOp::Alltoall => 2,
            CollOp::Gather => 3,
            CollOp::Broadcast => 4,
            CollOp::Finalize => 5,
        }
    }

    fn from_id(id: u64) -> &'static str {
        match id {
            0 => "barrier",
            1 => "allgather",
            2 => "alltoall",
            3 => "gather",
            4 => "broadcast",
            5 => "finalize",
            _ => "unknown",
        }
    }
}

/// One rank's descriptor of the collective it is about to enter. `root`
/// and `arity` are `u64::MAX` when the op has none; `bytes` is
/// informational (payload sizes legitimately differ across ranks in the
/// `v`-variants) and never part of the mismatch decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CollDesc {
    op: u64,
    root: u64,
    arity: u64,
    bytes: u64,
}

const NONE: u64 = u64::MAX;

impl CollDesc {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        for v in [self.op, self.root, self.arity, self.bytes] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    fn decode(data: &[u8]) -> Option<CollDesc> {
        if data.len() != 32 {
            return None;
        }
        let word = |i: usize| {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&data[i * 8..(i + 1) * 8]);
            u64::from_le_bytes(buf)
        };
        Some(CollDesc {
            op: word(0),
            root: word(1),
            arity: word(2),
            bytes: word(3),
        })
    }

    /// The fields that must agree across ranks. Byte sizes are excluded:
    /// allgatherv/alltoallv-style calls legally contribute different sizes.
    fn agreement_key(&self) -> (u64, u64, u64) {
        (self.op, self.root, self.arity)
    }

    fn describe(&self) -> String {
        let mut s = format!("op={}", CollOp::from_id(self.op));
        if self.root != NONE {
            s.push_str(&format!(" root={}", self.root));
        }
        if self.arity != NONE {
            s.push_str(&format!(" arity={}", self.arity));
        }
        s.push_str(&format!(" bytes={}", self.bytes));
        s
    }
}

/// What a blocked rank is waiting on, published into the job-wide wait-for
/// map for the duration of the blocking call.
#[derive(Debug, Clone)]
struct WaitEdge {
    src: Rank,
    tag: Tag,
    context: &'static str,
}

/// Job-wide state shared by every rank's [`CheckedComm`]: the wait-for map
/// that stall diagnosis dumps. Create one per job with
/// [`CheckedShared::new`] and clone the `Arc` into each rank's wrapper
/// (see [`CheckedWorld`] for the ergonomic path).
pub struct CheckedShared {
    waiting: Mutex<HashMap<Rank, WaitEdge>>,
}

impl CheckedShared {
    pub fn new() -> Arc<CheckedShared> {
        Arc::new(CheckedShared {
            waiting: Mutex::new(HashMap::new()),
        })
    }

    fn enter_wait(&self, me: Rank, src: Rank, tag: Tag, context: &'static str) {
        lock_unpoisoned(&self.waiting).insert(me, WaitEdge { src, tag, context });
    }

    fn leave_wait(&self, me: Rank) {
        lock_unpoisoned(&self.waiting).remove(&me);
    }

    /// Render the wait-for graph: one line per blocked rank, sorted by
    /// rank so every reader sees the same text.
    fn wait_graph(&self) -> String {
        let waiting = lock_unpoisoned(&self.waiting);
        if waiting.is_empty() {
            return "  (no ranks currently blocked)".to_string();
        }
        let sorted: BTreeMap<Rank, &WaitEdge> = waiting.iter().map(|(k, v)| (*k, v)).collect();
        sorted
            .iter()
            .map(|(rank, e)| {
                format!(
                    "  rank {rank} <- waiting on rank {} (tag {:#x}, {})",
                    e.src, e.tag, e.context
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Builder for a checked job: one [`CheckedShared`] plus the trace and
/// timeout every rank's wrapper should use. `Clone + Send + Sync`, so a
/// single world value moves into the `run_threaded` closure and each rank
/// calls [`CheckedWorld::wrap`] on its own communicator.
#[derive(Clone)]
pub struct CheckedWorld {
    shared: Arc<CheckedShared>,
    trace: Trace,
    stall_timeout: Duration,
}

impl CheckedWorld {
    pub fn new(trace: Trace) -> CheckedWorld {
        CheckedWorld {
            shared: CheckedShared::new(),
            trace,
            stall_timeout: DEFAULT_STALL_TIMEOUT,
        }
    }

    /// Override the stall timeout (tests use short ones so deadlock
    /// fixtures fail in milliseconds, not seconds).
    pub fn with_stall_timeout(mut self, timeout: Duration) -> CheckedWorld {
        self.stall_timeout = timeout;
        self
    }

    /// Wrap one rank's communicator.
    pub fn wrap<C: CollectiveComm>(&self, inner: C) -> CheckedComm<C> {
        CheckedComm {
            inner,
            shared: Arc::clone(&self.shared),
            trace: self.trace.clone(),
            stall_timeout: self.stall_timeout,
            gate_seq: Cell::new(0),
            handle_seq: Cell::new(0),
            outstanding: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }
}

/// A [`Comm`] that runtime-verifies MPI semantics. See the module docs for
/// the rule families. Collectives delegate to the inner communicator's own
/// algorithms *after* the gate exchange proves every rank agrees on the
/// call.
pub struct CheckedComm<C: CollectiveComm> {
    inner: C,
    shared: Arc<CheckedShared>,
    trace: Trace,
    stall_timeout: Duration,
    /// Gate sequence number; advances identically on every rank because
    /// gates happen in collective-call order.
    gate_seq: Cell<u32>,
    handle_seq: Cell<u64>,
    /// Handles issued but not yet waited: id → description. Shared with
    /// the handle closures via `Arc<Mutex<..>>` (handles are `Send`).
    outstanding: Arc<Mutex<BTreeMap<u64, String>>>,
}

impl<C: CollectiveComm> CheckedComm<C> {
    pub fn inner(&self) -> &C {
        &self.inner
    }

    fn next_gate_tag(&self) -> Tag {
        let seq = self.gate_seq.get();
        self.gate_seq.set(seq.wrapping_add(1));
        VERIFY_TAG_BASE + (seq % 0x00ff_ffff)
    }

    fn register_handle(&self, description: String) -> u64 {
        let id = self.handle_seq.get();
        self.handle_seq.set(id + 1);
        lock_unpoisoned(&self.outstanding).insert(id, description);
        id
    }

    /// Record a finding and panic with the same text. The job runtime
    /// turns the panic into `SpioError::Comm("rank N panicked: ...")`, so
    /// the diagnosis survives into the job result.
    fn fail(&self, rule: &'static str, detail: String) -> ! {
        self.trace
            .verify_finding(self.inner.rank(), rule, detail.clone());
        panic!("[spio-verify {rule}] {detail}");
    }

    /// Blocking receive with wait-for bookkeeping and stall diagnosis.
    fn recv_diagnosed(
        &self,
        src: Rank,
        tag: Tag,
        context: &'static str,
    ) -> Result<Vec<u8>, SpioError> {
        let me = self.inner.rank();
        self.shared.enter_wait(me, src, tag, context);
        let got = self.inner.recv_timeout(src, tag, self.stall_timeout);
        match got {
            Ok(data) => {
                self.shared.leave_wait(me);
                Ok(data)
            }
            Err(e) => {
                // Leave our edge in place while rendering: the dump should
                // show this rank among the blocked.
                let graph = self.shared.wait_graph();
                self.shared.leave_wait(me);
                let detail = format!(
                    "rank {me} stalled receiving from rank {src} tag {tag:#x} ({context}): {e}\n\
                     wait-for graph at timeout:\n{graph}"
                );
                self.trace.verify_finding(me, "stall", detail.clone());
                Err(SpioError::Comm(detail))
            }
        }
    }

    /// The collective gate: ring-allgather every rank's descriptor over
    /// the reserved verify tags, then check agreement. Runs *before* the
    /// real collective, so a mismatched job fails symmetrically on all
    /// ranks with the same rank-level diff instead of deadlocking inside
    /// the op.
    fn gate(&self, desc: CollDesc) {
        let n = self.inner.size();
        if n == 1 {
            return;
        }
        let me = self.inner.rank();
        let tag = self.next_gate_tag();
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        let mut descs: Vec<Option<CollDesc>> = vec![None; n];
        descs[me] = Some(desc);
        for s in 0..n - 1 {
            let outgoing_origin = (me + n - s) % n;
            let block = descs[outgoing_origin].expect("ring invariant").encode();
            self.inner.isend(right, tag, block).wait();
            let incoming_origin = (me + n - s - 1) % n;
            match self.recv_diagnosed(left, tag, "collective gate") {
                Ok(data) => match CollDesc::decode(&data) {
                    Some(d) => descs[incoming_origin] = Some(d),
                    None => self.fail(
                        "gate-protocol",
                        format!(
                            "rank {me}: malformed gate descriptor from rank {incoming_origin} \
                             ({} bytes) — user traffic on reserved verify tags?",
                            data.len()
                        ),
                    ),
                },
                // recv_diagnosed already recorded the stall finding with
                // the wait-for graph; propagate it as the panic text.
                Err(e) => panic!("[spio-verify stall] rank {me}: collective gate stalled: {e}"),
            }
        }
        let descs: Vec<CollDesc> = descs.into_iter().map(Option::unwrap).collect();
        let key = descs[me].agreement_key();
        if descs.iter().any(|d| d.agreement_key() != key) {
            // Every rank holds the same descriptor vector, so every rank
            // renders the same diff and fails with the same text.
            let diff = descs
                .iter()
                .enumerate()
                .map(|(r, d)| format!("  rank {r}: {}", d.describe()))
                .collect::<Vec<_>>()
                .join("\n");
            self.fail(
                "collective-mismatch",
                format!(
                    "ranks disagree on collective #{}: \n{diff}",
                    self.gate_seq.get()
                ),
            );
        }
    }
}

impl<C: CollectiveComm> Comm for CheckedComm<C> {
    fn rank(&self) -> Rank {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn isend(&self, dest: Rank, tag: Tag, data: Vec<u8>) -> SendHandle {
        let me = self.inner.rank();
        let id = self.register_handle(format!(
            "send handle: rank {me} -> rank {dest} tag {tag:#x} ({} bytes)",
            data.len()
        ));
        let handle = self.inner.isend(dest, tag, data);
        let outstanding = Arc::clone(&self.outstanding);
        SendHandle::from_fn(move || {
            lock_unpoisoned(&outstanding).remove(&id);
            handle.wait();
        })
    }

    fn irecv(&self, src: Rank, tag: Tag) -> RecvHandle {
        let me = self.inner.rank();
        let id = self.register_handle(format!("recv handle: rank {me} <- rank {src} tag {tag:#x}"));
        let handle = self.inner.irecv(src, tag);
        let outstanding = Arc::clone(&self.outstanding);
        let shared = Arc::clone(&self.shared);
        RecvHandle::from_fn(move || {
            shared.enter_wait(me, src, tag, "posted receive");
            let got = handle.wait();
            shared.leave_wait(me);
            if got.is_ok() {
                lock_unpoisoned(&outstanding).remove(&id);
            }
            got
        })
        // The handle stays in `outstanding` when dropped unwaited — that
        // is exactly the leak finalize reports. The inner handle's own
        // drop hook releases the mailbox reservation.
    }

    fn recv(&self, src: Rank, tag: Tag) -> Result<Vec<u8>, SpioError> {
        self.recv_diagnosed(src, tag, "blocking receive")
    }

    fn recv_timeout(&self, src: Rank, tag: Tag, timeout: Duration) -> Result<Vec<u8>, SpioError> {
        let me = self.inner.rank();
        self.shared.enter_wait(me, src, tag, "blocking receive");
        let got = self.inner.recv_timeout(src, tag, timeout);
        self.shared.leave_wait(me);
        got
    }

    fn barrier(&self) {
        self.gate(CollDesc {
            op: CollOp::Barrier.id(),
            root: NONE,
            arity: NONE,
            bytes: 0,
        });
        self.inner.barrier();
    }

    fn allgather(&self, data: &[u8]) -> Vec<Vec<u8>> {
        self.gate(CollDesc {
            op: CollOp::Allgather.id(),
            root: NONE,
            arity: NONE,
            bytes: data.len() as u64,
        });
        self.inner.allgather(data)
    }

    fn alltoall(&self, sends: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        self.gate(CollDesc {
            op: CollOp::Alltoall.id(),
            root: NONE,
            arity: sends.len() as u64,
            bytes: sends.iter().map(|b| b.len() as u64).sum(),
        });
        self.inner.alltoall(sends)
    }

    fn gather_to(&self, root: Rank, data: &[u8]) -> Option<Vec<Vec<u8>>> {
        self.gate(CollDesc {
            op: CollOp::Gather.id(),
            root: root as u64,
            arity: NONE,
            bytes: data.len() as u64,
        });
        self.inner.gather_to(root, data)
    }

    fn broadcast(&self, root: Rank, data: Vec<u8>) -> Vec<u8> {
        self.gate(CollDesc {
            op: CollOp::Broadcast.id(),
            root: root as u64,
            arity: NONE,
            bytes: data.len() as u64,
        });
        self.inner.broadcast(root, data)
    }

    fn unconsumed(&self) -> Vec<(Rank, Tag, usize)> {
        self.inner.unconsumed()
    }
}

impl<C: CollectiveComm> CollectiveComm for CheckedComm<C> {
    fn next_collective_tag(&self) -> Tag {
        self.inner.next_collective_tag()
    }
}

impl<C: CollectiveComm> CheckedComm<C> {
    /// End-of-job leak check: every handle issued must have been waited
    /// and the rank's mailbox must be empty. Findings are recorded into
    /// the trace and returned as one combined error. Consumes the wrapper
    /// — a finalized communicator is out of the game.
    pub fn finalize(self) -> Result<C, SpioError> {
        // Finalize is itself a collective (as in MPI): the gate both
        // cross-checks that every rank reached finalize with the same
        // collective count and, because gate completion requires every
        // rank to have entered it, acts as a barrier — any in-flight
        // peer send has landed in our mailbox before the leak check
        // below reads it. A dead peer surfaces as a gate stall with a
        // wait-for graph, not a silent hang.
        self.gate(CollDesc {
            op: CollOp::Finalize.id(),
            root: NONE,
            arity: NONE,
            bytes: 0,
        });
        let me = self.inner.rank();
        let mut problems = Vec::new();
        for (_, description) in lock_unpoisoned(&self.outstanding).iter() {
            let detail = format!("rank {me}: unwaited {description}");
            self.trace.verify_finding(me, "handle-leak", detail.clone());
            problems.push(detail);
        }
        for (src, tag, bytes) in self.inner.unconsumed() {
            let detail = format!(
                "rank {me}: message from rank {src} tag {tag:#x} ({bytes} bytes) \
                 never received"
            );
            self.trace
                .verify_finding(me, "message-leak", detail.clone());
            problems.push(detail);
        }
        if problems.is_empty() {
            Ok(self.inner)
        } else {
            Err(SpioError::Comm(format!(
                "verification failed at finalize: {}",
                problems.join("; ")
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spio_comm::{run_threaded_collect, ThreadComm};

    fn checked_world(
        nprocs: usize,
        trace: Trace,
        f: impl Fn(&CheckedComm<ThreadComm>) + Send + Sync + 'static,
    ) -> Result<Vec<Result<(), String>>, SpioError> {
        let world = CheckedWorld::new(trace).with_stall_timeout(Duration::from_millis(300));
        run_threaded_collect(nprocs, move |comm| {
            let checked = world.wrap(comm);
            f(&checked);
            checked.finalize().map(|_| ()).map_err(|e| e.to_string())
        })
    }

    #[test]
    fn matched_collectives_pass() {
        let results = checked_world(4, Trace::off(), |comm| {
            comm.barrier();
            let g = comm.allgather(&[comm.rank() as u8]);
            assert_eq!(g.len(), 4);
            let sends = vec![vec![comm.rank() as u8]; 4];
            comm.alltoall(sends);
            comm.gather_to(2, &[1]);
            comm.broadcast(1, vec![9]);
        })
        .unwrap();
        assert!(results.iter().all(Result::is_ok), "{results:?}");
    }

    #[test]
    fn root_disagreement_produces_rank_diff() {
        let trace = Trace::collecting();
        let err = checked_world(3, trace.clone(), |comm| {
            let root = if comm.rank() == 2 { 1 } else { 0 };
            comm.broadcast(root, vec![1]);
        })
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("collective-mismatch"), "{msg}");
        assert!(msg.contains("rank 2: op=broadcast root=1"), "{msg}");
        assert!(msg.contains("rank 0: op=broadcast root=0"), "{msg}");
        let report = spio_trace::JobReport::from_snapshot(3, &trace.snapshot());
        assert!(report
            .verify
            .iter()
            .any(|v| v.rule == "collective-mismatch" && v.count >= 1));
    }

    #[test]
    fn op_disagreement_names_both_ops() {
        let err = checked_world(2, Trace::off(), |comm| {
            if comm.rank() == 0 {
                comm.barrier();
            } else {
                comm.allgather(&[1]);
            }
        })
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("op=barrier"), "{msg}");
        assert!(msg.contains("op=allgather"), "{msg}");
    }

    #[test]
    fn skipped_barrier_is_a_mismatch_not_a_hang() {
        let trace = Trace::collecting();
        let err = checked_world(2, trace.clone(), |comm| {
            if comm.rank() == 0 {
                comm.barrier();
            }
            // rank 1 skips straight to finalize; because finalize is
            // itself gated, rank 0's barrier gate meets rank 1's
            // finalize gate and the divergence is diagnosed
            // deterministically — no stall timeout needed.
        })
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("collective-mismatch"), "{msg}");
        assert!(msg.contains("rank 0: op=barrier"), "{msg}");
        assert!(msg.contains("rank 1: op=finalize"), "{msg}");
    }

    #[test]
    fn unwaited_handles_reported_at_finalize() {
        let trace = Trace::collecting();
        let err = checked_world(2, trace.clone(), |comm| {
            if comm.rank() == 0 {
                // Send handle never waited; posted recv dropped unwaited;
                // the matching message from rank 1 is never consumed.
                let send = comm.isend(1, 7, vec![1, 2, 3]);
                let recv = comm.irecv(1, 8);
                std::mem::forget(send); // deliberately leak the wait
                drop(recv);
            } else {
                comm.recv(0, 7).unwrap();
                comm.send(0, 8, vec![9]);
            }
        })
        .unwrap_err();
        // The job-level strict check flags the orphaned tag-8 message.
        assert!(err.to_string().contains("message leak"), "{err}");
        // CheckedComm's finalize recorded the rank-attributed findings.
        let report = spio_trace::JobReport::from_snapshot(2, &trace.snapshot());
        let count = |rule: &str| {
            report
                .verify
                .iter()
                .find(|v| v.rule == rule)
                .map_or(0, |v| v.count)
        };
        assert_eq!(count("handle-leak"), 2, "{:?}", report.verify);
        assert_eq!(count("message-leak"), 1, "{:?}", report.verify);
    }

    #[test]
    fn p2p_recv_without_send_stalls_diagnosed() {
        let err = checked_world(2, Trace::off(), |comm| {
            if comm.rank() == 0 {
                comm.recv(1, 42).unwrap();
            }
        });
        // rank 0 panics on unwrap of the stall error.
        let msg = err.unwrap_err().to_string();
        assert!(msg.contains("stalled receiving from rank 1"), "{msg}");
        assert!(msg.contains("wait-for graph"), "{msg}");
    }
}
