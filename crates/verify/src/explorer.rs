//! A loom-lite deterministic schedule explorer for multi-rank comm
//! programs.
//!
//! The thread runtime (`run_threaded`) gives the OS scheduler free rein, so
//! a test that passes a thousand times can still hide an
//! interleaving-dependent bug. The explorer removes the nondeterminism: all
//! rank threads share a single *run token*, only the token holder executes,
//! and at every communication yield point (message send, blocking receive,
//! rank completion) a seeded RNG picks which runnable rank gets the token
//! next. One seed is one reproducible schedule; `k` seeds are `k`
//! different total orders over the same program.
//!
//! Deadlocks are *structural*, not temporal: when every unfinished rank is
//! blocked on a receive whose message does not exist, no schedule can make
//! progress, and the explorer fails immediately with the wait-for graph —
//! `rank a <- waiting on rank b (tag t)` — instead of letting the test
//! suite hang until a wall-clock timeout.
//!
//! [`ExplorerComm`] implements [`CollectiveComm`], so every collective
//! algorithm in `spio_comm::collectives` runs over the explorer unchanged;
//! the schedule-invariance suite in `tests/schedule_explorer.rs` leans on
//! exactly that.

use spio_comm::COLLECTIVE_TAG_BASE;
use spio_comm::{collectives, CollectiveComm, Comm, RecvHandle, SendHandle, Tag};
use spio_types::{Rank, SpioError};
use spio_util::{lock_unpoisoned, wait_timeout_unpoisoned, Rng};
use std::cell::Cell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Wall-clock backstop for scheduler waits. Structural deadlock detection
/// means a *program* deadlock never waits this long; only a bug in the
/// scheduler itself could, and then failing loudly beats hanging CI.
const SCHED_BACKSTOP: Duration = Duration::from_secs(30);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    Blocked { src: Rank, tag: Tag },
    Finished,
}

struct SchedState {
    current: usize,
    status: Vec<Status>,
    /// In-flight messages: `(dst, src, tag)` → FIFO payload queue
    /// (non-overtaking per key, same as the thread runtime's mailboxes).
    mail: HashMap<(Rank, Rank, Tag), VecDeque<Vec<u8>>>,
    rng: Rng,
    /// Set when the schedule can no longer make progress (structural
    /// deadlock) or a rank panicked: every thread runs free so the job can
    /// unwind, and blocked receives fail with the diagnosis.
    free_run: bool,
    diagnosis: Option<String>,
}

impl SchedState {
    /// Render the wait-for graph from the blocked set.
    fn wait_graph(&self) -> String {
        let lines: Vec<String> = self
            .status
            .iter()
            .enumerate()
            .filter_map(|(rank, s)| match s {
                Status::Blocked { src, tag } => Some(format!(
                    "  rank {rank} <- waiting on rank {src} (tag {:#x})",
                    tag
                )),
                _ => None,
            })
            .collect();
        if lines.is_empty() {
            "  (no ranks blocked)".to_string()
        } else {
            lines.join("\n")
        }
    }

    /// Hand the token to a randomly chosen runnable rank. When nothing is
    /// runnable: all-finished is a clean end; anything else is a
    /// structural deadlock and flips the state into free-run with the
    /// wait-for graph as diagnosis.
    fn choose_next(&mut self) {
        let runnable: Vec<usize> = self
            .status
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        if let Some(&pick) = runnable.get(self.rng.index(runnable.len().max(1))) {
            self.current = pick;
            return;
        }
        if self.status.iter().all(|s| *s == Status::Finished) {
            self.current = usize::MAX;
            return;
        }
        let graph = self.wait_graph();
        self.free_run = true;
        self.diagnosis = Some(format!(
            "structural deadlock: no rank can make progress\nwait-for graph:\n{graph}"
        ));
    }
}

struct Sched {
    state: Mutex<SchedState>,
    cv: Condvar,
}

impl Sched {
    fn new(nprocs: usize, seed: u64) -> Arc<Sched> {
        Arc::new(Sched {
            state: Mutex::new(SchedState {
                current: 0,
                status: vec![Status::Runnable; nprocs],
                mail: HashMap::new(),
                rng: Rng::seed_from_u64(seed),
                free_run: false,
                diagnosis: None,
            }),
            cv: Condvar::new(),
        })
    }

    /// Block until `me` holds the token (or the job is in free-run).
    fn wait_for_turn<'a>(
        &'a self,
        me: Rank,
        mut state: std::sync::MutexGuard<'a, SchedState>,
    ) -> std::sync::MutexGuard<'a, SchedState> {
        while !state.free_run && state.current != me {
            let (guard, timed_out) = wait_timeout_unpoisoned(&self.cv, state, SCHED_BACKSTOP);
            state = guard;
            if timed_out.timed_out() && !state.free_run && state.current != me {
                state.free_run = true;
                state.diagnosis = Some(
                    "schedule explorer backstop fired: scheduler wedged (explorer bug)".to_string(),
                );
                self.cv.notify_all();
            }
        }
        state
    }

    fn send(&self, me: Rank, dest: Rank, tag: Tag, data: Vec<u8>) {
        let mut state = lock_unpoisoned(&self.state);
        state
            .mail
            .entry((dest, me, tag))
            .or_default()
            .push_back(data);
        // A rank blocked on exactly this (src, tag) becomes runnable.
        if state.status[dest] == (Status::Blocked { src: me, tag }) {
            state.status[dest] = Status::Runnable;
        }
        if state.free_run {
            self.cv.notify_all();
            return;
        }
        state.choose_next();
        self.cv.notify_all();
        let _state = self.wait_for_turn(me, state);
    }

    fn recv(&self, me: Rank, src: Rank, tag: Tag) -> Result<Vec<u8>, SpioError> {
        let mut state = lock_unpoisoned(&self.state);
        loop {
            if let Some(q) = state.mail.get_mut(&(me, src, tag)) {
                if let Some(msg) = q.pop_front() {
                    if q.is_empty() {
                        state.mail.remove(&(me, src, tag));
                    }
                    return Ok(msg);
                }
            }
            if state.free_run {
                let why = state
                    .diagnosis
                    .clone()
                    .unwrap_or_else(|| "job unwinding after failure".to_string());
                return Err(SpioError::Comm(format!(
                    "rank {me}: receive from rank {src} tag {tag:#x} cannot complete: {why}"
                )));
            }
            state.status[me] = Status::Blocked { src, tag };
            state.choose_next();
            self.cv.notify_all();
            state = self.wait_for_turn(me, state);
        }
    }

    fn finish(&self, me: Rank) {
        let mut state = lock_unpoisoned(&self.state);
        state.status[me] = Status::Finished;
        if !state.free_run {
            state.choose_next();
        }
        self.cv.notify_all();
    }
}

/// One rank's communicator inside an explored schedule. Implements
/// [`CollectiveComm`]: collectives run the *same* algorithms the thread
/// runtime uses (`dissemination_barrier`, `ring_allgather`, …), just over
/// the deterministic scheduler.
pub struct ExplorerComm {
    sched: Arc<Sched>,
    rank: Rank,
    size: usize,
    coll_seq: Cell<u32>,
}

impl Comm for ExplorerComm {
    fn rank(&self) -> Rank {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn isend(&self, dest: Rank, tag: Tag, data: Vec<u8>) -> SendHandle {
        assert!(
            dest < self.size,
            "rank {} addressed peer {dest} outside world of size {}",
            self.rank,
            self.size
        );
        self.sched.send(self.rank, dest, tag, data);
        SendHandle::from_fn(|| {})
    }

    fn irecv(&self, src: Rank, tag: Tag) -> RecvHandle {
        assert!(
            src < self.size,
            "rank {} addressed peer {src} outside world of size {}",
            self.rank,
            self.size
        );
        let sched = Arc::clone(&self.sched);
        let me = self.rank;
        RecvHandle::from_fn(move || sched.recv(me, src, tag))
    }

    fn barrier(&self) {
        collectives::dissemination_barrier(self);
    }

    fn allgather(&self, data: &[u8]) -> Vec<Vec<u8>> {
        collectives::ring_allgather(self, data)
    }

    fn alltoall(&self, sends: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        collectives::direct_alltoall(self, sends)
    }

    fn gather_to(&self, root: Rank, data: &[u8]) -> Option<Vec<Vec<u8>>> {
        collectives::gather_to(self, root, data)
    }

    fn broadcast(&self, root: Rank, data: Vec<u8>) -> Vec<u8> {
        collectives::binomial_broadcast(self, root, data)
    }

    /// Timeouts are meaningless under deterministic scheduling — a recv
    /// either completes in some schedule step or the job is structurally
    /// deadlocked, which the scheduler detects without a clock.
    fn recv_timeout(&self, src: Rank, tag: Tag, _timeout: Duration) -> Result<Vec<u8>, SpioError> {
        self.sched.recv(self.rank, src, tag)
    }

    fn unconsumed(&self) -> Vec<(Rank, Tag, usize)> {
        let state = lock_unpoisoned(&self.sched.state);
        let mut out: Vec<(Rank, Tag, usize)> = state
            .mail
            .iter()
            .filter(|((dst, _, _), _)| *dst == self.rank)
            .flat_map(|(&(_, src, tag), q)| q.iter().map(move |m| (src, tag, m.len())))
            .collect();
        out.sort_unstable();
        out
    }
}

impl CollectiveComm for ExplorerComm {
    fn next_collective_tag(&self) -> Tag {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq.wrapping_add(1));
        COLLECTIVE_TAG_BASE + (seq % 0x0fff_ffff) * 8
    }
}

/// Run `f` once per rank under one seeded deterministic schedule,
/// discarding per-rank results.
pub fn explore<F>(nprocs: usize, seed: u64, f: F) -> Result<(), SpioError>
where
    F: Fn(ExplorerComm) + Send + Sync + 'static,
{
    explore_collect(nprocs, seed, f).map(|_| ())
}

/// Run `f` once per rank under one seeded deterministic schedule and
/// collect rank-indexed results.
///
/// Fails with a rank-attributed diagnosis when a rank panics, when the
/// schedule reaches a structural deadlock (the error carries the wait-for
/// graph), or when messages are left undelivered at the end (leak check,
/// mirroring `run_threaded_collect`).
pub fn explore_collect<F, T>(nprocs: usize, seed: u64, f: F) -> Result<Vec<T>, SpioError>
where
    F: Fn(ExplorerComm) -> T + Send + Sync + 'static,
    T: Send + 'static,
{
    assert!(nprocs > 0, "world size must be positive");
    let sched = Sched::new(nprocs, seed);
    let f = Arc::new(f);
    let handles: Vec<_> = (0..nprocs)
        .map(|rank| {
            let sched = Arc::clone(&sched);
            let f = Arc::clone(&f);
            std::thread::Builder::new()
                .name(format!("explore-rank-{rank}"))
                .stack_size(2 * 1024 * 1024)
                .spawn(move || {
                    let comm = ExplorerComm {
                        sched: Arc::clone(&sched),
                        rank,
                        size: nprocs,
                        coll_seq: Cell::new(0),
                    };
                    // Wait for the initial token (rank 0 starts with it).
                    {
                        let state = lock_unpoisoned(&sched.state);
                        let _state = sched.wait_for_turn(rank, state);
                    }
                    let result = catch_unwind(AssertUnwindSafe(|| f(comm)));
                    // Pass the token on even when unwinding, or the
                    // remaining ranks would wait forever.
                    sched.finish(rank);
                    result
                })
                .expect("failed to spawn explorer rank thread")
        })
        .collect();

    let mut results: Vec<Option<T>> = (0..nprocs).map(|_| None).collect();
    let mut first_panic: Option<(usize, String)> = None;
    for (rank, handle) in handles.into_iter().enumerate() {
        match handle.join().expect("explorer rank thread itself died") {
            Ok(v) => results[rank] = Some(v),
            Err(payload) => {
                if first_panic.is_none() {
                    let msg = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    first_panic = Some((rank, msg));
                }
            }
        }
    }
    let state = lock_unpoisoned(&sched.state);
    if let Some((rank, msg)) = first_panic {
        let diagnosis = state
            .diagnosis
            .clone()
            .map(|d| format!("\n{d}"))
            .unwrap_or_default();
        return Err(SpioError::Comm(format!(
            "rank {rank} panicked: {msg}{diagnosis}"
        )));
    }
    if let Some(d) = &state.diagnosis {
        return Err(SpioError::Comm(d.clone()));
    }
    let leaks: Vec<String> = {
        let mut sorted: BTreeMap<(Rank, Rank, Tag), usize> = BTreeMap::new();
        for (&(dst, src, tag), q) in &state.mail {
            if !q.is_empty() {
                *sorted.entry((dst, src, tag)).or_default() += q.len();
            }
        }
        sorted
            .into_iter()
            .map(|((dst, src, tag), n)| {
                format!("rank {dst}: {n} unreceived message(s) from rank {src} tag {tag:#x}")
            })
            .collect()
    };
    if !leaks.is_empty() {
        return Err(SpioError::Comm(format!(
            "message leak at end of schedule: {}",
            leaks.join("; ")
        )));
    }
    Ok(results.into_iter().map(Option::unwrap).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_roundtrip_under_many_seeds() {
        for seed in 0..20 {
            let results = explore_collect(2, seed, |comm| {
                if comm.rank() == 0 {
                    comm.send(1, 5, vec![1, 2, 3]);
                    comm.recv(1, 6).unwrap()
                } else {
                    let mut m = comm.recv(0, 5).unwrap();
                    m.reverse();
                    comm.send(0, 6, m);
                    Vec::new()
                }
            })
            .unwrap();
            assert_eq!(results[0], vec![3, 2, 1], "seed {seed}");
        }
    }

    #[test]
    fn recv_without_send_is_structural_deadlock_not_hang() {
        let start = std::time::Instant::now();
        let err = explore(2, 7, |comm| {
            if comm.rank() == 0 {
                comm.recv(1, 42).unwrap();
            }
        })
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("structural deadlock"), "{msg}");
        assert!(msg.contains("rank 0 <- waiting on rank 1"), "{msg}");
        // Structural detection is immediate — no wall-clock timeout.
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn cyclic_wait_dumps_full_graph() {
        let err = explore(2, 3, |comm| {
            // Both ranks receive first: classic head-to-head deadlock.
            let peer = 1 - comm.rank();
            let _ = comm.recv(peer, 1);
            comm.send(peer, 1, vec![1]);
        })
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("rank 0 <- waiting on rank 1"), "{msg}");
        assert!(msg.contains("rank 1 <- waiting on rank 0"), "{msg}");
    }

    #[test]
    fn undelivered_message_is_a_leak() {
        let err = explore(2, 1, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 9, vec![1]);
            }
        })
        .unwrap_err();
        assert!(err.to_string().contains("message leak"), "{}", err);
    }

    #[test]
    fn collectives_run_over_the_explorer() {
        let results = explore_collect(4, 11, |comm| {
            comm.barrier();
            let g = comm.allgather(&[comm.rank() as u8]);
            let b = comm.broadcast(2, if comm.rank() == 2 { vec![7] } else { vec![] });
            (g, b)
        })
        .unwrap();
        for (g, b) in results {
            assert_eq!(g, vec![vec![0], vec![1], vec![2], vec![3]]);
            assert_eq!(b, vec![7]);
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        // The schedule trace (order of receives completing) must be
        // byte-identical across runs with the same seed.
        let order_of = |seed: u64| {
            explore_collect(3, seed, |comm| {
                if comm.rank() == 0 {
                    let a = comm.irecv(1, 1);
                    let b = comm.irecv(2, 1);
                    let x = a.wait().unwrap();
                    let y = b.wait().unwrap();
                    vec![x[0], y[0]]
                } else {
                    comm.send(0, 1, vec![comm.rank() as u8]);
                    vec![]
                }
            })
            .unwrap()
        };
        for seed in [0, 1, 2, 42] {
            assert_eq!(order_of(seed), order_of(seed), "seed {seed}");
        }
    }
}
