//! `spio lint`: a std-only source scanner with a baseline ratchet.
//!
//! Three rules, all aimed at panic/abort discipline in library code:
//!
//! * `unwrap-expect` — no `.unwrap()` / `.expect(` in non-test library
//!   code. Panics in library paths kill whole jobs; errors must travel as
//!   `SpioError`.
//! * `systemtime-now` — no direct `SystemTime::now` outside the trace
//!   clock. Ad-hoc wall-clock reads make traces unmergeable and tests
//!   flaky; time flows through `Trace`'s epoch.
//! * `lock-unwrap` — no bare `Mutex::lock().unwrap()` in `spio-serve`
//!   (pool/cache): a panicked worker poisons the lock and a bare unwrap
//!   turns one bad request into a dead server. Use
//!   `spio_util::lock_unpoisoned`.
//!
//! Counts are compared against a committed per-crate baseline
//! (`lint.ratchet` at the repo root). The gate is a *ratchet*: counts may
//! only decrease. Existing debt is tolerated but frozen; new debt fails
//! CI. After paying debt down, `spio lint --update` rewrites the baseline.
//!
//! The scanner is deliberately token-level, not a full parser: string and
//! comment contents are masked first (so doc-comment examples never
//! count), and `#[cfg(test)]` items are excluded by brace tracking.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Rule identifier for the `.unwrap()` / `.expect(` ban.
pub const RULE_UNWRAP: &str = "unwrap-expect";
/// Rule identifier for the `SystemTime::now` ban outside the trace clock.
pub const RULE_SYSTEMTIME: &str = "systemtime-now";
/// Rule identifier for bare `.lock().unwrap()` in spio-serve.
pub const RULE_LOCK_UNWRAP: &str = "lock-unwrap";

/// Where to scan and where the baseline lives.
pub struct LintConfig {
    /// Workspace root (the directory containing `crates/` and `src/`).
    pub root: PathBuf,
}

impl LintConfig {
    pub fn new(root: impl Into<PathBuf>) -> Self {
        LintConfig { root: root.into() }
    }

    /// Default location of the committed baseline.
    pub fn ratchet_path(&self) -> PathBuf {
        self.root.join("lint.ratchet")
    }
}

/// One rule violation at a specific source line.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

/// Scan result: per-`(crate, rule)` totals plus the individual findings.
#[derive(Debug, Default)]
pub struct LintCounts {
    /// `(crate name, rule) -> count`. Zero-count pairs are omitted.
    pub counts: BTreeMap<(String, String), u64>,
    pub findings: Vec<Finding>,
}

impl LintCounts {
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    fn record(&mut self, krate: &str, finding: Finding) {
        *self
            .counts
            .entry((krate.to_string(), finding.rule.to_string()))
            .or_insert(0) += 1;
        self.findings.push(finding);
    }
}

/// Scan every crate under `<root>/crates/*/src` plus the umbrella
/// `<root>/src`, applying all rules. Test directories (`tests/`,
/// `benches/`) are never visited; `#[cfg(test)]` items inside library
/// files are excluded by the masker.
pub fn lint_tree(cfg: &LintConfig) -> io::Result<LintCounts> {
    let mut out = LintCounts::default();
    let crates_dir = cfg.root.join("crates");
    let mut roots: Vec<(String, PathBuf)> = Vec::new();
    if crates_dir.is_dir() {
        let mut entries: Vec<_> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        entries.sort();
        for dir in entries {
            let src = dir.join("src");
            if !src.is_dir() {
                continue;
            }
            let name = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            roots.push((name, src));
        }
    }
    let umbrella = cfg.root.join("src");
    if umbrella.is_dir() {
        roots.push(("spio (umbrella)".to_string(), umbrella));
    }
    for (krate, src) in roots {
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for file in files {
            let text = fs::read_to_string(&file)?;
            let rel = file
                .strip_prefix(&cfg.root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            lint_source(&krate, &rel, &text, &mut out);
        }
    }
    Ok(out)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Apply all rules to one file's text. Public so tests (and future rules)
/// can lint snippets without touching the filesystem.
pub fn lint_source(krate: &str, rel_path: &str, text: &str, out: &mut LintCounts) {
    let masked = mask_test_items(&mask_comments_and_strings(text));
    // Rule scoping: the trace clock is the one sanctioned wall-clock
    // reader; tempdir naming in spio-util is grandfathered via the
    // ratchet, not exempted here.
    let systemtime_exempt = rel_path.starts_with("crates/trace/src");
    let lock_rule_applies = rel_path.starts_with("crates/serve/src");
    for (idx, (line, orig)) in masked.lines().zip(text.lines()).enumerate() {
        let lineno = idx + 1;
        let hit = |rule: &'static str, out: &mut LintCounts| {
            out.record(
                krate,
                Finding {
                    file: rel_path.to_string(),
                    line: lineno,
                    rule,
                    excerpt: orig.trim().to_string(),
                },
            );
        };
        let lock_unwraps = count_matches(line, ".lock().unwrap()");
        if lock_rule_applies {
            for _ in 0..lock_unwraps {
                hit(RULE_LOCK_UNWRAP, out);
            }
        }
        // A `.lock().unwrap()` already counted under lock-unwrap should
        // not double-count under unwrap-expect in the same crate.
        let mut unwraps = count_matches(line, ".unwrap()");
        if lock_rule_applies {
            unwraps = unwraps.saturating_sub(lock_unwraps);
        }
        let expects = count_matches(line, ".expect(");
        for _ in 0..unwraps + expects {
            hit(RULE_UNWRAP, out);
        }
        if !systemtime_exempt {
            for _ in 0..count_matches(line, "SystemTime::now") {
                hit(RULE_SYSTEMTIME, out);
            }
        }
    }
}

fn count_matches(line: &str, needle: &str) -> usize {
    let mut n = 0;
    let mut rest = line;
    while let Some(pos) = rest.find(needle) {
        n += 1;
        rest = &rest[pos + needle.len()..];
    }
    n
}

/// Replace the contents of comments, string literals, and char literals
/// with spaces, preserving byte length and newlines so line numbers and
/// column-free matching stay valid.
pub fn mask_comments_and_strings(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = b.to_vec();
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    out[i] = b' ';
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 0usize;
                while i < b.len() {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if b[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if is_raw_string_start(b, i) => {
                // r"...", r#"..."#, br"...", b"...": find the opening
                // quote and the required closing hash count.
                let mut j = i;
                if b[j] == b'b' {
                    j += 1;
                }
                if b.get(j) == Some(&b'r') {
                    j += 1;
                }
                let mut hashes = 0;
                while b.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                // j is at the opening quote.
                let mut k = j + 1;
                'scan: while k < b.len() {
                    if b[k] == b'"' {
                        let mut h = 0;
                        while h < hashes && b.get(k + 1 + h) == Some(&b'#') {
                            h += 1;
                        }
                        if h == hashes {
                            k += 1 + hashes;
                            break 'scan;
                        }
                    }
                    k += 1;
                }
                for p in i..k.min(b.len()) {
                    if b[p] != b'\n' {
                        out[p] = b' ';
                    }
                }
                i = k;
            }
            b'"' => {
                out[i] = b' ';
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' {
                        out[i] = b' ';
                        if i + 1 < b.len() && b[i + 1] != b'\n' {
                            out[i + 1] = b' ';
                        }
                        i += 2;
                        continue;
                    }
                    if b[i] == b'"' {
                        out[i] = b' ';
                        i += 1;
                        break;
                    }
                    if b[i] != b'\n' {
                        out[i] = b' ';
                    }
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal or lifetime? A char literal closes within a
                // few bytes ('x', '\n', '\u{1F600}'); a lifetime never
                // closes with a quote.
                if let Some(end) = char_literal_end(b, i) {
                    out[i..=end].fill(b' ');
                    i = end + 1;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    String::from_utf8(out).unwrap_or_else(|_| src.to_string())
}

fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    // Must not be the tail of an identifier (e.g. `for r` in `var`).
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return false;
    }
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if b.get(j) == Some(&b'r') {
        j += 1;
    } else if b[i] == b'b' && b.get(j) == Some(&b'"') {
        return true; // b"..."
    } else {
        return false;
    }
    while b.get(j) == Some(&b'#') {
        j += 1;
    }
    b.get(j) == Some(&b'"')
}

fn char_literal_end(b: &[u8], i: usize) -> Option<usize> {
    debug_assert_eq!(b[i], b'\'');
    let next = *b.get(i + 1)?;
    if next == b'\\' {
        // Escape: scan to the closing quote (bounded; '\u{...}' is longest).
        let mut k = i + 2;
        let limit = (i + 12).min(b.len());
        while k < limit {
            if b[k] == b'\'' {
                return Some(k);
            }
            k += 1;
        }
        None
    } else if b.get(i + 2) == Some(&b'\'') && next != b'\'' {
        Some(i + 2)
    } else {
        // Multi-byte UTF-8 char literal, e.g. 'é'.
        let mut k = i + 1;
        let limit = (i + 6).min(b.len());
        while k < limit {
            if b[k] == b'\'' && k > i + 1 {
                return Some(k);
            }
            k += 1;
        }
        None
    }
}

/// Mask every item annotated `#[cfg(test)]` (typically `mod tests { .. }`)
/// by brace tracking. Input must already be comment/string masked so brace
/// counting is reliable.
pub fn mask_test_items(masked: &str) -> String {
    let b = masked.as_bytes();
    let mut out = b.to_vec();
    let needle = b"#[cfg(test)]";
    let mut i = 0;
    while i + needle.len() <= b.len() {
        if &b[i..i + needle.len()] != needle.as_slice() {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i + needle.len();
        // Find the item body: first '{' begins a braced item; a ';' at
        // depth zero first means an un-braced item (`#[cfg(test)] use ..;`).
        let mut end = b.len();
        while j < b.len() {
            if b[j] == b';' {
                end = j + 1;
                break;
            }
            if b[j] == b'{' {
                let mut depth = 1usize;
                j += 1;
                while j < b.len() && depth > 0 {
                    match b[j] {
                        b'{' => depth += 1,
                        b'}' => depth -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                end = j;
                break;
            }
            j += 1;
        }
        for p in start..end {
            if b[p] != b'\n' {
                out[p] = b' ';
            }
        }
        i = end;
    }
    String::from_utf8(out).unwrap_or_else(|_| masked.to_string())
}

/// The committed baseline: `(crate, rule) -> tolerated count`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Ratchet {
    pub entries: BTreeMap<(String, String), u64>,
}

/// Outcome of comparing a scan against the baseline.
#[derive(Debug, Default)]
pub struct Comparison {
    /// `(crate, rule, baseline, current)` where current > baseline. Any
    /// regression fails the gate.
    pub regressions: Vec<(String, String, u64, u64)>,
    /// `(crate, rule, baseline, current)` where current < baseline: debt
    /// paid down; the baseline should be re-tightened with `--update`.
    pub improvements: Vec<(String, String, u64, u64)>,
}

impl Comparison {
    pub fn is_ok(&self) -> bool {
        self.regressions.is_empty()
    }
}

impl Ratchet {
    /// Parse the `lint.ratchet` format: `# comment` lines plus
    /// `<crate> <rule> <count>` entries.
    pub fn parse(text: &str) -> Result<Ratchet, String> {
        let mut entries = BTreeMap::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(krate), Some(rule), Some(count)) = (parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "lint.ratchet line {}: expected `<crate> <rule> <count>`, got `{line}`",
                    idx + 1
                ));
            };
            let count: u64 = count
                .parse()
                .map_err(|_| format!("lint.ratchet line {}: bad count `{count}`", idx + 1))?;
            entries.insert((krate.to_string(), rule.to_string()), count);
        }
        Ok(Ratchet { entries })
    }

    pub fn load(path: &Path) -> io::Result<Ratchet> {
        let text = fs::read_to_string(path)?;
        Ratchet::parse(&text).map_err(io::Error::other)
    }

    pub fn from_counts(counts: &LintCounts) -> Ratchet {
        Ratchet {
            entries: counts
                .counts
                .iter()
                .filter(|(_, &n)| n > 0)
                .map(|(k, &n)| (k.clone(), n))
                .collect(),
        }
    }

    /// Serialize in the committed file format (sorted, commented header).
    pub fn render(&self) -> String {
        let mut s = String::from(
            "# spio lint baseline ratchet. Counts may only decrease.\n\
             # Regenerate after paying down debt: spio lint --update\n\
             # <crate> <rule> <count>\n",
        );
        for ((krate, rule), count) in &self.entries {
            let _ = writeln!(s, "{krate} {rule} {count}");
        }
        s
    }

    /// Compare a fresh scan against this baseline. Pairs absent from the
    /// baseline have an implicit tolerated count of zero.
    pub fn compare(&self, current: &LintCounts) -> Comparison {
        let mut cmp = Comparison::default();
        let mut keys: Vec<&(String, String)> =
            self.entries.keys().chain(current.counts.keys()).collect();
        keys.sort();
        keys.dedup();
        for key in keys {
            let base = self.entries.get(key).copied().unwrap_or(0);
            let cur = current.counts.get(key).copied().unwrap_or(0);
            let record = (key.0.clone(), key.1.clone(), base, cur);
            if cur > base {
                cmp.regressions.push(record);
            } else if cur < base {
                cmp.improvements.push(record);
            }
        }
        cmp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_hides_comments_strings_and_doc_examples() {
        let src = r###"
fn f() {
    // a.unwrap() in a comment
    /// doc: b.unwrap()
    let s = "c.unwrap()";
    let r = r#"d.unwrap()"#;
    let c = '"';
    let real = maybe.unwrap();
}
"###;
        let masked = mask_comments_and_strings(src);
        assert_eq!(count_matches(&masked, ".unwrap()"), 1, "{masked}");
        assert_eq!(masked.lines().count(), src.lines().count());
    }

    #[test]
    fn block_comments_nest_and_preserve_lines() {
        let src = "/* outer /* inner.unwrap() */ still */ x.unwrap()\ny";
        let masked = mask_comments_and_strings(src);
        assert_eq!(count_matches(&masked, ".unwrap()"), 1);
        assert!(masked.contains("x.unwrap()"));
    }

    #[test]
    fn lifetimes_do_not_start_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } // y.unwrap()";
        let masked = mask_comments_and_strings(src);
        assert!(masked.contains("fn f<'a>(x: &'a str)"));
        assert_eq!(count_matches(&masked, ".unwrap()"), 0);
    }

    #[test]
    fn cfg_test_modules_are_excluded() {
        let src = "fn lib() { a.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { b.unwrap(); c.unwrap(); }\n}\n";
        let masked = mask_test_items(&mask_comments_and_strings(src));
        assert_eq!(count_matches(&masked, ".unwrap()"), 1);
    }

    #[test]
    fn rules_scope_by_path_and_do_not_double_count_lock_unwrap() {
        let src = "fn f() { m.lock().unwrap(); x.unwrap(); t = SystemTime::now(); }\n";
        let mut serve = LintCounts::default();
        lint_source("serve", "crates/serve/src/pool.rs", src, &mut serve);
        assert_eq!(serve.counts[&("serve".into(), RULE_LOCK_UNWRAP.into())], 1);
        assert_eq!(serve.counts[&("serve".into(), RULE_UNWRAP.into())], 1);
        assert_eq!(serve.counts[&("serve".into(), RULE_SYSTEMTIME.into())], 1);

        let mut trace = LintCounts::default();
        lint_source("trace", "crates/trace/src/lib.rs", src, &mut trace);
        // lock-unwrap only applies in serve; SystemTime allowed in trace.
        assert!(!trace
            .counts
            .contains_key(&("trace".into(), RULE_LOCK_UNWRAP.into())));
        assert!(!trace
            .counts
            .contains_key(&("trace".into(), RULE_SYSTEMTIME.into())));
        // The bare .unwrap() and the .lock().unwrap() both count as
        // unwrap-expect here since the lock rule is out of scope.
        assert_eq!(trace.counts[&("trace".into(), RULE_UNWRAP.into())], 2);
    }

    #[test]
    fn ratchet_round_trips_and_compares() {
        let mut counts = LintCounts::default();
        lint_source(
            "core",
            "crates/core/src/x.rs",
            "fn f() { a.unwrap(); b.unwrap(); }\n",
            &mut counts,
        );
        let base = Ratchet::from_counts(&counts);
        let text = base.render();
        let reparsed = Ratchet::parse(&text).expect("render must reparse");
        assert_eq!(base, reparsed);

        // Same counts: clean.
        assert!(base.compare(&counts).is_ok());

        // One more unwrap: regression.
        let mut worse = LintCounts::default();
        lint_source(
            "core",
            "crates/core/src/x.rs",
            "fn f() { a.unwrap(); b.unwrap(); c.unwrap(); }\n",
            &mut worse,
        );
        let cmp = base.compare(&worse);
        assert_eq!(cmp.regressions.len(), 1);
        assert_eq!(cmp.regressions[0].2, 2);
        assert_eq!(cmp.regressions[0].3, 3);

        // One fewer: improvement, still ok.
        let mut better = LintCounts::default();
        lint_source(
            "core",
            "crates/core/src/x.rs",
            "fn f() { a.unwrap(); }\n",
            &mut better,
        );
        let cmp = base.compare(&better);
        assert!(cmp.is_ok());
        assert_eq!(cmp.improvements.len(), 1);
    }

    #[test]
    fn findings_carry_file_line_and_excerpt() {
        let mut counts = LintCounts::default();
        lint_source(
            "comm",
            "crates/comm/src/lib.rs",
            "fn ok() {}\nfn bad() { x.expect(\"boom\"); }\n",
            &mut counts,
        );
        assert_eq!(counts.findings.len(), 1);
        let f = &counts.findings[0];
        assert_eq!(f.line, 2);
        assert_eq!(f.rule, RULE_UNWRAP);
        assert!(f.excerpt.contains("x.expect("));
    }
}
