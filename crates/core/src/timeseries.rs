//! Time-series datasets: one spatially-aware dataset per simulation
//! timestep under a shared storage root.
//!
//! The paper's write path runs once per checkpoint/timestep ("data per
//! core for each timestep", §5.1). This module organizes repeated writes:
//! each timestep's files get a `tNNNNNN.` name prefix via
//! [`PrefixedStorage`], and a small series manifest records which steps
//! exist, so analysis tools can iterate a run's history with the same
//! readers used for single datasets.

use crate::storage::Storage;
use crate::writer::SpatialWriter;
use crate::{DatasetReader, WriteStats};
use spio_comm::Comm;
use spio_types::{Particle, SpioError};

/// Name of the series manifest file.
pub const SERIES_FILE_NAME: &str = "series.spt";

const SERIES_MAGIC: [u8; 8] = *b"SPIOSER1";

/// File-name prefix for a timestep's dataset.
pub fn timestep_prefix(step: u64) -> String {
    format!("t{step:06}.")
}

/// A view of a [`Storage`] where every name is prefixed — this is how one
/// directory holds many timesteps without any backend support for
/// subdirectories.
pub struct PrefixedStorage<'a, S: Storage> {
    inner: &'a S,
    prefix: String,
}

impl<'a, S: Storage> PrefixedStorage<'a, S> {
    pub fn new(inner: &'a S, prefix: String) -> Self {
        PrefixedStorage { inner, prefix }
    }

    /// The view of `storage` holding timestep `step`.
    pub fn for_step(inner: &'a S, step: u64) -> Self {
        Self::new(inner, timestep_prefix(step))
    }

    fn full(&self, name: &str) -> String {
        format!("{}{}", self.prefix, name)
    }
}

impl<S: Storage> Storage for PrefixedStorage<'_, S> {
    fn write_file(&self, name: &str, data: &[u8]) -> Result<(), SpioError> {
        self.inner.write_file(&self.full(name), data)
    }

    fn read_file(&self, name: &str) -> Result<Vec<u8>, SpioError> {
        self.inner.read_file(&self.full(name))
    }

    fn read_range(&self, name: &str, start: u64, end: u64) -> Result<Vec<u8>, SpioError> {
        self.inner.read_range(&self.full(name), start, end)
    }

    fn file_size(&self, name: &str) -> Result<u64, SpioError> {
        self.inner.file_size(&self.full(name))
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.exists(&self.full(name))
    }

    fn write_range(&self, name: &str, offset: u64, data: &[u8]) -> Result<(), SpioError> {
        self.inner.write_range(&self.full(name), offset, data)
    }
}

/// The series manifest: which timesteps exist, in write order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SeriesManifest {
    pub steps: Vec<u64>,
}

impl SeriesManifest {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + 8 * self.steps.len());
        out.extend_from_slice(&SERIES_MAGIC);
        out.extend_from_slice(&(self.steps.len() as u64).to_le_bytes());
        for s in &self.steps {
            out.extend_from_slice(&s.to_le_bytes());
        }
        out
    }

    pub fn decode(bytes: &[u8]) -> Result<Self, SpioError> {
        if bytes.len() < 16 || bytes[..8] != SERIES_MAGIC {
            return Err(SpioError::Format("bad series manifest".into()));
        }
        let n = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        if bytes.len() != 16 + 8 * n {
            return Err(SpioError::Format("series manifest length mismatch".into()));
        }
        let steps = (0..n)
            .map(|i| u64::from_le_bytes(bytes[16 + i * 8..24 + i * 8].try_into().unwrap()))
            .collect();
        Ok(SeriesManifest { steps })
    }

    /// Load the manifest, or an empty one if the series is new.
    pub fn load<S: Storage>(storage: &S) -> Result<Self, SpioError> {
        match storage.read_file(SERIES_FILE_NAME) {
            Ok(bytes) => Self::decode(&bytes),
            Err(SpioError::NotFound(_)) => Ok(SeriesManifest::default()),
            Err(e) => Err(e),
        }
    }
}

/// Writes a sequence of timesteps, maintaining the manifest.
pub struct SeriesWriter {
    writer: SpatialWriter,
}

impl SeriesWriter {
    pub fn new(writer: SpatialWriter) -> Self {
        SeriesWriter { writer }
    }

    /// Collective: write `particles` as timestep `step`. Steps may be
    /// written in any order but each step only once.
    pub fn write_timestep<C: Comm, S: Storage>(
        &self,
        comm: &C,
        step: u64,
        particles: &[Particle],
        storage: &S,
    ) -> Result<WriteStats, SpioError> {
        let view = PrefixedStorage::for_step(storage, step);
        let stats = self.writer.write(comm, particles, &view)?;
        // Rank 0 appends to the manifest after its own phases completed;
        // the collective inside write() ordered everyone before this point.
        if comm.rank() == 0 {
            let mut manifest = SeriesManifest::load(storage)?;
            if manifest.steps.contains(&step) {
                return Err(SpioError::Config(format!(
                    "timestep {step} already written"
                )));
            }
            manifest.steps.push(step);
            storage.write_file(SERIES_FILE_NAME, &manifest.encode())?;
        }
        Ok(stats)
    }
}

/// Open one timestep of a series for reading.
pub fn open_timestep<S: Storage>(
    storage: &S,
    step: u64,
) -> Result<(DatasetReader, PrefixedStorage<'_, S>), SpioError> {
    let view = PrefixedStorage::for_step(storage, step);
    let reader = DatasetReader::open(&view)?;
    Ok((reader, view))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;
    use crate::writer::WriterConfig;
    use spio_comm::run_threaded_collect;
    use spio_types::{Aabb3, DomainDecomposition, GridDims, PartitionFactor};

    fn decomp() -> DomainDecomposition {
        DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(2, 2, 1))
    }

    fn particles(rank: usize, step: u64, n: usize) -> Vec<Particle> {
        let b = decomp().patch_bounds(rank);
        (0..n)
            .map(|i| {
                let t = (i as f64 + 0.5) / n as f64;
                Particle::synthetic(
                    [b.lo[0] + t * (b.hi[0] - b.lo[0]) * 0.99, b.center()[1], 0.5],
                    (step << 40) | ((rank as u64) << 32) | i as u64,
                )
            })
            .collect()
    }

    fn write_steps(storage: &MemStorage, steps: &[u64]) {
        for &step in steps {
            let s2 = storage.clone();
            run_threaded_collect(4, move |comm| {
                use spio_comm::Comm;
                let writer = SeriesWriter::new(SpatialWriter::new(
                    decomp(),
                    WriterConfig::new(PartitionFactor::new(2, 1, 1)),
                ));
                writer
                    .write_timestep(&comm, step, &particles(comm.rank(), step, 50), &s2)
                    .unwrap();
            })
            .unwrap();
        }
    }

    #[test]
    fn manifest_roundtrip() {
        let m = SeriesManifest {
            steps: vec![0, 10, 20],
        };
        assert_eq!(SeriesManifest::decode(&m.encode()).unwrap(), m);
        assert!(SeriesManifest::decode(&m.encode()[..10]).is_err());
    }

    #[test]
    fn multiple_timesteps_coexist() {
        let storage = MemStorage::new();
        write_steps(&storage, &[0, 10, 20]);
        let manifest = SeriesManifest::load(&storage).unwrap();
        assert_eq!(manifest.steps, vec![0, 10, 20]);
        // Each step reads back independently with the right ids.
        for &step in &manifest.steps {
            let (reader, view) = open_timestep(&storage, step).unwrap();
            assert_eq!(reader.meta.total_particles, 200);
            let (all, _) = reader.read_all(&view).unwrap();
            assert!(all.iter().all(|p| p.id >> 40 == step));
        }
    }

    #[test]
    fn duplicate_timestep_is_rejected() {
        let storage = MemStorage::new();
        write_steps(&storage, &[5]);
        let s2 = storage.clone();
        let results = run_threaded_collect(4, move |comm| {
            use spio_comm::Comm;
            let writer = SeriesWriter::new(SpatialWriter::new(
                decomp(),
                WriterConfig::new(PartitionFactor::new(2, 1, 1)),
            ));
            writer
                .write_timestep(&comm, 5, &particles(comm.rank(), 5, 50), &s2)
                .map(|_| ())
        })
        .unwrap();
        assert!(results[0].is_err(), "rank 0 must reject the duplicate");
    }

    #[test]
    fn missing_series_is_empty() {
        let storage = MemStorage::new();
        assert!(SeriesManifest::load(&storage).unwrap().steps.is_empty());
        assert!(open_timestep(&storage, 3).is_err());
    }

    #[test]
    fn prefixed_storage_isolates_names() {
        let storage = MemStorage::new();
        let a = PrefixedStorage::for_step(&storage, 1);
        let b = PrefixedStorage::for_step(&storage, 2);
        a.write_file("x", &[1]).unwrap();
        b.write_file("x", &[2]).unwrap();
        assert_eq!(a.read_file("x").unwrap(), vec![1]);
        assert_eq!(b.read_file("x").unwrap(), vec![2]);
        assert!(a.exists("x") && !a.exists("y"));
        assert_eq!(storage.file_names(), vec!["t000001.x", "t000002.x"]);
        // Ranged ops pass through.
        a.write_range("r", 2, &[9]).unwrap();
        assert_eq!(a.file_size("r").unwrap(), 3);
        assert_eq!(a.read_range("r", 2, 3).unwrap(), vec![9]);
    }
}
