//! Per-phase timing and volume statistics reported by the writer and
//! readers. These drive the Fig. 6-style aggregation-vs-I/O breakdowns on
//! the real runtime (the at-scale breakdowns come from `hpcsim`).

use std::time::Duration;

/// One rank's accounting of a write operation.
#[derive(Debug, Clone, Default)]
pub struct WriteStats {
    /// Time in grid setup and (for adaptive mode) the extent/count exchange.
    pub setup_time: Duration,
    /// Time exchanging metadata and particle data over the network
    /// (the paper's "data aggregation" phase).
    pub aggregation_time: Duration,
    /// Time spent in the LOD reshuffle.
    pub shuffle_time: Duration,
    /// Time writing data files to storage (the paper's "file I/O" phase).
    pub file_io_time: Duration,
    /// Time writing the spatial metadata file (rank 0 only).
    pub meta_time: Duration,
    /// Particles this rank contributed.
    pub particles_sent: u64,
    /// Particles this rank aggregated (0 for non-aggregators).
    pub particles_aggregated: u64,
    /// Bytes this rank wrote to storage.
    pub bytes_written: u64,
    /// Data files this rank wrote (0 or 1).
    pub files_written: u32,
}

impl WriteStats {
    /// Total wall time of the phases this rank measured.
    pub fn total_time(&self) -> Duration {
        self.setup_time
            + self.aggregation_time
            + self.shuffle_time
            + self.file_io_time
            + self.meta_time
    }

    /// Fraction of measured time spent in aggregation (communication) —
    /// the quantity plotted in Fig. 6.
    pub fn aggregation_fraction(&self) -> f64 {
        let total = self.total_time().as_secs_f64();
        if total == 0.0 {
            return 0.0;
        }
        self.aggregation_time.as_secs_f64() / total
    }

    /// Merge per-rank stats into a job-wide maximum-by-phase summary
    /// (phases are bulk-synchronous, so the slowest rank bounds each).
    pub fn merge_max(stats: &[WriteStats]) -> WriteStats {
        let mut out = WriteStats::default();
        for s in stats {
            out.setup_time = out.setup_time.max(s.setup_time);
            out.aggregation_time = out.aggregation_time.max(s.aggregation_time);
            out.shuffle_time = out.shuffle_time.max(s.shuffle_time);
            out.file_io_time = out.file_io_time.max(s.file_io_time);
            out.meta_time = out.meta_time.max(s.meta_time);
            out.particles_sent += s.particles_sent;
            out.particles_aggregated += s.particles_aggregated;
            out.bytes_written += s.bytes_written;
            out.files_written += s.files_written;
        }
        out
    }
}

/// One rank's accounting of a read operation.
#[derive(Debug, Clone, Default)]
pub struct ReadStats {
    /// Data files opened.
    pub files_opened: u64,
    /// Bytes read from storage.
    pub bytes_read: u64,
    /// Particles returned to the caller.
    pub particles_read: u64,
    /// Particles decoded but discarded by filtering (a measure of wasted
    /// I/O when spatial metadata is absent).
    pub particles_discarded: u64,
    /// Wall time of the read.
    pub time: Duration,
}

impl ReadStats {
    /// Sum per-rank read stats (I/O volumes add; time takes the max since
    /// readers run concurrently).
    pub fn merge(stats: &[ReadStats]) -> ReadStats {
        let mut out = ReadStats::default();
        for s in stats {
            out.files_opened += s.files_opened;
            out.bytes_read += s.bytes_read;
            out.particles_read += s.particles_read;
            out.particles_discarded += s.particles_discarded;
            out.time = out.time.max(s.time);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_fraction() {
        let s = WriteStats {
            aggregation_time: Duration::from_millis(25),
            file_io_time: Duration::from_millis(75),
            ..Default::default()
        };
        assert!((s.aggregation_fraction() - 0.25).abs() < 1e-9);
        assert_eq!(WriteStats::default().aggregation_fraction(), 0.0);
    }

    #[test]
    fn merge_max_takes_slowest_phase_and_sums_volumes() {
        let a = WriteStats {
            aggregation_time: Duration::from_millis(10),
            file_io_time: Duration::from_millis(90),
            bytes_written: 100,
            files_written: 1,
            ..Default::default()
        };
        let b = WriteStats {
            aggregation_time: Duration::from_millis(30),
            file_io_time: Duration::from_millis(50),
            bytes_written: 50,
            ..Default::default()
        };
        let m = WriteStats::merge_max(&[a, b]);
        assert_eq!(m.aggregation_time, Duration::from_millis(30));
        assert_eq!(m.file_io_time, Duration::from_millis(90));
        assert_eq!(m.bytes_written, 150);
        assert_eq!(m.files_written, 1);
    }

    #[test]
    fn read_merge_sums_and_maxes() {
        let a = ReadStats {
            files_opened: 2,
            bytes_read: 10,
            particles_read: 5,
            particles_discarded: 1,
            time: Duration::from_millis(5),
        };
        let b = ReadStats {
            files_opened: 1,
            bytes_read: 20,
            particles_read: 7,
            particles_discarded: 0,
            time: Duration::from_millis(9),
        };
        let m = ReadStats::merge(&[a, b]);
        assert_eq!(m.files_opened, 3);
        assert_eq!(m.bytes_read, 30);
        assert_eq!(m.particles_read, 12);
        assert_eq!(m.time, Duration::from_millis(9));
    }
}
