//! Seeded chaos-injection storage backend.
//!
//! Grown out of the ad-hoc `FaultyStorage` the failure-injection tests
//! used: a first-class [`Storage`] wrapper that injects the fault classes a
//! parallel file system actually exhibits, from a seeded RNG so every
//! schedule is reproducible. Tests and benches wrap any backend in
//! [`ChaosStorage`] to prove the stack degrades instead of corrupting:
//!
//! * **Transient faults** — an op fails once with [`SpioError::Io`]; the
//!   same op retried succeeds. What [`crate::RetryStorage`] absorbs.
//! * **Persistent faults** — a file is *poisoned*: every subsequent op on
//!   it fails. What `read_box_partial` degrades around.
//! * **Torn writes** — a prefix of the data is persisted, then the write
//!   reports failure. What atomic write-then-rename and
//!   `DatasetReader::open` validation must tolerate.
//! * **Bit flips** — a read returns successfully with one bit silently
//!   flipped. What format-v2 checksums must catch.
//! * **Budgets** — the first `n` reads/writes succeed and all later ones
//!   fail: deterministic "storage died mid-job" schedules.
//!
//! Only payload ops (`write_file`, `write_range`, `read_file`,
//! `read_range`) are faultable; `file_size` and `exists` pass through, so
//! fault schedules stay easy to reason about.

use crate::storage::Storage;
use spio_trace::Trace;
use spio_types::SpioError;
use spio_util::Rng;
use std::collections::HashSet;
use std::sync::{Arc, Mutex};

/// What to inject, and how often. The default injects nothing.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for all randomized decisions (fault rolls, tear points, flip
    /// positions). Same seed + same op sequence → same chaos.
    pub seed: u64,
    /// Probability an eligible read op faults.
    pub read_fault_rate: f64,
    /// Probability an eligible write op faults.
    pub write_fault_rate: f64,
    /// Of randomly injected faults, the fraction that are transient; the
    /// rest poison the file persistently.
    pub transient_ratio: f64,
    /// Deterministic schedule overriding the random rates: faultable ops
    /// `1, 1+n, 1+2n, …` (1-based) fail with a transient fault. `Some(1)`
    /// makes every op fail — a persistent outage.
    pub transient_every: Option<u64>,
    /// Probability a `write_file` is torn: a random strict prefix is
    /// persisted and the op reports failure.
    pub torn_write_rate: f64,
    /// Probability a successful read comes back with one bit flipped.
    pub bit_flip_rate: f64,
    /// Writes allowed before all writes fail (`None` = unlimited).
    pub write_budget: Option<u64>,
    /// Reads allowed before all reads fail (`None` = unlimited).
    pub read_budget: Option<u64>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            read_fault_rate: 0.0,
            write_fault_rate: 0.0,
            transient_ratio: 1.0,
            transient_every: None,
            torn_write_rate: 0.0,
            bit_flip_rate: 0.0,
            write_budget: None,
            read_budget: None,
        }
    }
}

impl ChaosConfig {
    /// Budget-only config: first `writes` writes and `reads` reads succeed,
    /// later ones fail (the old `FaultyStorage` behaviour).
    pub fn budgets(writes: u64, reads: u64) -> Self {
        ChaosConfig {
            write_budget: Some(writes),
            read_budget: Some(reads),
            ..ChaosConfig::default()
        }
    }
}

/// Counters of everything injected so far — for assertions and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Faults injected by `transient_every` or the transient share of the
    /// random rates.
    pub transient_faults: u64,
    /// Random faults that poisoned a file, plus every op rejected because
    /// its file was already poisoned.
    pub persistent_faults: u64,
    /// Writes that persisted only a prefix.
    pub torn_writes: u64,
    /// Reads returned with a silently flipped bit.
    pub bit_flips: u64,
    /// Ops rejected by an exhausted read/write budget.
    pub budget_faults: u64,
}

impl ChaosStats {
    /// Total operations that returned an injected error.
    pub fn total_faults(&self) -> u64 {
        self.transient_faults + self.persistent_faults + self.torn_writes + self.budget_faults
    }
}

#[derive(Debug)]
struct ChaosState {
    rng: Rng,
    /// 1-based index of the next faultable op (for `transient_every`).
    next_op: u64,
    poisoned: HashSet<String>,
    write_budget: Option<u64>,
    read_budget: Option<u64>,
    stats: ChaosStats,
}

enum Verdict {
    Proceed,
    /// Fail with an I/O error; the kind ("transient", "persistent",
    /// "budget") is already counted in the stats.
    Fault(&'static str),
    /// Persist `data[..tear_at]` then fail.
    Tear(usize),
}

/// A [`Storage`] wrapper injecting seeded faults per a [`ChaosConfig`].
///
/// With [`ChaosStorage::with_trace`], every injection is additionally
/// recorded as a first-class *injected* fault event, so `spio report`
/// separates chaos-injected faults from organic backend errors.
#[derive(Debug, Clone)]
pub struct ChaosStorage<S: Storage> {
    inner: S,
    config: ChaosConfig,
    state: Arc<Mutex<ChaosState>>,
    trace: Trace,
    rank: usize,
}

impl<S: Storage> ChaosStorage<S> {
    pub fn new(inner: S, config: ChaosConfig) -> Self {
        let state = ChaosState {
            rng: Rng::seed_from_u64(config.seed),
            next_op: 1,
            poisoned: HashSet::new(),
            write_budget: config.write_budget,
            read_budget: config.read_budget,
            stats: ChaosStats::default(),
        };
        ChaosStorage {
            inner,
            config,
            state: Arc::new(Mutex::new(state)),
            trace: Trace::off(),
            rank: 0,
        }
    }

    /// Record every injected fault into `trace` as a fault event
    /// attributed to `rank` (with `injected == true`).
    pub fn with_trace(mut self, trace: Trace, rank: usize) -> Self {
        self.trace = trace;
        self.rank = rank;
        self
    }

    /// The wrapped backend — handy for seeding files without chaos.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Snapshot of the injection counters.
    pub fn stats(&self) -> ChaosStats {
        self.state.lock().unwrap().stats
    }

    /// Explicitly poison `name`: every subsequent op on it fails. Lets
    /// tests stage "one bad file" scenarios without probabilistic config.
    pub fn poison(&self, name: &str) {
        self.state.lock().unwrap().poisoned.insert(name.to_string());
    }

    /// Decide the fate of one faultable op. `write` selects which budget
    /// and rate apply; `len` is the write length (for tear points).
    fn roll(&self, name: &str, write: bool, len: usize) -> Verdict {
        let st = &mut *self.state.lock().unwrap();
        let budget = if write {
            &mut st.write_budget
        } else {
            &mut st.read_budget
        };
        if let Some(b) = budget {
            if *b == 0 {
                st.stats.budget_faults += 1;
                return Verdict::Fault("budget");
            }
            *b -= 1;
        }
        if st.poisoned.contains(name) {
            st.stats.persistent_faults += 1;
            return Verdict::Fault("persistent");
        }
        let op = st.next_op;
        st.next_op += 1;
        if let Some(every) = self.config.transient_every {
            if every > 0 && (op - 1).is_multiple_of(every) {
                st.stats.transient_faults += 1;
                return Verdict::Fault("transient");
            }
        }
        let rate = if write {
            self.config.write_fault_rate
        } else {
            self.config.read_fault_rate
        };
        if rate > 0.0 && st.rng.f64() < rate {
            if st.rng.f64() < self.config.transient_ratio {
                st.stats.transient_faults += 1;
                return Verdict::Fault("transient");
            }
            st.poisoned.insert(name.to_string());
            st.stats.persistent_faults += 1;
            return Verdict::Fault("persistent");
        }
        if write
            && len > 0
            && self.config.torn_write_rate > 0.0
            && st.rng.f64() < self.config.torn_write_rate
        {
            st.stats.torn_writes += 1;
            return Verdict::Tear(st.rng.u64_below(len as u64) as usize);
        }
        Verdict::Proceed
    }

    /// Maybe flip one bit of a successful read's buffer; reports whether a
    /// flip was injected.
    fn maybe_flip(&self, buf: &mut [u8]) -> bool {
        if buf.is_empty() || self.config.bit_flip_rate <= 0.0 {
            return false;
        }
        let st = &mut *self.state.lock().unwrap();
        if st.rng.f64() < self.config.bit_flip_rate {
            let byte = st.rng.u64_below(buf.len() as u64) as usize;
            let bit = (st.rng.next_u64() % 8) as u8;
            buf[byte] ^= 1 << bit;
            st.stats.bit_flips += 1;
            return true;
        }
        false
    }

    /// Record the injection as a fault event (the state lock is already
    /// released) and build the error callers see.
    fn inject(&self, kind: &'static str, name: &str) -> SpioError {
        self.trace.fault(self.rank, kind, name, true);
        SpioError::Io(std::io::Error::other(match kind {
            "budget" => "injected budget fault",
            "persistent" => "injected persistent fault",
            "transient" => "injected transient fault",
            "torn_write" => "injected torn write",
            other => other,
        }))
    }
}

impl<S: Storage> Storage for ChaosStorage<S> {
    fn write_file(&self, name: &str, data: &[u8]) -> Result<(), SpioError> {
        match self.roll(name, true, data.len()) {
            Verdict::Proceed => self.inner.write_file(name, data),
            Verdict::Fault(kind) => Err(self.inject(kind, name)),
            Verdict::Tear(at) => {
                let _ = self.inner.write_file(name, &data[..at]);
                Err(self.inject("torn_write", name))
            }
        }
    }

    fn read_file(&self, name: &str) -> Result<Vec<u8>, SpioError> {
        match self.roll(name, false, 0) {
            Verdict::Proceed => {
                let mut buf = self.inner.read_file(name)?;
                if self.maybe_flip(&mut buf) {
                    self.trace.fault(self.rank, "bit_flip", name, true);
                }
                Ok(buf)
            }
            Verdict::Fault(kind) => Err(self.inject(kind, name)),
            Verdict::Tear(_) => unreachable!("reads never tear"),
        }
    }

    fn read_range(&self, name: &str, start: u64, end: u64) -> Result<Vec<u8>, SpioError> {
        match self.roll(name, false, 0) {
            Verdict::Proceed => {
                let mut buf = self.inner.read_range(name, start, end)?;
                if self.maybe_flip(&mut buf) {
                    self.trace.fault(self.rank, "bit_flip", name, true);
                }
                Ok(buf)
            }
            Verdict::Fault(kind) => Err(self.inject(kind, name)),
            Verdict::Tear(_) => unreachable!("reads never tear"),
        }
    }

    fn file_size(&self, name: &str) -> Result<u64, SpioError> {
        self.inner.file_size(name)
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.exists(name)
    }

    fn write_range(&self, name: &str, offset: u64, data: &[u8]) -> Result<(), SpioError> {
        match self.roll(name, true, data.len()) {
            Verdict::Proceed => self.inner.write_range(name, offset, data),
            Verdict::Fault(kind) => Err(self.inject(kind, name)),
            Verdict::Tear(at) => {
                let _ = self.inner.write_range(name, offset, &data[..at]);
                Err(self.inject("torn_write", name))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    #[test]
    fn default_config_is_transparent() {
        let chaos = ChaosStorage::new(MemStorage::new(), ChaosConfig::default());
        chaos.write_file("a", &[1, 2, 3]).unwrap();
        assert_eq!(chaos.read_file("a").unwrap(), vec![1, 2, 3]);
        assert_eq!(chaos.read_range("a", 1, 3).unwrap(), vec![2, 3]);
        assert_eq!(chaos.file_size("a").unwrap(), 3);
        assert_eq!(chaos.stats(), ChaosStats::default());
    }

    #[test]
    fn budgets_exhaust_like_faulty_storage() {
        let chaos = ChaosStorage::new(MemStorage::new(), ChaosConfig::budgets(1, 1));
        chaos.write_file("a", &[1]).unwrap();
        assert!(matches!(chaos.write_file("b", &[2]), Err(SpioError::Io(_))));
        assert_eq!(chaos.read_file("a").unwrap(), vec![1]);
        assert!(chaos.read_file("a").is_err());
        assert_eq!(chaos.stats().budget_faults, 2);
    }

    #[test]
    fn transient_every_schedule_is_exact() {
        let chaos = ChaosStorage::new(
            MemStorage::new(),
            ChaosConfig {
                transient_every: Some(3),
                ..ChaosConfig::default()
            },
        );
        chaos.inner().write_file("a", &[7]).unwrap();
        // Ops 1, 4, 7 fault; 2, 3, 5, 6, 8 succeed.
        let outcomes: Vec<bool> = (0..8).map(|_| chaos.read_file("a").is_ok()).collect();
        assert_eq!(
            outcomes,
            vec![false, true, true, false, true, true, false, true]
        );
        assert_eq!(chaos.stats().transient_faults, 3);
    }

    #[test]
    fn poisoned_files_fail_persistently_others_work() {
        let chaos = ChaosStorage::new(MemStorage::new(), ChaosConfig::default());
        chaos.write_file("good", &[1]).unwrap();
        chaos.write_file("bad", &[2]).unwrap();
        chaos.poison("bad");
        for _ in 0..3 {
            assert!(matches!(chaos.read_file("bad"), Err(SpioError::Io(_))));
            assert_eq!(chaos.read_file("good").unwrap(), vec![1]);
        }
        assert_eq!(chaos.stats().persistent_faults, 3);
    }

    #[test]
    fn torn_writes_persist_a_strict_prefix() {
        let chaos = ChaosStorage::new(
            MemStorage::new(),
            ChaosConfig {
                seed: 11,
                torn_write_rate: 1.0,
                ..ChaosConfig::default()
            },
        );
        let data = vec![0xAB; 100];
        assert!(chaos.write_file("t", &data).is_err());
        let stats = chaos.stats();
        assert_eq!(stats.torn_writes, 1);
        // Whatever landed is shorter than the intended write.
        let on_disk = chaos.inner().read_file("t").map(|d| d.len()).unwrap_or(0);
        assert!(on_disk < data.len(), "torn write persisted {on_disk} bytes");
    }

    #[test]
    fn bit_flips_corrupt_silently() {
        let chaos = ChaosStorage::new(
            MemStorage::new(),
            ChaosConfig {
                seed: 5,
                bit_flip_rate: 1.0,
                ..ChaosConfig::default()
            },
        );
        let data = vec![0u8; 64];
        chaos.write_file("f", &data).unwrap();
        let got = chaos.read_file("f").unwrap(); // Ok — corruption is silent
        let flipped: u32 = got
            .iter()
            .zip(&data)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1, "exactly one bit flips per affected read");
        assert_eq!(chaos.stats().bit_flips, 1);
    }

    #[test]
    fn random_faults_are_reproducible_across_seeds() {
        let run = |seed: u64| -> Vec<bool> {
            let chaos = ChaosStorage::new(
                MemStorage::new(),
                ChaosConfig {
                    seed,
                    read_fault_rate: 0.5,
                    transient_ratio: 1.0,
                    ..ChaosConfig::default()
                },
            );
            chaos.inner().write_file("a", &[1]).unwrap();
            (0..32).map(|_| chaos.read_file("a").is_ok()).collect()
        };
        assert_eq!(run(99), run(99), "same seed, same schedule");
        assert_ne!(run(99), run(100), "different seed, different schedule");
        let outcomes = run(99);
        assert!(outcomes.iter().any(|&ok| ok) && outcomes.iter().any(|&ok| !ok));
    }

    #[test]
    fn injections_are_recorded_as_fault_events() {
        let trace = Trace::collecting();
        let chaos = ChaosStorage::new(
            MemStorage::new(),
            ChaosConfig {
                transient_every: Some(2),
                ..ChaosConfig::default()
            },
        )
        .with_trace(trace.clone(), 5);
        chaos.inner().write_file("a", &[1]).unwrap();
        // Ops 1 and 3 fault, op 2 succeeds.
        let outcomes: Vec<bool> = (0..3).map(|_| chaos.read_file("a").is_ok()).collect();
        assert_eq!(outcomes, vec![false, true, false]);
        let faults: Vec<_> = trace
            .events()
            .into_iter()
            .filter(|e| {
                matches!(
                    e,
                    spio_trace::TraceEvent::Fault {
                        rank: 5,
                        kind: "transient",
                        injected: true,
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(faults.len(), 2);
        assert_eq!(trace.snapshot().files, vec!["a"]);
    }

    #[test]
    fn torn_and_flip_injections_record_their_kinds() {
        let trace = Trace::collecting();
        let chaos = ChaosStorage::new(
            MemStorage::new(),
            ChaosConfig {
                seed: 11,
                torn_write_rate: 1.0,
                bit_flip_rate: 1.0,
                ..ChaosConfig::default()
            },
        )
        .with_trace(trace.clone(), 0);
        chaos.inner().write_file("f", &[0u8; 64]).unwrap();
        assert!(chaos.write_file("t", &[0xAB; 100]).is_err());
        let _ = chaos.read_file("f").unwrap();
        let kinds: Vec<&str> = trace
            .events()
            .into_iter()
            .filter_map(|e| match e {
                spio_trace::TraceEvent::Fault {
                    kind,
                    injected: true,
                    ..
                } => Some(kind),
                _ => None,
            })
            .collect();
        assert!(kinds.contains(&"torn_write"), "kinds: {kinds:?}");
        assert!(kinds.contains(&"bit_flip"), "kinds: {kinds:?}");
    }

    #[test]
    fn clones_share_state() {
        let a = ChaosStorage::new(MemStorage::new(), ChaosConfig::budgets(1, u64::MAX));
        let b = a.clone();
        a.write_file("x", &[1]).unwrap();
        assert!(b.write_file("y", &[2]).is_err(), "budget is shared");
        assert_eq!(a.stats(), b.stats());
    }
}
