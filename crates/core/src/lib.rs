//! # spio-core
//!
//! The paper's primary contribution: spatially-aware two-phase parallel I/O
//! for particle data (Kumar et al., ICPP 2019).
//!
//! The write path (§3) imposes an *aggregation-grid* on the simulation
//! domain, assigns one aggregator rank per grid partition, exchanges
//! metadata and then particles so that each aggregator holds a spatially
//! compact, disjoint box of the domain, shuffles each aggregated buffer into
//! a level-of-detail order, and writes one data file per partition plus a
//! spatial metadata file. The read path (§4) uses the metadata to open only
//! the files a box query touches, and reads file prefixes to realize
//! progressively refined levels of detail. §6's adaptive aggregation builds
//! the grid over just the occupied portion of the domain for non-uniform
//! particle distributions.
//!
//! The algorithms are generic over the [`spio_comm::Comm`] message-passing
//! trait and the [`Storage`] backend, so the same code runs on the
//! thread-backed runtime against a real filesystem (tests, examples) and is
//! introspected by the `hpcsim` performance simulator through the
//! [`plan`] module.

pub mod adaptive;
pub mod chaos;
pub mod grid;
pub mod plan;
pub mod reader;
pub mod retry;
pub mod shuffle;
pub mod stats;
pub mod storage;
pub mod timeseries;
pub mod writer;

pub use adaptive::AdaptiveGrid;
pub use chaos::{ChaosConfig, ChaosStats, ChaosStorage};
pub use grid::{AggregationGrid, Partition};
pub use plan::{ReadPlan, WritePlan};
pub use reader::{
    append_box_hits, BoxQueryReader, DatasetReader, FileOutcome, LodCursor, LodReader, PartialRead,
    RestartReader,
};
pub use retry::{RetryPolicy, RetryStorage};
pub use shuffle::LodOrder;
pub use stats::{ReadStats, WriteStats};
pub use storage::{FsStorage, MemStorage, Storage, TracedStorage};
pub use timeseries::{open_timestep, PrefixedStorage, SeriesManifest, SeriesWriter};
pub use writer::{SpatialWriter, WriteMode, WriterConfig};
