//! Scalable parallel reads for analysis and visualization (§4).
//!
//! Three mechanisms make reads fast: (1) aggregation produces few, large
//! files, so readers open fewer files than file-per-process layouts; (2)
//! files are spatially coherent, so a box query touches few of them; (3)
//! the spatial metadata file tells every reader exactly which files its
//! query needs — without it, a reader must scan *all* files and discard
//! most particles. LOD reads exploit the shuffled layout: a file prefix is
//! a uniform subsample, and appending the next level is a further
//! sequential read.

use crate::stats::ReadStats;
use crate::storage::Storage;
use spio_comm::Comm;
use spio_format::data_file::{
    decode_data_file, footer_range, payload_range, DataFileHeader, HEADER_BYTES,
};
use spio_format::{LodParams, SpatialMetadata, META_FILE_NAME};
use spio_trace::Trace;
use spio_types::{Aabb3, DomainDecomposition, GridDims, Particle, Rank, SpioError, PARTICLE_BYTES};
use spio_util::Crc32;
use std::time::Instant;

/// Phase-span names the read path records into an attached [`Trace`].
pub mod phases {
    pub const META: &str = "read:meta";
    pub const BOX: &str = "read:box";
    pub const SCAN: &str = "read:scan";
    pub const RANGE: &str = "read:range";
    pub const LOD: &str = "read:lod";
    pub const PARTIAL: &str = "read:partial";
}

/// A handle to a written dataset: the parsed spatial metadata.
#[derive(Debug, Clone)]
pub struct DatasetReader {
    pub meta: SpatialMetadata,
    trace: Trace,
    rank: Rank,
}

impl DatasetReader {
    /// Open a dataset by reading and parsing its spatial metadata file
    /// ("a lightweight I/O task", §4).
    pub fn open<S: Storage>(storage: &S) -> Result<Self, SpioError> {
        let bytes = storage.read_file(META_FILE_NAME)?;
        Ok(DatasetReader {
            meta: SpatialMetadata::decode(&bytes)?,
            trace: Trace::off(),
            rank: 0,
        })
    }

    /// Like [`DatasetReader::open`], but records read-phase spans
    /// ([`phases`]) into `trace` attributed to `rank` — including a
    /// `read:meta` span for the metadata fetch itself.
    pub fn open_traced<S: Storage>(
        storage: &S,
        trace: Trace,
        rank: Rank,
    ) -> Result<Self, SpioError> {
        let t0 = Instant::now();
        let reader = Self::open(storage)?;
        trace.phase(rank, phases::META, t0.elapsed());
        Ok(DatasetReader {
            trace,
            rank,
            ..reader
        })
    }

    /// Box query using spatial metadata: open only the files whose bounds
    /// intersect `query`, filter particles to the query box. Files fully
    /// contained in the query skip the per-particle filter.
    pub fn read_box<S: Storage>(
        &self,
        storage: &S,
        query: &Aabb3,
    ) -> Result<(Vec<Particle>, ReadStats), SpioError> {
        let t0 = Instant::now();
        let mut stats = ReadStats::default();
        let mut out = Vec::new();
        for idx in self.meta.files_intersecting(query) {
            let entry = &self.meta.entries[idx];
            let bytes = storage.read_file(&entry.file_name())?;
            stats.files_opened += 1;
            stats.bytes_read += bytes.len() as u64;
            let (_, particles) = decode_data_file(&bytes)?;
            let kept = append_box_hits(query, &entry.bounds, &particles, &mut out);
            stats.particles_discarded += (particles.len() - kept) as u64;
        }
        stats.particles_read = out.len() as u64;
        stats.time = t0.elapsed();
        self.trace.phase(self.rank, phases::BOX, stats.time);
        Ok((out, stats))
    }

    /// The spatially unaware baseline read (Fig. 7's "without spatial
    /// metadata" case): scan *every* data file, keeping only particles in
    /// the query box. The file names still come from the metadata (we need
    /// to enumerate them somehow) but the per-file bounds are deliberately
    /// ignored.
    pub fn read_box_without_metadata<S: Storage>(
        &self,
        storage: &S,
        query: &Aabb3,
    ) -> Result<(Vec<Particle>, ReadStats), SpioError> {
        let t0 = Instant::now();
        let mut stats = ReadStats::default();
        let mut out = Vec::new();
        for entry in &self.meta.entries {
            let bytes = storage.read_file(&entry.file_name())?;
            stats.files_opened += 1;
            stats.bytes_read += bytes.len() as u64;
            let (_, particles) = decode_data_file(&bytes)?;
            // Count discards from what was actually decoded, not from the
            // metadata's particle count: a tampered or stale metadata entry
            // must not underflow this subtraction.
            let decoded = particles.len();
            let before = out.len();
            out.extend(particles.into_iter().filter(|p| query.contains(p.position)));
            stats.particles_discarded += (decoded - (out.len() - before)) as u64;
        }
        stats.particles_read = out.len() as u64;
        stats.time = t0.elapsed();
        self.trace.phase(self.rank, phases::SCAN, stats.time);
        Ok((out, stats))
    }

    /// Attribute range-query (§3.5 extension): return particles inside
    /// `query` whose density lies in `[density_lo, density_hi]`. Files are
    /// pruned by both the spatial metadata and the per-file attribute
    /// ranges, so files that cannot contain matching particles are never
    /// opened.
    pub fn read_box_density<S: Storage>(
        &self,
        storage: &S,
        query: &Aabb3,
        density_lo: f64,
        density_hi: f64,
    ) -> Result<(Vec<Particle>, ReadStats), SpioError> {
        let t0 = Instant::now();
        let mut stats = ReadStats::default();
        let mut out = Vec::new();
        for idx in self
            .meta
            .files_for_range_query(query, density_lo, density_hi)
        {
            let entry = &self.meta.entries[idx];
            let bytes = storage.read_file(&entry.file_name())?;
            stats.files_opened += 1;
            stats.bytes_read += bytes.len() as u64;
            let (_, particles) = decode_data_file(&bytes)?;
            let decoded = particles.len();
            let before = out.len();
            out.extend(particles.into_iter().filter(|p| {
                query.contains(p.position) && p.density >= density_lo && p.density <= density_hi
            }));
            stats.particles_discarded += (decoded - (out.len() - before)) as u64;
        }
        stats.particles_read = out.len() as u64;
        stats.time = t0.elapsed();
        self.trace.phase(self.rank, phases::RANGE, stats.time);
        Ok((out, stats))
    }

    /// Read the entire dataset.
    pub fn read_all<S: Storage>(
        &self,
        storage: &S,
    ) -> Result<(Vec<Particle>, ReadStats), SpioError> {
        self.read_box(storage, &self.meta.domain.clone())
    }

    /// Box query with graceful degradation: like [`DatasetReader::read_box`]
    /// but one unreadable or corrupt file does not fail the whole query.
    /// Every intersecting file gets a [`FileOutcome`]; particles from the
    /// files that *did* read land in [`PartialRead::particles`]. A
    /// visualization client renders what arrived and reports the holes.
    pub fn read_box_partial<S: Storage>(&self, storage: &S, query: &Aabb3) -> PartialRead {
        let t0 = Instant::now();
        let mut stats = ReadStats::default();
        let mut out = Vec::new();
        let mut outcomes = Vec::new();
        for idx in self.meta.files_intersecting(query) {
            let entry = &self.meta.entries[idx];
            let name = entry.file_name();
            let decoded = storage
                .read_file(&name)
                .and_then(|bytes| {
                    stats.files_opened += 1;
                    stats.bytes_read += bytes.len() as u64;
                    decode_data_file(&bytes)
                })
                .map(|(_, particles)| particles);
            match decoded {
                Ok(particles) => {
                    let kept = append_box_hits(query, &entry.bounds, &particles, &mut out);
                    stats.particles_discarded += (particles.len() - kept) as u64;
                    outcomes.push(FileOutcome {
                        file: name,
                        particles: kept as u64,
                        error: None,
                    });
                }
                Err(e) => {
                    // Degraded-file events let `spio report` count how many
                    // holes a partial query tolerated.
                    self.trace.fault(self.rank, "partial_read", &name, false);
                    outcomes.push(FileOutcome {
                        file: name,
                        particles: 0,
                        error: Some(e),
                    });
                }
            }
        }
        stats.particles_read = out.len() as u64;
        stats.time = t0.elapsed();
        self.trace.phase(self.rank, phases::PARTIAL, stats.time);
        PartialRead {
            particles: out,
            outcomes,
            stats,
        }
    }
}

/// Per-file result of a [`DatasetReader::read_box_partial`] query.
#[derive(Debug)]
pub struct FileOutcome {
    /// Data-file name.
    pub file: String,
    /// Particles this file contributed to the result.
    pub particles: u64,
    /// Why the file contributed nothing (`None` = read fine).
    pub error: Option<SpioError>,
}

impl FileOutcome {
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

/// Result of a degraded box query: whatever could be read, plus what
/// couldn't and why.
#[derive(Debug)]
pub struct PartialRead {
    /// Particles from every file that read and decoded cleanly.
    pub particles: Vec<Particle>,
    /// One entry per file the query touched, in metadata order.
    pub outcomes: Vec<FileOutcome>,
    /// I/O stats over the successful reads.
    pub stats: ReadStats,
}

impl PartialRead {
    /// Did every touched file read cleanly? If so the result is identical
    /// to [`DatasetReader::read_box`].
    pub fn is_complete(&self) -> bool {
        self.outcomes.iter().all(FileOutcome::is_ok)
    }

    /// The outcomes that failed.
    pub fn failures(&self) -> Vec<&FileOutcome> {
        self.outcomes.iter().filter(|o| !o.is_ok()).collect()
    }
}

fn query_contains_box(query: &Aabb3, b: &Aabb3) -> bool {
    (0..3).all(|a| query.lo[a] <= b.lo[a] && b.hi[a] <= query.hi[a])
}

/// Append the particles of one decoded file that fall inside `query`,
/// returning how many were kept. Files whose bounds lie fully inside the
/// query skip the per-particle containment test.
///
/// This is the single filtering step shared by [`DatasetReader::read_box`],
/// [`DatasetReader::read_box_partial`], and the `spio-serve` concurrent
/// executor — one implementation is what makes the concurrent engine's
/// results byte-identical to the serial read path.
pub fn append_box_hits(
    query: &Aabb3,
    file_bounds: &Aabb3,
    particles: &[Particle],
    out: &mut Vec<Particle>,
) -> usize {
    if query_contains_box(query, file_bounds) {
        out.extend_from_slice(particles);
        particles.len()
    } else {
        let before = out.len();
        out.extend(
            particles
                .iter()
                .filter(|p| query.contains(p.position))
                .copied(),
        );
        out.len() - before
    }
}

/// Parallel visualization-style reads (§5.3): `n` readers (usually far
/// fewer than the writers) each take one cell of a near-cubic split of the
/// domain and box-query it.
pub struct BoxQueryReader;

impl BoxQueryReader {
    /// The subdomain assigned to `rank` of `nreaders`.
    pub fn reader_query(domain: &Aabb3, nreaders: usize, rank: usize) -> Aabb3 {
        let dims = GridDims::near_cubic(nreaders);
        domain.cell(dims.as_array(), dims.delinearize(rank))
    }

    /// Collective distributed read: every rank reads its subdomain.
    /// Returns this rank's particles and stats.
    pub fn read<C: Comm, S: Storage>(
        comm: &C,
        storage: &S,
        use_metadata: bool,
    ) -> Result<(Vec<Particle>, ReadStats), SpioError> {
        let reader = DatasetReader::open(storage)?;
        let query = Self::reader_query(&reader.meta.domain, comm.size(), comm.rank());
        if use_metadata {
            reader.read_box(storage, &query)
        } else {
            reader.read_box_without_metadata(storage, &query)
        }
    }
}

/// Restart reads: load a checkpoint back into a (possibly different-sized)
/// simulation. Each rank of the new job box-queries its own patch, so the
/// dataset redistributes itself onto the new decomposition — the paper's
/// "reads with different core counts than were used to write the data"
/// (§2.1), applied to checkpoint/restart.
pub struct RestartReader;

impl RestartReader {
    /// Collective: rank `comm.rank()` of the new job receives exactly the
    /// particles inside its patch of `new_decomp`.
    pub fn read<C: Comm, S: Storage>(
        comm: &C,
        new_decomp: &DomainDecomposition,
        storage: &S,
    ) -> Result<(Vec<Particle>, ReadStats), SpioError> {
        if comm.size() != new_decomp.nprocs() {
            return Err(SpioError::Config(format!(
                "communicator size {} != new decomposition {}",
                comm.size(),
                new_decomp.nprocs()
            )));
        }
        let reader = DatasetReader::open(storage)?;
        let patch = new_decomp.patch_bounds(comm.rank());
        reader.read_box(storage, &patch)
    }
}

/// Progressive level-of-detail reads over a set of files (§4, §5.4).
///
/// The cursor tracks a per-file prefix offset. Each level extends every
/// file's prefix to the proportional share of the global level boundary, so
/// after reading through level `l` the union across all readers is a
/// uniform subsample of `prefix_len(n, l)` particles.
pub struct LodCursor {
    files: Vec<LodFile>,
    /// Total particles in the dataset (not just this cursor's files).
    dataset_total: u64,
    lod: LodParams,
    /// Number of reader processes `n` in the LOD formula.
    nreaders: u64,
    next_level: u32,
    trace: Trace,
    rank: Rank,
}

struct LodFile {
    name: String,
    total: u64,
    read_so_far: u64,
    verify: FileVerify,
}

/// Per-file integrity state for ranged LOD reads.
enum FileVerify {
    /// Header not fetched yet — resolved on this file's first range read.
    Unopened,
    /// v1 file (or checksums disabled): nothing to verify.
    Plain,
    /// v2 checksummed file: the footer's chunk CRCs plus a running CRC over
    /// the payload prefix streamed so far.
    Checksummed(ChunkVerifier),
}

/// Streams payload bytes and verifies each completed checksum chunk.
///
/// LOD levels extend a file's prefix by contiguous ranged reads, so a
/// single running CRC suffices: feed every fetched byte, and at each chunk
/// boundary compare against the footer and reset. The final partial chunk
/// is verified when the prefix reaches the end of the file; a prefix that
/// stops mid-chunk leaves only that chunk's tail unverified — without
/// re-reading anything, that is the strongest guarantee available.
struct ChunkVerifier {
    chunk_bytes: u64,
    crcs: Vec<u32>,
    running: Crc32,
    bytes_in_chunk: u64,
    next_chunk: usize,
}

impl ChunkVerifier {
    fn new(header: &DataFileHeader, crcs: Vec<u32>) -> Self {
        ChunkVerifier {
            chunk_bytes: header.checksum_chunk as u64 * PARTICLE_BYTES as u64,
            crcs,
            running: Crc32::new(),
            bytes_in_chunk: 0,
            next_chunk: 0,
        }
    }

    fn mismatch(&self, name: &str) -> SpioError {
        SpioError::Format(format!(
            "payload checksum mismatch in chunk {} of '{name}'",
            self.next_chunk
        ))
    }

    /// Feed the next contiguous slice of payload, checking every chunk it
    /// completes.
    fn absorb(&mut self, name: &str, mut bytes: &[u8]) -> Result<(), SpioError> {
        while !bytes.is_empty() {
            let room = (self.chunk_bytes - self.bytes_in_chunk) as usize;
            let take = room.min(bytes.len());
            self.running.update(&bytes[..take]);
            self.bytes_in_chunk += take as u64;
            bytes = &bytes[take..];
            if self.bytes_in_chunk == self.chunk_bytes {
                if self.crcs.get(self.next_chunk) != Some(&self.running.finalize()) {
                    return Err(self.mismatch(name));
                }
                self.running.reset();
                self.bytes_in_chunk = 0;
                self.next_chunk += 1;
            }
        }
        Ok(())
    }

    /// The prefix now covers the whole file: verify the trailing partial
    /// chunk, if any.
    fn finish(&mut self, name: &str) -> Result<(), SpioError> {
        if self.bytes_in_chunk > 0 {
            if self.crcs.get(self.next_chunk) != Some(&self.running.finalize()) {
                return Err(self.mismatch(name));
            }
            self.running.reset();
            self.bytes_in_chunk = 0;
            self.next_chunk += 1;
        }
        Ok(())
    }
}

impl LodCursor {
    /// Build a cursor over the metadata entries at `file_indices`
    /// (typically this reader's share of the files).
    pub fn new(meta: &SpatialMetadata, file_indices: &[usize], nreaders: usize) -> Self {
        let files = file_indices
            .iter()
            .map(|&i| {
                let e = &meta.entries[i];
                LodFile {
                    name: e.file_name(),
                    total: e.particle_count,
                    read_so_far: 0,
                    verify: FileVerify::Unopened,
                }
            })
            .collect();
        LodCursor {
            files,
            dataset_total: meta.total_particles,
            lod: meta.lod,
            nreaders: nreaders as u64,
            next_level: 0,
            trace: Trace::off(),
            rank: 0,
        }
    }

    /// Record a `read:lod` phase span per level read into `trace`,
    /// attributed to `rank`.
    pub fn with_trace(mut self, trace: Trace, rank: Rank) -> Self {
        self.trace = trace;
        self.rank = rank;
        self
    }

    /// Round-robin assignment of files to a reader: reader `rank` of
    /// `nreaders` handles entries `rank, rank + nreaders, …`.
    pub fn files_for_reader(meta: &SpatialMetadata, nreaders: usize, rank: usize) -> Vec<usize> {
        (rank..meta.entries.len()).step_by(nreaders).collect()
    }

    /// Spatially coherent assignment: order the files along a Z-order
    /// curve of their box centers and hand each reader a contiguous run.
    /// Each reader's files then cover a compact region — better for
    /// downstream per-reader spatial processing than round-robin, at the
    /// same per-reader file count (±1).
    pub fn files_for_reader_zorder(
        meta: &SpatialMetadata,
        nreaders: usize,
        rank: usize,
    ) -> Vec<usize> {
        const RES: f64 = (1u64 << 20) as f64;
        let e = meta.domain.extent();
        let coords: Vec<[u32; 3]> = meta
            .entries
            .iter()
            .map(|entry| {
                let c = entry.bounds.center();
                let mut q = [0u32; 3];
                for a in 0..3 {
                    let t = if e[a] > 0.0 {
                        ((c[a] - meta.domain.lo[a]) / e[a]).clamp(0.0, 1.0)
                    } else {
                        0.0
                    };
                    q[a] = (t * (RES - 1.0)) as u32;
                }
                q
            })
            .collect();
        let order = spio_types::zorder::zorder_permutation(&coords);
        // Contiguous blocks of the curve, sized as evenly as possible.
        let n = order.len();
        let base = n / nreaders;
        let extra = n % nreaders;
        let start = rank * base + rank.min(extra);
        let len = base + usize::from(rank < extra);
        order[start..start + len].to_vec()
    }

    /// Number of levels available (dataset-wide).
    pub fn num_levels(&self) -> u32 {
        self.lod.num_levels(self.nreaders, self.dataset_total)
    }

    /// The next level this cursor would read.
    pub fn next_level(&self) -> u32 {
        self.next_level
    }

    /// Particles accumulated so far across this cursor's files.
    pub fn particles_loaded(&self) -> u64 {
        self.files.iter().map(|f| f.read_so_far).sum()
    }

    /// Read the next level: extend every file prefix to its share of the
    /// cumulative level boundary, returning the newly loaded particles.
    /// Returns an empty vector once all levels are consumed.
    pub fn read_next_level<S: Storage>(
        &mut self,
        storage: &S,
    ) -> Result<(Vec<Particle>, ReadStats), SpioError> {
        let t0 = Instant::now();
        let mut stats = ReadStats::default();
        let mut out = Vec::new();
        if self.next_level >= self.num_levels() {
            stats.time = t0.elapsed();
            return Ok((out, stats));
        }
        let global_prefix = self
            .lod
            .prefix_len(self.nreaders, self.next_level, self.dataset_total);
        for f in &mut self.files {
            let target = LodParams::file_prefix(f.total, self.dataset_total, global_prefix);
            if target > f.read_so_far {
                // First touch: fetch the header (and, for v2 files, the
                // checksum footer) so subsequent ranged payload reads can
                // be verified incrementally.
                if matches!(f.verify, FileVerify::Unopened) {
                    f.verify = Self::open_file(storage, f, &mut stats)?;
                }
                let (start, end) = payload_range(f.read_so_far as usize, target as usize);
                let bytes = storage.read_range(&f.name, start, end)?;
                stats.files_opened += 1;
                stats.bytes_read += bytes.len() as u64;
                if let FileVerify::Checksummed(v) = &mut f.verify {
                    v.absorb(&f.name, &bytes)?;
                    if target == f.total {
                        v.finish(&f.name)?;
                    }
                }
                out.extend(spio_types::particle::decode_particles(&bytes));
                f.read_so_far = target;
            }
        }
        self.next_level += 1;
        stats.particles_read = out.len() as u64;
        stats.time = t0.elapsed();
        self.trace.phase(self.rank, phases::LOD, stats.time);
        Ok((out, stats))
    }

    /// First touch of a file: fetch and validate its header, and for
    /// checksummed (v2) files also the tiny checksum footer — two small
    /// ranged reads, far cheaper than reading the file whole, which is the
    /// point of LOD prefix reads.
    fn open_file<S: Storage>(
        storage: &S,
        f: &LodFile,
        stats: &mut ReadStats,
    ) -> Result<FileVerify, SpioError> {
        let header_bytes = storage.read_range(&f.name, 0, HEADER_BYTES as u64)?;
        stats.bytes_read += header_bytes.len() as u64;
        let header = DataFileHeader::decode(&header_bytes)?;
        if header.particle_count != f.total {
            return Err(SpioError::Format(format!(
                "'{}' header declares {} particles but metadata says {}",
                f.name, header.particle_count, f.total
            )));
        }
        if !header.has_checksums() {
            return Ok(FileVerify::Plain);
        }
        let (start, end) = footer_range(&header);
        let footer = storage.read_range(&f.name, start, end)?;
        stats.bytes_read += footer.len() as u64;
        let crcs = footer
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Ok(FileVerify::Checksummed(ChunkVerifier::new(&header, crcs)))
    }

    /// Read levels `0 ..= level` (from the cursor's current position),
    /// returning everything loaded.
    pub fn read_through_level<S: Storage>(
        &mut self,
        storage: &S,
        level: u32,
    ) -> Result<(Vec<Particle>, ReadStats), SpioError> {
        let mut out = Vec::new();
        let mut all_stats = Vec::new();
        while self.next_level <= level && self.next_level < self.num_levels() {
            let (ps, stats) = self.read_next_level(storage)?;
            out.extend(ps);
            all_stats.push(stats);
        }
        let mut merged = ReadStats::merge(&all_stats);
        merged.time = all_stats.iter().map(|s| s.time).sum();
        Ok((out, merged))
    }
}

impl DatasetReader {
    /// A LOD cursor restricted to the files intersecting `query`:
    /// progressive refinement *within a region* (e.g. a view frustum) —
    /// each level touches only the relevant files, and within them only
    /// prefix bytes.
    pub fn lod_box_cursor(&self, query: &Aabb3, nreaders: usize) -> LodCursor {
        let files = self.meta.files_intersecting(query);
        LodCursor::new(&self.meta, &files, nreaders).with_trace(self.trace.clone(), self.rank)
    }
}

/// Convenience wrapper: a full-dataset progressive reader for one rank of a
/// reader group, with files assigned round-robin.
pub struct LodReader {
    pub cursor: LodCursor,
}

impl LodReader {
    /// Open the dataset and build this rank's cursor.
    pub fn open<S: Storage>(storage: &S, nreaders: usize, rank: usize) -> Result<Self, SpioError> {
        let reader = DatasetReader::open(storage)?;
        let indices = LodCursor::files_for_reader(&reader.meta, nreaders, rank);
        Ok(LodReader {
            cursor: LodCursor::new(&reader.meta, &indices, nreaders),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;
    use crate::writer::{SpatialWriter, WriterConfig};
    use spio_comm::run_threaded_collect;
    use spio_types::{DomainDecomposition, PartitionFactor};

    /// Write a 4×4×1 dataset with 2×2 aggregation, `per_rank` particles per
    /// rank laid out deterministically inside each patch.
    fn build_dataset(per_rank: usize) -> MemStorage {
        let storage = MemStorage::new();
        let s2 = storage.clone();
        let d =
            DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(4, 4, 1));
        run_threaded_collect(16, move |comm| {
            let b = d.patch_bounds(comm.rank());
            let e = b.extent();
            let particles: Vec<Particle> = (0..per_rank)
                .map(|i| {
                    let t = (i as f64 + 0.5) / per_rank as f64;
                    let u = ((i * 13 + 5) % per_rank) as f64 / per_rank as f64;
                    Particle::synthetic(
                        [b.lo[0] + t * e[0] * 0.99, b.lo[1] + u * e[1] * 0.99, 0.5],
                        ((comm.rank() as u64) << 32) | i as u64,
                    )
                })
                .collect();
            let writer =
                SpatialWriter::new(d.clone(), WriterConfig::new(PartitionFactor::new(2, 2, 1)));
            writer.write(&comm, &particles, &s2).unwrap();
        })
        .unwrap();
        storage
    }

    #[test]
    fn open_parses_metadata() {
        let storage = build_dataset(20);
        let r = DatasetReader::open(&storage).unwrap();
        assert_eq!(r.meta.entries.len(), 4);
        assert_eq!(r.meta.total_particles, 320);
    }

    #[test]
    fn box_query_reads_only_needed_files() {
        let storage = build_dataset(20);
        let r = DatasetReader::open(&storage).unwrap();
        // Query strictly inside the lower-left quadrant.
        let q = Aabb3::new([0.05, 0.05, 0.0], [0.4, 0.4, 1.0]);
        let (ps, stats) = r.read_box(&storage, &q).unwrap();
        assert_eq!(stats.files_opened, 1, "one quadrant ⇒ one file");
        assert!(ps.iter().all(|p| q.contains(p.position)));
        assert!(!ps.is_empty());
    }

    #[test]
    fn without_metadata_reads_everything() {
        let storage = build_dataset(20);
        let r = DatasetReader::open(&storage).unwrap();
        let q = Aabb3::new([0.05, 0.05, 0.0], [0.4, 0.4, 1.0]);
        let (with, s_with) = r.read_box(&storage, &q).unwrap();
        let (without, s_without) = r.read_box_without_metadata(&storage, &q).unwrap();
        // Same answer…
        let mut a: Vec<u64> = with.iter().map(|p| p.id).collect();
        let mut b: Vec<u64> = without.iter().map(|p| p.id).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // …but the metadata-less read opened all 4 files and discarded most
        // of what it decoded.
        assert_eq!(s_without.files_opened, 4);
        assert!(s_without.bytes_read > s_with.bytes_read);
        assert!(s_without.particles_discarded > 0);
    }

    #[test]
    fn full_domain_read_recovers_every_particle() {
        let storage = build_dataset(25);
        let r = DatasetReader::open(&storage).unwrap();
        let (ps, _) = r.read_all(&storage).unwrap();
        assert_eq!(ps.len(), 400);
        let mut ids: Vec<u64> = ps.iter().map(|p| p.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 400, "no duplicates");
    }

    #[test]
    fn parallel_box_readers_partition_the_domain() {
        let storage = build_dataset(20);
        let results = run_threaded_collect(4, move |comm| {
            let (ps, stats) = BoxQueryReader::read(&comm, &storage.clone(), true).unwrap();
            (ps, stats.files_opened)
        })
        .unwrap();
        let total: usize = results.iter().map(|(ps, _)| ps.len()).sum();
        assert_eq!(total, 320, "readers together recover the dataset");
        // Reader subdomains are disjoint: no particle appears twice.
        let mut ids: Vec<u64> = results
            .iter()
            .flat_map(|(ps, _)| ps.iter().map(|p| p.id))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 320);
    }

    #[test]
    fn lod_levels_accumulate_to_full_dataset() {
        let storage = build_dataset(32); // total 512
        let r = DatasetReader::open(&storage).unwrap();
        let indices: Vec<usize> = (0..r.meta.entries.len()).collect();
        let mut cursor = LodCursor::new(&r.meta, &indices, 1);
        // P=32, S=2, n=1, total=512 ⇒ levels 32, 64, 128, 256, 32.
        assert_eq!(cursor.num_levels(), 5);
        let mut all = Vec::new();
        let mut level_sizes = Vec::new();
        for _ in 0..cursor.num_levels() {
            let (ps, _) = cursor.read_next_level(&storage).unwrap();
            level_sizes.push(ps.len());
            all.extend(ps);
        }
        assert_eq!(all.len(), 512);
        let mut ids: Vec<u64> = all.iter().map(|p| p.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 512, "levels are disjoint and complete");
        // Level sizes follow the geometric progression (up to proportional-
        // split rounding across 4 files).
        assert!((30..=36).contains(&level_sizes[0]), "{level_sizes:?}");
        assert!((60..=70).contains(&level_sizes[1]), "{level_sizes:?}");
        // Exhausted cursor returns nothing.
        let (ps, _) = cursor.read_next_level(&storage).unwrap();
        assert!(ps.is_empty());
    }

    #[test]
    fn lod_prefix_is_spatially_representative() {
        let storage = build_dataset(64); // total 1024
        let r = DatasetReader::open(&storage).unwrap();
        let indices: Vec<usize> = (0..r.meta.entries.len()).collect();
        let mut cursor = LodCursor::new(&r.meta, &indices, 1);
        let (ps, _) = cursor.read_through_level(&storage, 1).unwrap(); // ~96 particles
                                                                       // All four quadrants must be represented.
        for (qx, qy) in [(0.0, 0.0), (0.5, 0.0), (0.0, 0.5), (0.5, 0.5)] {
            let q = Aabb3::new([qx, qy, 0.0], [qx + 0.5, qy + 0.5, 1.0]);
            assert!(
                ps.iter().any(|p| q.contains(p.position)),
                "quadrant ({qx},{qy}) unrepresented in LOD prefix"
            );
        }
    }

    #[test]
    fn multi_reader_lod_covers_all_files() {
        let storage = build_dataset(32);
        let results = run_threaded_collect(2, move |comm| {
            let mut reader = LodReader::open(&storage.clone(), 2, comm.rank()).unwrap();
            let levels = reader.cursor.num_levels();
            let (ps, _) = reader
                .cursor
                .read_through_level(&storage.clone(), levels - 1)
                .unwrap();
            ps
        })
        .unwrap();
        let total: usize = results.iter().map(Vec::len).sum();
        assert_eq!(total, 512);
    }

    #[test]
    fn restart_redistributes_onto_different_rank_counts() {
        let storage = build_dataset(25); // written by 16 ranks, 400 total
        for new_ranks in [2usize, 4, 8] {
            let s = storage.clone();
            let new_decomp = DomainDecomposition::uniform(
                Aabb3::new([0.0; 3], [1.0; 3]),
                GridDims::near_cubic(new_ranks),
            );
            let nd = new_decomp.clone();
            let per_rank = run_threaded_collect(new_ranks, move |comm| {
                let (ps, _) = RestartReader::read(&comm, &nd, &s).unwrap();
                // Everything landed in this rank's patch.
                let b = nd.patch_bounds(comm.rank());
                assert!(ps.iter().all(|p| b.contains(p.position)));
                ps.iter().map(|p| p.id).collect::<Vec<u64>>()
            })
            .unwrap();
            let mut all: Vec<u64> = per_rank.into_iter().flatten().collect();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), 400, "restart onto {new_ranks} ranks");
        }
    }

    #[test]
    fn restart_rejects_mismatched_world() {
        let storage = build_dataset(10);
        let res = run_threaded_collect(3, move |comm| {
            let nd = DomainDecomposition::uniform(
                Aabb3::new([0.0; 3], [1.0; 3]),
                GridDims::new(2, 1, 1), // needs 2 ranks, world is 3
            );
            RestartReader::read(&comm, &nd, &storage.clone()).map(|_| ())
        })
        .unwrap();
        assert!(res.iter().all(Result::is_err));
    }

    #[test]
    fn windowed_lod_refines_only_the_query_region() {
        let storage = build_dataset(64); // 1024 particles over 4 quadrant files
        let r = DatasetReader::open(&storage).unwrap();
        // Window covering only the lower-left quadrant.
        let q = Aabb3::new([0.05, 0.05, 0.0], [0.4, 0.4, 1.0]);
        let mut cursor = r.lod_box_cursor(&q, 1);
        let mut loaded = Vec::new();
        let mut bytes = 0;
        for _ in 0..cursor.num_levels() {
            let (ps, stats) = cursor.read_next_level(&storage).unwrap();
            loaded.extend(ps);
            bytes += stats.bytes_read;
        }
        // Only that quadrant's file was consumed: 256 of 1024 particles.
        assert_eq!(loaded.len(), 256);
        let quadrant = Aabb3::new([0.0, 0.0, 0.0], [0.5, 0.5, 1.0]);
        assert!(loaded.iter().all(|p| quadrant.contains(p.position)));
        // Far less I/O than the full dataset.
        assert!(bytes < storage.total_bytes() / 3);
    }

    #[test]
    fn zorder_assignment_is_complete_and_more_compact() {
        // A 16-file dataset: file-per-process layout of a 4×4×1 grid.
        let storage = MemStorage::new();
        let s2 = storage.clone();
        let d =
            DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(4, 4, 1));
        run_threaded_collect(16, move |comm| {
            let b = d.patch_bounds(comm.rank());
            let ps: Vec<Particle> = (0..20)
                .map(|i| {
                    Particle::synthetic(
                        [b.lo[0] + 0.01 + (i as f64) * 0.01, b.center()[1], 0.5],
                        ((comm.rank() as u64) << 32) | i,
                    )
                })
                .collect();
            crate::writer::SpatialWriter::new(
                d.clone(),
                crate::writer::WriterConfig::new(PartitionFactor::new(1, 1, 1)),
            )
            .write(&comm, &ps, &s2)
            .unwrap();
        })
        .unwrap();
        let r = DatasetReader::open(&storage).unwrap();
        let meta = &r.meta;
        // Completeness: both assignments cover every file exactly once.
        for nreaders in [1usize, 2, 3, 5, 16] {
            let mut z: Vec<usize> = (0..nreaders)
                .flat_map(|k| LodCursor::files_for_reader_zorder(meta, nreaders, k))
                .collect();
            z.sort_unstable();
            assert_eq!(z, (0..meta.entries.len()).collect::<Vec<_>>());
        }
        // Compactness: with 2 readers over 16 tiles, each z-order reader's
        // 8 files form a half-plane (union volume 0.5); round-robin
        // scatters every other tile across the whole domain (union 1.0).
        let union_volume = |files: &[usize]| {
            files
                .iter()
                .map(|&i| meta.entries[i].bounds)
                .reduce(|a, b| a.union(&b))
                .unwrap()
                .volume()
        };
        let z0 = LodCursor::files_for_reader_zorder(meta, 2, 0);
        let rr0 = LodCursor::files_for_reader(meta, 2, 0);
        assert!(
            union_volume(&z0) < 0.75 * union_volume(&rr0),
            "z-order {:?} ({}) vs round-robin {:?} ({})",
            z0,
            union_volume(&z0),
            rr0,
            union_volume(&rr0)
        );
    }

    #[test]
    fn reader_queries_tile_domain() {
        let domain = Aabb3::new([0.0; 3], [2.0; 3]);
        for n in [1, 2, 4, 8, 6] {
            let vol: f64 = (0..n)
                .map(|r| BoxQueryReader::reader_query(&domain, n, r).volume())
                .sum();
            assert!((vol - domain.volume()).abs() < 1e-9, "n={n}");
        }
    }

    #[test]
    fn open_missing_dataset_errors() {
        let storage = MemStorage::new();
        assert!(matches!(
            DatasetReader::open(&storage),
            Err(SpioError::NotFound(_))
        ));
    }
}
