//! Retrying storage wrapper: absorbs transient I/O faults with
//! deterministic exponential backoff.
//!
//! Parallel file systems fail transiently — a congested OST, a flaky NFS
//! mount, a storage target mid-failover — and a single spurious `EIO`
//! should not abort a collective restart read. [`RetryStorage`] wraps any
//! [`Storage`] backend and re-issues failed operations under a
//! [`RetryPolicy`]:
//!
//! * **Retryable:** [`SpioError::Io`] — the environment misbehaved; the
//!   same call may succeed a moment later.
//! * **Terminal:** [`SpioError::NotFound`] and [`SpioError::Format`] — the
//!   *content* is wrong (missing file, corrupt bytes, bad range); retrying
//!   re-reads the same wrong answer, so these surface immediately.
//!
//! Backoff is exponential with seeded multiplicative jitter from
//! `spio_util::rng::splitmix64`, so two ranks hammering the same storage
//! target desynchronize while every run with the same seed replays the
//! same schedule — chaos tests stay reproducible. Each re-attempt is
//! recorded into the job's [`Trace`] as a `"retry"` storage op, so
//! `spio report` surfaces retry counts next to read/write counts.

use crate::storage::Storage;
use spio_trace::Trace;
use spio_types::SpioError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// When and how often to retry a failed storage operation.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per operation (1 = no retries).
    pub max_attempts: u32,
    /// Delay before the first retry; doubles each subsequent retry.
    pub base_delay: Duration,
    /// Cap on the per-retry delay.
    pub max_delay: Duration,
    /// Give up once an operation (including its backoff sleeps) has taken
    /// this long, even with attempts remaining. `None` = no deadline.
    pub op_deadline: Option<Duration>,
    /// Seed for the jitter stream. Same seed → same backoff schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(250),
            op_deadline: None,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy for tests: immediate retries (zero backoff), `n` attempts.
    pub fn immediate(n: u32) -> Self {
        RetryPolicy {
            max_attempts: n,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            op_deadline: None,
            seed: 0,
        }
    }

    /// Backoff before retry number `retry` (1-based), jittered by a hash of
    /// `(seed, op_serial, retry)`: exponential up to `max_delay`, scaled by
    /// a factor in `[0.5, 1.0)` so concurrent ranks spread out.
    fn backoff(&self, op_serial: u64, retry: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << (retry - 1).min(16))
            .min(self.max_delay);
        if exp.is_zero() {
            return Duration::ZERO;
        }
        let mut state = self.seed ^ op_serial.rotate_left(17) ^ (retry as u64);
        let fraction = (spio_util::rng::splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
        exp.mul_f64(0.5 + 0.5 * fraction)
    }
}

/// Is this error worth retrying, or is the answer final?
pub fn is_retryable(err: &SpioError) -> bool {
    matches!(err, SpioError::Io(_))
}

/// A [`Storage`] wrapper that retries transient faults per a
/// [`RetryPolicy`], recording each re-attempt into a [`Trace`].
#[derive(Debug, Clone)]
pub struct RetryStorage<S: Storage> {
    inner: S,
    policy: RetryPolicy,
    trace: Trace,
    rank: usize,
    /// Serial number per operation: decorrelates jitter across ops and
    /// across clones sharing this counter.
    op_serial: Arc<AtomicU64>,
    retries: Arc<AtomicU64>,
    retry_attempts: spio_trace::Counter,
    backoff_us: spio_trace::Histogram,
}

impl<S: Storage> RetryStorage<S> {
    /// Wrap `inner` with `policy`, attributing trace records to `rank`.
    /// Pass `Trace::off()` to skip recording.
    pub fn new(inner: S, policy: RetryPolicy, trace: Trace, rank: usize) -> Self {
        let m = trace.metrics();
        RetryStorage {
            inner,
            policy,
            rank,
            op_serial: Arc::new(AtomicU64::new(0)),
            retries: Arc::new(AtomicU64::new(0)),
            retry_attempts: m.counter("storage.retry.attempts"),
            backoff_us: m.histogram("storage.retry.backoff_us"),
            trace,
        }
    }

    pub fn inner(&self) -> &S {
        &self.inner
    }

    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Total retries performed across all operations (not first attempts).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Run `op` under the retry policy. `name` is the file the operation
    /// touches (for trace records).
    fn run<T>(
        &self,
        name: &str,
        mut op: impl FnMut(&S) -> Result<T, SpioError>,
    ) -> Result<T, SpioError> {
        let serial = self.op_serial.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let mut attempt = 1u32;
        loop {
            match op(&self.inner) {
                Ok(v) => return Ok(v),
                Err(e) if !is_retryable(&e) => return Err(e),
                Err(e) => {
                    let deadline_hit = self
                        .policy
                        .op_deadline
                        .is_some_and(|d| started.elapsed() >= d);
                    if attempt >= self.policy.max_attempts.max(1) || deadline_hit {
                        return Err(e);
                    }
                    let delay = self.policy.backoff(serial, attempt);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    if self.trace.is_enabled() {
                        // One record per re-attempt; `bytes` carries the
                        // attempt number so reports can show max depth.
                        self.trace.storage_op(
                            self.rank,
                            "retry",
                            name,
                            attempt as u64,
                            started.elapsed(),
                        );
                        self.retry_attempts.inc();
                        self.backoff_us.record(delay.as_micros() as u64);
                    }
                    attempt += 1;
                }
            }
        }
    }
}

impl<S: Storage> Storage for RetryStorage<S> {
    fn write_file(&self, name: &str, data: &[u8]) -> Result<(), SpioError> {
        self.run(name, |s| s.write_file(name, data))
    }

    fn read_file(&self, name: &str) -> Result<Vec<u8>, SpioError> {
        self.run(name, |s| s.read_file(name))
    }

    fn read_range(&self, name: &str, start: u64, end: u64) -> Result<Vec<u8>, SpioError> {
        self.run(name, |s| s.read_range(name, start, end))
    }

    fn file_size(&self, name: &str) -> Result<u64, SpioError> {
        self.run(name, |s| s.file_size(name))
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.exists(name)
    }

    fn write_range(&self, name: &str, offset: u64, data: &[u8]) -> Result<(), SpioError> {
        self.run(name, |s| s.write_range(name, offset, data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{ChaosConfig, ChaosStorage};
    use crate::storage::MemStorage;

    fn flaky(transient_every: u64) -> ChaosStorage<MemStorage> {
        ChaosStorage::new(
            MemStorage::new(),
            ChaosConfig {
                transient_every: Some(transient_every),
                ..ChaosConfig::default()
            },
        )
    }

    #[test]
    fn absorbs_transient_faults() {
        // Ops 1, 3, 5, … fault; each retry lands on a good op.
        let chaos = flaky(2);
        let retry = RetryStorage::new(chaos, RetryPolicy::immediate(3), Trace::off(), 0);
        retry.write_file("a", &[1, 2, 3]).unwrap();
        for _ in 0..10 {
            assert_eq!(retry.read_file("a").unwrap(), vec![1, 2, 3]);
        }
        assert!(retry.retries() > 0);
    }

    #[test]
    fn exhausts_attempts_on_persistent_io_fault() {
        let chaos = ChaosStorage::new(
            MemStorage::new(),
            ChaosConfig {
                transient_every: Some(1), // every op faults
                ..ChaosConfig::default()
            },
        );
        chaos.inner().write_file("a", &[1]).unwrap();
        let retry = RetryStorage::new(chaos, RetryPolicy::immediate(3), Trace::off(), 0);
        // A fresh transient fault on every attempt exhausts the budget.
        assert!(matches!(retry.read_file("a"), Err(SpioError::Io(_))));
        assert_eq!(retry.retries(), 2); // 3 attempts = 2 retries
    }

    #[test]
    fn terminal_errors_do_not_retry() {
        let retry = RetryStorage::new(
            MemStorage::new(),
            RetryPolicy::immediate(5),
            Trace::off(),
            0,
        );
        assert!(matches!(
            retry.read_file("missing"),
            Err(SpioError::NotFound(_))
        ));
        retry.write_file("a", &[1]).unwrap();
        assert!(matches!(
            retry.read_range("a", 5, 2),
            Err(SpioError::Format(_))
        ));
        assert_eq!(retry.retries(), 0);
    }

    #[test]
    fn retries_recorded_in_trace() {
        let trace = Trace::collecting();
        let chaos = flaky(2); // first op faults, its retry succeeds
        chaos.inner().write_file("a", &[9]).unwrap();
        let retry = RetryStorage::new(chaos, RetryPolicy::immediate(4), trace.clone(), 7);
        assert_eq!(retry.read_file("a").unwrap(), vec![9]);
        let retries: Vec<_> = trace
            .events()
            .into_iter()
            .filter(|e| matches!(e, spio_trace::TraceEvent::StorageOp { op: "retry", .. }))
            .collect();
        assert_eq!(retries.len(), 1);
        if let spio_trace::TraceEvent::StorageOp { rank, .. } = retries[0] {
            assert_eq!(rank, 7);
        }
        let m = trace.metrics();
        assert_eq!(m.counter_value("storage.retry.attempts"), 1);
        let backoff = m.histogram_snapshot("storage.retry.backoff_us").unwrap();
        assert_eq!(backoff.count, 1, "one backoff sleep recorded (zero-length)");
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_jittered() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(100),
            op_deadline: None,
            seed: 42,
        };
        for retry in 1..8 {
            let a = p.backoff(3, retry);
            let b = p.backoff(3, retry);
            assert_eq!(a, b, "same inputs, same delay");
            let exp = Duration::from_millis(10)
                .saturating_mul(1 << (retry - 1))
                .min(Duration::from_millis(100));
            assert!(a >= exp.mul_f64(0.5) && a <= exp, "retry {retry}: {a:?}");
        }
        // Different ops jitter differently (with overwhelming probability).
        assert_ne!(p.backoff(1, 1), p.backoff(2, 1));
    }

    #[test]
    fn deadline_stops_retrying() {
        let chaos = flaky(1);
        chaos.inner().write_file("a", &[1]).unwrap();
        let policy = RetryPolicy {
            max_attempts: 1000,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(5),
            op_deadline: Some(Duration::ZERO),
            seed: 0,
        };
        let retry = RetryStorage::new(chaos, policy, Trace::off(), 0);
        // Deadline of zero: the first failure is final despite the budget.
        assert!(retry.read_file("a").is_err());
        assert_eq!(retry.retries(), 0);
    }
}
