//! Adaptive aggregation (§6).
//!
//! Simulations often have non-uniform particle distributions: regions of
//! low density, or regions with no particles at all. A layout-agnostic
//! aggregation grid would assign aggregators to empty regions (Fig. 10e),
//! underutilizing the I/O system. The adaptive grid is built from an
//! all-to-all exchange of per-rank spatial extents and particle counts: it
//! determines the sub-rectangle of the patch space that actually contains
//! particles, imposes the aggregation grid on just that region (Fig. 10f),
//! and spreads aggregators uniformly across the *entire* rank space so all
//! I/O nodes stay evenly utilized. Ranks without particles do not
//! participate in the subsequent phases at all.

use crate::grid::AggregationGrid;
use spio_types::{DomainDecomposition, PartitionFactor, Rank, SpioError};

/// Builder for §6's adaptive aggregation grid (and the §7 rebalanced
/// variant).
pub struct AdaptiveGrid;

impl AdaptiveGrid {
    /// Build the adaptive grid from global per-rank particle counts
    /// (obtained at runtime via the extent/count all-gather).
    ///
    /// The occupied region is the tightest patch-space rectangle covering
    /// every rank with a nonzero count. Returns an error if no rank has
    /// particles.
    pub fn build(
        decomp: &DomainDecomposition,
        factor: PartitionFactor,
        counts: &[u64],
    ) -> Result<AggregationGrid, SpioError> {
        if counts.len() != decomp.nprocs() {
            return Err(SpioError::Config(format!(
                "counts length {} != nprocs {}",
                counts.len(),
                decomp.nprocs()
            )));
        }
        let mut lo = [usize::MAX; 3];
        let mut hi = [0usize; 3];
        let mut any = false;
        for (rank, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            any = true;
            let p = decomp.patch_coords(rank);
            for a in 0..3 {
                lo[a] = lo[a].min(p[a]);
                hi[a] = hi[a].max(p[a]);
            }
        }
        if !any {
            return Err(SpioError::Config(
                "adaptive grid: no rank holds particles".into(),
            ));
        }
        let extent = [hi[0] - lo[0] + 1, hi[1] - lo[1] + 1, hi[2] - lo[2] + 1];
        // Clamp the factor so it never exceeds the occupied extent (a 2×2×2
        // factor over a 1-patch-thick occupied slab degrades to 2×2×1).
        let f = PartitionFactor::new(
            factor.px.min(extent[0]),
            factor.py.min(extent[1]),
            factor.pz.min(extent[2]),
        );
        AggregationGrid::over_region(decomp, f, lo, extent, decomp.nprocs())
    }

    /// Build a *rebalanced* adaptive grid (§7's future-work direction:
    /// "creating an adaptive grid on the fly, which can re-balance the
    /// grid partition size and placement based on the particle
    /// distribution"). The occupied patch rectangle is split by recursive
    /// weighted bisection — each cut halves the remaining particle weight
    /// as closely as a patch boundary allows — into (about) as many
    /// partitions as the §6 grid would produce, so heavily loaded regions
    /// get more, smaller partitions and sparse regions fewer, larger ones.
    pub fn build_balanced(
        decomp: &DomainDecomposition,
        factor: PartitionFactor,
        counts: &[u64],
    ) -> Result<AggregationGrid, SpioError> {
        // Reuse the §6 construction to find the occupied region and the
        // target partition count.
        let bbox_grid = Self::build(decomp, factor, counts)?;
        let target = bbox_grid.file_count();
        let lo = bbox_grid.origin;
        let hi = [
            lo[0] + bbox_grid.extent[0],
            lo[1] + bbox_grid.extent[1],
            lo[2] + bbox_grid.extent[2],
        ];
        let weight = |rect_lo: [usize; 3], rect_hi: [usize; 3]| -> u64 {
            let mut w = 0;
            for k in rect_lo[2]..rect_hi[2] {
                for j in rect_lo[1]..rect_hi[1] {
                    for i in rect_lo[0]..rect_hi[0] {
                        w += counts[decomp.rank_of([i, j, k])];
                    }
                }
            }
            w
        };
        // Recursive bisection: repeatedly split the heaviest splittable
        // rectangle until the target count is reached.
        let mut rects = vec![(lo, hi, weight(lo, hi))];
        while rects.len() < target {
            // Pick the heaviest rectangle with more than one patch.
            let Some(pos) = rects
                .iter()
                .enumerate()
                .filter(|(_, (l, h, _))| (0..3).any(|a| h[a] - l[a] > 1))
                .max_by_key(|(_, (_, _, w))| *w)
                .map(|(i, _)| i)
            else {
                break; // everything is single-patch; cannot split further
            };
            let (rlo, rhi, rw) = rects.swap_remove(pos);
            // Split along the longest splittable axis at the weight median.
            let axis = (0..3)
                .filter(|&a| rhi[a] - rlo[a] > 1)
                .max_by_key(|&a| rhi[a] - rlo[a])
                .expect("filtered to splittable rectangles");
            let mut best_cut = rlo[axis] + 1;
            let mut best_diff = u64::MAX;
            let mut acc = 0u64;
            for cut in rlo[axis] + 1..rhi[axis] {
                // Weight of the slab [cut-1, cut) along `axis`.
                let mut slab_lo = rlo;
                let mut slab_hi = rhi;
                slab_lo[axis] = cut - 1;
                slab_hi[axis] = cut;
                acc += weight(slab_lo, slab_hi);
                let other = rw - acc;
                let diff = acc.abs_diff(other);
                if diff < best_diff {
                    best_diff = diff;
                    best_cut = cut;
                }
            }
            let mut left_hi = rhi;
            left_hi[axis] = best_cut;
            let mut right_lo = rlo;
            right_lo[axis] = best_cut;
            let lw = weight(rlo, left_hi);
            rects.push((rlo, left_hi, lw));
            rects.push((right_lo, rhi, rw - lw));
        }
        // Deterministic ordering: by patch-space position.
        rects.sort_by_key(|&(l, _, _)| (l[2], l[1], l[0]));
        let rect_list: Vec<([usize; 3], [usize; 3])> =
            rects.iter().map(|&(l, h, _)| (l, h)).collect();
        AggregationGrid::from_patch_rects(decomp, factor, &rect_list, decomp.nprocs())
    }

    /// Load-balance metric: the largest partition's particle share divided
    /// by the ideal share (1.0 = perfectly balanced).
    pub fn imbalance(grid: &AggregationGrid, counts: &[u64]) -> f64 {
        let loads: Vec<u64> = grid
            .partitions
            .iter()
            .map(|p| p.members.iter().map(|&m| counts[m]).sum())
            .collect();
        let total: u64 = loads.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let ideal = total as f64 / loads.len() as f64;
        loads.iter().copied().max().unwrap_or(0) as f64 / ideal
    }

    /// Does `rank` participate in the write at all? (§6: "processes without
    /// particles do not participate in the subsequent stages".) A rank
    /// participates if it holds particles or aggregates a partition.
    pub fn participates(grid: &AggregationGrid, rank: Rank, count: u64) -> bool {
        count > 0 || grid.aggregated_partition(rank).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spio_types::{Aabb3, GridDims};

    fn decomp() -> DomainDecomposition {
        DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(8, 4, 1))
    }

    #[test]
    fn full_occupancy_matches_static_grid() {
        let d = decomp();
        let counts = vec![10u64; d.nprocs()];
        let adaptive = AdaptiveGrid::build(&d, PartitionFactor::new(2, 2, 1), &counts).unwrap();
        let fixed = AggregationGrid::aligned(&d, PartitionFactor::new(2, 2, 1)).unwrap();
        assert_eq!(adaptive.dims, fixed.dims);
        assert_eq!(adaptive.partitions.len(), fixed.partitions.len());
        assert_eq!(adaptive.aggregator_ranks(), fixed.aggregator_ranks());
    }

    #[test]
    fn half_occupancy_covers_only_occupied_patches() {
        let d = decomp();
        // Only patches with x < 4 hold particles.
        let counts: Vec<u64> = (0..d.nprocs())
            .map(|r| if d.patch_coords(r)[0] < 4 { 100 } else { 0 })
            .collect();
        let g = AdaptiveGrid::build(&d, PartitionFactor::new(2, 2, 1), &counts).unwrap();
        assert_eq!(g.origin, [0, 0, 0]);
        assert_eq!(g.extent, [4, 4, 1]);
        // 2x2 factor over 4x4 occupied patches ⇒ 4 files instead of 8.
        assert_eq!(g.file_count(), 4);
        // Every empty rank is outside the grid.
        for (r, &c) in counts.iter().enumerate() {
            let inside = g.partition_of_rank(r).is_some();
            assert_eq!(inside, c > 0, "rank {r}");
        }
        g.validate().unwrap();
    }

    #[test]
    fn aggregators_spread_over_full_rank_space() {
        let d = decomp();
        // Occupied region: left quarter (x < 2): 8 ranks of 32.
        let counts: Vec<u64> = (0..d.nprocs())
            .map(|r| if d.patch_coords(r)[0] < 2 { 50 } else { 0 })
            .collect();
        let g = AdaptiveGrid::build(&d, PartitionFactor::new(2, 2, 1), &counts).unwrap();
        assert_eq!(g.file_count(), 2);
        // §6: aggregators uniform over the *entire* 32-rank space, not just
        // the 8 occupied ranks: partitions 0,1 of 2 ⇒ ranks 0 and 16.
        assert_eq!(g.aggregator_ranks(), vec![0, 16]);
    }

    #[test]
    fn interior_island_is_covered() {
        let d = decomp();
        // Particles only in the patch rectangle x∈[2,5], y∈[1,2].
        let counts: Vec<u64> = (0..d.nprocs())
            .map(|r| {
                let p = d.patch_coords(r);
                if (2..=5).contains(&p[0]) && (1..=2).contains(&p[1]) {
                    10
                } else {
                    0
                }
            })
            .collect();
        let g = AdaptiveGrid::build(&d, PartitionFactor::new(2, 2, 1), &counts).unwrap();
        assert_eq!(g.origin, [2, 1, 0]);
        assert_eq!(g.extent, [4, 2, 1]);
        assert_eq!(g.file_count(), 2);
        for (r, &c) in counts.iter().enumerate() {
            if c > 0 {
                assert!(g.partition_of_rank(r).is_some(), "rank {r}");
            }
        }
    }

    #[test]
    fn factor_clamps_to_thin_regions() {
        let d = decomp();
        // One row of patches occupied (y = 0 only).
        let counts: Vec<u64> = (0..d.nprocs())
            .map(|r| if d.patch_coords(r)[1] == 0 { 10 } else { 0 })
            .collect();
        // 2×2 factor cannot fit a 1-patch-high region; it must clamp to 2×1.
        let g = AdaptiveGrid::build(&d, PartitionFactor::new(2, 2, 1), &counts).unwrap();
        assert_eq!(g.factor, PartitionFactor::new(2, 1, 1));
        assert_eq!(g.extent, [8, 1, 1]);
        assert_eq!(g.file_count(), 4);
    }

    #[test]
    fn balanced_grid_evens_out_skewed_loads() {
        let d = decomp();
        // Left quarter of the occupied patches is 8x denser.
        let counts: Vec<u64> = (0..d.nprocs())
            .map(|r| {
                let p = d.patch_coords(r);
                if p[0] < 2 {
                    800
                } else {
                    100
                }
            })
            .collect();
        let bbox = AdaptiveGrid::build(&d, PartitionFactor::new(2, 2, 1), &counts).unwrap();
        let balanced =
            AdaptiveGrid::build_balanced(&d, PartitionFactor::new(2, 2, 1), &counts).unwrap();
        balanced.validate().unwrap();
        assert_eq!(balanced.file_count(), bbox.file_count());
        // Every rank with particles is covered.
        for r in 0..d.nprocs() {
            assert!(balanced.partition_of_rank(r).is_some());
        }
        let before = AdaptiveGrid::imbalance(&bbox, &counts);
        let after = AdaptiveGrid::imbalance(&balanced, &counts);
        assert!(
            after < before,
            "rebalancing must reduce imbalance: {before:.2} → {after:.2}"
        );
        assert!(after < 1.6, "should be near-balanced, got {after:.2}");
    }

    #[test]
    fn balanced_grid_conserves_members() {
        let d = decomp();
        let counts: Vec<u64> = (0..d.nprocs()).map(|r| (r as u64 % 7) * 50).collect();
        let g = AdaptiveGrid::build_balanced(&d, PartitionFactor::new(2, 2, 1), &counts).unwrap();
        g.validate().unwrap();
        let mut members: Vec<usize> = g
            .partitions
            .iter()
            .flat_map(|p| p.members.clone())
            .collect();
        members.sort_unstable();
        members.dedup();
        // All occupied ranks covered, each exactly once (dedup is a no-op).
        for (r, &c) in counts.iter().enumerate() {
            if c > 0 {
                assert!(members.contains(&r));
            }
        }
    }

    #[test]
    fn balanced_on_uniform_load_matches_bbox_partition_count() {
        let d = decomp();
        let counts = vec![100u64; d.nprocs()];
        let bbox = AdaptiveGrid::build(&d, PartitionFactor::new(2, 2, 1), &counts).unwrap();
        let bal = AdaptiveGrid::build_balanced(&d, PartitionFactor::new(2, 2, 1), &counts).unwrap();
        assert_eq!(bal.file_count(), bbox.file_count());
        let imb = AdaptiveGrid::imbalance(&bal, &counts);
        assert!(imb < 1.01, "uniform load stays balanced: {imb}");
    }

    #[test]
    fn empty_world_is_an_error() {
        let d = decomp();
        let counts = vec![0u64; d.nprocs()];
        assert!(AdaptiveGrid::build(&d, PartitionFactor::new(2, 2, 1), &counts).is_err());
    }

    #[test]
    fn wrong_count_length_is_an_error() {
        let d = decomp();
        assert!(AdaptiveGrid::build(&d, PartitionFactor::new(2, 2, 1), &[1, 2, 3]).is_err());
    }

    #[test]
    fn participation_rule() {
        let d = decomp();
        let counts: Vec<u64> = (0..d.nprocs())
            .map(|r| if d.patch_coords(r)[0] < 2 { 50 } else { 0 })
            .collect();
        let g = AdaptiveGrid::build(&d, PartitionFactor::new(2, 2, 1), &counts).unwrap();
        // Rank 16 holds no particles but aggregates partition 1.
        assert!(AdaptiveGrid::participates(&g, 16, 0));
        // Rank 31 holds nothing and aggregates nothing.
        assert!(!AdaptiveGrid::participates(&g, 31, 0));
        // Rank 0 both holds particles and aggregates.
        assert!(AdaptiveGrid::participates(&g, 0, 50));
    }
}
