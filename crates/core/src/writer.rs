//! The spatially-aware two-phase write path (§3).
//!
//! Steps, mirroring the paper's enumeration:
//!
//! 1. set up the aggregation-grid (§3.1) — static, or adaptive (§6);
//! 2. select aggregators uniformly in rank space (§3.2);
//! 3. exchange metadata — particle counts (and, for the adaptive and
//!    general paths, spatial extents) so aggregators can size their
//!    receive buffers (§3.3);
//! 4. allocate aggregation buffers;
//! 5. exchange particles with non-blocking point-to-point messages (§3.3);
//! 6. reshuffle each aggregated buffer into level-of-detail order (§3.4);
//! 7. write one data file per partition (§3.4);
//! 8. gather per-file bounding boxes and write the spatial metadata file on
//!    rank 0 (§3.5), then broadcast the outcome so no rank reports success
//!    for a dataset whose metadata never landed.
//!
//! Sends follow the MPI structure the paper assumes: each exchange posts
//! *all* of its non-blocking sends first and only then waits on the batch,
//! so a real-MPI port gets genuine send/receive overlap instead of
//! serialized rendezvous.
//!
//! When a [`spio_trace::Trace`] is attached ([`SpatialWriter::with_trace`]),
//! the writer records one phase span per step from the *same* clock
//! measurements that feed [`WriteStats`], so trace-derived breakdowns agree
//! with the stats by construction.

use crate::adaptive::AdaptiveGrid;
use crate::grid::AggregationGrid;
use crate::shuffle::{lod_shuffle, lod_shuffle_parallel, lod_stratify, partition_seed, LodOrder};
use crate::stats::WriteStats;
use crate::storage::Storage;
use spio_comm::{Comm, Tag};
use spio_format::data_file::{encode_data_file, DataFileHeader};
use spio_format::meta::AttrRange;
use spio_format::{data_file_name, FileEntry, LodParams, SpatialMetadata, META_FILE_NAME};
use spio_trace::Trace;
use spio_types::{Aabb3, DomainDecomposition, Particle, Rank, SpioError};
use std::time::Instant;

/// Data-file header flag bits recording which LOD ordering produced the
/// layout (any ordering still makes prefixes valid subsamples; the flags
/// let verification tooling know which permutation to reconstruct).
pub mod flags {
    /// Payload is in stratified (round-robin-over-cells) order.
    pub const STRATIFIED_ORDER: u32 = 1;
    /// Payload was permuted by the keyed parallel shuffle, not Fisher–Yates.
    pub const KEYED_SHUFFLE: u32 = 2;
}

/// Phase-span names the writer records into an attached [`Trace`]. One
/// name per [`WriteStats`] duration field, so report consumers can
/// cross-check the two.
pub mod phases {
    pub const SETUP: &str = "setup";
    pub const AGGREGATION: &str = "aggregation";
    pub const SHUFFLE: &str = "shuffle";
    pub const FILE_IO: &str = "file_io";
    pub const META: &str = "meta";
}

/// Tag used for count metadata messages.
const TAG_META: Tag = 1;
/// Tag used for particle payload messages.
const TAG_DATA: Tag = 2;

/// How a rank's particles relate to the aggregation grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WriteMode {
    /// Every particle lies within its rank's own patch, and the
    /// aggregation-grid is aligned with the simulation grid — each rank
    /// sends all particles to a single aggregator with no per-particle
    /// scan (§3.1's fast path). Violations are detected and reported.
    #[default]
    Aligned,
    /// Particles may lie anywhere in the domain; ranks first exchange their
    /// particle bounding boxes (all-gather), then bin particles per
    /// partition and send to every aggregator they intersect (§3.3's
    /// non-aligned path).
    General,
}

/// Writer configuration.
#[derive(Debug, Clone)]
pub struct WriterConfig {
    /// Aggregation partition factor (§3.1) — the main tuning parameter.
    pub factor: spio_types::PartitionFactor,
    /// LOD parameters recorded in the metadata file.
    pub lod: LodParams,
    /// Dataset seed for the LOD shuffles.
    pub seed: u64,
    /// Aligned fast path vs general binning path.
    pub mode: WriteMode,
    /// Build the grid adaptively over the occupied region (§6).
    pub adaptive: bool,
    /// With `adaptive`, rebalance partition rectangles by particle weight
    /// (§7's future-work extension) instead of imposing a uniform grid on
    /// the occupied bounding box.
    pub balanced: bool,
    /// LOD reordering heuristic (§3.4: random or stratified).
    pub lod_order: LodOrder,
    /// Use the threaded keyed shuffle instead of serial Fisher–Yates
    /// (only meaningful for [`LodOrder::Random`]).
    pub parallel_shuffle: bool,
}

impl WriterConfig {
    /// Default configuration for a partition factor: aligned, non-adaptive,
    /// paper-default LOD parameters (P = 32, S = 2).
    pub fn new(factor: spio_types::PartitionFactor) -> Self {
        WriterConfig {
            factor,
            lod: LodParams::default(),
            seed: 0x5910_CAFE,
            mode: WriteMode::Aligned,
            adaptive: false,
            balanced: false,
            lod_order: LodOrder::Random,
            parallel_shuffle: false,
        }
    }

    pub fn with_lod(mut self, lod: LodParams) -> Self {
        self.lod = lod;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_mode(mut self, mode: WriteMode) -> Self {
        self.mode = mode;
        self
    }

    pub fn adaptive(mut self, adaptive: bool) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Enable §7-style weight-rebalanced adaptive aggregation (implies
    /// adaptive mode).
    pub fn balanced(mut self, balanced: bool) -> Self {
        self.balanced = balanced;
        if balanced {
            self.adaptive = true;
        }
        self
    }

    pub fn with_lod_order(mut self, order: LodOrder) -> Self {
        self.lod_order = order;
        self
    }

    pub fn with_parallel_shuffle(mut self, parallel: bool) -> Self {
        self.parallel_shuffle = parallel;
        self
    }
}

/// The spatially-aware parallel writer. One instance is shared (by clone)
/// across ranks; [`SpatialWriter::write`] is called collectively.
#[derive(Debug, Clone)]
pub struct SpatialWriter {
    decomp: DomainDecomposition,
    config: WriterConfig,
    trace: Trace,
}

impl SpatialWriter {
    pub fn new(decomp: DomainDecomposition, config: WriterConfig) -> Self {
        SpatialWriter {
            decomp,
            config,
            trace: Trace::off(),
        }
    }

    /// Attach a trace sink; the writer will record per-rank phase spans
    /// ([`phases`]) into it. Pass a clone of the job-wide trace so spans
    /// from all ranks merge into one stream.
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }

    pub fn config(&self) -> &WriterConfig {
        &self.config
    }

    /// Collective write: every rank passes its local particles; data files
    /// and the spatial metadata file appear in `storage`.
    pub fn write<C: Comm, S: Storage>(
        &self,
        comm: &C,
        particles: &[Particle],
        storage: &S,
    ) -> Result<WriteStats, SpioError> {
        let mut stats = WriteStats {
            particles_sent: particles.len() as u64,
            ..Default::default()
        };
        let me = comm.rank();
        if comm.size() != self.decomp.nprocs() {
            return Err(SpioError::Config(format!(
                "communicator size {} != decomposition {}",
                comm.size(),
                self.decomp.nprocs()
            )));
        }

        // ---- Step 1-2: aggregation-grid setup + aggregator selection. ----
        let t0 = Instant::now();
        let (grid, global_counts) = self.setup_grid(comm, particles)?;
        stats.setup_time = t0.elapsed();
        self.trace.phase(me, phases::SETUP, stats.setup_time);

        // ---- Steps 3-5: metadata + particle exchange. ----
        let t0 = Instant::now();
        let aggregated = match self.config.mode {
            WriteMode::Aligned => {
                self.exchange_aligned(comm, &grid, particles, global_counts.as_deref())?
            }
            WriteMode::General => self.exchange_general(comm, &grid, particles)?,
        };
        stats.aggregation_time = t0.elapsed();
        self.trace
            .phase(me, phases::AGGREGATION, stats.aggregation_time);

        // ---- Steps 6-7: LOD shuffle + data file write. ----
        let my_partition = grid.aggregated_partition(me);
        let mut my_entry: Option<(usize, FileEntry, AttrRange)> = None;
        if let Some(part_idx) = my_partition {
            let mut buffer = aggregated.expect("aggregator must have a buffer");
            stats.particles_aggregated = buffer.len() as u64;

            let t0 = Instant::now();
            let seed = partition_seed(self.config.seed, part_idx);
            let bounds = grid.partitions[part_idx].bounds;
            let mut file_flags = 0u32;
            match (self.config.lod_order, self.config.parallel_shuffle) {
                (LodOrder::Stratified, _) => {
                    lod_stratify(&mut buffer, &bounds, seed);
                    file_flags |= flags::STRATIFIED_ORDER;
                }
                (LodOrder::Random, true) => {
                    lod_shuffle_parallel(&mut buffer, seed);
                    file_flags |= flags::KEYED_SHUFFLE;
                }
                (LodOrder::Random, false) => lod_shuffle(&mut buffer, seed),
            }
            stats.shuffle_time = t0.elapsed();
            self.trace.phase(me, phases::SHUFFLE, stats.shuffle_time);

            // §3.5 extension: record the scalar ranges of this file so
            // readers can prune attribute range-queries.
            let mut range = AttrRange::empty();
            for p in &buffer {
                range.include(p.density, p.volume);
            }

            let t0 = Instant::now();
            let mut header = DataFileHeader::new(buffer.len() as u64, bounds, seed);
            // OR, don't assign: `new` already set the format-owned bits
            // (CHECKSUMS); the writer only owns the LOD-order bits.
            header.flags |= file_flags;
            let bytes = encode_data_file(&header, &buffer);
            storage.write_file(&data_file_name(me), &bytes)?;
            stats.bytes_written = bytes.len() as u64;
            stats.files_written = 1;
            stats.file_io_time = t0.elapsed();
            self.trace.phase(me, phases::FILE_IO, stats.file_io_time);

            my_entry = Some((
                part_idx,
                FileEntry {
                    agg_rank: me as u64,
                    particle_count: buffer.len() as u64,
                    bounds,
                },
                range,
            ));
        }

        // ---- Step 8: spatial metadata (gathered on rank 0, §3.5). ----
        let t0 = Instant::now();
        let meta_result = self.write_metadata(comm, &grid, &my_entry, storage);
        stats.meta_time = t0.elapsed();
        self.trace.phase(me, phases::META, stats.meta_time);
        meta_result?;
        Ok(stats)
    }

    /// Gather per-file entries, write the metadata file on rank 0, and
    /// broadcast the outcome. Every rank returns `Err` when rank 0's
    /// validation or write fails — a dataset without its metadata file is
    /// unreadable, so no rank may report the write as successful.
    fn write_metadata<C: Comm, S: Storage>(
        &self,
        comm: &C,
        grid: &AggregationGrid,
        my_entry: &Option<(usize, FileEntry, AttrRange)>,
        storage: &S,
    ) -> Result<(), SpioError> {
        let me = comm.rank();
        let mine = encode_meta_contribution(my_entry);
        let gathered = comm.allgather(&mine);
        if me == 0 {
            let outcome = self.assemble_and_write_meta(grid, &gathered, storage);
            let payload = match &outcome {
                Ok(()) => vec![0u8],
                Err(e) => {
                    let mut p = vec![1u8];
                    p.extend_from_slice(e.to_string().as_bytes());
                    p
                }
            };
            comm.broadcast(0, payload);
            outcome
        } else {
            let payload = comm.broadcast(0, Vec::new());
            match payload.split_first() {
                Some((0, _)) => Ok(()),
                Some((_, msg)) => Err(SpioError::Comm(format!(
                    "metadata write failed on rank 0: {}",
                    String::from_utf8_lossy(msg)
                ))),
                None => Err(SpioError::Comm(
                    "empty metadata-outcome broadcast".to_string(),
                )),
            }
        }
    }

    /// Rank 0 only: validate the gathered contributions and write the
    /// spatial metadata file.
    fn assemble_and_write_meta<S: Storage>(
        &self,
        grid: &AggregationGrid,
        gathered: &[Vec<u8>],
        storage: &S,
    ) -> Result<(), SpioError> {
        let mut entries: Vec<(usize, FileEntry, AttrRange)> = gathered
            .iter()
            .filter_map(|b| decode_meta_contribution(b))
            .collect();
        entries.sort_by_key(|(part_idx, _, _)| *part_idx);
        if entries.len() != grid.partitions.len() {
            return Err(SpioError::Comm(format!(
                "metadata gather produced {} entries for {} partitions",
                entries.len(),
                grid.partitions.len()
            )));
        }
        let attr_ranges: Vec<AttrRange> = entries.iter().map(|(_, _, r)| *r).collect();
        let entries: Vec<FileEntry> = entries.into_iter().map(|(_, e, _)| e).collect();
        let total_particles = entries.iter().map(|e| e.particle_count).sum();
        let meta = SpatialMetadata {
            domain: self.decomp.bounds,
            writer_grid: self.decomp.dims,
            partition_factor: grid.factor,
            lod: self.config.lod,
            total_particles,
            entries,
            attr_ranges: Some(attr_ranges),
        };
        storage.write_file(META_FILE_NAME, &meta.encode())
    }

    /// Build the aggregation grid; for adaptive mode this performs the §6
    /// extent/count exchange and returns the gathered global counts.
    fn setup_grid<C: Comm>(
        &self,
        comm: &C,
        particles: &[Particle],
    ) -> Result<(AggregationGrid, Option<Vec<u64>>), SpioError> {
        if self.config.adaptive {
            // §6: all-to-all exchange of extents and particle counts. With
            // patch-aligned data the extent is implied by the rank, so the
            // count is the payload.
            let counts_bytes = comm.allgather(&(particles.len() as u64).to_le_bytes());
            let counts: Vec<u64> = counts_bytes
                .iter()
                .map(|b| {
                    b.as_slice()
                        .try_into()
                        .map(u64::from_le_bytes)
                        .map_err(|_| SpioError::Comm("bad count in extent exchange".into()))
                })
                .collect::<Result<_, _>>()?;
            let grid = if self.config.balanced {
                AdaptiveGrid::build_balanced(&self.decomp, self.config.factor, &counts)?
            } else {
                AdaptiveGrid::build(&self.decomp, self.config.factor, &counts)?
            };
            Ok((grid, Some(counts)))
        } else {
            Ok((
                AggregationGrid::aligned(&self.decomp, self.config.factor)?,
                None,
            ))
        }
    }

    /// Aligned exchange: every rank sends its whole buffer to the single
    /// aggregator owning its patch's partition. Returns the aggregation
    /// buffer if this rank is an aggregator.
    ///
    /// With `global_counts` present (adaptive mode), the §6 extent/count
    /// all-gather already served as the metadata exchange, so per-rank
    /// count messages are skipped and empty ranks do not participate.
    fn exchange_aligned<C: Comm>(
        &self,
        comm: &C,
        grid: &AggregationGrid,
        particles: &[Particle],
        global_counts: Option<&[u64]>,
    ) -> Result<Option<Vec<Particle>>, SpioError> {
        let me = comm.rank();
        let patch = self.decomp.patch_bounds(me);
        if let Some(bad) = particles.iter().find(|p| !patch.contains(p.position)) {
            return Err(SpioError::Config(format!(
                "rank {me}: particle {} at {:?} outside its patch {:?} — use WriteMode::General",
                bad.id, bad.position, patch
            )));
        }

        // Post (not complete) my sends: count metadata then particle data,
        // both to my partition's aggregator. Waiting happens after the
        // receive side has drained, preserving the post-all-then-wait MPI
        // structure.
        let mut sends: Vec<spio_comm::SendHandle> = Vec::new();
        let my_partition = grid.partition_of_rank(me);
        match (my_partition, particles.is_empty()) {
            (Some(part_idx), _) => {
                let dest = grid.partitions[part_idx].agg_rank;
                if global_counts.is_none() {
                    sends.push(comm.isend(
                        dest,
                        TAG_META,
                        (particles.len() as u64).to_le_bytes().to_vec(),
                    ));
                }
                if !particles.is_empty() {
                    sends.push(comm.isend(
                        dest,
                        TAG_DATA,
                        spio_types::particle::encode_particles(particles),
                    ));
                }
            }
            (None, false) => {
                // Outside an adaptive grid yet holding particles — the grid
                // covers all occupied patches, so this is a logic error.
                return Err(SpioError::Config(format!(
                    "rank {me} holds particles but lies outside the aggregation grid"
                )));
            }
            (None, true) => {} // §6: empty ranks sit out.
        }

        // Receive if I am an aggregator.
        let buffer = if let Some(part_idx) = grid.aggregated_partition(me) {
            let part = &grid.partitions[part_idx];
            // Metadata phase: learn how many particles each member sends.
            let sender_counts: Vec<(Rank, u64)> = if let Some(counts) = global_counts {
                part.members.iter().map(|&m| (m, counts[m])).collect()
            } else {
                let handles: Vec<(Rank, spio_comm::RecvHandle)> = part
                    .members
                    .iter()
                    .map(|&m| (m, comm.irecv(m, TAG_META)))
                    .collect();
                handles
                    .into_iter()
                    .map(|(m, h)| {
                        let b = h.wait()?;
                        let count = b
                            .as_slice()
                            .try_into()
                            .map(u64::from_le_bytes)
                            .map_err(|_| SpioError::Comm("bad metadata message".into()))?;
                        Ok((m, count))
                    })
                    .collect::<Result<_, SpioError>>()?
            };
            // Allocate the aggregation buffer now that sizes are known
            // (§3.3 step 4), then run the particle exchange.
            let total: u64 = sender_counts.iter().map(|&(_, c)| c).sum();
            let mut buffer = Vec::with_capacity(total as usize);
            let handles: Vec<spio_comm::RecvHandle> = sender_counts
                .iter()
                .filter(|&&(_, c)| c > 0)
                .map(|&(m, _)| comm.irecv(m, TAG_DATA))
                .collect();
            for h in handles {
                let bytes = h.wait()?;
                buffer.extend(spio_types::particle::decode_particles(&bytes));
            }
            Some(buffer)
        } else {
            None
        };

        // Complete the posted sends (batch wait).
        for s in sends {
            s.wait();
        }
        Ok(buffer)
    }

    /// General exchange: ranks declare their particle bounding boxes via an
    /// all-gather, bin particles by partition, and send one bundle per
    /// intersected partition (§3.3's non-aligned path).
    fn exchange_general<C: Comm>(
        &self,
        comm: &C,
        grid: &AggregationGrid,
        particles: &[Particle],
    ) -> Result<Option<Vec<Particle>>, SpioError> {
        let me = comm.rank();
        // Declared extent: the actual bounding box of my particles (§3.1:
        // "the I/O system can easily compute this information by finding
        // the bounding box of the particles on the process").
        let mut bbox = Aabb3::empty();
        for p in particles {
            bbox.expand_to(p.position);
        }
        let declared = encode_declared(particles.len() as u64, &bbox);
        let all_declared = comm.allgather(&declared);

        // Bin my particles by partition.
        let npart = grid.partitions.len();
        let mut bins: Vec<Vec<Particle>> = vec![Vec::new(); npart];
        for p in particles {
            let part = grid.partition_of_point(p.position).ok_or_else(|| {
                SpioError::Config(format!(
                    "rank {me}: particle {} at {:?} outside the aggregation grid",
                    p.id, p.position
                ))
            })?;
            bins[part].push(*p);
        }

        // Post metadata + data sends to every partition my declared box
        // intersects (the box contains all my particles, so any partition
        // actually receiving data is in this set). All sends are posted
        // before any is waited on.
        let mut sends: Vec<spio_comm::SendHandle> = Vec::new();
        if !particles.is_empty() {
            for (part_idx, part) in grid.partitions.iter().enumerate() {
                if !declared_intersects(&bbox, &part.bounds) {
                    continue;
                }
                let bin = &bins[part_idx];
                sends.push(comm.isend(
                    part.agg_rank,
                    TAG_META,
                    (bin.len() as u64).to_le_bytes().to_vec(),
                ));
                if !bin.is_empty() {
                    sends.push(comm.isend(
                        part.agg_rank,
                        TAG_DATA,
                        spio_types::particle::encode_particles(bin),
                    ));
                }
            }
        }

        // Receive if I am an aggregator: expected senders are ranks whose
        // declared boxes intersect my partition and that hold particles.
        let buffer = if let Some(part_idx) = grid.aggregated_partition(me) {
            let bounds = grid.partitions[part_idx].bounds;
            let mut senders: Vec<Rank> = Vec::new();
            for (rank, bytes) in all_declared.iter().enumerate() {
                let (count, rank_box) = decode_declared(bytes)?;
                if count > 0 && declared_intersects(&rank_box, &bounds) {
                    senders.push(rank);
                }
            }
            let meta_handles: Vec<(Rank, spio_comm::RecvHandle)> = senders
                .iter()
                .map(|&s| (s, comm.irecv(s, TAG_META)))
                .collect();
            let mut data_senders = Vec::new();
            let mut total: u64 = 0;
            for (s, h) in meta_handles {
                let b = h.wait()?;
                let count = b
                    .as_slice()
                    .try_into()
                    .map(u64::from_le_bytes)
                    .map_err(|_| SpioError::Comm("bad metadata message".into()))?;
                if count > 0 {
                    data_senders.push(s);
                    total += count;
                }
            }
            let mut buffer = Vec::with_capacity(total as usize);
            let handles: Vec<spio_comm::RecvHandle> = data_senders
                .iter()
                .map(|&s| comm.irecv(s, TAG_DATA))
                .collect();
            for h in handles {
                buffer.extend(spio_types::particle::decode_particles(&h.wait()?));
            }
            Some(buffer)
        } else {
            None
        };

        // Complete the posted sends (batch wait).
        for s in sends {
            s.wait();
        }
        Ok(buffer)
    }
}

/// Intersection test between a particle bounding box (closed, from
/// `expand_to`) and a half-open partition box: treat the particle box's hi
/// face as inclusive.
fn declared_intersects(particle_box: &Aabb3, partition: &Aabb3) -> bool {
    if particle_box.lo[0] > particle_box.hi[0] {
        return false; // empty declared box
    }
    (0..3).all(|a| particle_box.lo[a] < partition.hi[a] && partition.lo[a] <= particle_box.hi[a])
}

fn encode_declared(count: u64, bbox: &Aabb3) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 48);
    out.extend_from_slice(&count.to_le_bytes());
    for v in bbox.lo.iter().chain(&bbox.hi) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn decode_declared(bytes: &[u8]) -> Result<(u64, Aabb3), SpioError> {
    if bytes.len() != 56 {
        return Err(SpioError::Comm("bad declared-extent message".into()));
    }
    let count = u64::from_le_bytes(bytes[..8].try_into().unwrap());
    let mut lo = [0.0; 3];
    let mut hi = [0.0; 3];
    for a in 0..3 {
        lo[a] = f64::from_le_bytes(bytes[8 + a * 8..16 + a * 8].try_into().unwrap());
        hi[a] = f64::from_le_bytes(bytes[32 + a * 8..40 + a * 8].try_into().unwrap());
    }
    Ok((count, Aabb3 { lo, hi }))
}

/// Encode a rank's contribution to the metadata gather: empty for
/// non-aggregators, `(partition_index, entry, scalar ranges)` for
/// aggregators.
fn encode_meta_contribution(entry: &Option<(usize, FileEntry, AttrRange)>) -> Vec<u8> {
    match entry {
        None => Vec::new(),
        Some((part_idx, e, r)) => {
            let mut out = Vec::with_capacity(8 + 8 + 8 + 48 + 32);
            out.extend_from_slice(&(*part_idx as u64).to_le_bytes());
            out.extend_from_slice(&e.agg_rank.to_le_bytes());
            out.extend_from_slice(&e.particle_count.to_le_bytes());
            for v in e.bounds.lo.iter().chain(&e.bounds.hi) {
                out.extend_from_slice(&v.to_le_bytes());
            }
            for v in [r.density_min, r.density_max, r.volume_min, r.volume_max] {
                out.extend_from_slice(&v.to_le_bytes());
            }
            out
        }
    }
}

fn decode_meta_contribution(bytes: &[u8]) -> Option<(usize, FileEntry, AttrRange)> {
    if bytes.len() != 104 {
        return None;
    }
    let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
    let f64_at = |o: usize| f64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
    let part_idx = u64_at(0) as usize;
    let mut lo = [0.0; 3];
    let mut hi = [0.0; 3];
    for a in 0..3 {
        lo[a] = f64_at(24 + a * 8);
        hi[a] = f64_at(48 + a * 8);
    }
    Some((
        part_idx,
        FileEntry {
            agg_rank: u64_at(8),
            particle_count: u64_at(16),
            bounds: Aabb3 { lo, hi },
        },
        AttrRange {
            density_min: f64_at(72),
            density_max: f64_at(80),
            volume_min: f64_at(88),
            volume_max: f64_at(96),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;
    use spio_comm::run_threaded_collect;
    use spio_format::data_file::decode_data_file;
    use spio_types::{GridDims, PartitionFactor};

    fn decomp(nx: usize, ny: usize, nz: usize) -> DomainDecomposition {
        DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(nx, ny, nz))
    }

    fn write_job(
        decomp: DomainDecomposition,
        config: WriterConfig,
        per_rank: usize,
    ) -> (MemStorage, Vec<WriteStats>) {
        let storage = MemStorage::new();
        let s2 = storage.clone();
        let n = decomp.nprocs();
        let stats = run_threaded_collect(n, move |comm| {
            let particles = spio_workloads_shim::uniform(&decomp, comm.rank(), per_rank, 77);
            let writer = SpatialWriter::new(decomp.clone(), config.clone());
            writer.write(&comm, &particles, &s2).unwrap()
        })
        .unwrap();
        (storage, stats)
    }

    /// Minimal local generator to avoid a dev-dependency cycle with
    /// spio-workloads (which depends on spio-types only, but keeping core's
    /// tests self-contained is simpler).
    mod spio_workloads_shim {
        use spio_types::{DomainDecomposition, Particle, Rank};

        pub fn uniform(
            decomp: &DomainDecomposition,
            rank: Rank,
            count: usize,
            seed: u64,
        ) -> Vec<Particle> {
            let b = decomp.patch_bounds(rank);
            let e = b.extent();
            // Low-discrepancy fill: deterministic, stays inside the patch.
            (0..count)
                .map(|i| {
                    let t = (i as f64 + 0.5) / count as f64;
                    let u = ((i as u64).wrapping_mul(seed | 1) % 1000) as f64 / 1000.0;
                    let v = ((i as u64).wrapping_mul(2654435761) % 1000) as f64 / 1000.0;
                    let pos = [
                        b.lo[0] + t * e[0] * 0.999,
                        b.lo[1] + u * e[1] * 0.999,
                        b.lo[2] + v * e[2] * 0.999,
                    ];
                    Particle::synthetic(pos, ((rank as u64) << 32) | i as u64)
                })
                .collect()
        }
    }

    #[test]
    fn aligned_write_produces_expected_files() {
        let d = decomp(4, 4, 1);
        let config = WriterConfig::new(PartitionFactor::new(2, 2, 1));
        let (storage, stats) = write_job(d, config, 50);
        let names = storage.file_names();
        // 4 data files from aggregators 0, 4, 8, 12 plus the metadata file.
        assert_eq!(
            names,
            vec![
                "file_0.spd",
                "file_12.spd",
                "file_4.spd",
                "file_8.spd",
                META_FILE_NAME
            ]
        );
        let total_written: u32 = stats.iter().map(|s| s.files_written).sum();
        assert_eq!(total_written, 4);
        let total_aggregated: u64 = stats.iter().map(|s| s.particles_aggregated).sum();
        assert_eq!(total_aggregated, 16 * 50);
    }

    #[test]
    fn data_files_contain_only_partition_particles() {
        let d = decomp(4, 4, 1);
        let config = WriterConfig::new(PartitionFactor::new(2, 2, 1));
        let (storage, _) = write_job(d.clone(), config, 40);
        let meta = SpatialMetadata::decode(&storage.read_file(META_FILE_NAME).unwrap()).unwrap();
        meta.validate_disjoint().unwrap();
        assert_eq!(meta.total_particles, 16 * 40);
        for entry in &meta.entries {
            let bytes = storage.read_file(&entry.file_name()).unwrap();
            let (header, particles) = decode_data_file(&bytes).unwrap();
            assert_eq!(header.particle_count, entry.particle_count);
            assert_eq!(header.bounds, entry.bounds);
            assert!(
                particles.iter().all(|p| entry.bounds.contains(p.position)),
                "particles must lie inside their file's box"
            );
        }
    }

    #[test]
    fn no_particle_lost_or_duplicated() {
        let d = decomp(2, 2, 2);
        let config = WriterConfig::new(PartitionFactor::new(2, 1, 1));
        let (storage, _) = write_job(d, config, 30);
        let meta = SpatialMetadata::decode(&storage.read_file(META_FILE_NAME).unwrap()).unwrap();
        let mut ids = Vec::new();
        for entry in &meta.entries {
            let (_, ps) =
                decode_data_file(&storage.read_file(&entry.file_name()).unwrap()).unwrap();
            ids.extend(ps.iter().map(|p| p.id));
        }
        ids.sort_unstable();
        let expected: Vec<u64> = (0..8u64)
            .flat_map(|r| (0..30u64).map(move |i| (r << 32) | i))
            .collect();
        assert_eq!(ids, expected);
    }

    #[test]
    fn file_payload_is_lod_shuffled_with_header_seed() {
        let d = decomp(4, 4, 1);
        let config = WriterConfig::new(PartitionFactor::new(2, 2, 1)).with_seed(123);
        let (storage, _) = write_job(d, config, 100);
        let (header, particles) =
            decode_data_file(&storage.read_file("file_0.spd").unwrap()).unwrap();
        assert_eq!(header.shuffle_seed, partition_seed(123, 0));
        // Undo the permutation: the result must be sorted by (sender rank,
        // local index) i.e. by id within sender groups, since senders are
        // concatenated in rank order before shuffling.
        let perm = crate::shuffle::shuffle_permutation(particles.len(), header.shuffle_seed);
        let mut unshuffled = vec![None; particles.len()];
        for (new_idx, &old_idx) in perm.iter().enumerate() {
            unshuffled[old_idx] = Some(particles[new_idx]);
        }
        let ids: Vec<u64> = unshuffled.iter().map(|p| p.unwrap().id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted, "pre-shuffle buffer is sender-rank ordered");
    }

    #[test]
    fn file_per_process_and_shared_file_extremes() {
        let d = decomp(2, 2, 1);
        // (1,1,1): file per process.
        let (storage, _) = write_job(
            d.clone(),
            WriterConfig::new(PartitionFactor::new(1, 1, 1)),
            10,
        );
        assert_eq!(storage.file_names().len(), 4 + 1);
        // Whole-domain factor: single shared file.
        let (storage, _) = write_job(d, WriterConfig::new(PartitionFactor::new(2, 2, 1)), 10);
        assert_eq!(storage.file_names(), vec!["file_0.spd", META_FILE_NAME]);
        let meta = SpatialMetadata::decode(&storage.read_file(META_FILE_NAME).unwrap()).unwrap();
        assert_eq!(meta.entries.len(), 1);
        assert_eq!(meta.total_particles, 40);
    }

    #[test]
    fn aligned_mode_rejects_stray_particles() {
        let storage = MemStorage::new();
        // Every rank fabricates a particle inside the *other* rank's patch,
        // so both fail fast before any collective (a lone failing rank
        // would hang its peers, just like real MPI).
        let err = run_threaded_collect(2, move |comm| {
            let x = if comm.rank() == 0 { 0.9 } else { 0.1 };
            let p = Particle::synthetic([x, 0.5, 0.5], comm.rank() as u64);
            let writer = SpatialWriter::new(
                decomp(2, 1, 1),
                WriterConfig::new(PartitionFactor::new(1, 1, 1)),
            );
            writer.write(&comm, &[p], &storage.clone()).map(|_| ())
        })
        .unwrap();
        assert!(
            err.iter().all(Result::is_err),
            "stray particles must be caught"
        );
        let msg = format!("{}", err[0].as_ref().unwrap_err());
        assert!(msg.contains("WriteMode::General"), "got: {msg}");
    }

    #[test]
    fn general_mode_handles_stray_particles() {
        let d = decomp(2, 2, 1);
        let storage = MemStorage::new();
        let s2 = storage.clone();
        let dd = d.clone();
        run_threaded_collect(4, move |comm| {
            // Every rank generates particles spread over the WHOLE domain.
            let me = comm.rank();
            let particles: Vec<Particle> = (0..40)
                .map(|i| {
                    let t = (i as f64 + 0.5) / 40.0;
                    Particle::synthetic(
                        [t * 0.999, ((i * 7 + me) % 40) as f64 / 40.0, 0.5],
                        ((me as u64) << 32) | i as u64,
                    )
                })
                .collect();
            let writer = SpatialWriter::new(
                dd.clone(),
                WriterConfig::new(PartitionFactor::new(1, 2, 1)).with_mode(WriteMode::General),
            );
            writer.write(&comm, &particles, &s2).unwrap();
        })
        .unwrap();
        let meta = SpatialMetadata::decode(&storage.read_file(META_FILE_NAME).unwrap()).unwrap();
        assert_eq!(meta.total_particles, 4 * 40);
        meta.validate_disjoint().unwrap();
        // Every particle must be in the file whose box contains it.
        for entry in &meta.entries {
            let (_, ps) =
                decode_data_file(&storage.read_file(&entry.file_name()).unwrap()).unwrap();
            assert_eq!(ps.len() as u64, entry.particle_count);
            assert!(ps.iter().all(|p| entry.bounds.contains(p.position)));
        }
    }

    #[test]
    fn adaptive_mode_skips_empty_regions() {
        let d = decomp(4, 1, 1);
        let storage = MemStorage::new();
        let s2 = storage.clone();
        let dd = d.clone();
        run_threaded_collect(4, move |comm| {
            let me = comm.rank();
            // Only ranks 0 and 1 (x < 0.5) hold particles.
            let particles = if me < 2 {
                spio_workloads_shim::uniform(&dd, me, 25, 3)
            } else {
                Vec::new()
            };
            let writer = SpatialWriter::new(
                dd.clone(),
                WriterConfig::new(PartitionFactor::new(2, 1, 1)).adaptive(true),
            );
            writer.write(&comm, &particles, &s2).unwrap();
        })
        .unwrap();
        let meta = SpatialMetadata::decode(&storage.read_file(META_FILE_NAME).unwrap()).unwrap();
        // One partition over the two occupied patches — not two partitions.
        assert_eq!(meta.entries.len(), 1);
        assert_eq!(meta.total_particles, 50);
        // The file box covers only the occupied half.
        assert!(meta.entries[0].bounds.hi[0] <= 0.5 + 1e-12);
    }

    #[test]
    fn stratified_and_parallel_orders_write_valid_datasets() {
        use crate::shuffle::LodOrder;
        for (order, parallel, expect_flags) in [
            (LodOrder::Stratified, false, super::flags::STRATIFIED_ORDER),
            (LodOrder::Random, true, super::flags::KEYED_SHUFFLE),
        ] {
            let d = decomp(4, 4, 1);
            let storage = MemStorage::new();
            let s2 = storage.clone();
            run_threaded_collect(16, move |comm| {
                let particles = spio_workloads_shim::uniform(&d, comm.rank(), 60, 4);
                let writer = SpatialWriter::new(
                    d.clone(),
                    WriterConfig::new(PartitionFactor::new(2, 2, 1))
                        .with_lod_order(order)
                        .with_parallel_shuffle(parallel),
                );
                writer.write(&comm, &particles, &s2).unwrap();
            })
            .unwrap();
            let meta =
                SpatialMetadata::decode(&storage.read_file(META_FILE_NAME).unwrap()).unwrap();
            assert_eq!(meta.total_particles, 16 * 60);
            for entry in &meta.entries {
                let bytes = storage.read_file(&entry.file_name()).unwrap();
                let (header, ps) = decode_data_file(&bytes).unwrap();
                let order_bits = super::flags::STRATIFIED_ORDER | super::flags::KEYED_SHUFFLE;
                assert_eq!(header.flags & order_bits, expect_flags);
                assert!(header.has_checksums(), "v2 writes are checksummed");
                assert_eq!(ps.len() as u64, entry.particle_count);
                assert!(ps.iter().all(|p| entry.bounds.contains(p.position)));
            }
        }
    }

    #[test]
    fn balanced_adaptive_write_roundtrips_skewed_load() {
        let d = decomp(4, 4, 1);
        let storage = MemStorage::new();
        let s2 = storage.clone();
        run_threaded_collect(16, move |comm| {
            // Left column of patches holds 10x the particles.
            let me = comm.rank();
            let count = if d.patch_coords(me)[0] == 0 { 200 } else { 20 };
            let particles = spio_workloads_shim::uniform(&d, me, count, 6);
            let writer = SpatialWriter::new(
                d.clone(),
                WriterConfig::new(PartitionFactor::new(2, 2, 1)).balanced(true),
            );
            writer.write(&comm, &particles, &s2).unwrap();
        })
        .unwrap();
        let meta = SpatialMetadata::decode(&storage.read_file(META_FILE_NAME).unwrap()).unwrap();
        meta.validate_disjoint().unwrap();
        assert_eq!(meta.total_particles, 4 * 200 + 12 * 20);
        // Rebalancing: the heaviest file must hold well under the bbox
        // grid's worst case (which would put 2 heavy patches + 2 light in
        // one partition: 440 of 1040).
        let max_file = meta.entries.iter().map(|e| e.particle_count).max().unwrap();
        assert!(max_file < 440, "balanced max file {max_file}");
        // Everything reads back.
        for entry in &meta.entries {
            let bytes = storage.read_file(&entry.file_name()).unwrap();
            let (_, ps) = decode_data_file(&bytes).unwrap();
            assert!(ps.iter().all(|p| entry.bounds.contains(p.position)));
        }
    }

    #[test]
    fn wrong_world_size_is_reported() {
        let storage = MemStorage::new();
        let res = run_threaded_collect(2, move |comm| {
            let writer = SpatialWriter::new(
                decomp(4, 1, 1), // needs 4 ranks
                WriterConfig::new(PartitionFactor::new(1, 1, 1)),
            );
            writer.write(&comm, &[], &storage.clone()).map(|_| ())
        })
        .unwrap();
        assert!(res.iter().all(|r| r.is_err()));
    }

    #[test]
    fn meta_write_failure_reaches_every_rank() {
        use crate::storage::MemStorage;
        use spio_types::SpioError;

        /// Storage that accepts data files but refuses the metadata file —
        /// models rank 0 hitting a full or failed filesystem at the last
        /// step.
        #[derive(Clone)]
        struct FailMeta(MemStorage);
        impl Storage for FailMeta {
            fn write_file(&self, name: &str, data: &[u8]) -> Result<(), SpioError> {
                if name == META_FILE_NAME {
                    return Err(SpioError::Io(std::io::Error::other("disk full")));
                }
                self.0.write_file(name, data)
            }
            fn read_file(&self, name: &str) -> Result<Vec<u8>, SpioError> {
                self.0.read_file(name)
            }
            fn read_range(&self, name: &str, s: u64, e: u64) -> Result<Vec<u8>, SpioError> {
                self.0.read_range(name, s, e)
            }
            fn file_size(&self, name: &str) -> Result<u64, SpioError> {
                self.0.file_size(name)
            }
            fn exists(&self, name: &str) -> bool {
                self.0.exists(name)
            }
            fn write_range(&self, name: &str, o: u64, d: &[u8]) -> Result<(), SpioError> {
                self.0.write_range(name, o, d)
            }
        }

        let storage = FailMeta(MemStorage::new());
        let results = run_threaded_collect(4, move |comm| {
            let d = decomp(2, 2, 1);
            let particles = spio_workloads_shim::uniform(&d, comm.rank(), 10, 5);
            let writer = SpatialWriter::new(d, WriterConfig::new(PartitionFactor::new(1, 1, 1)));
            writer
                .write(&comm, &particles, &storage.clone())
                .map(|_| ())
        })
        .unwrap();
        // EVERY rank must see the failure, not just rank 0 — a dataset
        // without its metadata file is unreadable.
        for (rank, res) in results.iter().enumerate() {
            let err = res.as_ref().expect_err("rank must report meta failure");
            assert!(
                err.to_string().contains("disk full"),
                "rank {rank} got: {err}"
            );
        }
    }

    #[test]
    fn traced_write_records_phases_matching_stats() {
        let d = decomp(2, 2, 1);
        let storage = MemStorage::new();
        let trace = Trace::collecting();
        let t2 = trace.clone();
        let s2 = storage.clone();
        let stats = run_threaded_collect(4, move |comm| {
            let particles = spio_workloads_shim::uniform(&d, comm.rank(), 50, 9);
            let writer =
                SpatialWriter::new(d.clone(), WriterConfig::new(PartitionFactor::new(2, 2, 1)))
                    .with_trace(t2.clone());
            writer.write(&comm, &particles, &s2).unwrap()
        })
        .unwrap();
        let report = spio_trace::JobReport::from_snapshot(4, &trace.snapshot());
        // Phase totals derive from the same Instant reads as WriteStats, so
        // the max-over-ranks must agree exactly (to microsecond rounding).
        let merged = WriteStats::merge_max(&stats);
        for (phase, expect) in [
            (phases::SETUP, merged.setup_time),
            (phases::AGGREGATION, merged.aggregation_time),
            (phases::SHUFFLE, merged.shuffle_time),
            (phases::FILE_IO, merged.file_io_time),
            (phases::META, merged.meta_time),
        ] {
            let got = report.phase_max(phase).as_micros() as u64;
            let want = expect.as_micros() as u64;
            assert!(
                got.abs_diff(want) <= 1,
                "phase {phase}: trace {got}µs vs stats {want}µs"
            );
        }
    }
}
