//! Level-of-detail particle reordering (§3.4).
//!
//! After aggregation, each aggregator reorders its particles in place so
//! that any prefix of the stored sequence is a representative subset of the
//! partition. The paper implements the reordering as a random reshuffle —
//! levels of detail are then just nested prefixes, with no storage overhead
//! over the raw data. The shuffle is a seeded Fisher–Yates permutation, so
//! the layout is reproducible and the permutation can be reconstructed from
//! the seed recorded in the data-file header.

use spio_types::{Aabb3, Particle};
use spio_util::Rng;

/// Which reordering heuristic produced a file's LOD layout (§3.4: "the
/// order of particles used to create the levels of detail can be defined
/// using different kinds of heuristics such as density or random").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LodOrder {
    /// Seeded uniform random permutation (the paper's implemented choice).
    #[default]
    Random,
    /// Spatially stratified: particles are binned into a uniform cell grid
    /// and emitted round-robin across cells (shuffled within each cell), so
    /// even tiny prefixes touch every occupied region. Better feature
    /// coverage at very low levels of detail; slightly more work to build.
    Stratified,
}

/// Derive the shuffle seed for one partition's file from the dataset seed
/// and the partition's linear index.
pub fn partition_seed(dataset_seed: u64, partition: usize) -> u64 {
    // splitmix64 avalanche of the combined value.
    let mut z = dataset_seed ^ (partition as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Shuffle `particles` in place with the given seed (Fisher–Yates).
pub fn lod_shuffle(particles: &mut [Particle], seed: u64) {
    let mut rng = Rng::seed_from_u64(seed);
    rng.shuffle(particles);
}

/// Slot key for [`lod_shuffle_parallel`]: splitmix64 avalanche of
/// `(seed, index)`.
fn slot_key(seed: u64, i: usize) -> u64 {
    let mut z = seed ^ (i as u64).wrapping_mul(0xA24B_AED4_963E_E407);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Parallel variant of [`lod_shuffle`]: assigns each slot a deterministic
/// 64-bit key derived from `(seed, index)` and sorts by it. Produces a
/// uniform permutation (keys collide with negligible probability; ties
/// break by original index, keeping the result deterministic) — the
/// parallelization §3.4 leaves as future work. Key derivation runs on
/// scoped threads; the sort itself is the comparison-dominated tail.
///
/// Note: for a given seed this is a *different* permutation than the
/// serial Fisher–Yates; files record which ordering produced them via the
/// header flags.
pub fn lod_shuffle_parallel(particles: &mut [Particle], seed: u64) {
    let n = particles.len();
    if n < 2 {
        return;
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    let chunk = n.div_ceil(threads);
    let mut keyed: Vec<(u64, u32, Particle)> = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = particles
            .chunks(chunk)
            .enumerate()
            .map(|(c, slice)| {
                s.spawn(move || {
                    let base = c * chunk;
                    slice
                        .iter()
                        .enumerate()
                        .map(|(j, p)| (slot_key(seed, base + j), (base + j) as u32, *p))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            keyed.extend(h.join().expect("shuffle key thread panicked"));
        }
    });
    keyed.sort_unstable_by_key(|&(k, i, _)| (k, i));
    for (slot, (_, _, p)) in particles.iter_mut().zip(keyed) {
        *slot = p;
    }
}

/// Stratified LOD ordering: bin particles into a `cells³` grid over
/// `bounds`, shuffle each cell's list (seeded per cell), then emit one
/// particle per occupied cell per round. Any prefix therefore samples all
/// occupied cells as evenly as possible — the "density" heuristic family
/// of §3.4. Returns a permutation of the input.
pub fn lod_stratify(particles: &mut [Particle], bounds: &Aabb3, seed: u64) {
    let n = particles.len();
    if n < 2 {
        return;
    }
    // Aim for ~64 particles per cell, capped so tiny buffers still work.
    let cells = (((n as f64) / 64.0).cbrt().ceil() as usize).clamp(1, 16);
    let dims = [cells; 3];
    let ncells = cells * cells * cells;
    let mut bins: Vec<Vec<Particle>> = vec![Vec::new(); ncells];
    for p in particles.iter() {
        let c = bounds.cell_of(dims, p.position);
        bins[c[0] + cells * (c[1] + cells * c[2])].push(*p);
    }
    for (i, bin) in bins.iter_mut().enumerate() {
        let mut rng = Rng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
        rng.shuffle(bin);
    }
    // Round-robin drain: one particle per non-empty cell per round.
    let mut cursors = vec![0usize; ncells];
    let mut out_idx = 0;
    while out_idx < n {
        for (bin, cursor) in bins.iter().zip(cursors.iter_mut()) {
            if *cursor < bin.len() {
                particles[out_idx] = bin[*cursor];
                *cursor += 1;
                out_idx += 1;
            }
        }
    }
}

/// Recompute the permutation applied by [`lod_shuffle`] for a buffer of
/// `len` elements: `perm[new_index] = old_index`. Verification tooling uses
/// this to check a file's layout against its header seed.
pub fn shuffle_permutation(len: usize, seed: u64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..len).collect();
    let mut rng = Rng::seed_from_u64(seed);
    rng.shuffle(&mut perm);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn particles(n: usize) -> Vec<Particle> {
        (0..n)
            .map(|i| Particle::synthetic([i as f64, 0.0, 0.0], i as u64))
            .collect()
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let original = particles(1000);
        let mut shuffled = original.clone();
        lod_shuffle(&mut shuffled, 42);
        let mut ids: Vec<u64> = shuffled.iter().map(|p| p.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..1000).collect::<Vec<u64>>());
        assert_ne!(shuffled, original, "1000 elements must actually move");
    }

    #[test]
    fn shuffle_is_deterministic_in_seed() {
        let mut a = particles(100);
        let mut b = particles(100);
        let mut c = particles(100);
        lod_shuffle(&mut a, 7);
        lod_shuffle(&mut b, 7);
        lod_shuffle(&mut c, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn permutation_matches_shuffle() {
        let original = particles(257);
        let mut shuffled = original.clone();
        lod_shuffle(&mut shuffled, 99);
        let perm = shuffle_permutation(257, 99);
        for (new_idx, &old_idx) in perm.iter().enumerate() {
            assert_eq!(shuffled[new_idx], original[old_idx]);
        }
    }

    #[test]
    fn partition_seeds_differ() {
        let s0 = partition_seed(1, 0);
        let s1 = partition_seed(1, 1);
        let t0 = partition_seed(2, 0);
        assert_ne!(s0, s1);
        assert_ne!(s0, t0);
        // Deterministic.
        assert_eq!(partition_seed(1, 0), s0);
    }

    #[test]
    fn prefix_is_spatially_representative() {
        // Particles on a line 0..1000; a 10% prefix of the shuffle should
        // span most of the range (crude uniformity check: prefix mean near
        // the middle, min/max near the ends).
        let mut ps = particles(1000);
        lod_shuffle(&mut ps, 5);
        let prefix = &ps[..100];
        let xs: Vec<f64> = prefix.iter().map(|p| p.position[0]).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((350.0..650.0).contains(&mean), "prefix mean {mean}");
        assert!(xs.iter().cloned().fold(f64::MAX, f64::min) < 100.0);
        assert!(xs.iter().cloned().fold(f64::MIN, f64::max) > 900.0);
    }

    #[test]
    fn parallel_shuffle_is_a_deterministic_permutation() {
        let original = particles(10_000);
        let mut a = original.clone();
        let mut b = original.clone();
        lod_shuffle_parallel(&mut a, 9);
        lod_shuffle_parallel(&mut b, 9);
        assert_eq!(a, b, "deterministic in seed");
        let mut ids: Vec<u64> = a.iter().map(|p| p.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..10_000).collect::<Vec<u64>>(), "permutation");
        assert_ne!(a, original);
        let mut c = original.clone();
        lod_shuffle_parallel(&mut c, 10);
        assert_ne!(a, c, "different seed, different order");
    }

    #[test]
    fn parallel_prefix_is_representative() {
        let mut ps = particles(4096);
        lod_shuffle_parallel(&mut ps, 3);
        let xs: Vec<f64> = ps[..256].iter().map(|p| p.position[0]).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((1500.0..2600.0).contains(&mean), "prefix mean {mean}");
    }

    #[test]
    fn stratified_is_a_permutation_with_early_coverage() {
        // Particles clustered: 8 groups along x.
        let n = 4096;
        let original: Vec<Particle> = (0..n)
            .map(|i| {
                let group = i % 8;
                let x = group as f64 / 8.0 + (i / 8) as f64 / (n as f64);
                Particle::synthetic([x.min(0.999), 0.5, 0.5], i)
            })
            .collect();
        let bounds = Aabb3::new([0.0; 3], [1.0; 3]);
        let mut strat = original.clone();
        lod_stratify(&mut strat, &bounds, 7);
        // Still a permutation.
        let mut ids: Vec<u64> = strat.iter().map(|p| p.id).collect();
        ids.sort_unstable();
        assert_eq!(ids.len(), n as usize);
        assert_eq!(ids, (0..n).collect::<Vec<u64>>());
        // A tiny prefix touches every 1/8 x-slab.
        let prefix = &strat[..64];
        for g in 0..8 {
            let lo = g as f64 / 8.0;
            assert!(
                prefix
                    .iter()
                    .any(|p| p.position[0] >= lo && p.position[0] < lo + 0.125),
                "slab {g} unsampled by stratified prefix"
            );
        }
    }

    #[test]
    fn stratified_deterministic() {
        let bounds = Aabb3::new([0.0; 3], [10_000.0, 1.0, 1.0]);
        let mut a = particles(1000);
        let mut b = particles(1000);
        lod_stratify(&mut a, &bounds, 5);
        lod_stratify(&mut b, &bounds, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_single_are_noops() {
        let mut none: Vec<Particle> = Vec::new();
        lod_shuffle(&mut none, 1);
        lod_shuffle_parallel(&mut none, 1);
        assert!(none.is_empty());
        let mut one = particles(1);
        lod_shuffle(&mut one, 1);
        lod_shuffle_parallel(&mut one, 1);
        lod_stratify(&mut one, &Aabb3::new([0.0; 3], [1.0; 3]), 1);
        assert_eq!(one[0].id, 0);
    }
}
