//! Aggregation-grid setup (§3.1) and aggregator selection (§3.2).
//!
//! The aggregation-grid partitions the simulation domain into axis-aligned
//! boxes (*aggregation partitions*), each an integer multiple of the
//! per-process patch size, aligned with the simulation's decomposition so
//! that — for uniform-resolution runs — every process sends all of its
//! particles to exactly one aggregator. Aggregators are chosen uniformly
//! from the rank space for even network utilization (16 processes and 4
//! partitions ⇒ aggregators 0, 4, 8, 12).
//!
//! The same type also represents §6's *adaptive* grid: a grid imposed on a
//! sub-rectangle of the patch space (the occupied region), built by
//! [`crate::adaptive`].

use spio_types::{Aabb3, DomainDecomposition, GridDims, PartitionFactor, Rank, SpioError};

/// One aggregation partition: a box of whole patches, owned by one
/// aggregator rank, written to one data file.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// Partition coordinates within the aggregation grid (all zero for
    /// irregular, rebalanced grids, which have no lattice structure).
    pub index: [usize; 3],
    /// Patch-space rectangle `[patch_lo, patch_hi)` this partition covers.
    pub patch_lo: [usize; 3],
    pub patch_hi: [usize; 3],
    /// Spatial bounds: the union of the member patches' boxes (half-open).
    pub bounds: Aabb3,
    /// The rank that aggregates and writes this partition.
    pub agg_rank: Rank,
    /// Ranks whose patches lie inside this partition (its senders in the
    /// aligned write path).
    pub members: Vec<Rank>,
}

impl Partition {
    /// Does this partition cover patch-space coordinates `patch`?
    pub fn covers_patch(&self, patch: [usize; 3]) -> bool {
        (0..3).all(|a| self.patch_lo[a] <= patch[a] && patch[a] < self.patch_hi[a])
    }
}

/// An aggregation grid over (a sub-rectangle of) the patch space.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregationGrid {
    /// The simulation decomposition the grid is aligned with.
    pub decomp: DomainDecomposition,
    /// The user's partition factor (patches per partition per axis).
    pub factor: PartitionFactor,
    /// Patch-space origin of the gridded region (`[0,0,0]` for the static
    /// full-domain grid; the occupied corner for adaptive grids).
    pub origin: [usize; 3],
    /// Extent of the gridded region in patches.
    pub extent: [usize; 3],
    /// Partition-grid dimensions: `ceil(extent / factor)` per axis (for
    /// irregular grids this only records the partition count as `nx`).
    pub dims: GridDims,
    /// Whether the partitions form a regular lattice (constant-time patch
    /// lookup) or an irregular set of rectangles (§7's rebalanced grids;
    /// lookups scan the rectangle list).
    pub regular: bool,
    /// All partitions, in linear (x-fastest) order of `dims` for regular
    /// grids, in construction order for irregular ones.
    pub partitions: Vec<Partition>,
}

impl AggregationGrid {
    /// The static grid of §3.1: the full patch space, partitioned by
    /// `factor`, with aggregators spread uniformly over all ranks.
    pub fn aligned(
        decomp: &DomainDecomposition,
        factor: PartitionFactor,
    ) -> Result<Self, SpioError> {
        factor.validate(decomp.dims)?;
        Self::over_region(
            decomp,
            factor,
            [0, 0, 0],
            decomp.dims.as_array(),
            decomp.nprocs(),
        )
    }

    /// Build a grid over the patch-space rectangle `[origin, origin+extent)`
    /// with aggregators drawn uniformly from `0..agg_rank_space` (the full
    /// world size, per §6: "the adaptive grid places aggregators uniformly
    /// across the entire rank space").
    pub fn over_region(
        decomp: &DomainDecomposition,
        factor: PartitionFactor,
        origin: [usize; 3],
        extent: [usize; 3],
        agg_rank_space: usize,
    ) -> Result<Self, SpioError> {
        let patch_dims = decomp.dims.as_array();
        for a in 0..3 {
            if extent[a] == 0 || origin[a] + extent[a] > patch_dims[a] {
                return Err(SpioError::Config(format!(
                    "grid region origin {origin:?} extent {extent:?} exceeds patch grid {patch_dims:?}"
                )));
            }
        }
        let f = factor.as_array();
        let dims = GridDims::new(
            extent[0].div_ceil(f[0]),
            extent[1].div_ceil(f[1]),
            extent[2].div_ceil(f[2]),
        );
        let npart = dims.count();
        let mut partitions = Vec::with_capacity(npart);
        for lin in 0..npart {
            let idx = dims.delinearize(lin);
            // Patch-coordinate range covered by this partition (clipped at
            // the region edge for ragged extents).
            let mut lo_patch = [0usize; 3];
            let mut hi_patch = [0usize; 3];
            for a in 0..3 {
                lo_patch[a] = origin[a] + idx[a] * f[a];
                hi_patch[a] = (lo_patch[a] + f[a]).min(origin[a] + extent[a]);
            }
            // Spatial bounds: lo corner of the first patch, hi corner of the
            // last patch.
            let lo_box = decomp.bounds.cell(patch_dims, lo_patch);
            let hi_box = decomp.bounds.cell(
                patch_dims,
                [hi_patch[0] - 1, hi_patch[1] - 1, hi_patch[2] - 1],
            );
            let bounds = Aabb3::new(lo_box.lo, hi_box.hi);
            // Aggregators uniformly over the rank space (§3.2): partition i
            // of k gets rank floor(i * n / k).
            let agg_rank = lin * agg_rank_space / npart;
            // Member ranks: all patches in the covered range.
            let mut members = Vec::with_capacity(
                (hi_patch[0] - lo_patch[0])
                    * (hi_patch[1] - lo_patch[1])
                    * (hi_patch[2] - lo_patch[2]),
            );
            for k in lo_patch[2]..hi_patch[2] {
                for j in lo_patch[1]..hi_patch[1] {
                    for i in lo_patch[0]..hi_patch[0] {
                        members.push(decomp.rank_of([i, j, k]));
                    }
                }
            }
            partitions.push(Partition {
                index: idx,
                patch_lo: lo_patch,
                patch_hi: hi_patch,
                bounds,
                agg_rank,
                members,
            });
        }
        Ok(AggregationGrid {
            decomp: decomp.clone(),
            factor,
            origin,
            extent,
            dims,
            regular: true,
            partitions,
        })
    }

    /// Build an *irregular* grid from explicit patch-space rectangles
    /// `[lo, hi)` — the §7 rebalanced-adaptive construction. Rectangles
    /// must be non-empty and pairwise disjoint (checked by
    /// [`AggregationGrid::validate`]); aggregators are spread uniformly
    /// over `agg_rank_space`.
    pub fn from_patch_rects(
        decomp: &DomainDecomposition,
        factor: PartitionFactor,
        rects: &[([usize; 3], [usize; 3])],
        agg_rank_space: usize,
    ) -> Result<Self, SpioError> {
        if rects.is_empty() {
            return Err(SpioError::Config("irregular grid needs rectangles".into()));
        }
        let patch_dims = decomp.dims.as_array();
        let npart = rects.len();
        let mut partitions = Vec::with_capacity(npart);
        for (lin, &(lo_patch, hi_patch)) in rects.iter().enumerate() {
            for a in 0..3 {
                if lo_patch[a] >= hi_patch[a] || hi_patch[a] > patch_dims[a] {
                    return Err(SpioError::Config(format!(
                        "bad partition rectangle {lo_patch:?}..{hi_patch:?} in patch grid {patch_dims:?}"
                    )));
                }
            }
            let lo_box = decomp.bounds.cell(patch_dims, lo_patch);
            let hi_box = decomp.bounds.cell(
                patch_dims,
                [hi_patch[0] - 1, hi_patch[1] - 1, hi_patch[2] - 1],
            );
            let bounds = Aabb3::new(lo_box.lo, hi_box.hi);
            let agg_rank = lin * agg_rank_space / npart;
            let mut members = Vec::new();
            for k in lo_patch[2]..hi_patch[2] {
                for j in lo_patch[1]..hi_patch[1] {
                    for i in lo_patch[0]..hi_patch[0] {
                        members.push(decomp.rank_of([i, j, k]));
                    }
                }
            }
            partitions.push(Partition {
                index: [0, 0, 0],
                patch_lo: lo_patch,
                patch_hi: hi_patch,
                bounds,
                agg_rank,
                members,
            });
        }
        Ok(AggregationGrid {
            decomp: decomp.clone(),
            factor,
            origin: [0, 0, 0],
            extent: patch_dims,
            dims: GridDims::new(npart, 1, 1),
            regular: false,
            partitions,
        })
    }

    /// Number of partitions — and of output data files (§3.1's
    /// `f = (nx/Px)·(ny/Py)·(nz/Pz)`).
    pub fn file_count(&self) -> usize {
        self.partitions.len()
    }

    /// Linear partition index containing patch-space coordinates `patch`,
    /// or `None` if the patch lies outside the gridded region.
    pub fn partition_of_patch(&self, patch: [usize; 3]) -> Option<usize> {
        if !self.regular {
            return self.partitions.iter().position(|p| p.covers_patch(patch));
        }
        let f = self.factor.as_array();
        let mut idx = [0usize; 3];
        for a in 0..3 {
            if patch[a] < self.origin[a] || patch[a] >= self.origin[a] + self.extent[a] {
                return None;
            }
            idx[a] = (patch[a] - self.origin[a]) / f[a];
        }
        Some(self.dims.linearize(idx))
    }

    /// Linear partition index for `rank`'s patch.
    pub fn partition_of_rank(&self, rank: Rank) -> Option<usize> {
        self.partition_of_patch(self.decomp.patch_coords(rank))
    }

    /// Linear partition index containing point `p`, or `None` if `p` is
    /// outside the gridded region.
    pub fn partition_of_point(&self, p: [f64; 3]) -> Option<usize> {
        let patch = self.decomp.bounds.cell_of(self.decomp.dims.as_array(), p);
        self.partition_of_patch(patch)
    }

    /// The partition this rank aggregates, if it is an aggregator.
    pub fn aggregated_partition(&self, rank: Rank) -> Option<usize> {
        // Aggregator ranks are strictly increasing with the partition index
        // only when npart <= n; duplicate assignments cannot happen because
        // floor(i·n/k) is injective for k ≤ n. A linear scan is fine at the
        // rank counts the thread runtime sees; the simulator uses the plan.
        self.partitions.iter().position(|p| p.agg_rank == rank)
    }

    /// All aggregator ranks in partition order.
    pub fn aggregator_ranks(&self) -> Vec<Rank> {
        self.partitions.iter().map(|p| p.agg_rank).collect()
    }

    /// Switch to *partition-local* aggregator placement: each partition is
    /// aggregated by its own first member instead of a rank drawn
    /// uniformly from the whole rank space. This is the alternative §3.2
    /// argues against ("spatially neighboring processes may not be close
    /// in the network topology, and hence, we choose a scheme which
    /// ensures a more even utilization of the network") — provided for the
    /// placement ablation study.
    pub fn use_partition_local_aggregators(&mut self) {
        for part in &mut self.partitions {
            part.agg_rank = *part
                .members
                .first()
                .expect("partitions always cover at least one patch");
        }
    }

    /// Validate structural invariants (every rank in exactly one partition
    /// for full-domain grids; aggregators unique; bounds disjoint). Used by
    /// tests and debug assertions.
    pub fn validate(&self) -> Result<(), SpioError> {
        let mut seen = vec![0usize; self.decomp.nprocs()];
        for part in &self.partitions {
            for &m in &part.members {
                seen[m] += 1;
            }
        }
        if seen.iter().any(|&c| c > 1) {
            return Err(SpioError::Config("rank in multiple partitions".into()));
        }
        let mut aggs: Vec<Rank> = self.aggregator_ranks();
        aggs.sort_unstable();
        let before = aggs.len();
        aggs.dedup();
        if aggs.len() != before {
            return Err(SpioError::Config(
                "duplicate aggregator assignment (more partitions than ranks?)".into(),
            ));
        }
        for (i, a) in self.partitions.iter().enumerate() {
            for b in &self.partitions[i + 1..] {
                if a.bounds.intersects(&b.bounds) {
                    return Err(SpioError::Config(format!(
                        "partition bounds overlap: {:?} vs {:?}",
                        a.index, b.index
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decomp_4x4() -> DomainDecomposition {
        DomainDecomposition::uniform(
            Aabb3::new([0.0, 0.0, 0.0], [1.0, 1.0, 1.0]),
            GridDims::new(4, 4, 1),
        )
    }

    #[test]
    fn paper_aggregator_selection_example() {
        // §3.2: 16 processes, 4 partitions ⇒ aggregators 0, 4, 8, 12.
        let g = AggregationGrid::aligned(&decomp_4x4(), PartitionFactor::new(2, 2, 1)).unwrap();
        assert_eq!(g.file_count(), 4);
        assert_eq!(g.aggregator_ranks(), vec![0, 4, 8, 12]);
        g.validate().unwrap();
    }

    #[test]
    fn fig4_partition_bounds() {
        // Fig. 4: 2×2 partitions of the unit square with boxes
        // (0,0)-(.5,.5), (.5,0)-(1,.5), (0,.5)-(.5,1), (.5,.5)-(1,1).
        let g = AggregationGrid::aligned(&decomp_4x4(), PartitionFactor::new(2, 2, 1)).unwrap();
        let boxes: Vec<(Vec<f64>, Vec<f64>)> = g
            .partitions
            .iter()
            .map(|p| (p.bounds.lo[..2].to_vec(), p.bounds.hi[..2].to_vec()))
            .collect();
        assert_eq!(
            boxes,
            vec![
                (vec![0.0, 0.0], vec![0.5, 0.5]),
                (vec![0.5, 0.0], vec![1.0, 0.5]),
                (vec![0.0, 0.5], vec![0.5, 1.0]),
                (vec![0.5, 0.5], vec![1.0, 1.0]),
            ]
        );
    }

    #[test]
    fn file_per_process_factor() {
        let g = AggregationGrid::aligned(&decomp_4x4(), PartitionFactor::new(1, 1, 1)).unwrap();
        assert_eq!(g.file_count(), 16);
        // Every rank aggregates its own patch.
        for r in 0..16 {
            assert_eq!(
                g.partitions[g.partition_of_rank(r).unwrap()].members,
                vec![r]
            );
        }
        // Uniform selection over 16 ranks and 16 partitions: identity.
        assert_eq!(g.aggregator_ranks(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn shared_file_factor() {
        let g = AggregationGrid::aligned(&decomp_4x4(), PartitionFactor::new(4, 4, 1)).unwrap();
        assert_eq!(g.file_count(), 1);
        assert_eq!(g.partitions[0].members.len(), 16);
        assert_eq!(g.partitions[0].bounds, decomp_4x4().bounds);
    }

    #[test]
    fn members_partition_rank_space() {
        let d =
            DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(4, 4, 4));
        let g = AggregationGrid::aligned(&d, PartitionFactor::new(2, 2, 4)).unwrap();
        assert_eq!(g.file_count(), 4);
        let mut all: Vec<Rank> = g
            .partitions
            .iter()
            .flat_map(|p| p.members.clone())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..64).collect::<Vec<_>>());
        g.validate().unwrap();
    }

    #[test]
    fn partition_lookup_consistency() {
        let d =
            DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(4, 2, 2));
        let g = AggregationGrid::aligned(&d, PartitionFactor::new(2, 2, 1)).unwrap();
        for r in 0..d.nprocs() {
            let part = g.partition_of_rank(r).unwrap();
            assert!(g.partitions[part].members.contains(&r));
            // Points inside the patch resolve to the same partition.
            let c = d.patch_bounds(r).center();
            assert_eq!(g.partition_of_point(c), Some(part));
        }
    }

    #[test]
    fn ragged_process_grid_rounds_up() {
        let d =
            DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(5, 4, 1));
        let g = AggregationGrid::aligned(&d, PartitionFactor::new(2, 2, 1)).unwrap();
        // ceil(5/2) * ceil(4/2) = 3 * 2 = 6 partitions.
        assert_eq!(g.file_count(), 6);
        g.validate().unwrap();
        // The ragged partitions at x-edge hold 1×2 patches.
        let edge = g.partitions.iter().find(|p| p.index == [2, 0, 0]).unwrap();
        assert_eq!(edge.members.len(), 2);
        // Bounds still tile: total member count = 20.
        let total: usize = g.partitions.iter().map(|p| p.members.len()).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn sub_region_grid_excludes_outside_ranks() {
        let d = decomp_4x4();
        // Grid only over the left half (x patches 0..2).
        let g = AggregationGrid::over_region(
            &d,
            PartitionFactor::new(2, 2, 1),
            [0, 0, 0],
            [2, 4, 1],
            16,
        )
        .unwrap();
        assert_eq!(g.file_count(), 2);
        // A rank in the right half is outside.
        let right = d.rank_of([3, 0, 0]);
        assert_eq!(g.partition_of_rank(right), None);
        let left = d.rank_of([1, 1, 0]);
        assert!(g.partition_of_rank(left).is_some());
        // Aggregators still drawn from the full 16-rank space.
        assert_eq!(g.aggregator_ranks(), vec![0, 8]);
    }

    #[test]
    fn rejects_factor_larger_than_grid() {
        let d = decomp_4x4();
        assert!(AggregationGrid::aligned(&d, PartitionFactor::new(8, 1, 1)).is_err());
    }

    #[test]
    fn rejects_empty_region() {
        let d = decomp_4x4();
        assert!(AggregationGrid::over_region(
            &d,
            PartitionFactor::new(1, 1, 1),
            [0, 0, 0],
            [0, 4, 1],
            16
        )
        .is_err());
        assert!(AggregationGrid::over_region(
            &d,
            PartitionFactor::new(1, 1, 1),
            [3, 0, 0],
            [2, 4, 1],
            16
        )
        .is_err());
    }

    #[test]
    fn irregular_grid_from_rects() {
        let d = decomp_4x4();
        // Two uneven rectangles: left quarter and the rest.
        let rects = [([0, 0, 0], [1, 4, 1]), ([1, 0, 0], [4, 4, 1])];
        let g = AggregationGrid::from_patch_rects(&d, PartitionFactor::new(1, 1, 1), &rects, 16)
            .unwrap();
        assert!(!g.regular);
        assert_eq!(g.file_count(), 2);
        g.validate().unwrap();
        assert_eq!(g.partitions[0].members.len(), 4);
        assert_eq!(g.partitions[1].members.len(), 12);
        // Patch lookup routes through the rectangle scan.
        assert_eq!(g.partition_of_patch([0, 3, 0]), Some(0));
        assert_eq!(g.partition_of_patch([2, 1, 0]), Some(1));
        // Aggregators uniform over 16 ranks: 0 and 8.
        assert_eq!(g.aggregator_ranks(), vec![0, 8]);
        // Spatial bounds split at x = 0.25.
        assert!((g.partitions[0].bounds.hi[0] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn irregular_grid_rejects_bad_rects() {
        let d = decomp_4x4();
        assert!(
            AggregationGrid::from_patch_rects(&d, PartitionFactor::new(1, 1, 1), &[], 16).is_err()
        );
        assert!(AggregationGrid::from_patch_rects(
            &d,
            PartitionFactor::new(1, 1, 1),
            &[([0, 0, 0], [5, 4, 1])],
            16
        )
        .is_err());
        assert!(AggregationGrid::from_patch_rects(
            &d,
            PartitionFactor::new(1, 1, 1),
            &[([2, 0, 0], [2, 4, 1])],
            16
        )
        .is_err());
        // Overlapping rects are caught by validate().
        let g = AggregationGrid::from_patch_rects(
            &d,
            PartitionFactor::new(1, 1, 1),
            &[([0, 0, 0], [2, 4, 1]), ([1, 0, 0], [4, 4, 1])],
            16,
        )
        .unwrap();
        assert!(g.validate().is_err());
    }

    #[test]
    fn partition_local_placement() {
        let mut g = AggregationGrid::aligned(&decomp_4x4(), PartitionFactor::new(2, 2, 1)).unwrap();
        g.use_partition_local_aggregators();
        // First member of each 2x2 block: ranks 0, 2, 8, 10.
        assert_eq!(g.aggregator_ranks(), vec![0, 2, 8, 10]);
        g.validate().unwrap();
        for p in &g.partitions {
            assert!(p.members.contains(&p.agg_rank));
        }
    }

    #[test]
    fn aggregated_partition_inverse() {
        let g = AggregationGrid::aligned(&decomp_4x4(), PartitionFactor::new(2, 2, 1)).unwrap();
        assert_eq!(g.aggregated_partition(4), Some(1));
        assert_eq!(g.aggregated_partition(5), None);
    }
}
