//! Machine-independent I/O plans.
//!
//! A plan is the exact inventory of operations a job would perform — every
//! point-to-point message with its size, every collective, every file
//! create/write/read — computed by the same grid/aggregation logic the real
//! writer uses, but without moving any particle data. The `hpcsim` crate
//! replays plans against network and filesystem models to produce the
//! paper's at-scale results (up to 262 144 ranks) that cannot be executed
//! for real on a workstation; the structural quantities (message matrix,
//! file counts and sizes, group sizes) are exact, only their *timing* is
//! modeled.

use crate::adaptive::AdaptiveGrid;
use crate::grid::AggregationGrid;
use spio_format::data_file::{encoded_file_len, lod_open_overhead};
use spio_format::LodParams;
use spio_types::{
    Aabb3, DomainDecomposition, GridDims, PartitionFactor, Rank, SpioError, PARTICLE_BYTES,
};

/// One point-to-point message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageRec {
    pub src: Rank,
    pub dst: Rank,
    pub bytes: u64,
}

/// One file write performed by an aggregator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileWriteRec {
    pub rank: Rank,
    pub bytes: u64,
}

/// The complete write-phase inventory for one timestep.
#[derive(Debug, Clone)]
pub struct WritePlan {
    pub nprocs: usize,
    /// Aggregation partition count = output data file count.
    pub partition_count: usize,
    /// Aggregator rank per partition.
    pub aggregators: Vec<Rank>,
    /// Communication group size per partition (ranks sending into it).
    pub group_sizes: Vec<usize>,
    /// Whether setup required the extent/count all-gather (§6 adaptive).
    pub setup_allgather: bool,
    /// Count metadata messages (8 bytes each; absent in adaptive mode where
    /// the all-gather carries the counts).
    pub meta_messages: Vec<MessageRec>,
    /// Particle payload messages.
    pub data_messages: Vec<MessageRec>,
    /// Per-aggregator shuffle workload (particles).
    pub shuffle_particles: Vec<u64>,
    /// Data files written (one per partition, by its aggregator).
    pub file_writes: Vec<FileWriteRec>,
    /// Per-rank contribution to the final metadata all-gather, bytes.
    pub meta_gather_bytes: u64,
}

impl WritePlan {
    /// Total bytes crossing the network in the data exchange (excluding
    /// aggregator self-sends, which never leave the node).
    pub fn network_bytes(&self) -> u64 {
        self.data_messages
            .iter()
            .filter(|m| m.src != m.dst)
            .map(|m| m.bytes)
            .sum()
    }

    /// Total bytes written to storage.
    pub fn storage_bytes(&self) -> u64 {
        self.file_writes.iter().map(|w| w.bytes).sum()
    }
}

/// Plan a spatially-aware aligned write (static §3 grid, or §6 adaptive)
/// from per-rank particle counts.
pub fn plan_write(
    decomp: &DomainDecomposition,
    factor: PartitionFactor,
    counts: &[u64],
    adaptive: bool,
) -> Result<WritePlan, SpioError> {
    if counts.len() != decomp.nprocs() {
        return Err(SpioError::Config(format!(
            "counts length {} != nprocs {}",
            counts.len(),
            decomp.nprocs()
        )));
    }
    let grid = if adaptive {
        AdaptiveGrid::build(decomp, factor, counts)?
    } else {
        AggregationGrid::aligned(decomp, factor)?
    };
    plan_write_on_grid(&grid, counts, adaptive)
}

/// Plan a write over an already-built aggregation grid.
pub fn plan_write_on_grid(
    grid: &AggregationGrid,
    counts: &[u64],
    adaptive: bool,
) -> Result<WritePlan, SpioError> {
    let nprocs = grid.decomp.nprocs();
    let mut meta_messages = Vec::new();
    let mut data_messages = Vec::new();
    let mut shuffle_particles = Vec::with_capacity(grid.partitions.len());
    let mut file_writes = Vec::with_capacity(grid.partitions.len());
    let mut group_sizes = Vec::with_capacity(grid.partitions.len());
    for part in &grid.partitions {
        let mut total: u64 = 0;
        let mut senders = 0usize;
        for &m in &part.members {
            let c = counts[m];
            if !adaptive {
                meta_messages.push(MessageRec {
                    src: m,
                    dst: part.agg_rank,
                    bytes: 8,
                });
            }
            if c > 0 {
                data_messages.push(MessageRec {
                    src: m,
                    dst: part.agg_rank,
                    bytes: c * PARTICLE_BYTES as u64,
                });
                senders += 1;
                total += c;
            }
        }
        group_sizes.push(if adaptive {
            senders
        } else {
            part.members.len()
        });
        shuffle_particles.push(total);
        file_writes.push(FileWriteRec {
            rank: part.agg_rank,
            // Format v2: header + payload + checksum footer.
            bytes: encoded_file_len(total),
        });
    }
    Ok(WritePlan {
        nprocs,
        partition_count: grid.partitions.len(),
        aggregators: grid.aggregator_ranks(),
        group_sizes,
        setup_allgather: adaptive,
        meta_messages,
        data_messages,
        shuffle_particles,
        file_writes,
        meta_gather_bytes: 72,
    })
}

/// One file read performed by a reader rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileReadRec {
    pub rank: Rank,
    /// Index of the file being read (drives data-server placement in the
    /// simulator).
    pub file: usize,
    /// Bytes actually transferred (whole file, or an LOD prefix slice).
    pub bytes: u64,
}

/// Per-reader read totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReaderOps {
    pub opens: u64,
    pub bytes: u64,
}

/// The complete read-phase inventory.
#[derive(Debug, Clone)]
pub struct ReadPlan {
    pub nreaders: usize,
    pub per_reader: Vec<ReaderOps>,
    /// Every individual file access (for queue-level simulation).
    pub reads: Vec<FileReadRec>,
}

impl ReadPlan {
    pub fn total_bytes(&self) -> u64 {
        self.per_reader.iter().map(|r| r.bytes).sum()
    }

    pub fn total_opens(&self) -> u64 {
        self.per_reader.iter().map(|r| r.opens).sum()
    }
}

/// A dataset summary sufficient for read planning: file bounds + counts
/// (what the spatial metadata stores), plus the domain and LOD parameters.
#[derive(Debug, Clone)]
pub struct DatasetShape {
    pub domain: Aabb3,
    pub files: Vec<(Aabb3, u64)>,
    pub total_particles: u64,
    pub lod: LodParams,
}

impl DatasetShape {
    /// Shape of the dataset produced by `plan` over `grid`.
    pub fn from_write(grid: &AggregationGrid, plan: &WritePlan) -> Self {
        let files = grid
            .partitions
            .iter()
            .zip(&plan.shuffle_particles)
            .map(|(p, &c)| (p.bounds, c))
            .collect();
        DatasetShape {
            domain: grid.decomp.bounds,
            files,
            total_particles: plan.shuffle_particles.iter().sum(),
            lod: LodParams::default(),
        }
    }
}

/// Plan the Fig. 7 visualization read: `nreaders` ranks, each box-querying
/// one cell of a near-cubic domain split. `with_metadata` selects whether
/// readers open only intersecting files or must scan everything.
pub fn plan_box_read(shape: &DatasetShape, nreaders: usize, with_metadata: bool) -> ReadPlan {
    let dims = GridDims::near_cubic(nreaders);
    let mut per_reader = vec![ReaderOps::default(); nreaders];
    let mut reads = Vec::new();
    for (rank, reader) in per_reader.iter_mut().enumerate() {
        let query = shape.domain.cell(dims.as_array(), dims.delinearize(rank));
        for (file, (bounds, count)) in shape.files.iter().enumerate() {
            let touch = if with_metadata {
                bounds.intersects(&query)
            } else {
                true
            };
            if touch {
                let bytes = encoded_file_len(*count);
                reader.opens += 1;
                reader.bytes += bytes;
                reads.push(FileReadRec { rank, file, bytes });
            }
        }
    }
    ReadPlan {
        nreaders,
        per_reader,
        reads,
    }
}

/// Plan the Fig. 8 LOD read: `nreaders` ranks, files assigned round-robin,
/// reading levels `0 ..= level` in one pass — one open per file plus the
/// prefix bytes covering the requested levels. (This matches the paper's
/// measurement protocol, where each run loads up to a chosen level; at low
/// levels the time is dominated by the file opens, which is exactly the
/// flat region of Fig. 8 on Theta.)
pub fn plan_lod_read(shape: &DatasetShape, nreaders: usize, level: u32) -> ReadPlan {
    let mut per_reader = vec![ReaderOps::default(); nreaders];
    let mut reads = Vec::new();
    let global_prefix = shape
        .lod
        .prefix_len(nreaders as u64, level, shape.total_particles);
    for (i, &(_, count)) in shape.files.iter().enumerate() {
        let rank = i % nreaders;
        let target = LodParams::file_prefix(count, shape.total_particles, global_prefix);
        // A touched file pays a one-time open overhead (header + checksum
        // footer fetch, matching `LodCursor`'s first-touch reads) plus the
        // prefix payload.
        let bytes = if target > 0 {
            lod_open_overhead(count) + target * PARTICLE_BYTES as u64
        } else {
            0
        };
        per_reader[rank].opens += 1;
        per_reader[rank].bytes += bytes;
        reads.push(FileReadRec {
            rank,
            file: i,
            bytes,
        });
    }
    ReadPlan {
        nreaders,
        per_reader,
        reads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decomp(nx: usize, ny: usize, nz: usize) -> DomainDecomposition {
        DomainDecomposition::uniform(Aabb3::new([0.0; 3], [1.0; 3]), GridDims::new(nx, ny, nz))
    }

    #[test]
    fn uniform_plan_structure() {
        let d = decomp(4, 4, 1);
        let counts = vec![100u64; 16];
        let plan = plan_write(&d, PartitionFactor::new(2, 2, 1), &counts, false).unwrap();
        assert_eq!(plan.partition_count, 4);
        assert_eq!(plan.aggregators, vec![0, 4, 8, 12]);
        assert_eq!(plan.meta_messages.len(), 16);
        assert_eq!(plan.data_messages.len(), 16);
        assert!(plan.group_sizes.iter().all(|&g| g == 4));
        // Every data message carries 100 particles.
        assert!(plan
            .data_messages
            .iter()
            .all(|m| m.bytes == 100 * PARTICLE_BYTES as u64));
        // File sizes: header + 400 particles + checksum footer.
        assert!(plan
            .file_writes
            .iter()
            .all(|w| w.bytes == encoded_file_len(400)));
        assert_eq!(plan.storage_bytes(), 4 * encoded_file_len(400));
    }

    #[test]
    fn network_bytes_excludes_self_sends() {
        let d = decomp(2, 1, 1);
        let counts = vec![10u64; 2];
        // Whole-domain aggregation: rank 0 aggregates both.
        let plan = plan_write(&d, PartitionFactor::new(2, 1, 1), &counts, false).unwrap();
        // Only rank 1 → 0 crosses the network.
        assert_eq!(plan.network_bytes(), 10 * PARTICLE_BYTES as u64);
        assert_eq!(
            plan.data_messages.iter().map(|m| m.bytes).sum::<u64>(),
            20 * PARTICLE_BYTES as u64
        );
    }

    #[test]
    fn file_per_process_plan_has_no_cross_traffic() {
        let d = decomp(4, 4, 1);
        let counts = vec![50u64; 16];
        let plan = plan_write(&d, PartitionFactor::new(1, 1, 1), &counts, false).unwrap();
        assert_eq!(plan.partition_count, 16);
        assert_eq!(plan.network_bytes(), 0, "every rank aggregates itself");
        assert_eq!(plan.file_writes.len(), 16);
    }

    #[test]
    fn adaptive_plan_skips_empty_and_drops_meta_messages() {
        let d = decomp(4, 1, 1);
        let counts = vec![100, 100, 0, 0];
        let plan = plan_write(&d, PartitionFactor::new(2, 1, 1), &counts, true).unwrap();
        assert!(plan.setup_allgather);
        assert_eq!(plan.partition_count, 1, "only the occupied half gridded");
        assert!(plan.meta_messages.is_empty());
        assert_eq!(plan.data_messages.len(), 2);
        let nonadaptive = plan_write(&d, PartitionFactor::new(2, 1, 1), &counts, false).unwrap();
        assert_eq!(nonadaptive.partition_count, 2);
        assert_eq!(nonadaptive.meta_messages.len(), 4);
    }

    #[test]
    fn plan_matches_paper_scale_example() {
        // §4: 64 Ki processes at (2,2,2) produce 8 Ki files.
        let d = DomainDecomposition::for_procs(Aabb3::new([0.0; 3], [1.0; 3]), 65_536);
        let counts = vec![32_768u64; 65_536];
        let plan = plan_write(&d, PartitionFactor::new(2, 2, 2), &counts, false).unwrap();
        assert_eq!(plan.partition_count, 8_192);
        assert_eq!(plan.data_messages.len(), 65_536);
        // ~4 MB per rank, 256 GB total + per-file headers and footers.
        assert_eq!(plan.storage_bytes(), 8_192 * encoded_file_len(8 * 32_768),);
    }

    fn shape_4files() -> DatasetShape {
        let d = decomp(4, 4, 1);
        let grid = AggregationGrid::aligned(&d, PartitionFactor::new(2, 2, 1)).unwrap();
        let counts = vec![100u64; 16];
        let plan = plan_write_on_grid(&grid, &counts, false).unwrap();
        DatasetShape::from_write(&grid, &plan)
    }

    #[test]
    fn box_read_plan_with_and_without_metadata() {
        let shape = shape_4files();
        let with = plan_box_read(&shape, 4, true);
        let without = plan_box_read(&shape, 4, false);
        // 4 readers × 4 quadrant files: metadata lets each reader open few
        // files; without it everyone opens all 4.
        assert_eq!(without.total_opens(), 16);
        assert!(with.total_opens() < without.total_opens());
        assert!(with.total_bytes() < without.total_bytes());
        // Without metadata, every reader pays the full dataset.
        assert!(without.per_reader.iter().all(|r| r.bytes
            == shape
                .files
                .iter()
                .map(|&(_, c)| encoded_file_len(c))
                .sum::<u64>()));
    }

    #[test]
    fn one_reader_with_metadata_reads_everything_once() {
        let shape = shape_4files();
        let plan = plan_box_read(&shape, 1, true);
        assert_eq!(plan.total_opens(), 4);
        assert_eq!(
            plan.total_bytes(),
            shape
                .files
                .iter()
                .map(|&(_, c)| encoded_file_len(c))
                .sum::<u64>()
        );
    }

    #[test]
    fn lod_read_plan_grows_with_level() {
        let shape = shape_4files(); // 1600 particles, P=32, S=2
        let l0 = plan_lod_read(&shape, 1, 0);
        let l2 = plan_lod_read(&shape, 1, 2);
        let last = plan_lod_read(&shape, 1, 10);
        assert!(l0.total_bytes() < l2.total_bytes());
        assert!(l2.total_bytes() < last.total_bytes());
        // Reading all levels transfers every particle exactly once, plus
        // each file's one-time header + footer fetch.
        assert_eq!(
            last.total_bytes(),
            1600 * PARTICLE_BYTES as u64 + 4 * lod_open_overhead(400)
        );
    }

    #[test]
    fn lod_plan_distributes_files_round_robin() {
        let shape = shape_4files();
        let plan = plan_lod_read(&shape, 2, 0);
        // 4 files over 2 readers: 2 each, one open per file at level 0.
        assert_eq!(plan.per_reader[0].opens, 2);
        assert_eq!(plan.per_reader[1].opens, 2);
    }

    #[test]
    fn wrong_counts_length_rejected() {
        let d = decomp(2, 2, 1);
        assert!(plan_write(&d, PartitionFactor::new(1, 1, 1), &[1, 2], false).is_err());
    }
}
