//! Storage backends.
//!
//! The writer and readers are generic over [`Storage`] so the same algorithm
//! code runs against a real filesystem ([`FsStorage`]) and an in-memory
//! store ([`MemStorage`]) used by tests and by the property suite, while the
//! `hpcsim` crate models storage timing separately from these functional
//! backends. [`TracedStorage`] wraps any backend and emits Darshan-style
//! per-operation records (op, file, bytes, duration) into a
//! [`spio_trace::Trace`].

use spio_trace::Trace;
use spio_types::SpioError;
use std::collections::HashMap;
use std::fs;
use std::io::{Read, Seek, SeekFrom};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Reject an inverted byte range before any arithmetic on it. In release
/// builds `(end - start)` would wrap to a near-`u64::MAX` allocation; a
/// corrupted header that yields an inverted range must surface as a format
/// error instead.
fn check_range(name: &str, start: u64, end: u64) -> Result<(), SpioError> {
    if start > end {
        return Err(SpioError::Format(format!(
            "inverted range [{start}, {end}) for '{name}'"
        )));
    }
    Ok(())
}

/// A flat namespace of immutable files, written once and read many times —
/// all the paper's format needs.
pub trait Storage: Send + Sync {
    /// Create (or replace) `name` with `data`.
    fn write_file(&self, name: &str, data: &[u8]) -> Result<(), SpioError>;

    /// Read the entire contents of `name`.
    fn read_file(&self, name: &str) -> Result<Vec<u8>, SpioError>;

    /// Read bytes `[start, end)` of `name`. Reading past the end of the
    /// file is an error (callers compute ranges from headers they trust).
    fn read_range(&self, name: &str, start: u64, end: u64) -> Result<Vec<u8>, SpioError>;

    /// Size of `name` in bytes.
    fn file_size(&self, name: &str) -> Result<u64, SpioError>;

    /// Does `name` exist?
    fn exists(&self, name: &str) -> bool;

    /// Write `data` at byte `offset`, creating or growing the file as
    /// needed (gaps are zero-filled). Concurrent writers to disjoint
    /// ranges of the same file are allowed — this is what shared-file
    /// (collective) baselines use.
    fn write_range(&self, name: &str, offset: u64, data: &[u8]) -> Result<(), SpioError>;
}

/// Filesystem-backed storage rooted at a directory.
#[derive(Debug, Clone)]
pub struct FsStorage {
    root: PathBuf,
}

impl FsStorage {
    /// Open (creating if needed) a dataset directory.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        let root = root.into();
        // Creation is idempotent; failures surface on first write.
        let _ = fs::create_dir_all(&root);
        FsStorage { root }
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    /// The dataset directory.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }
}

/// Distinguishes temp files of concurrent writers within one process; the
/// pid in the temp name distinguishes processes.
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

impl Storage for FsStorage {
    fn write_file(&self, name: &str, data: &[u8]) -> Result<(), SpioError> {
        // Write-then-rename so a crash or injected fault mid-write never
        // leaves a truncated file under the final name (a torn
        // `spatial_meta.spm` would permanently block `DatasetReader::open`).
        // The temp file lives in the same directory so the rename cannot
        // cross filesystems.
        let tmp_name = format!(
            ".{name}.{}.{}.tmp",
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        let tmp = self.path(&tmp_name);
        fs::write(&tmp, data)?;
        fs::rename(&tmp, self.path(name)).inspect_err(|_| {
            let _ = fs::remove_file(&tmp);
        })?;
        Ok(())
    }

    fn read_file(&self, name: &str) -> Result<Vec<u8>, SpioError> {
        fs::read(self.path(name)).map_err(|e| match e.kind() {
            std::io::ErrorKind::NotFound => SpioError::NotFound(name.to_string()),
            _ => SpioError::Io(e),
        })
    }

    fn read_range(&self, name: &str, start: u64, end: u64) -> Result<Vec<u8>, SpioError> {
        check_range(name, start, end)?;
        let mut f = fs::File::open(self.path(name)).map_err(|e| match e.kind() {
            std::io::ErrorKind::NotFound => SpioError::NotFound(name.to_string()),
            _ => SpioError::Io(e),
        })?;
        f.seek(SeekFrom::Start(start))?;
        let len = (end - start) as usize;
        let mut buf = vec![0u8; len];
        f.read_exact(&mut buf).map_err(|e| {
            SpioError::Format(format!(
                "range [{start}, {end}) of '{name}' unreadable: {e}"
            ))
        })?;
        Ok(buf)
    }

    fn file_size(&self, name: &str) -> Result<u64, SpioError> {
        Ok(fs::metadata(self.path(name))
            .map_err(|e| match e.kind() {
                std::io::ErrorKind::NotFound => SpioError::NotFound(name.to_string()),
                _ => SpioError::Io(e),
            })?
            .len())
    }

    fn exists(&self, name: &str) -> bool {
        self.path(name).exists()
    }

    fn write_range(&self, name: &str, offset: u64, data: &[u8]) -> Result<(), SpioError> {
        use std::io::Write;
        let mut f = fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(self.path(name))?;
        f.seek(SeekFrom::Start(offset))?;
        f.write_all(data)?;
        Ok(())
    }
}

/// In-memory storage, shareable across rank threads.
#[derive(Debug, Clone, Default)]
pub struct MemStorage {
    files: Arc<RwLock<HashMap<String, Arc<Vec<u8>>>>>,
}

impl MemStorage {
    pub fn new() -> Self {
        Self::default()
    }

    /// Names of all stored files (sorted, for deterministic assertions).
    pub fn file_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.files.read().unwrap().keys().cloned().collect();
        names.sort();
        names
    }

    /// Total bytes across all files.
    pub fn total_bytes(&self) -> u64 {
        self.files
            .read()
            .unwrap()
            .values()
            .map(|v| v.len() as u64)
            .sum()
    }
}

impl Storage for MemStorage {
    fn write_file(&self, name: &str, data: &[u8]) -> Result<(), SpioError> {
        self.files
            .write()
            .unwrap()
            .insert(name.to_string(), Arc::new(data.to_vec()));
        Ok(())
    }

    fn read_file(&self, name: &str) -> Result<Vec<u8>, SpioError> {
        self.files
            .read()
            .unwrap()
            .get(name)
            .map(|v| v.as_ref().clone())
            .ok_or_else(|| SpioError::NotFound(name.to_string()))
    }

    fn read_range(&self, name: &str, start: u64, end: u64) -> Result<Vec<u8>, SpioError> {
        check_range(name, start, end)?;
        let files = self.files.read().unwrap();
        let data = files
            .get(name)
            .ok_or_else(|| SpioError::NotFound(name.to_string()))?;
        if end > data.len() as u64 {
            return Err(SpioError::Format(format!(
                "range [{start}, {end}) beyond '{name}' ({} bytes)",
                data.len()
            )));
        }
        Ok(data[start as usize..end as usize].to_vec())
    }

    fn file_size(&self, name: &str) -> Result<u64, SpioError> {
        self.files
            .read()
            .unwrap()
            .get(name)
            .map(|v| v.len() as u64)
            .ok_or_else(|| SpioError::NotFound(name.to_string()))
    }

    fn exists(&self, name: &str) -> bool {
        self.files.read().unwrap().contains_key(name)
    }

    fn write_range(&self, name: &str, offset: u64, data: &[u8]) -> Result<(), SpioError> {
        let mut files = self.files.write().unwrap();
        let entry = files.entry(name.to_string()).or_default();
        let buf = Arc::make_mut(entry);
        let end = offset as usize + data.len();
        if buf.len() < end {
            buf.resize(end, 0);
        }
        buf[offset as usize..end].copy_from_slice(data);
        Ok(())
    }
}

/// Trace fault kind for an organic (non-injected) storage error.
pub(crate) fn error_kind(err: &SpioError) -> &'static str {
    match err {
        SpioError::Io(_) => "io_error",
        SpioError::NotFound(_) => "not_found",
        SpioError::Format(_) => "format_error",
        SpioError::Config(_) => "config_error",
        SpioError::Comm(_) => "comm_error",
    }
}

/// Metric handles for one storage-op kind, resolved once at wrapper
/// construction so the per-op cost is atomic adds only.
#[derive(Debug, Clone, Default)]
struct OpMetrics {
    ops: spio_trace::Counter,
    bytes: spio_trace::Counter,
    errors: spio_trace::Counter,
    latency_us: spio_trace::Histogram,
}

impl OpMetrics {
    fn new(
        m: &spio_trace::Metrics,
        names: (&'static str, &'static str, &'static str, &'static str),
    ) -> OpMetrics {
        OpMetrics {
            ops: m.counter(names.0),
            bytes: m.counter(names.1),
            errors: m.counter(names.2),
            latency_us: m.histogram(names.3),
        }
    }

    #[inline]
    fn record(&self, bytes: u64, dur: std::time::Duration, ok: bool) {
        self.ops.inc();
        self.bytes.add(bytes);
        self.latency_us.record_duration(dur);
        if !ok {
            self.errors.inc();
        }
    }
}

/// A [`Storage`] wrapper that emits one Darshan-style record per operation
/// (op kind, file name, payload bytes, wall duration) into a [`Trace`],
/// feeds the trace's metrics registry (`storage.<op>.{ops,bytes,errors,
/// latency_us}`), and records every error as an organic fault event.
///
/// With a disabled trace every method is a plain delegation behind one
/// branch — no clock reads, no allocation — so production code can keep a
/// `TracedStorage` in place permanently and pay only when a job opts in.
#[derive(Debug, Clone)]
pub struct TracedStorage<S: Storage> {
    inner: S,
    trace: Trace,
    rank: usize,
    write_file: OpMetrics,
    read_file: OpMetrics,
    read_range: OpMetrics,
    file_size: OpMetrics,
    write_range: OpMetrics,
}

impl<S: Storage> TracedStorage<S> {
    /// Wrap `inner`, attributing recorded ops to `rank`.
    pub fn new(inner: S, trace: Trace, rank: usize) -> Self {
        let m = trace.metrics();
        TracedStorage {
            inner,
            rank,
            write_file: OpMetrics::new(
                &m,
                (
                    "storage.write_file.ops",
                    "storage.write_file.bytes",
                    "storage.write_file.errors",
                    "storage.write_file.latency_us",
                ),
            ),
            read_file: OpMetrics::new(
                &m,
                (
                    "storage.read_file.ops",
                    "storage.read_file.bytes",
                    "storage.read_file.errors",
                    "storage.read_file.latency_us",
                ),
            ),
            read_range: OpMetrics::new(
                &m,
                (
                    "storage.read_range.ops",
                    "storage.read_range.bytes",
                    "storage.read_range.errors",
                    "storage.read_range.latency_us",
                ),
            ),
            file_size: OpMetrics::new(
                &m,
                (
                    "storage.file_size.ops",
                    "storage.file_size.bytes",
                    "storage.file_size.errors",
                    "storage.file_size.latency_us",
                ),
            ),
            write_range: OpMetrics::new(
                &m,
                (
                    "storage.write_range.ops",
                    "storage.write_range.bytes",
                    "storage.write_range.errors",
                    "storage.write_range.latency_us",
                ),
            ),
            trace,
        }
    }

    pub fn inner(&self) -> &S {
        &self.inner
    }

    pub fn into_inner(self) -> S {
        self.inner
    }

    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Record the per-op trace event, metrics, and — on error — an organic
    /// fault event.
    #[inline]
    fn record<T>(
        &self,
        op: &'static str,
        metrics: &OpMetrics,
        name: &str,
        bytes: u64,
        dur: std::time::Duration,
        result: &Result<T, SpioError>,
    ) {
        self.trace.storage_op(self.rank, op, name, bytes, dur);
        metrics.record(bytes, dur, result.is_ok());
        if let Err(e) = result {
            self.trace.fault(self.rank, error_kind(e), name, false);
        }
    }
}

impl<S: Storage> Storage for TracedStorage<S> {
    fn write_file(&self, name: &str, data: &[u8]) -> Result<(), SpioError> {
        if !self.trace.is_enabled() {
            return self.inner.write_file(name, data);
        }
        let t0 = Instant::now();
        let r = self.inner.write_file(name, data);
        self.record(
            "write_file",
            &self.write_file,
            name,
            data.len() as u64,
            t0.elapsed(),
            &r,
        );
        r
    }

    fn read_file(&self, name: &str) -> Result<Vec<u8>, SpioError> {
        if !self.trace.is_enabled() {
            return self.inner.read_file(name);
        }
        let t0 = Instant::now();
        let r = self.inner.read_file(name);
        let bytes = r.as_ref().map(|d| d.len() as u64).unwrap_or(0);
        self.record("read_file", &self.read_file, name, bytes, t0.elapsed(), &r);
        r
    }

    fn read_range(&self, name: &str, start: u64, end: u64) -> Result<Vec<u8>, SpioError> {
        if !self.trace.is_enabled() {
            return self.inner.read_range(name, start, end);
        }
        let t0 = Instant::now();
        let r = self.inner.read_range(name, start, end);
        let bytes = r.as_ref().map(|d| d.len() as u64).unwrap_or(0);
        self.record(
            "read_range",
            &self.read_range,
            name,
            bytes,
            t0.elapsed(),
            &r,
        );
        r
    }

    fn file_size(&self, name: &str) -> Result<u64, SpioError> {
        if !self.trace.is_enabled() {
            return self.inner.file_size(name);
        }
        let t0 = Instant::now();
        let r = self.inner.file_size(name);
        self.record("file_size", &self.file_size, name, 0, t0.elapsed(), &r);
        r
    }

    fn exists(&self, name: &str) -> bool {
        // Existence probes are metadata noise; not recorded.
        self.inner.exists(name)
    }

    fn write_range(&self, name: &str, offset: u64, data: &[u8]) -> Result<(), SpioError> {
        if !self.trace.is_enabled() {
            return self.inner.write_range(name, offset, data);
        }
        let t0 = Instant::now();
        let r = self.inner.write_range(name, offset, data);
        self.record(
            "write_range",
            &self.write_range,
            name,
            data.len() as u64,
            t0.elapsed(),
            &r,
        );
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(storage: &dyn Storage) {
        storage.write_file("a.bin", &[1, 2, 3, 4, 5]).unwrap();
        assert!(storage.exists("a.bin"));
        assert!(!storage.exists("b.bin"));
        assert_eq!(storage.read_file("a.bin").unwrap(), vec![1, 2, 3, 4, 5]);
        assert_eq!(storage.file_size("a.bin").unwrap(), 5);
        assert_eq!(storage.read_range("a.bin", 1, 4).unwrap(), vec![2, 3, 4]);
        assert_eq!(storage.read_range("a.bin", 2, 2).unwrap(), Vec::<u8>::new());
        assert!(storage.read_range("a.bin", 3, 10).is_err());
        // Inverted ranges are a format error, never a wrapped subtraction.
        assert!(matches!(
            storage.read_range("a.bin", 4, 1),
            Err(SpioError::Format(_))
        ));
        assert!(matches!(
            storage.read_file("missing"),
            Err(SpioError::NotFound(_))
        ));
        // Overwrite replaces content.
        storage.write_file("a.bin", &[9]).unwrap();
        assert_eq!(storage.read_file("a.bin").unwrap(), vec![9]);
        // Ranged writes create, grow and zero-fill.
        storage.write_range("r.bin", 4, &[7, 8]).unwrap();
        assert_eq!(storage.read_file("r.bin").unwrap(), vec![0, 0, 0, 0, 7, 8]);
        storage.write_range("r.bin", 0, &[1]).unwrap();
        assert_eq!(storage.read_file("r.bin").unwrap(), vec![1, 0, 0, 0, 7, 8]);
    }

    #[test]
    fn mem_storage_contract() {
        exercise(&MemStorage::new());
    }

    #[test]
    fn fs_storage_contract() {
        let dir = spio_util::tempdir().unwrap();
        exercise(&FsStorage::new(dir.path()));
    }

    #[test]
    fn traced_storage_contract_and_records() {
        let trace = Trace::collecting();
        let storage = TracedStorage::new(MemStorage::new(), trace.clone(), 3);
        exercise(&storage);
        let events = trace.events();
        assert!(!events.is_empty());
        // Every record carries the configured rank and a known op name;
        // failing ops additionally produce organic fault events.
        let mut faults = 0;
        for e in &events {
            match e {
                spio_trace::TraceEvent::StorageOp { rank, op, .. } => {
                    assert_eq!(*rank, 3);
                    assert!(matches!(
                        *op,
                        "write_file" | "read_file" | "read_range" | "file_size" | "write_range"
                    ));
                }
                spio_trace::TraceEvent::Fault {
                    rank,
                    kind,
                    injected,
                    ..
                } => {
                    assert_eq!(*rank, 3);
                    assert!(!injected, "traced errors are organic, not injected");
                    assert!(matches!(*kind, "not_found" | "format_error" | "io_error"));
                    faults += 1;
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        // exercise() provokes three errors: an over-long range, an
        // inverted range, and a missing file.
        assert_eq!(faults, 3);
        // The first exercise step wrote 5 bytes to a.bin.
        assert!(matches!(
            &events[0],
            spio_trace::TraceEvent::StorageOp {
                op: "write_file",
                bytes: 5,
                ..
            }
        ));
        // The metrics registry saw the same traffic.
        let m = trace.metrics();
        assert!(m.counter_value("storage.write_file.ops") >= 2);
        assert_eq!(m.counter_value("storage.read_file.errors"), 1);
        assert_eq!(m.counter_value("storage.read_range.errors"), 2);
        assert!(m
            .histogram_snapshot("storage.write_file.latency_us")
            .is_some());
    }

    #[test]
    fn traced_storage_disabled_records_nothing() {
        let trace = Trace::off();
        let storage = TracedStorage::new(MemStorage::new(), trace.clone(), 0);
        exercise(&storage);
        assert!(trace.is_empty());
    }

    #[test]
    fn mem_storage_shared_between_clones() {
        let a = MemStorage::new();
        let b = a.clone();
        a.write_file("x", &[7]).unwrap();
        assert_eq!(b.read_file("x").unwrap(), vec![7]);
        assert_eq!(b.file_names(), vec!["x".to_string()]);
        assert_eq!(b.total_bytes(), 1);
    }

    #[test]
    fn fs_write_file_leaves_no_temp_files() {
        let dir = spio_util::tempdir().unwrap();
        let s = FsStorage::new(dir.path());
        s.write_file("meta.spm", &[1, 2, 3]).unwrap();
        s.write_file("meta.spm", &[4, 5, 6]).unwrap();
        let names: Vec<String> = fs::read_dir(dir.path())
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(names, vec!["meta.spm".to_string()]);
        assert_eq!(s.read_file("meta.spm").unwrap(), vec![4, 5, 6]);
    }

    #[test]
    fn fs_storage_nested_root_created() {
        let dir = spio_util::tempdir().unwrap();
        let nested = dir.path().join("a/b/c");
        let s = FsStorage::new(&nested);
        s.write_file("f", &[1]).unwrap();
        assert!(nested.join("f").exists());
    }
}
