//! Property tests for the core invariants the paper's design rests on:
//! aggregation conserves particles, every particle lands in the file whose
//! box contains it, boxes are disjoint, and box queries are exact.

use spio_comm::run_threaded_collect;
use spio_core::plan::plan_write;
use spio_core::{DatasetReader, MemStorage, SpatialWriter, Storage, WriteMode, WriterConfig};
use spio_format::data_file::decode_data_file;
use spio_types::{Aabb3, DomainDecomposition, GridDims, Particle, PartitionFactor};
use spio_util::check::{cases, Gen};

/// Deterministic pseudo-random particles inside (or around) a rank's patch.
fn particles_for(
    decomp: &DomainDecomposition,
    rank: usize,
    count: usize,
    seed: u64,
    stray: bool,
) -> Vec<Particle> {
    let b = if stray {
        decomp.bounds
    } else {
        decomp.patch_bounds(rank)
    };
    let e = b.extent();
    (0..count)
        .map(|i| {
            let mut h = seed ^ ((rank as u64) << 32) ^ i as u64;
            let mut next = || {
                h = h
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((h >> 33) as f64 / (1u64 << 31) as f64).fract().abs()
            };
            let pos = [
                b.lo[0] + next() * e[0] * 0.999,
                b.lo[1] + next() * e[1] * 0.999,
                b.lo[2] + next() * e[2] * 0.999,
            ];
            Particle::synthetic(pos, ((rank as u64) << 32) | i as u64)
        })
        .collect()
}

fn run_write(
    dims: (usize, usize, usize),
    factor: (usize, usize, usize),
    counts: Vec<usize>,
    seed: u64,
    mode: WriteMode,
    adaptive: bool,
) -> (MemStorage, DomainDecomposition) {
    let decomp = DomainDecomposition::uniform(
        Aabb3::new([0.0; 3], [1.0; 3]),
        GridDims::new(dims.0, dims.1, dims.2),
    );
    let storage = MemStorage::new();
    let s2 = storage.clone();
    let d2 = decomp.clone();
    let stray = mode == WriteMode::General;
    run_threaded_collect(decomp.nprocs(), move |comm| {
        use spio_comm::Comm;
        let ps = particles_for(&d2, comm.rank(), counts[comm.rank()], seed, stray);
        let writer = SpatialWriter::new(
            d2.clone(),
            WriterConfig::new(PartitionFactor::new(factor.0, factor.1, factor.2))
                .with_seed(seed)
                .with_mode(mode)
                .adaptive(adaptive),
        );
        writer.write(&comm, &ps, &s2).unwrap();
    })
    .unwrap();
    (storage, decomp)
}

/// Check the end-to-end invariants on a written dataset.
fn check_invariants(storage: &MemStorage, expected_total: u64) {
    let reader = DatasetReader::open(storage).unwrap();
    let meta = &reader.meta;
    meta.validate_disjoint().unwrap();
    assert_eq!(meta.total_particles, expected_total);
    let mut ids = Vec::new();
    for entry in &meta.entries {
        let bytes = storage.read_file(&entry.file_name()).unwrap();
        let (header, ps) = decode_data_file(&bytes).unwrap();
        assert_eq!(header.particle_count, entry.particle_count);
        assert!(
            ps.iter().all(|p| entry.bounds.contains(p.position)),
            "spatial containment violated"
        );
        ids.extend(ps.iter().map(|p| p.id));
    }
    ids.sort_unstable();
    let before = ids.len();
    ids.dedup();
    assert_eq!(ids.len(), before, "duplicated particles");
    assert_eq!(ids.len() as u64, expected_total, "lost particles");
}

const SMALL_GRIDS: [(usize, usize, usize); 6] = [
    (2, 2, 1),
    (4, 2, 1),
    (2, 2, 2),
    (4, 2, 2),
    (3, 2, 1),
    (5, 2, 1),
];

#[test]
fn aligned_write_conserves_particles() {
    cases(24, |g: &mut Gen| {
        let dims = SMALL_GRIDS[g.index(SMALL_GRIDS.len())];
        let fx = g.usize_in(1, 2);
        let fy = g.usize_in(1, 2);
        let fz = g.usize_in(1, 2);
        let per_rank = g.usize_in(1, 119);
        let seed = g.u64();
        if fx > dims.0 || fy > dims.1 || fz > dims.2 {
            return;
        }
        let n = dims.0 * dims.1 * dims.2;
        let counts = vec![per_rank; n];
        let (storage, _) = run_write(dims, (fx, fy, fz), counts, seed, WriteMode::Aligned, false);
        check_invariants(&storage, (n * per_rank) as u64);
    });
}

#[test]
fn general_mode_conserves_stray_particles() {
    cases(24, |g: &mut Gen| {
        let dims = SMALL_GRIDS[g.index(SMALL_GRIDS.len())];
        let per_rank = g.usize_in(1, 59);
        let seed = g.u64();
        // Particles spread over the whole domain regardless of owner rank.
        let n = dims.0 * dims.1 * dims.2;
        let counts = vec![per_rank; n];
        let (storage, _) = run_write(dims, (1, 1, 1), counts, seed, WriteMode::General, false);
        check_invariants(&storage, (n * per_rank) as u64);
    });
}

#[test]
fn adaptive_write_conserves_uneven_loads() {
    cases(24, |g: &mut Gen| {
        let dims = SMALL_GRIDS[g.index(SMALL_GRIDS.len())];
        let seed = g.u64();
        let loads: Vec<usize> = (0..40).map(|_| g.usize_in(0, 79)).collect();
        let n = dims.0 * dims.1 * dims.2;
        let counts: Vec<usize> = (0..n).map(|r| loads[r % loads.len()]).collect();
        let total: usize = counts.iter().sum();
        if total == 0 {
            return;
        }
        let (storage, _) = run_write(dims, (2, 2, 1), counts, seed, WriteMode::Aligned, true);
        check_invariants(&storage, total as u64);
    });
}

#[test]
fn box_queries_are_exact() {
    cases(24, |g: &mut Gen| {
        let seed = g.u64();
        let qlo = [g.f64_in(0.0, 0.8), g.f64_in(0.0, 0.8), g.f64_in(0.0, 0.8)];
        let qext = [
            g.f64_in(0.05, 0.6),
            g.f64_in(0.05, 0.6),
            g.f64_in(0.05, 0.6),
        ];
        let (storage, _) = run_write(
            (4, 2, 2),
            (2, 2, 1),
            vec![40; 16],
            seed,
            WriteMode::Aligned,
            false,
        );
        let reader = DatasetReader::open(&storage).unwrap();
        let q = Aabb3::new(
            qlo,
            [
                (qlo[0] + qext[0]).min(1.0),
                (qlo[1] + qext[1]).min(1.0),
                (qlo[2] + qext[2]).min(1.0),
            ],
        );
        let (fast, _) = reader.read_box(&storage, &q).unwrap();
        let (slow, _) = reader.read_box_without_metadata(&storage, &q).unwrap();
        let mut a: Vec<u64> = fast.iter().map(|p| p.id).collect();
        let mut b: Vec<u64> = slow.iter().map(|p| p.id).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "metadata-guided read must equal the full scan");
        assert!(fast.iter().all(|p| q.contains(p.position)));
    });
}

#[test]
fn plan_predicts_real_execution() {
    cases(24, |g: &mut Gen| {
        let dims = SMALL_GRIDS[g.index(SMALL_GRIDS.len())];
        let fx = g.usize_in(1, 2);
        let fy = g.usize_in(1, 2);
        let per_rank = g.usize_in(1, 99);
        let seed = g.u64();
        if fx > dims.0 || fy > dims.1 {
            return;
        }
        let n = dims.0 * dims.1 * dims.2;
        let decomp = DomainDecomposition::uniform(
            Aabb3::new([0.0; 3], [1.0; 3]),
            GridDims::new(dims.0, dims.1, dims.2),
        );
        let plan = plan_write(
            &decomp,
            PartitionFactor::new(fx, fy, 1),
            &vec![per_rank as u64; n],
            false,
        )
        .unwrap();
        let (storage, _) = run_write(
            dims,
            (fx, fy, 1),
            vec![per_rank; n],
            seed,
            WriteMode::Aligned,
            false,
        );
        // The plan's file inventory must match what the real writer
        // produced: same count, same writers, same byte sizes.
        let reader = DatasetReader::open(&storage).unwrap();
        assert_eq!(plan.partition_count, reader.meta.entries.len());
        for (w, entry) in plan.file_writes.iter().zip(&reader.meta.entries) {
            assert_eq!(w.rank as u64, entry.agg_rank);
            let actual = storage.file_size(&entry.file_name()).unwrap();
            assert_eq!(w.bytes, actual, "planned size must match written size");
        }
    });
}
