//! Lock-free metrics registry: counters, gauges, and exponential-bucket
//! latency/size histograms with p50/p95/p99.
//!
//! Traces answer "what happened when"; metrics answer "how much, how often,
//! how slow" without retaining per-event storage. Instrument handles are
//! resolved from the registry **once** (at wrapper construction) and then
//! recorded through plain atomics, so the hot path takes no lock and
//! performs no allocation. A disabled registry (the [`crate::Trace::off`]
//! path) hands out inert handles whose record calls are a branch on `None`.
//!
//! Histograms use power-of-two buckets: bucket 0 holds the value `0`,
//! bucket *i* holds `[2^(i-1), 2^i)`. Percentiles are nearest-rank over
//! the buckets and report the bucket's upper bound (clamped to the true
//! observed max), so they are exact to within a factor of two — plenty for
//! "did p99 write latency double", which is what the bench gate asks.

use spio_util::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Number of histogram buckets: bucket 0 plus 63 power-of-two buckets
/// covers the full `u64` range (the last bucket absorbs the tail).
pub const HISTOGRAM_BUCKETS: usize = 64;

#[derive(Clone)]
enum Instrument {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCore>),
}

#[derive(Default)]
struct Registry {
    instruments: RwLock<BTreeMap<&'static str, Instrument>>,
}

impl Registry {
    /// Fetch-or-create under `name`. The read-lock fast path covers every
    /// call after the first registration of a name.
    fn resolve(&self, name: &'static str, make: impl FnOnce() -> Instrument) -> Instrument {
        if let Some(i) = self.instruments.read().unwrap().get(name) {
            return i.clone();
        }
        let mut w = self.instruments.write().unwrap();
        w.entry(name).or_insert_with(make).clone()
    }
}

/// Handle to the job-wide metrics registry. Cheap to clone; clones share
/// the same instruments. Obtained from [`crate::Trace::metrics`] — an
/// enabled trace carries an enabled registry, a disabled trace hands out
/// the inert one.
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Option<Arc<Registry>>,
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Metrics {
    /// The inert registry: every handle it hands out is a no-op and no
    /// call allocates.
    pub fn disabled() -> Metrics {
        Metrics { inner: None }
    }

    pub(crate) fn enabled() -> Metrics {
        Metrics {
            inner: Some(Arc::new(Registry::default())),
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A monotonically increasing count (ops issued, bytes moved, faults).
    pub fn counter(&self, name: &'static str) -> Counter {
        Counter(self.inner.as_ref().map(|r| {
            match r.resolve(name, || Instrument::Counter(Arc::new(AtomicU64::new(0)))) {
                Instrument::Counter(c) => c,
                _ => panic!("metric '{name}' already registered with a different type"),
            }
        }))
    }

    /// A point-in-time signed value (queue depth, in-flight requests).
    pub fn gauge(&self, name: &'static str) -> Gauge {
        Gauge(self.inner.as_ref().map(|r| {
            match r.resolve(name, || Instrument::Gauge(Arc::new(AtomicI64::new(0)))) {
                Instrument::Gauge(g) => g,
                _ => panic!("metric '{name}' already registered with a different type"),
            }
        }))
    }

    /// A distribution (latency in µs, message/op sizes in bytes).
    pub fn histogram(&self, name: &'static str) -> Histogram {
        Histogram(self.inner.as_ref().map(|r| {
            match r.resolve(name, || {
                Instrument::Histogram(Arc::new(HistogramCore::new()))
            }) {
                Instrument::Histogram(h) => h,
                _ => panic!("metric '{name}' already registered with a different type"),
            }
        }))
    }

    /// Current value of a counter (0 if absent or disabled).
    pub fn counter_value(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(Instrument::Counter(c)) => c.load(Ordering::Relaxed),
            _ => 0,
        }
    }

    /// Current value of a gauge (0 if absent or disabled).
    pub fn gauge_value(&self, name: &str) -> i64 {
        match self.get(name) {
            Some(Instrument::Gauge(g)) => g.load(Ordering::Relaxed),
            _ => 0,
        }
    }

    /// Snapshot of a histogram (`None` if absent or disabled).
    pub fn histogram_snapshot(&self, name: &str) -> Option<HistogramSnapshot> {
        match self.get(name) {
            Some(Instrument::Histogram(h)) => Some(h.snapshot()),
            _ => None,
        }
    }

    fn get(&self, name: &str) -> Option<Instrument> {
        self.inner
            .as_ref()
            .and_then(|r| r.instruments.read().unwrap().get(name).cloned())
    }

    /// Registered metric names, sorted.
    pub fn names(&self) -> Vec<&'static str> {
        match &self.inner {
            Some(r) => r.instruments.read().unwrap().keys().copied().collect(),
            None => Vec::new(),
        }
    }

    /// Export every instrument as one JSON object per line (JSONL), sorted
    /// by name. Counters/gauges carry `value`; histograms carry count,
    /// sum, max, and p50/p95/p99.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let Some(r) = &self.inner else { return out };
        for (name, inst) in r.instruments.read().unwrap().iter() {
            let obj = match inst {
                Instrument::Counter(c) => Json::Obj(vec![
                    ("type".into(), Json::str("counter")),
                    ("name".into(), Json::str(*name)),
                    ("value".into(), Json::u64(c.load(Ordering::Relaxed))),
                ]),
                Instrument::Gauge(g) => Json::Obj(vec![
                    ("type".into(), Json::str("gauge")),
                    ("name".into(), Json::str(*name)),
                    ("value".into(), Json::Num(g.load(Ordering::Relaxed) as f64)),
                ]),
                Instrument::Histogram(h) => {
                    let s = h.snapshot();
                    Json::Obj(vec![
                        ("type".into(), Json::str("histogram")),
                        ("name".into(), Json::str(*name)),
                        ("count".into(), Json::u64(s.count)),
                        ("sum".into(), Json::u64(s.sum)),
                        ("max".into(), Json::u64(s.max)),
                        ("p50".into(), Json::u64(s.percentile(0.50))),
                        ("p95".into(), Json::u64(s.percentile(0.95))),
                        ("p99".into(), Json::u64(s.percentile(0.99))),
                    ])
                }
            };
            out.push_str(&obj.to_string());
            out.push('\n');
        }
        out
    }

    /// Flatten every instrument into [`crate::report::MetricRow`]s, sorted
    /// by name — the shape [`crate::JobReport::with_metrics`] embeds.
    pub(crate) fn export_rows(&self) -> Vec<crate::report::MetricRow> {
        use crate::report::MetricRow;
        let Some(r) = &self.inner else {
            return Vec::new();
        };
        r.instruments
            .read()
            .unwrap()
            .iter()
            .map(|(name, inst)| match inst {
                Instrument::Counter(c) => MetricRow {
                    name: name.to_string(),
                    kind: "counter".into(),
                    value: c.load(Ordering::Relaxed) as i64,
                    ..Default::default()
                },
                Instrument::Gauge(g) => MetricRow {
                    name: name.to_string(),
                    kind: "gauge".into(),
                    value: g.load(Ordering::Relaxed),
                    ..Default::default()
                },
                Instrument::Histogram(h) => {
                    let s = h.snapshot();
                    MetricRow {
                        name: name.to_string(),
                        kind: "histogram".into(),
                        value: s.sum as i64,
                        count: s.count,
                        p50: s.percentile(0.50),
                        p95: s.percentile(0.95),
                        p99: s.percentile(0.99),
                        max: s.max,
                    }
                }
            })
            .collect()
    }
}

/// Monotonic counter handle. Inert when obtained from a disabled registry.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.value()).finish()
    }
}

impl Counter {
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn value(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Signed point-in-time gauge handle.
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.value()).finish()
    }
}

impl Gauge {
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn add(&self, delta: i64) {
        if let Some(g) = &self.0 {
            g.fetch_add(delta, Ordering::Relaxed);
        }
    }

    pub fn value(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

/// Distribution handle recording into power-of-two buckets.
#[derive(Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("max", &s.max)
            .finish()
    }
}

impl Histogram {
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(h) = &self.0 {
            h.record(value);
        }
    }

    /// Record a duration as microseconds.
    #[inline]
    pub fn record_duration(&self, dur: std::time::Duration) {
        self.record(dur.as_micros() as u64);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.as_ref().map(|h| h.snapshot()).unwrap_or_default()
    }
}

pub(crate) struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Bucket index for `value`: 0 → 0, otherwise `[2^(i-1), 2^i)` → `i`.
#[inline]
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((u64::BITS - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

impl HistogramCore {
    fn new() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a histogram's state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl HistogramSnapshot {
    /// Nearest-rank percentile estimate, `p` in `(0, 1]`. Returns the
    /// upper bound of the bucket containing the target rank, clamped to
    /// the observed max — exact to within the bucket's factor-of-two
    /// width.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                let upper = if i == 0 { 0 } else { (1u64 << i) - 1 };
                return upper.min(self.max);
            }
        }
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let m = Metrics::enabled();
        let c = m.counter("ops");
        c.inc();
        c.add(4);
        assert_eq!(c.value(), 5);
        assert_eq!(m.counter_value("ops"), 5);
        // Re-resolving the same name shares state.
        m.counter("ops").add(1);
        assert_eq!(m.counter_value("ops"), 6);

        let g = m.gauge("depth");
        g.set(10);
        g.add(-3);
        assert_eq!(m.gauge_value("depth"), 7);
    }

    #[test]
    fn histogram_percentiles_bracket_the_data() {
        let m = Metrics::enabled();
        let h = m.histogram("lat");
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.max, 100);
        // p50 of 1..=100 is 50; the bucket answer must be within 2x.
        let p50 = s.percentile(0.50);
        assert!((50..=127).contains(&p50), "p50 = {p50}");
        let p99 = s.percentile(0.99);
        assert!((99..=100).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p99);
        assert!((s.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn percentile_of_empty_is_zero() {
        let s = HistogramSnapshot::default();
        assert_eq!(s.percentile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn disabled_metrics_are_inert() {
        let m = Metrics::disabled();
        let c = m.counter("ops");
        c.inc();
        m.histogram("lat").record(5);
        m.gauge("g").set(3);
        assert_eq!(c.value(), 0);
        assert_eq!(m.counter_value("ops"), 0);
        assert!(m.histogram_snapshot("lat").is_none());
        assert!(m.to_jsonl().is_empty());
        assert!(m.names().is_empty());
    }

    #[test]
    fn jsonl_export_is_sorted_and_parseable() {
        let m = Metrics::enabled();
        m.counter("z.ops").add(3);
        m.histogram("a.lat").record(7);
        m.gauge("m.depth").set(-2);
        let text = m.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        // BTreeMap ordering: a.lat, m.depth, z.ops.
        let parsed: Vec<Json> = lines.iter().map(|l| Json::parse(l).unwrap()).collect();
        assert_eq!(parsed[0].get("name").and_then(Json::as_str), Some("a.lat"));
        assert_eq!(parsed[0].get("count").and_then(Json::as_u64), Some(1));
        assert_eq!(
            parsed[1].get("name").and_then(Json::as_str),
            Some("m.depth")
        );
        assert_eq!(parsed[2].get("value").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn concurrent_histogram_recording() {
        let m = Metrics::enabled();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let h = m.histogram("lat");
                std::thread::spawn(move || {
                    for v in 0..1000u64 {
                        h.record(v);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        let s = m.histogram_snapshot("lat").unwrap();
        assert_eq!(s.count, 8000);
        assert_eq!(s.max, 999);
        assert_eq!(s.buckets.iter().sum::<u64>(), 8000);
    }
}
