//! Chrome trace-event export: turn a [`TraceSnapshot`] into JSON that
//! `chrome://tracing` and Perfetto load directly.
//!
//! The [trace-event format] is the de-facto interchange for timeline
//! profiles: a top-level `{"traceEvents": [...]}` object whose entries
//! carry a phase letter `ph`, microsecond timestamp `ts`, and `pid`/`tid`
//! lanes. We map the job onto one process (`pid` 0) with one thread lane
//! per rank:
//!
//! | trace record          | chrome event                                   |
//! |-----------------------|------------------------------------------------|
//! | `Phase` span          | `"X"` (complete) on the rank lane, cat `phase` |
//! | `StorageOp`           | `"X"` on the rank lane, cat `storage`, args carry file + bytes |
//! | `Message` (sent side) | `"i"` (instant) on the src lane, cat `comm`    |
//! | `Message` (recv side) | `"i"` on the dst lane, cat `comm`              |
//! | `Fault`               | `"i"` on the rank lane, cat `fault`            |
//!
//! plus one `"M"` (metadata) `thread_name` record per rank so the viewer
//! labels lanes `rank 0`, `rank 1`, …
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::shard::TraceSnapshot;
use crate::{Dir, TraceEvent};
use spio_util::Json;
use std::collections::BTreeSet;

/// Render `snapshot` as Chrome trace-event JSON.
pub fn chrome_trace(snapshot: &TraceSnapshot) -> String {
    let mut events: Vec<Json> = Vec::with_capacity(snapshot.events.len() + 8);
    let mut ranks: BTreeSet<usize> = BTreeSet::new();

    let base = |ph: &str, name: &str, cat: &str, ts: u64, tid: usize| {
        vec![
            ("name".to_string(), Json::str(name)),
            ("cat".to_string(), Json::str(cat)),
            ("ph".to_string(), Json::str(ph)),
            ("ts".to_string(), Json::u64(ts)),
            ("pid".to_string(), Json::u64(0)),
            ("tid".to_string(), Json::u64(tid as u64)),
        ]
    };

    for ev in &snapshot.events {
        match *ev {
            TraceEvent::Phase {
                rank,
                phase,
                start_us,
                dur,
            } => {
                ranks.insert(rank);
                let mut obj = base("X", phase, "phase", start_us, rank);
                obj.push(("dur".into(), Json::u64(dur.as_micros() as u64)));
                events.push(Json::Obj(obj));
            }
            TraceEvent::StorageOp {
                rank,
                op,
                file,
                bytes,
                start_us,
                dur,
            } => {
                ranks.insert(rank);
                let mut obj = base("X", op, "storage", start_us, rank);
                obj.push(("dur".into(), Json::u64(dur.as_micros() as u64)));
                obj.push((
                    "args".into(),
                    Json::Obj(vec![
                        ("file".into(), Json::str(snapshot.file_name(file))),
                        ("bytes".into(), Json::u64(bytes)),
                    ]),
                ));
                events.push(Json::Obj(obj));
            }
            TraceEvent::Message {
                src,
                dst,
                tag,
                bytes,
                dir,
                at_us,
            } => {
                let (lane, name) = match dir {
                    Dir::Sent => (src, "send"),
                    Dir::Received => (dst, "recv"),
                };
                ranks.insert(lane);
                let mut obj = base("i", name, "comm", at_us, lane);
                // Thread-scoped instant: renders as a small arrow on the lane.
                obj.push(("s".into(), Json::str("t")));
                obj.push((
                    "args".into(),
                    Json::Obj(vec![
                        ("src".into(), Json::u64(src as u64)),
                        ("dst".into(), Json::u64(dst as u64)),
                        ("tag".into(), Json::u64(tag as u64)),
                        ("bytes".into(), Json::u64(bytes)),
                    ]),
                ));
                events.push(Json::Obj(obj));
            }
            TraceEvent::Fault {
                rank,
                kind,
                file,
                injected,
                at_us,
            } => {
                ranks.insert(rank);
                let mut obj = base("i", kind, "fault", at_us, rank);
                obj.push(("s".into(), Json::str("t")));
                obj.push((
                    "args".into(),
                    Json::Obj(vec![
                        ("file".into(), Json::str(snapshot.file_name(file))),
                        ("injected".into(), Json::Bool(injected)),
                    ]),
                ));
                events.push(Json::Obj(obj));
            }
            TraceEvent::Verify {
                rank,
                rule,
                ref detail,
                at_us,
            } => {
                ranks.insert(rank);
                let mut obj = base("i", rule, "verify", at_us, rank);
                obj.push(("s".into(), Json::str("t")));
                obj.push((
                    "args".into(),
                    Json::Obj(vec![("detail".into(), Json::str(detail))]),
                ));
                events.push(Json::Obj(obj));
            }
        }
    }

    // Lane labels, so the viewer shows "rank N" instead of bare tids.
    for rank in ranks {
        events.push(Json::Obj(vec![
            ("name".into(), Json::str("thread_name")),
            ("ph".into(), Json::str("M")),
            ("pid".into(), Json::u64(0)),
            ("tid".into(), Json::u64(rank as u64)),
            (
                "args".into(),
                Json::Obj(vec![("name".into(), Json::str(format!("rank {rank}")))]),
            ),
        ]));
    }

    Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(events)),
        ("displayTimeUnit".into(), Json::str("ms")),
    ])
    .to_string()
}

/// Golden schema check for an exported Chrome trace: verifies the document
/// shape that `chrome://tracing` requires, so CI catches a malformed export
/// without a browser. Checks: top-level `traceEvents` array; every event
/// has string `name`/`ph` and numeric `pid`/`tid`; `ph` is one of the
/// kinds we emit; `"X"` events carry numeric `ts` and `dur`; `"i"` events
/// carry numeric `ts`; `"M"` events are `thread_name` records with a
/// string `args.name`.
pub fn validate_chrome_trace(text: &str) -> Result<(), String> {
    let doc = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing top-level 'traceEvents' array")?;
    for (i, ev) in events.iter().enumerate() {
        let ctx = |what: &str| format!("traceEvents[{i}]: {what}");
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing string 'name'"))?;
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing string 'ph'"))?;
        for key in ["pid", "tid"] {
            ev.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| ctx(&format!("missing numeric '{key}'")))?;
        }
        match ph {
            "X" => {
                for key in ["ts", "dur"] {
                    ev.get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| ctx(&format!("'X' event missing numeric '{key}'")))?;
                }
            }
            "i" => {
                ev.get("ts")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| ctx("'i' event missing numeric 'ts'"))?;
            }
            "M" => {
                if name != "thread_name" {
                    return Err(ctx(&format!("unexpected metadata record '{name}'")));
                }
                ev.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .ok_or_else(|| ctx("thread_name metadata missing string 'args.name'"))?;
            }
            other => return Err(ctx(&format!("unsupported event phase '{other}'"))),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample() -> TraceSnapshot {
        TraceSnapshot {
            events: vec![
                TraceEvent::Phase {
                    rank: 0,
                    phase: "aggregation",
                    start_us: 5,
                    dur: Duration::from_micros(40),
                },
                TraceEvent::StorageOp {
                    rank: 1,
                    op: "write_file",
                    file: 0,
                    bytes: 4096,
                    start_us: 50,
                    dur: Duration::from_micros(12),
                },
                TraceEvent::Message {
                    src: 0,
                    dst: 1,
                    tag: 3,
                    bytes: 256,
                    dir: Dir::Sent,
                    at_us: 8,
                },
                TraceEvent::Fault {
                    rank: 1,
                    kind: "transient",
                    file: 0,
                    injected: true,
                    at_us: 55,
                },
            ],
            files: vec!["part/file_0.spd".to_string()],
        }
    }

    #[test]
    fn export_passes_its_own_validator() {
        let text = chrome_trace(&sample());
        validate_chrome_trace(&text).unwrap();
    }

    #[test]
    fn export_carries_lanes_and_args() {
        let text = chrome_trace(&sample());
        let doc = Json::parse(&text).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        // 4 records + 2 thread_name metadata lanes (ranks 0 and 1).
        assert_eq!(events.len(), 6);
        let storage = events
            .iter()
            .find(|e| e.get("cat").and_then(Json::as_str) == Some("storage"))
            .unwrap();
        assert_eq!(
            storage
                .get("args")
                .and_then(|a| a.get("file"))
                .and_then(Json::as_str),
            Some("part/file_0.spd")
        );
        assert_eq!(storage.get("dur").and_then(Json::as_u64), Some(12));
        let meta: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .collect();
        assert_eq!(meta.len(), 2);
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        // An "X" event without dur.
        let bad = r#"{"traceEvents":[{"name":"p","ph":"X","ts":1,"pid":0,"tid":0}]}"#;
        assert!(validate_chrome_trace(bad).is_err());
        // Unknown phase letter.
        let bad = r#"{"traceEvents":[{"name":"p","ph":"Q","pid":0,"tid":0}]}"#;
        assert!(validate_chrome_trace(bad).is_err());
        // Metadata without args.name.
        let bad = r#"{"traceEvents":[{"name":"thread_name","ph":"M","pid":0,"tid":0}]}"#;
        assert!(validate_chrome_trace(bad).is_err());
    }

    #[test]
    fn empty_snapshot_exports_cleanly() {
        let text = chrome_trace(&TraceSnapshot::default());
        validate_chrome_trace(&text).unwrap();
    }
}
